"""Setup shim.

The execution environment has no ``wheel`` package, so PEP-517 editable
installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``python setup.py develop``) work offline; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
