"""Backend comparison: simulator vs. real process-parallel execution.

Not a paper figure — an engineering benchmark for this repository's
two execution backends.  It measures actual wall time of the same
CETRIC program on the deterministic simulator (single process,
round-robin) and on the process-parallel backend (one OS process per
PE), and verifies the two agree on every application-level metric.

The parallel backend's purpose is fidelity (real messages between
real processes); at these graph sizes Python process startup dominates
its wall time, so no speedup assertion is made — only agreement and
sanity bounds.
"""

import time

import harness
from conftest import run_once, save_artifact

from repro.analysis.tables import format_table
from repro.core.engine import EngineConfig, counting_program
from repro.graphs import generators as gen
from repro.graphs.distributed import distribute
from repro.net import Machine, ProcessMachine

P = 4


def _experiment():
    g = gen.rhg(1 << 13, avg_degree=32, gamma=2.8, seed=3)
    dist = distribute(g, num_pes=P)
    cfg = EngineConfig(contraction=True)
    rows = []
    outcomes = {}
    for name, machine in (("simulator", Machine(P)), ("processes", ProcessMachine(P))):
        t0 = time.perf_counter()
        res = machine.run(counting_program, dist, cfg)
        wall = time.perf_counter() - t0
        outcomes[name] = res
        rows.append(
            {
                "backend": name,
                "wall time [s]": wall,
                "modelled time [s]": res.metrics.makespan,
                "triangles": res.values[0].triangles_total,
                "total volume": res.metrics.total_volume,
                "total messages": res.metrics.total_messages,
            }
        )
    return rows, outcomes


def test_backend_agreement(benchmark, results_dir):
    rows, outcomes = run_once(benchmark, _experiment)
    text = format_table(
        rows,
        [
            "backend",
            "wall time [s]",
            "modelled time [s]",
            "triangles",
            "total volume",
            "total messages",
        ],
        title=f"Backends: simulated vs process-parallel CETRIC (RHG n=8192, p={P})",
    )
    save_artifact(results_dir, "backend_comparison.txt", text)
    for r in rows:
        harness.emit(
            "backend_comparison",
            simulated_time=r["modelled time [s]"],
            wall_seconds=r["wall time [s]"],
            total_volume=r["total volume"],
            triangles=r["triangles"],
            backend=r["backend"],
        )
    sim, par = outcomes["simulator"], outcomes["processes"]
    assert sim.values[0].triangles_total == par.values[0].triangles_total
    assert sim.metrics.total_volume == par.metrics.total_volume
    assert sim.metrics.total_messages == par.metrics.total_messages
    assert sim.metrics.total_ops == par.metrics.total_ops
