"""Backend comparison: simulator vs. process-parallel, shm vs. pickle.

Not a paper figure — engineering benchmarks for this repository's
execution backends and transports.

``test_backend_agreement`` measures actual wall time of the same
CETRIC program on the deterministic simulator (single process,
round-robin) and on the process-parallel backend (one OS process per
PE), and verifies the two agree on every application-level metric.
The parallel backend's purpose is fidelity (real messages between
real processes); at these graph sizes Python process startup dominates
its wall time, so no speedup assertion is made there — only agreement
and sanity bounds.

``test_shm_vs_pickled_frames`` isolates the *transport*: the same
RMAT-16 record frames are exchanged all-to-all over 8 worker
processes, once through the zero-copy shared-memory frame pool
(``repro.net.shm``) and once through the legacy pickled-pipe path.
The payloads dominate this workload, so the pool's one-copy fan-out
(slot filled once, descriptors to every destination, receivers
reconstruct views in place) is required to win by at least 2x wall
clock — the acceptance bar for the shm transport.  The full counting
program is *not* a good vehicle for that assertion on a small host:
it is compute-bound, and on a single hardware thread both transports
time-slice the same kernel work (the committed artifact says so
explicitly).
"""

import time

import harness
import numpy as np
from conftest import run_once, save_artifact

from repro.analysis.tables import format_table
from repro.core.engine import EngineConfig, counting_program
from repro.graphs import generators as gen
from repro.graphs.distributed import distribute
from repro.net import Machine, ProcessMachine, RecordFrame
from repro.net.comm import alltoallv_dense

P = 4

#: Transport benchmark shape: the paper's RMAT instance family at
#: scale 16 (n = 2^16, ~0.9M edges), 8 PEs, a few broadcast rounds.
XCHG_SCALE = 16
XCHG_P = 8
XCHG_ROUNDS = 3


def _experiment():
    g = gen.rhg(1 << 13, avg_degree=32, gamma=2.8, seed=3)
    dist = distribute(g, num_pes=P)
    cfg = EngineConfig(contraction=True)
    rows = []
    outcomes = {}
    for name, machine in (("simulator", Machine(P)), ("processes", ProcessMachine(P))):
        t0 = time.perf_counter()
        res = machine.run(counting_program, dist, cfg)
        wall = time.perf_counter() - t0
        outcomes[name] = res
        rows.append(
            {
                "backend": name,
                "wall time [s]": wall,
                "modelled time [s]": res.metrics.makespan,
                "triangles": res.values[0].triangles_total,
                "total volume": res.metrics.total_volume,
                "total messages": res.metrics.total_messages,
            }
        )
    return rows, outcomes


def test_backend_agreement(benchmark, results_dir):
    rows, outcomes = run_once(benchmark, _experiment)
    text = format_table(
        rows,
        [
            "backend",
            "wall time [s]",
            "modelled time [s]",
            "triangles",
            "total volume",
            "total messages",
        ],
        title=f"Backends: simulated vs process-parallel CETRIC (RHG n=8192, p={P})",
    )
    save_artifact(results_dir, "backend_comparison.txt", text)
    for r in rows:
        harness.emit(
            "backend_comparison",
            simulated_time=r["modelled time [s]"],
            wall_seconds=r["wall time [s]"],
            total_volume=r["total volume"],
            triangles=r["triangles"],
            backend=r["backend"],
        )
    sim, par = outcomes["simulator"], outcomes["processes"]
    assert sim.values[0].triangles_total == par.values[0].triangles_total
    assert sim.metrics.total_volume == par.metrics.total_volume
    assert sim.metrics.total_messages == par.metrics.total_messages
    assert sim.metrics.total_ops == par.metrics.total_ops


def _frame_exchange_program(ctx, dist, rounds):
    """Broadcast each PE's full local record frame to every other PE.

    The communication pattern of CETRIC's dissemination phase with the
    compute stripped out, so wall time is the transport's.  Returns a
    content checksum over everything received (both transports must
    agree on it).
    """
    lg = dist.view(ctx.rank)
    frame = RecordFrame(
        lg.owned_vertices(),
        np.full(lg.num_local_vertices, -1, dtype=np.int64),
        lg.xadj,
        lg.adjncy,
    )
    words = frame.words
    checksum = 0
    for rnd in range(rounds):
        payloads = {
            dest: (frame, words) for dest in range(ctx.num_pes) if dest != ctx.rank
        }
        msgs = yield from alltoallv_dense(ctx, payloads, tag_label=f"xchg{rnd}")
        for msg in msgs:
            got = msg.payload
            checksum += int(got.neighbors[:64].sum()) + got.num_records
    return checksum


def _exchange_wall(dist, *, shm: bool) -> tuple[float, object]:
    """Best-of-2 wall time of the exchange workload (damps 1-core noise)."""
    best, res = float("inf"), None
    for _ in range(2):
        machine = ProcessMachine(XCHG_P, timeout=280.0, shm=shm)
        t0 = time.perf_counter()
        out = machine.run(_frame_exchange_program, dist, XCHG_ROUNDS)
        wall = time.perf_counter() - t0
        if wall < best:
            best, res = wall, out
    return best, res


def test_shm_vs_pickled_frames(benchmark, results_dir):
    """The shm frame pool must beat pickled pipes >=2x on rmat16 p=8."""

    def _experiment():
        g = gen.rmat(XCHG_SCALE, 16, seed=3)
        dist = distribute(g, num_pes=XCHG_P)
        shm_wall, shm_res = _exchange_wall(dist, shm=True)
        pickle_wall, pickle_res = _exchange_wall(dist, shm=False)
        return g, shm_wall, shm_res, pickle_wall, pickle_res

    g, shm_wall, shm_res, pickle_wall, pickle_res = run_once(benchmark, _experiment)
    speedup = pickle_wall / shm_wall
    rows = [
        {
            "transport": "shm frame pool",
            "wall time [s]": shm_wall,
            "shm frames": shm_res.metrics.total_shm_frames,
            "spills": shm_res.metrics.total_shm_spills,
            "payload MB copied": shm_res.metrics.total_bytes_moved / 1e6,
            "speedup": speedup,
        },
        {
            "transport": "pickled pipes",
            "wall time [s]": pickle_wall,
            "shm frames": 0,
            "spills": 0,
            "payload MB copied": 0.0,
            "speedup": 1.0,
        },
    ]
    text = format_table(
        rows,
        [
            "transport",
            "wall time [s]",
            "shm frames",
            "spills",
            "payload MB copied",
            "speedup",
        ],
        title=(
            f"Frame transport: shm pool vs pickled pipes "
            f"(RMAT scale {XCHG_SCALE}, n={g.num_vertices}, m={g.num_edges}, "
            f"p={XCHG_P}, {XCHG_ROUNDS} broadcast rounds, best of 2)"
        ),
    )
    text += (
        "\n\nNote: the exchange-only workload isolates the transport; the full"
        "\ncounting program is kernel-bound, so on a single hardware thread its"
        "\nwall time is transport-independent (both paths time-slice the same"
        "\ncompute).  'payload MB copied' counts physical copies into pool"
        "\nslots - broadcast fan-out shares one slot per payload, and the"
        "\npickled path copies every message separately."
    )
    save_artifact(results_dir, "shm_transport.txt", text)
    for r in rows:
        harness.emit(
            "shm_transport",
            wall_seconds=r["wall time [s]"],
            transport=r["transport"],
            speedup=r["speedup"],
        )
    # Both transports saw identical content...
    assert shm_res.values == pickle_res.values
    # ...and identical simulated accounting (transport-invariance).
    assert (
        shm_res.metrics.total_volume == pickle_res.metrics.total_volume
    )
    assert (
        shm_res.metrics.total_messages == pickle_res.metrics.total_messages
    )
    # The pool really carried the frames (no silent spill-to-pickle)...
    assert shm_res.metrics.total_shm_frames > 0
    assert shm_res.metrics.total_shm_spills == 0
    # ...and the zero-copy path is what the docs claim it is.
    assert speedup >= 2.0, (
        f"shm transport only {speedup:.2f}x faster "
        f"({shm_wall:.3f}s vs {pickle_wall:.3f}s)"
    )
