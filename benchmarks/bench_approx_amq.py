"""Section IV-E extension — approximate counting with an AMQ global phase.

Not a numbered figure in the paper (the AMQ variant is described but
not evaluated there), so this benchmark defines the obvious experiment
the text implies: accuracy and communication volume of the
Bloom-filter and compressed-single-shot-Bloom-filter global phases
versus the exact CETRIC run, across filter budgets, plus the DOULION
and colorful-counting baselines of Section III-B.

Asserted shapes:

* the truthful (bias-corrected) estimator stays within a few percent
  of the exact count at reasonable budgets;
* volume decreases as the budget shrinks, below the exact volume;
* the compressed single-shot filter needs fewer wire words than the
  plain Bloom filter at comparable FPR (the footnote-2 claim);
* DOULION/colorful trade accuracy much less favourably at comparable
  reduction factors (they only approximate the *global* count).
"""

import harness
from conftest import run_once, save_artifact

from repro.analysis.tables import format_table
from repro.core.approx import amq_cetric_program, colorful, doulion
from repro.core.edge_iterator import edge_iterator
from repro.core.engine import EngineConfig, counting_program
from repro.graphs.datasets import dataset
from repro.graphs.distributed import distribute
from repro.net import Machine

P = 16


def _experiment():
    g = dataset("friendster", scale=1.0)
    truth = edge_iterator(g).triangles
    dist = distribute(g, num_pes=P)
    exact = Machine(P).run(counting_program, dist, EngineConfig(contraction=True))
    rows = []
    for kind, budgets in (("bloom", (4.0, 8.0, 16.0)), ("ssbf", (8.0, 16.0, 32.0))):
        for budget in budgets:
            res = Machine(P).run(
                amq_cetric_program, dist, amq_kind=kind, budget=budget
            )
            est = res.values[0].estimate_total
            rows.append(
                {
                    "method": f"{kind}({budget:g})",
                    "estimate": est,
                    "rel. error %": 100.0 * abs(est - truth) / truth,
                    "bottleneck volume": res.metrics.bottleneck_volume,
                    "volume vs exact": res.metrics.bottleneck_volume
                    / max(exact.metrics.bottleneck_volume, 1),
                }
            )
    for q in (0.5, 0.25):
        d = doulion(g, q, seed=1)
        rows.append(
            {
                "method": f"doulion(q={q})",
                "estimate": d.estimate,
                "rel. error %": 100.0 * abs(d.estimate - truth) / truth,
                "bottleneck volume": None,
                "volume vs exact": d.reduced_edges / g.num_edges,
            }
        )
    for n_colors in (2, 4):
        c = colorful(g, n_colors, seed=1)
        rows.append(
            {
                "method": f"colorful(N={n_colors})",
                "estimate": c.estimate,
                "rel. error %": 100.0 * abs(c.estimate - truth) / truth,
                "bottleneck volume": None,
                "volume vs exact": c.reduced_edges / g.num_edges,
            }
        )
    return truth, exact.metrics.bottleneck_volume, rows


def test_amq_approximation_tradeoff(benchmark, results_dir):
    truth, exact_volume, rows = run_once(benchmark, _experiment)
    text = format_table(
        [{"method": "exact cetric", "estimate": truth, "rel. error %": 0.0,
          "bottleneck volume": exact_volume, "volume vs exact": 1.0}] + rows,
        ["method", "estimate", "rel. error %", "bottleneck volume", "volume vs exact"],
        title="Section IV-E: AMQ-approximate global phase vs sampling baselines "
        f"(friendster stand-in, p={P})",
    )
    save_artifact(results_dir, "approx_amq.txt", text)
    for r in rows:
        harness.emit(
            "approx_amq",
            bottleneck_volume=r["bottleneck volume"],
            method=r["method"],
        )

    amq_rows = [r for r in rows if r["method"].startswith(("bloom", "ssbf"))]
    # Truthful estimator: within 5 % at every tested budget.
    assert all(r["rel. error %"] < 5.0 for r in amq_rows)
    # The AMQ phase saves communication volume vs the exact run.
    assert min(r["volume vs exact"] for r in amq_rows) < 0.9
    # Tighter budgets -> less volume (bloom series is budget-monotone).
    blooms = [r for r in amq_rows if r["method"].startswith("bloom")]
    vols = [r["bottleneck volume"] for r in blooms]
    assert vols[0] <= vols[1] <= vols[2]
    # SSBF at budget 16 beats Bloom at budget 16 on wire size while
    # keeping a comparable error (footnote 2).
    bloom16 = next(r for r in rows if r["method"] == "bloom(16)")
    ssbf16 = next(r for r in rows if r["method"] == "ssbf(16)")
    assert ssbf16["bottleneck volume"] < bloom16["bottleneck volume"]
    # Sampling baselines pay far more error for comparable reduction.
    sampling = [r for r in rows if r["method"].startswith(("doulion", "colorful"))]
    assert max(r["rel. error %"] for r in sampling) > max(
        r["rel. error %"] for r in amq_rows
    )
