"""Shared benchmark infrastructure.

Every benchmark regenerates one paper artifact (table or figure) and

* prints the rows/series in the paper's layout,
* saves them under ``benchmarks/results/`` for EXPERIMENTS.md,
* asserts the qualitative *shape* the paper reports (who wins, where
  crossovers fall) so regressions in the algorithms show up as
  benchmark failures.

Heavy experiment bodies run exactly once via ``benchmark.pedantic``
(``rounds=1``) — the interesting measurements are the *modelled* times
inside the simulation, not Python wall time.

Benchmarks additionally emit normalized :class:`repro.obs.BenchRecord`
rows through ``harness.py``; ``pytest_sessionfinish`` below flushes
them into ``results/BENCH_<date>.json`` for the regression pipeline
(``docs/BENCHMARKS.md``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the regenerated paper artifacts."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(results_dir: Path, name: str, text: str) -> None:
    """Print and persist one regenerated table/figure."""
    print()
    print(text)
    (results_dir / name).write_text(text + "\n")


def run_once(benchmark, func):
    """Run an experiment body exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


def pytest_sessionfinish(session, exitstatus):
    """Flush records emitted via ``harness`` into BENCH_<date>.json."""
    import harness

    out = harness.flush(RESULTS_DIR)
    if out is not None:
        print(f"\nbench records written to {out}")
