"""Fig. 5 — weak scaling on RGG2D / RHG / GNM / RMAT.

One panel per synthetic family, each reporting the paper's three
series: total modelled time, max #outgoing messages over all PEs, and
bottleneck communication volume, for DITRIC, DITRIC², CETRIC, CETRIC²,
TriC and HavoqGT.  Problem size per PE is fixed (weak scaling) at a
scaled-down version of the paper's ``n/p``.

Asserted shapes (paper Section V-D):

* RGG2D / RHG: our algorithm family clearly outperforms TriC and
  HavoqGT; CETRIC's contraction cuts the bottleneck volume vs DITRIC.
* RHG: DITRIC and CETRIC show the same scaling behaviour with DITRIC
  slightly ahead (locality is high, but the extra local work of the
  expanded graph doesn't pay on a fast network).
* GNM: no locality — CETRIC is *slower* than DITRIC (up to ~50 % in
  the paper) and contraction barely reduces volume.
* RMAT: skew — our codes beat HavoqGT by a wide margin.
* TriC's static buffering is superlinear on the skewed families: its
  peak buffer per local arc grows with p on RHG/RMAT but stays flat on
  RGG2D (the mechanism behind the paper's out-of-memory crashes; the
  crashes themselves appear in the Fig. 6 benchmark where the absolute
  per-PE budget binds).
"""

import harness
from conftest import run_once, save_artifact

from repro.analysis.sweep import weak_scaling
from repro.analysis.tables import format_scaling_table, scaling_series
from repro.graphs import generators as gen

ALGOS = ("ditric", "ditric2", "cetric", "cetric2", "tric", "havoqgt")
PE_COUNTS = (1, 2, 4, 8, 16)

FAMILIES = {
    "rgg2d": (2048, lambda n, s: gen.rgg2d(n, expected_edges=16 * n, seed=s)),
    "rhg": (1024, lambda n, s: gen.rhg(n, avg_degree=32.0, gamma=2.8, seed=s)),
    "gnm": (512, lambda n, s: gen.gnm(n, 16 * n, seed=s)),
    "rmat": (256, lambda n, s: gen.rmat(max(1, int(n).bit_length() - 1), 16, seed=s)),
}


def _sweep(family_name):
    per_pe, factory = FAMILIES[family_name]
    return weak_scaling(
        factory, ALGOS, PE_COUNTS, vertices_per_pe=per_pe, scale_memory=False
    )


def _tables(results_dir, name, rows):
    for metric, label in (
        ("time", "total modelled time [s]"),
        ("max_messages", "max #outgoing messages over all PEs"),
        ("bottleneck_volume", "bottleneck communication volume [words]"),
    ):
        text = format_scaling_table(
            rows, metric, title=f"Fig. 5 ({name}, weak scaling): {label}"
        )
        save_artifact(results_dir, f"fig5_{name}_{metric}.txt", text)
    harness.emit_rows(f"fig5_weak:{name}", rows)


def _at(rows, algo, p, metric="time"):
    series = dict(scaling_series(rows, metric)[algo])
    return series[p]


def test_fig5_rgg2d(benchmark, results_dir):
    rows = run_once(benchmark, lambda: _sweep("rgg2d"))
    _tables(results_dir, "rgg2d", rows)
    p = PE_COUNTS[-1]
    ours = [_at(rows, a, p) for a in ("ditric", "ditric2", "cetric", "cetric2")]
    assert max(ours) < _at(rows, "havoqgt", p)
    # Contraction pays on the most local family.
    assert _at(rows, "cetric", p, "bottleneck_volume") < _at(
        rows, "ditric", p, "bottleneck_volume"
    )
    # TriC's scalability limiter: its dense exchange sends p-1 messages
    # per PE (linear in p) while DITRIC's sparse traffic follows the
    # (saturating) neighbor-PE count of the local partition.
    tric_growth = _at(rows, "tric", p, "max_messages") / _at(rows, "tric", 2, "max_messages")
    ditric_growth = _at(rows, "ditric", p, "max_messages") / _at(
        rows, "ditric", 2, "max_messages"
    )
    assert tric_growth > ditric_growth
    # TriC's buffering stays flat on RGG2D (no skew, high locality).
    tric_buf_small = _at(rows, "tric", 2, "peak_buffer_words")
    tric_buf_large = _at(rows, "tric", p, "peak_buffer_words")
    assert tric_buf_large < 4 * tric_buf_small  # per-PE input is constant


def test_fig5_rhg(benchmark, results_dir):
    rows = run_once(benchmark, lambda: _sweep("rhg"))
    _tables(results_dir, "rhg", rows)
    p = PE_COUNTS[-1]
    # An order of magnitude over HavoqGT in the paper; require >= 2x.
    assert _at(rows, "havoqgt", p) > 2 * _at(rows, "ditric", p)
    # Same scaling behaviour for DITRIC/CETRIC, DITRIC at most slightly behind.
    assert _at(rows, "ditric", p) < 1.6 * _at(rows, "cetric", p)
    assert _at(rows, "cetric", p) < 1.6 * _at(rows, "ditric", p)
    # Superlinear static buffering on the skewed family: TriC's peak
    # buffer grows faster than the (constant) per-PE input.
    assert _at(rows, "tric", p, "peak_buffer_words") > 2 * _at(
        rows, "tric", 2, "peak_buffer_words"
    )


def test_fig5_gnm(benchmark, results_dir):
    rows = run_once(benchmark, lambda: _sweep("gnm"))
    _tables(results_dir, "gnm", rows)
    p = PE_COUNTS[-1]
    # No locality: contraction does not pay (paper: up to 50 % slower).
    assert _at(rows, "cetric", p) > _at(rows, "ditric", p)
    # ... and barely reduces the bottleneck volume.
    vol_c = _at(rows, "cetric", p, "bottleneck_volume")
    vol_d = _at(rows, "ditric", p, "bottleneck_volume")
    assert vol_c > 0.6 * vol_d
    # CETRIC pays extra local work for nothing on GNM.
    assert _at(rows, "cetric", p, "total_ops") > _at(rows, "ditric", p, "total_ops")


def test_fig5_rmat(benchmark, results_dir):
    rows = run_once(benchmark, lambda: _sweep("rmat"))
    _tables(results_dir, "rmat", rows)
    p = PE_COUNTS[-1]
    assert _at(rows, "havoqgt", p) > 2 * _at(rows, "ditric", p)
    # Contraction does not pay on RMAT either (paper Section V-D).
    assert _at(rows, "cetric", p, "total_ops") > _at(rows, "ditric", p, "total_ops")
    # Skew: TriC's buffer grows with p despite constant per-PE input.
    assert _at(rows, "tric", p, "peak_buffer_words") > 2 * _at(
        rows, "tric", 2, "peak_buffer_words"
    )
