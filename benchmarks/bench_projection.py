"""Projection to paper scale: the claims that live beyond p = 64.

The simulation stops at tens of PEs; the paper's headline effects —
indirection dominating at large machines, TriC's dense-exchange wall,
the up-to-18× gap — appear at 2⁹…2¹⁵ cores.  This benchmark fits the
per-PE power laws of every algorithm from a measured weak-scaling
sweep (RHG, the paper's most interesting family) and projects modelled
time to the paper's machine sizes with the same α-β constants.

Asserted at the projected p = 2¹⁵ (the paper's largest machine):

* DITRIC² beats plain DITRIC (indirect delivery wins at scale, as in
  Figs. 5/6 "from 2¹² cores onward");
* TriC is an order of magnitude slower than our best variant (the
  paper reports up to 18×/80×);
* HavoqGT is a multiple of our best variant;
* the fitted message-count law of TriC is ~linear in p (its dense
  exchange) while DITRIC²'s grows distinctly slower.
"""

import harness
from conftest import run_once, save_artifact

from repro.analysis.projection import fit_scaling_model, project_time
from repro.analysis.sweep import weak_scaling
from repro.analysis.tables import format_table
from repro.graphs import generators as gen

ALGOS = ("ditric", "ditric2", "cetric", "cetric2", "tric", "havoqgt")
MEASURED_PS = (2, 4, 8, 16, 32)
PROJECTED_PS = tuple(2**k for k in range(9, 16, 2))  # 512 … 32768


def _experiment():
    rows = weak_scaling(
        lambda n, s: gen.rhg(n, avg_degree=32.0, gamma=2.8, seed=s),
        ALGOS,
        MEASURED_PS,
        vertices_per_pe=512,
        scale_memory=False,
    )
    projections = project_time(rows, ALGOS, PROJECTED_PS)
    models = {algo: fit_scaling_model(rows, algo) for algo in ALGOS}
    return rows, projections, models


def test_projection_to_paper_scale(benchmark, results_dir):
    rows, projections, models = run_once(benchmark, _experiment)
    table_rows = []
    for algo in ALGOS:
        m = models[algo]
        entry = {
            "algorithm": algo,
            "msg exponent": m.messages.exponent,
            "volume exponent": m.volume.exponent,
            "work exponent": m.work.exponent,
        }
        for p, t in projections[algo]:
            entry[f"t(p={p})"] = t
        table_rows.append(entry)
    text = format_table(
        table_rows,
        ["algorithm", "msg exponent", "volume exponent", "work exponent"]
        + [f"t(p={p})" for p in PROJECTED_PS],
        title="Projected modelled time at paper scale (RHG weak scaling, "
        "laws fitted on p = 2...32)",
    )
    save_artifact(results_dir, "projection_paper_scale.txt", text)
    harness.emit_rows("projection_measured", rows)
    for algo in ALGOS:
        for p, t in projections[algo]:
            harness.emit(
                "projection_paper_scale", simulated_time=t, algorithm=algo, p=p
            )

    top = PROJECTED_PS[-1]
    t = {algo: dict(projections[algo])[top] for algo in ALGOS}
    best_ours = min(t["ditric"], t["ditric2"], t["cetric"], t["cetric2"])
    # Indirection wins at scale.
    assert t["ditric2"] < t["ditric"]
    # TriC: an order of magnitude behind (paper: up to 18x / 80x).
    assert t["tric"] > 8 * best_ours
    # HavoqGT: clearly behind.
    assert t["havoqgt"] > 2 * best_ours
    # Mechanism behind TriC's wall: its dense exchange sends Theta(p)
    # messages per PE; DITRIC2's grid keeps message growth clearly lower.
    assert models["tric"].messages.exponent > 0.9
    assert models["ditric2"].messages.exponent < models["tric"].messages.exponent
