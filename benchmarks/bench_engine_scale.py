"""Event-engine scaling: idle PEs must cost (almost) nothing.

The round-robin scheduler polls every live PE once per round, so a
mostly-idle machine — two PEs exchanging messages while thousands wait
in a collective — pays O(rounds * p) generator resumptions.  The event
engine parks blocked PEs on the tag they wait for and resumes them only
on delivery, so the same run costs O(rounds + p).

The toy instance makes the gap extreme on purpose: ranks 0 and 1
ping-pong ``ROUNDS`` messages on per-round tags while every other PE
sits blocked in a binomial broadcast from rank 0, which only completes
after the ping-pong.  Both schedulers simulate the identical program on
the identical alpha-beta network, so modelled results must agree
exactly while wall time diverges.

Asserted:

* event and round-robin schedulers agree exactly (simulated time,
  events, per-PE clocks) at every p — scale changes speed, not results;
* at p = 4096 the event engine is >= 10x faster wall-clock;
* engine resumptions grow sub-linearly in idle PEs: the marginal cost
  of an extra parked PE is a small constant (its broadcast hops), not
  a per-round poll.
"""

import time

import harness
from conftest import run_once, save_artifact

from repro.analysis.tables import format_table
from repro.net import Machine
from repro.net.comm import bcast

PE_COUNTS = (256, 1024, 4096)
ROUNDS = 2000
SPEEDUP_FLOOR = 10.0
SPEEDUP_AT_P = 4096
#: Ceiling on marginal engine resumptions per additional idle PE.  A
#: parked PE costs its broadcast participation (recv park + resume +
#: child sends) — a handful of steps, independent of ROUNDS.
MARGINAL_STEPS_CEILING = 8.0


def _ping_pong_fleet(ctx, rounds):
    """Two chatty PEs, p - 2 idle ones blocked in a broadcast."""
    if ctx.rank == 0:
        for i in range(rounds):
            ctx.send(1, ("ping", i), None, 1)
            yield from ctx.recv(("pong", i))
    elif ctx.rank == 1:
        for i in range(rounds):
            yield from ctx.recv(("ping", i))
            ctx.send(0, ("pong", i), None, 1)
    result = yield from bcast(ctx, "done")
    return result


def _run(p, scheduler):
    machine = Machine(p, scheduler=scheduler, protocol_check=False)
    t0 = time.perf_counter()
    result = machine.run(_ping_pong_fleet, ROUNDS)
    wall = time.perf_counter() - t0
    return result, wall


def _experiment():
    rows = []
    for p in PE_COUNTS:
        ev, ev_wall = _run(p, "event")
        rr, rr_wall = _run(p, "round-robin")
        rows.append(
            {
                "p": p,
                "event wall s": ev_wall,
                "round-robin wall s": rr_wall,
                "speedup": rr_wall / ev_wall,
                "engine steps": ev.engine.steps,
                "steps/PE": ev.engine.steps / p,
                "simulated time": ev.time,
                "times equal": ev.time == rr.time and ev.events == rr.events,
                "clocks equal": [m.clock for m in ev.metrics.per_pe]
                == [m.clock for m in rr.metrics.per_pe],
            }
        )
    return rows


def test_engine_scale_idle_pes_are_cheap(benchmark, results_dir):
    rows = run_once(benchmark, _experiment)
    text = format_table(
        rows,
        [
            "p",
            "event wall s",
            "round-robin wall s",
            "speedup",
            "engine steps",
            "steps/PE",
            "simulated time",
        ],
    )
    save_artifact(results_dir, "engine_scale.txt", text)
    for row in rows:
        harness.emit(
            "engine_scale",
            simulated_time=row["simulated time"],
            wall_seconds=row["event wall s"],
            p=row["p"],
            scheduler="event",
            rounds=ROUNDS,
        )
        harness.emit(
            "engine_scale",
            simulated_time=row["simulated time"],
            wall_seconds=row["round-robin wall s"],
            p=row["p"],
            scheduler="round-robin",
            rounds=ROUNDS,
        )

    # Scale must change speed only — modelled results stay bit-identical.
    for row in rows:
        assert row["times equal"], f"schedulers diverged at p={row['p']}"
        assert row["clocks equal"], f"per-PE clocks diverged at p={row['p']}"

    by_p = {row["p"]: row for row in rows}
    big = by_p[SPEEDUP_AT_P]
    assert big["speedup"] >= SPEEDUP_FLOOR, (
        f"event engine only {big['speedup']:.1f}x faster than round-robin "
        f"at p={SPEEDUP_AT_P} (floor {SPEEDUP_FLOOR:.0f}x)"
    )

    # Marginal resumptions per extra idle PE: a constant, not ~ROUNDS.
    lo, hi = by_p[PE_COUNTS[0]], by_p[PE_COUNTS[-1]]
    marginal = (hi["engine steps"] - lo["engine steps"]) / (hi["p"] - lo["p"])
    assert marginal <= MARGINAL_STEPS_CEILING, (
        f"{marginal:.1f} engine steps per additional idle PE — idle PEs "
        f"are not cheap (ceiling {MARGINAL_STEPS_CEILING})"
    )
