"""Reliable-transport overhead (ISSUE 2's fault-tolerance cost claim).

The reliable transport adds sequence numbers and cumulative acks to
every point-to-point channel.  On a fault-free run that bookkeeping is
the *entire* price of fault tolerance, and the acceptance criterion
caps it at 10% modelled time.  This benchmark measures it across
algorithms and PE counts on a social-network stand-in, and shows the
contrast: the same runs under an injected 5% drop rate, where
retransmissions make the overhead real but the counts stay exact.

Asserted:

* zero-fault reliable transport costs <= 10% over the direct transport
  for every (algorithm, p) cell — and the counts are identical;
* under a 5% drop rate the count is still exact and retransmits > 0.
"""

import harness
from conftest import run_once, save_artifact

from repro.analysis.tables import format_table
from repro.faults import FaultPlan
from repro.core.cetric import CETRIC_CONFIG
from repro.core.ditric import DITRIC_CONFIG
from repro.core.engine import counting_program
from repro.graphs.datasets import dataset
from repro.graphs.distributed import distribute
from repro.net import Machine

PE_COUNTS = (4, 8)
ALGORITHMS = (("ditric", DITRIC_CONFIG), ("cetric", CETRIC_CONFIG))
OVERHEAD_CEILING = 0.10
DROP_RATE = 0.05


def _experiment():
    g = dataset("live-journal", scale=0.5)
    rows = []
    for p in PE_COUNTS:
        dist = distribute(g, num_pes=p)
        for name, config in ALGORITHMS:
            direct = Machine(p).run(counting_program, dist, config)
            reliable = Machine(p, transport="reliable").run(
                counting_program, dist, config
            )
            plan = FaultPlan(seed=1, drop_rate=DROP_RATE)
            faulty = Machine(p, fault_plan=plan).run(counting_program, dist, config)
            rows.append(
                {
                    "algorithm": name,
                    "p": p,
                    "direct time": direct.time,
                    "reliable time": reliable.time,
                    "overhead %": 100.0 * (reliable.time / direct.time - 1.0),
                    "faulty time": faulty.time,
                    "retransmits": faulty.metrics.total_retransmits,
                    "direct count": direct.values[0].triangles_total,
                    "reliable count": reliable.values[0].triangles_total,
                    "faulty count": faulty.values[0].triangles_total,
                }
            )
    return rows


def test_fault_tolerance_overhead(benchmark, results_dir):
    rows = run_once(benchmark, _experiment)
    text = format_table(
        rows,
        [
            "algorithm",
            "p",
            "direct time",
            "reliable time",
            "overhead %",
            "faulty time",
            "retransmits",
        ],
    )
    save_artifact(results_dir, "fault_overhead.txt", text)
    for row in rows:
        for variant in ("direct", "reliable", "faulty"):
            harness.emit(
                "fault_overhead",
                simulated_time=row[f"{variant} time"],
                triangles=row[f"{variant} count"],
                algorithm=row["algorithm"],
                p=row["p"],
                transport=variant,
            )
    for row in rows:
        cell = f"{row['algorithm']} p={row['p']}"
        assert row["reliable count"] == row["direct count"], cell
        assert row["faulty count"] == row["direct count"], cell
        assert row["overhead %"] <= 100.0 * OVERHEAD_CEILING, (
            f"zero-fault reliable overhead above "
            f"{OVERHEAD_CEILING:.0%} for {cell}: {row['overhead %']:.2f}%"
        )
        assert row["retransmits"] > 0, cell
        assert row["faulty time"] >= row["reliable time"], cell
