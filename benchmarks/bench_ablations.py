"""Ablations of the paper's individual design choices.

The paper motivates four mechanisms separately; this benchmark isolates
each one on a fixed workload so their individual contribution is
visible (DESIGN.md's ablation index):

* **aggregation threshold δ** (Section IV-A) — smaller δ flushes more
  often: more messages, lower buffer high-water mark; the paper's
  linear-memory claim is the δ ∈ O(|E_i|) row.
* **surrogate filter** (Section IV-D) — removing it re-sends
  neighborhoods and inflates volume.
* **degree exchange flavour** (Section IV-D) — sparse vs dense
  all-to-all for the ghost-degree exchange.
* **indirect delivery** (Section IV-B) — message-count reduction on a
  hub-heavy workload as p grows.
* **load rebalancing** (Section IV-D) — Arifuzzaman-style prefix-sum
  redistribution improves the estimated imbalance, yet the realized
  makespan gain is marginal next to the migration bill — the paper's
  "does not pay off".
"""

import harness
from conftest import run_once, save_artifact

from repro.analysis.runner import run_algorithm
from repro.analysis.tables import format_table
from repro.graphs import generators as gen
from repro.graphs.distributed import distribute

P = 16


def _graph():
    return gen.rhg(P * 1024, avg_degree=32, gamma=2.8, seed=9)


def test_ablation_threshold(benchmark, results_dir):
    def sweep():
        g = _graph()
        dist = distribute(g, num_pes=P)
        rows = []
        for factor in (0.05, 0.25, 1.0, 4.0):
            r = run_algorithm(
                dist, "ditric", config_overrides={"threshold_factor": factor}
            )
            rows.append(
                {
                    "threshold factor": factor,
                    "max messages": r.max_messages,
                    "peak buffer words": r.peak_buffer_words,
                    "time": r.time,
                    "triangles": r.triangles,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    text = format_table(
        rows,
        ["threshold factor", "max messages", "peak buffer words", "time", "triangles"],
        title="Ablation: aggregation threshold delta (DITRIC, RHG, p=16)",
    )
    save_artifact(results_dir, "ablation_threshold.txt", text)
    for r in rows:
        harness.emit(
            "ablation_threshold",
            simulated_time=r["time"],
            max_messages=r["max messages"],
            peak_words=r["peak buffer words"],
            triangles=r["triangles"],
            factor=r["threshold factor"],
        )
    assert len({r["triangles"] for r in rows}) == 1
    # Bigger delta => fewer messages but more buffered memory.
    msgs = [r["max messages"] for r in rows]
    bufs = [r["peak buffer words"] for r in rows]
    assert msgs[0] >= msgs[-1]
    assert bufs[0] <= bufs[-1]


def test_ablation_surrogate(benchmark, results_dir):
    def sweep():
        g = _graph()
        dist = distribute(g, num_pes=P)
        rows = []
        for surrogate in (True, False):
            r = run_algorithm(
                dist, "ditric", config_overrides={"surrogate": surrogate}
            )
            rows.append(
                {
                    "surrogate": surrogate,
                    "total volume": r.total_volume,
                    "time": r.time,
                    "triangles": r.triangles,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    text = format_table(
        rows,
        ["surrogate", "total volume", "time", "triangles"],
        title="Ablation: Arifuzzaman surrogate send-dedup (DITRIC, RHG, p=16)",
    )
    save_artifact(results_dir, "ablation_surrogate.txt", text)
    for r in rows:
        harness.emit(
            "ablation_surrogate",
            simulated_time=r["time"],
            total_volume=r["total volume"],
            triangles=r["triangles"],
            surrogate=r["surrogate"],
        )
    with_s, without_s = rows
    assert with_s["triangles"] == without_s["triangles"]
    assert with_s["total volume"] < without_s["total volume"]


def test_ablation_degree_exchange(benchmark, results_dir):
    def sweep():
        rows = []
        for name, g in (
            ("rgg2d (local, few partners)", gen.rgg2d(P * 1024, expected_edges=16 * P * 1024, seed=9)),
            ("rhg (skewed)", _graph()),
        ):
            dist = distribute(g, num_pes=P)
            for mode in ("dense", "sparse"):
                r = run_algorithm(
                    dist, "ditric", config_overrides={"degree_exchange": mode}
                )
                rows.append(
                    {
                        "input": name,
                        "mode": mode,
                        "preprocessing time": r.phases["preprocessing"],
                        "total messages": r.total_messages,
                        "triangles": r.triangles,
                    }
                )
        return rows

    rows = run_once(benchmark, sweep)
    text = format_table(
        rows,
        ["input", "mode", "preprocessing time", "total messages", "triangles"],
        title="Ablation: dense vs sparse ghost-degree exchange (DITRIC, p=16)",
    )
    save_artifact(results_dir, "ablation_degree_exchange.txt", text)
    for r in rows:
        harness.emit(
            "ablation_degree_exchange",
            simulated_time=r["preprocessing time"],
            triangles=r["triangles"],
            input=r["input"],
            mode=r["mode"],
        )
    # On the low-partner-count input the sparse exchange sends fewer
    # messages (the Hoefler–Traff motivation).
    rgg = [r for r in rows if r["input"].startswith("rgg2d")]
    dense, sparse = rgg
    assert sparse["total messages"] < dense["total messages"]


def test_ablation_rebalancing(benchmark, results_dir):
    def sweep():
        from repro.graphs import partition_by_vertices, rebalance
        from repro.graphs.distributed import distribute as dist_fn

        rows = []
        for name, g in (
            ("rmat (skewed)", gen.rmat(12, 16, seed=9)),
            ("rgg2d (uniform)", gen.rgg2d(4096, expected_edges=16 * 4096, seed=9)),
        ):
            naive = partition_by_vertices(g.num_vertices, P)
            reb = rebalance(g, naive, cost="outdeg_sum")
            before = run_algorithm(dist_fn(g, partition=naive), "ditric")
            after = run_algorithm(dist_fn(g, partition=reb.partition), "ditric")
            rows.append(
                {
                    "input": name,
                    "est. imbalance before": reb.imbalance_before,
                    "est. imbalance after": reb.imbalance_after,
                    "moved vertices": reb.moved_vertices,
                    "migration words": reb.migration_words,
                    "time before": before.time,
                    "time after": after.time,
                    "triangles": after.triangles,
                }
            )
            assert before.triangles == after.triangles
        return rows

    rows = run_once(benchmark, sweep)
    text = format_table(
        rows,
        [
            "input",
            "est. imbalance before",
            "est. imbalance after",
            "moved vertices",
            "migration words",
            "time before",
            "time after",
        ],
        title="Ablation: prefix-sum load rebalancing (DITRIC, p=16) — "
        "the paper's 'overhead does not pay off'",
    )
    save_artifact(results_dir, "ablation_rebalancing.txt", text)
    for r in rows:
        for variant in ("before", "after"):
            harness.emit(
                "ablation_rebalancing",
                simulated_time=r[f"time {variant}"],
                input=r["input"],
                variant=variant,
            )
    for r in rows:
        assert r["est. imbalance after"] <= r["est. imbalance before"] + 1e-9
        gain = r["time before"] - r["time after"]
        assert gain < 0.15 * r["time before"]  # marginal at best
        assert r["migration words"] >= 0


def test_ablation_indirection_crossover(benchmark, results_dir):
    def sweep():
        rows = []
        for p in (4, 16, 36, 64):
            g = gen.rhg(p * 512, avg_degree=32, gamma=2.8, seed=9)
            dist = distribute(g, num_pes=p)
            direct = run_algorithm(dist, "ditric")
            indirect = run_algorithm(dist, "ditric2")
            assert direct.triangles == indirect.triangles
            rows.append(
                {
                    "p": p,
                    "direct max msgs": direct.max_messages,
                    "indirect max msgs": indirect.max_messages,
                    "direct volume": direct.total_volume,
                    "indirect volume": indirect.total_volume,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    text = format_table(
        rows,
        ["p", "direct max msgs", "indirect max msgs", "direct volume", "indirect volume"],
        title="Ablation: grid indirection vs direct delivery across p (DITRIC, RHG weak scaling)",
    )
    save_artifact(results_dir, "ablation_indirection.txt", text)
    for r in rows:
        for variant in ("direct", "indirect"):
            harness.emit(
                "ablation_indirection",
                total_volume=r[f"{variant} volume"],
                max_messages=r[f"{variant} max msgs"],
                p=r["p"],
                variant=variant,
            )
    # Indirection at most doubles volume (plus routing headers) ...
    for r in rows:
        assert r["indirect volume"] < 2.5 * r["direct volume"]
    # ... and its message advantage grows with machine size: the ratio
    # direct/indirect max-messages improves from small to large p.
    first = rows[0]["direct max msgs"] / rows[0]["indirect max msgs"]
    last = rows[-1]["direct max msgs"] / rows[-1]["indirect max msgs"]
    assert last > first
