"""Fig. 8 — hybrid (threads x MPI ranks) DITRIC² on orkut.

Fixed core count, threads swept with ``cores = threads x ranks``.
Reported series, as in the paper's appendix: local-phase time, total
time, and communication volume.

Asserted shapes:

* local phase accelerates with threads, but sublinearly (<= ~1.67x at
  12 threads);
* communication volume drops steeply with threads (fewer ranks =>
  fewer cut edges; up to 84 % in the paper);
* the funneled-communication global phase erases the local gains: the
  hybrid variants are not faster overall than plain MPI.
"""

import harness
from conftest import run_once, save_artifact

from repro.analysis.tables import format_table
from repro.core.hybrid import run_hybrid, thread_speedup
from repro.graphs.datasets import dataset

CORES = 16
THREADS = (1, 2, 4, 8)


def _sweep():
    g = dataset("orkut", scale=1.0)
    return {t: run_hybrid(g, CORES, t) for t in THREADS}


def test_fig8_hybrid_parallelism(benchmark, results_dir):
    results = run_once(benchmark, _sweep)
    rows = [
        {
            "threads": t,
            "ranks": r.ranks,
            "local time": r.local_time,
            "global time": r.global_time,
            "total time": r.total_time,
            "total volume": r.total_volume,
            "model speedup S(t)": thread_speedup(t),
        }
        for t, r in results.items()
    ]
    text = format_table(
        rows,
        [
            "threads",
            "ranks",
            "local time",
            "global time",
            "total time",
            "total volume",
            "model speedup S(t)",
        ],
        title=f"Fig. 8: hybrid DITRIC2 on orkut stand-in, {CORES} cores "
        "(threads x ranks = cores)",
    )
    save_artifact(results_dir, "fig8_hybrid.txt", text)
    for t, r in results.items():
        harness.emit(
            "fig8_hybrid",
            simulated_time=r.total_time,
            total_volume=r.total_volume,
            triangles=r.triangles,
            threads=t,
            ranks=r.ranks,
        )

    r1 = results[1]
    # All configurations count the same triangles.
    assert len({r.triangles for r in results.values()}) == 1
    # Communication volume falls monotonically with the thread count.
    vols = [results[t].total_volume for t in THREADS]
    assert all(b < a for a, b in zip(vols, vols[1:]))
    # Paper: up to 84 % volume reduction; at ranks 16 -> 2 we demand >= 50 %.
    assert results[8].total_volume < 0.5 * r1.total_volume
    # Local-phase speedup exists but is bounded by the paper's ceiling:
    # compare against the *unthreaded* run at the same rank count.
    from repro.core.hybrid import run_hybrid as _rh

    g = dataset("orkut", scale=1.0)
    for t in THREADS[1:]:
        flat_same_ranks = _rh(g, CORES // t, 1)
        assert results[t].local_time < flat_same_ranks.local_time
        assert results[t].local_time > flat_same_ranks.local_time / 2.0
    # The funneled global phase keeps hybrid from winning overall.
    assert min(results, key=lambda t: results[t].total_time) == 1
