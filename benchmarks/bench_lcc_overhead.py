"""LCC extension overhead (Section IV-E's cost claim).

The paper asserts the per-vertex extension is cheap: the Δ-aggregation
postprocessing is "an all-to-all exchange analogous to the initial
degree exchange".  This benchmark quantifies that on a social-network
stand-in: distributed exact LCC vs plain counting across PE counts,
reporting total modelled time and the share of the delta-exchange
phase.

Asserted:

* LCC costs at most a small multiple of plain counting (the triangle
  discovery dominates; enumeration-with-credits plus the exchange add
  bounded overhead);
* the delta-exchange phase is a minor fraction of the LCC run;
* the LCC byproduct count equals the counting result.
"""

import harness
from conftest import run_once, save_artifact

from repro.analysis.tables import format_table
from repro.core.engine import EngineConfig, counting_program
from repro.core.lcc import lcc_program
from repro.graphs.datasets import dataset
from repro.graphs.distributed import distribute
from repro.net import Machine

PE_COUNTS = (4, 8, 16)


def _experiment():
    g = dataset("live-journal", scale=1.0)
    rows = []
    for p in PE_COUNTS:
        dist = distribute(g, num_pes=p)
        count = Machine(p).run(counting_program, dist, EngineConfig(contraction=True))
        lcc = Machine(p).run(lcc_program, dist, EngineConfig(contraction=True))
        assert (
            lcc.values[0].triangles_total == count.values[0].triangles_total
        )
        phases = lcc.metrics.phase_breakdown()
        rows.append(
            {
                "p": p,
                "count time": count.metrics.makespan,
                "lcc time": lcc.metrics.makespan,
                "lcc/count": lcc.metrics.makespan / count.metrics.makespan,
                "delta-exchange": phases.get("delta-exchange", 0.0),
                "delta share %": 100.0
                * phases.get("delta-exchange", 0.0)
                / lcc.metrics.makespan,
            }
        )
    return rows


def test_lcc_extension_overhead(benchmark, results_dir):
    rows = run_once(benchmark, _experiment)
    text = format_table(
        rows,
        ["p", "count time", "lcc time", "lcc/count", "delta-exchange", "delta share %"],
        title="Section IV-E: exact-LCC overhead vs plain counting "
        "(live-journal stand-in, CETRIC)",
    )
    save_artifact(results_dir, "lcc_overhead.txt", text)
    for r in rows:
        harness.emit(
            "lcc_overhead", simulated_time=r["lcc time"], p=r["p"], variant="lcc"
        )
        harness.emit(
            "lcc_overhead", simulated_time=r["count time"], p=r["p"], variant="count"
        )
    for r in rows:
        assert r["lcc/count"] < 6.0  # discovery dominates; credits add a few x
        assert r["delta share %"] < 35.0  # the exchange itself stays minor
