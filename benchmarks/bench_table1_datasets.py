"""Table I — dataset statistics (n, m, wedges, triangles).

Regenerates the paper's instance table for the scaled stand-ins and
prints the paper's original numbers beside them.  Absolute values are
smaller by construction; the *relationships* the evaluation relies on
must hold and are asserted:

* web graphs are triangle-densest, road networks triangle-poorest;
* twitter-like inputs have the largest wedge/edge ratio (degree skew);
* road networks have near-constant degrees.
"""

import harness
from conftest import run_once, save_artifact

from repro.analysis.tables import format_table
from repro.analysis.verify import graph_stats
from repro.graphs.datasets import DATASET_NAMES, PAPER_STATS, dataset

SCALE = 1.0


def _collect():
    rows = []
    for name in DATASET_NAMES:
        g = dataset(name, scale=SCALE)
        s = graph_stats(g, cross_check=True)
        p = PAPER_STATS[name]
        rows.append(
            {
                "instance": name,
                "family": p.family,
                "n": s.n,
                "m": s.m,
                "wedges": s.wedges,
                "triangles": s.triangles,
                "paper n[M]": p.n,
                "paper m[M]": p.m,
                "paper wedges[M]": p.wedges,
                "paper tri[M]": p.triangles,
            }
        )
    return rows


def test_table1_dataset_statistics(benchmark, results_dir):
    rows = run_once(benchmark, _collect)
    text = format_table(
        rows,
        [
            "instance",
            "family",
            "n",
            "m",
            "wedges",
            "triangles",
            "paper n[M]",
            "paper m[M]",
            "paper wedges[M]",
            "paper tri[M]",
        ],
        title="Table I: real-world stand-ins (scaled) vs paper originals",
    )
    save_artifact(results_dir, "table1_datasets.txt", text)
    for r in rows:
        harness.emit(
            "table1_datasets",
            triangles=r["triangles"],
            instance=r["instance"],
            n=r["n"],
            m=r["m"],
        )

    by_name = {r["instance"]: r for r in rows}
    tri_per_edge = {k: r["triangles"] / max(r["m"], 1) for k, r in by_name.items()}
    # Web graphs are the most triangle-dense family (uk-2007 extreme).
    assert tri_per_edge["uk-2007-05"] > tri_per_edge["friendster"]
    assert tri_per_edge["uk-2007-05"] > tri_per_edge["europe"]
    # Road networks have the fewest triangles per edge.
    assert tri_per_edge["europe"] < 0.25
    assert tri_per_edge["usa"] < 0.25
    # Degree skew: twitter has the largest wedges/edge ratio.
    wedge_ratio = {k: r["wedges"] / max(r["m"], 1) for k, r in by_name.items()}
    assert wedge_ratio["twitter"] == max(wedge_ratio.values())
    # Road degrees nearly uniform: wedges ~ m.
    assert wedge_ratio["usa"] < 4
