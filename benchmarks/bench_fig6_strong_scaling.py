"""Fig. 6 — strong scaling on the real-world instance stand-ins.

Six panels (friendster, twitter, live-journal, orkut, webbase-2001,
road networks), fixed input per panel, PE counts swept.  The per-PE
memory budget is *fixed in absolute terms* (like the paper's 96 GB
nodes), so the statically-buffering TriC baseline runs out of memory at
small PE counts on the big skewed instances and only completes once
the per-PE slice is small enough — exactly the paper's "we only were
able to run TriC using 2^14 and 2^15 PEs on friendster" pattern.

Asserted shapes (Section V-E):

* social networks: DITRIC beats HavoqGT (paper: up to 8x) and beats
  TriC by a huge factor where TriC runs at all; TriC OOMs at the small
  PE counts on friendster.
* webbase: CETRIC beats DITRIC at moderate p (locality pays) and the
  advantage fades as the cut grows with p.
* road networks: TriC is competitive at small p (tiny cut + single
  batch) while our algorithms keep scaling.
"""

import harness
from conftest import run_once, save_artifact

from repro.analysis.runner import run_algorithm
from repro.analysis.tables import format_scaling_table, scaling_series, speedup_over
from repro.graphs.datasets import dataset
from repro.graphs.distributed import distribute
from repro.net.costmodel import DEFAULT_SPEC

ALGOS = ("ditric", "ditric2", "cetric", "cetric2", "tric", "havoqgt")
PE_COUNTS = (2, 4, 8, 16, 32)


def _fixed_budget_sweep(name, *, budget_words=None, scale=1.0, pe_counts=PE_COUNTS):
    """Strong scaling with an absolute per-PE memory budget."""
    g = dataset(name, scale=scale)
    rows = []
    for p in pe_counts:
        dist = distribute(g, num_pes=p)
        spec = (
            DEFAULT_SPEC.scaled(memory_words=budget_words)
            if budget_words
            else DEFAULT_SPEC
        )
        for algo in ALGOS:
            rows.append(run_algorithm(dist, algo, spec=spec))
    return rows


def _at(rows, algo, p, metric="time"):
    return dict(scaling_series(rows, metric)[algo]).get(p)


def _best_ours(rows, p):
    """Fastest of our four variants at a PE count (the paper compares
    its best configuration against each competitor)."""
    return min(
        _at(rows, a, p) for a in ("ditric", "ditric2", "cetric", "cetric2")
    )


def _save(results_dir, name, rows):
    text = format_scaling_table(
        rows, "time", title=f"Fig. 6 ({name}, strong scaling): modelled time [s]"
    )
    save_artifact(results_dir, f"fig6_{name}_time.txt", text)
    harness.emit_rows(f"fig6_strong:{name}", rows)


def test_fig6_friendster(benchmark, results_dir):
    # Budget chosen so TriC's static buffer + local graph only fit once
    # the per-PE slice is small (the paper's fixed 96 GB per node,
    # scaled to the stand-in: the paper could run TriC on friendster
    # only at 2^14/2^15 PEs).
    pe_counts = (2, 4, 8, 16, 32, 64)
    rows = run_once(
        benchmark,
        lambda: _fixed_budget_sweep(
            "friendster", budget_words=200_000, pe_counts=pe_counts
        ),
    )
    _save(results_dir, "friendster", rows)
    tric = scaling_series(rows, "time")["tric"]
    failed = [p for p, t in tric if t is None]
    completed = [p for p, t in tric if t is not None]
    # TriC dies at small p (big per-PE slice) and completes at large p.
    assert failed and completed
    assert max(failed) < min(completed)
    # Our best variant beats HavoqGT at every p; widely at the low end.
    for p in pe_counts:
        assert _best_ours(rows, p) < _at(rows, "havoqgt", p)
    sp = speedup_over(rows, "havoqgt", "ditric")
    assert max(sp.values()) > 2
    # Where TriC completes, its static exchange still moves several
    # times our communication volume (at the paper's 2^14-core scale
    # this volume gap plus the p*alpha startup term is what produces
    # the reported 80x slowdown; at p<=64 the alpha term is small, so
    # the volume is the honest observable).
    p = completed[0]
    assert _at(rows, "tric", p, "bottleneck_volume") > 2 * _at(
        rows, "ditric", p, "bottleneck_volume"
    )


def test_fig6_twitter(benchmark, results_dir):
    rows = run_once(benchmark, lambda: _fixed_budget_sweep("twitter"))
    _save(results_dir, "twitter", rows)
    for p in PE_COUNTS:
        assert _best_ours(rows, p) * 1.3 < _at(rows, "havoqgt", p)
    # Extreme skew: TriC's ID orientation explodes the intersection work.
    sp_tric = speedup_over(rows, "tric", "ditric")
    assert max(sp_tric.values()) > 4


def test_fig6_live_journal(benchmark, results_dir):
    rows = run_once(benchmark, lambda: _fixed_budget_sweep("live-journal"))
    _save(results_dir, "live-journal", rows)
    for p in PE_COUNTS:
        assert _best_ours(rows, p) < _at(rows, "havoqgt", p)
    # CETRIC halves the global phase but pays local work (Fig. 7 shape,
    # checked here end-to-end): global-phase time strictly smaller.
    p = 16
    dit = [r for r in rows if r.algorithm == "ditric" and r.num_pes == p][0]
    cet = [r for r in rows if r.algorithm == "cetric" and r.num_pes == p][0]
    assert cet.phases["global"] < dit.phases["global"]
    assert cet.phases["local"] + cet.phases.get("contraction", 0) > dit.phases["local"]


def test_fig6_orkut(benchmark, results_dir):
    rows = run_once(benchmark, lambda: _fixed_budget_sweep("orkut"))
    _save(results_dir, "orkut", rows)
    for p in PE_COUNTS:
        assert _best_ours(rows, p) < _at(rows, "havoqgt", p)


def test_fig6_webbase(benchmark, results_dir):
    rows = run_once(benchmark, lambda: _fixed_budget_sweep("webbase-2001"))
    _save(results_dir, "webbase", rows)
    # Locality: contraction reduces communication volume clearly at
    # moderate p ...
    small_p, large_p = 4, 32
    vol_ratio_small = _at(rows, "ditric", small_p, "bottleneck_volume") / max(
        _at(rows, "cetric", small_p, "bottleneck_volume"), 1
    )
    vol_ratio_large = _at(rows, "ditric", large_p, "bottleneck_volume") / max(
        _at(rows, "cetric", large_p, "bottleneck_volume"), 1
    )
    assert vol_ratio_small > 1.3
    # ... and the advantage shrinks as the cut grows with p (paper:
    # "from 2^12 PEs onward almost no reduction is visible").
    assert vol_ratio_large < vol_ratio_small


def test_fig6_road_networks(benchmark, results_dir):
    rows = run_once(benchmark, lambda: _fixed_budget_sweep("europe", scale=4.0))
    _save(results_dir, "europe", rows)
    # Tiny cut: TriC's single-batch exchange is competitive at small p
    # (paper: "on road networks TriC is initially faster").
    assert _at(rows, "tric", 2) < 1.5 * _at(rows, "ditric", 2)
    # Our algorithms hit no scaling wall: counting europe is already
    # sub-millisecond at tiny p, yet time never blows up across the
    # sweep (paper: "our algorithms do not hit a scaling wall").
    d_times = [t for _, t in scaling_series(rows, "time")["ditric"]]
    assert d_times[-1] < 2.5 * min(d_times)
