"""Benchmark-side adapter for the ``BENCH_<date>.json`` pipeline.

Thin wrapper over :mod:`repro.obs.bench` (the implementation shared
with ``repro-tc bench``): benchmarks call :func:`emit_run` /
:func:`emit_rows` / :func:`emit` as they produce results, the records
accumulate in-process, and the ``pytest_sessionfinish`` hook in
``conftest.py`` flushes them into ``results/BENCH_<date>.json`` (date
overridable via ``REPRO_BENCH_DATE``).  Diff any two such files — or a
file against ``baseline/BENCH_baseline.json`` — with
``repro-tc bench --baseline`` (see ``docs/BENCHMARKS.md``).
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.bench import (
    BenchRecord,
    bench_json_name,
    record_from_run,
    write_bench_json,
)

__all__ = ["emit", "emit_run", "emit_rows", "emit_wall", "flush", "pending"]

#: Records accumulated by the current pytest session.
_RECORDS: list[BenchRecord] = []


def emit(
    name: str,
    *,
    simulated_time: float | None = None,
    wall_seconds: float | None = None,
    triangles: int | None = None,
    total_volume: int | None = None,
    bottleneck_volume: int | None = None,
    max_messages: int | None = None,
    peak_words: int | None = None,
    **params,
) -> BenchRecord:
    """Record one hand-rolled measurement (e.g. a kernel wall time)."""
    rec = BenchRecord(
        name=name,
        params=params,
        simulated_time=simulated_time,
        total_volume=total_volume,
        bottleneck_volume=bottleneck_volume,
        max_messages=max_messages,
        peak_words=peak_words,
        wall_seconds=wall_seconds,
        triangles=triangles,
    )
    _RECORDS.append(rec)
    return rec


def emit_wall(name: str, benchmark, **params) -> BenchRecord:
    """Record a pytest-benchmark mean wall time (kernels only).

    The stats object is probed defensively — its layout differs across
    pytest-benchmark versions and is absent under ``--benchmark-disable``.
    """
    stats = getattr(benchmark, "stats", None)
    mean = None
    if stats is not None:
        inner = getattr(stats, "stats", stats)
        mean = getattr(inner, "mean", None)
    return emit(name, wall_seconds=mean, **params)


def emit_run(name: str, result, *, wall_seconds: float | None = None, **params) -> BenchRecord:
    """Normalize one :class:`~repro.analysis.runner.RunResult` row."""
    rec = record_from_run(
        name, result, wall_seconds=wall_seconds, graph=result.graph, **params
    )
    _RECORDS.append(rec)
    return rec


def emit_rows(name: str, rows, *, wall_seconds: float | None = None, **params) -> None:
    """Normalize a list of run rows (one record per row)."""
    for row in rows:
        emit_run(name, row, wall_seconds=wall_seconds, **params)


def pending() -> list[BenchRecord]:
    """Records emitted so far (the session-finish hook reads this)."""
    return list(_RECORDS)


def flush(directory: Path) -> Path | None:
    """Write accumulated records to ``<directory>/BENCH_<date>.json``.

    Appends/merges into an existing same-day file and clears the
    in-process buffer; returns the path, or ``None`` when nothing was
    emitted (e.g. a ``-k`` filtered run touching no instrumented
    benchmark).
    """
    if not _RECORDS:
        return None
    directory.mkdir(exist_ok=True)
    out = write_bench_json(_RECORDS, directory / bench_json_name())
    _RECORDS.clear()
    return out
