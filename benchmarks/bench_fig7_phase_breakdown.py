"""Fig. 7 — running-time distribution over algorithm phases.

For selected real-world stand-ins, the best DITRIC variant and the
best CETRIC variant are decomposed into preprocessing / local /
contraction / global phase times (critical-path maxima over PEs, like
the paper's stacked bars).

Scale note: at the paper's size the global phase is dominated by
communication *volume*, so contraction visibly halves it on
live-journal.  At this reproduction's scale the SuperMUC constants
make startup and load imbalance dominate the (small) volume term, so
the breakdown is reported under two cost models: the SuperMUC preset
(where the paper's *local-work penalty* of CETRIC is the visible
effect) and the cloud preset (higher beta — where the *global-phase
reduction* becomes visible, exactly as the paper predicts for "slower
network interconnects", Section V-E).

Asserted shapes:

* CETRIC reduces the communication volume on every instance, most on
  webbase (locality), least on friendster (no locality);
* CETRIC pays extra preprocessing + local work (both cost models);
* under the cloud cost model the reduced volume translates into a
  shorter global phase.
"""

import harness
from conftest import run_once, save_artifact

from repro.analysis.runner import run_algorithm
from repro.analysis.tables import format_phase_breakdown
from repro.graphs.datasets import dataset
from repro.graphs.distributed import distribute
from repro.net import CLOUD, SUPERMUC

INSTANCES = ("friendster", "live-journal", "webbase-2001")
P = 16


def _collect():
    out = {}
    for name in INSTANCES:
        g = dataset(name, scale=1.0)
        dist = distribute(g, num_pes=P)
        per_spec = {}
        for spec in (SUPERMUC, CLOUD):
            variants = {
                algo: run_algorithm(dist, algo, spec=spec)
                for algo in ("ditric", "ditric2", "cetric", "cetric2")
            }
            best_d = min(("ditric", "ditric2"), key=lambda a: variants[a].time)
            best_c = min(("cetric", "cetric2"), key=lambda a: variants[a].time)
            per_spec[spec.name] = (variants[best_d], variants[best_c])
        out[name] = per_spec
    return out


def test_fig7_phase_breakdown(benchmark, results_dir):
    data = run_once(benchmark, _collect)
    blocks = []
    for name, per_spec in data.items():
        for spec_name, (dit, cet) in per_spec.items():
            blocks.append(
                format_phase_breakdown(
                    [dit, cet],
                    title=f"Fig. 7 ({name}, p={P}, {spec_name}): phase times [s]",
                )
            )
    text = "\n\n".join(blocks)
    save_artifact(results_dir, "fig7_phase_breakdown.txt", text)
    for name, per_spec in data.items():
        for spec_name, (dit, cet) in per_spec.items():
            harness.emit_run(f"fig7_phase:{name}", dit, spec=spec_name)
            harness.emit_run(f"fig7_phase:{name}", cet, spec=spec_name)

    for name, per_spec in data.items():
        for spec_name, (dit, cet) in per_spec.items():
            # Contraction reduces communication volume everywhere ...
            assert cet.bottleneck_volume < dit.bottleneck_volume, (name, spec_name)
            # ... at the price of extra local-side work.
            cet_local = cet.phases["local"] + cet.phases.get("contraction", 0.0)
            assert cet_local > dit.phases["local"], (name, spec_name)
        # Where volume costs dominate (cloud beta), the saved volume
        # shows up as a shorter global phase — the paper's Fig. 7 bar.
        dit_c, cet_c = per_spec[CLOUD.name]
        assert cet_c.phases["global"] < dit_c.phases["global"], name

    # Locality contrast (paper Section V-E): webbase's contraction
    # removes a larger share of the volume than friendster's.
    fr_d, fr_c = data["friendster"][SUPERMUC.name]
    wb_d, wb_c = data["webbase-2001"][SUPERMUC.name]
    fr_reduction = fr_d.bottleneck_volume / max(fr_c.bottleneck_volume, 1)
    wb_reduction = wb_d.bottleneck_volume / max(wb_c.bottleneck_volume, 1)
    assert wb_reduction > fr_reduction
