"""Wall-clock budget for the whole-program dataflow analyzer.

The R8–R12 gate runs on every CI push over the full ``src`` tree
(docs/STATIC_ANALYSIS.md), so its cost is developer-facing latency.
This benchmark measures a complete ``lint_paths`` run — parse, lexical
rules, call graph, CFG/taint analysis — and enforces a hard budget so
the analyzer cannot quietly become the slowest job in CI: the bounded
path enumeration in ``flow/cfg.py`` is exactly the kind of code where
an innocent-looking change goes exponential.
"""

from pathlib import Path

import harness

from repro.lint import lint_paths

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"

#: Generous ceiling for one full-src whole-program analysis.  A typical
#: run is well under a second; tripping this means something went
#: superlinear, not that the machine was slow.
WALL_BUDGET_SECONDS = 15.0


def test_bench_lint_flow_full_src(benchmark):
    findings = benchmark.pedantic(
        lambda: lint_paths([SRC_ROOT]), rounds=3, warmup_rounds=1
    )
    assert findings == []  # the gate this speed exists to serve
    rec = harness.emit_wall(
        "lint:flow_full_src", benchmark, files=len(list(SRC_ROOT.rglob("*.py")))
    )
    # wall_seconds is None under --benchmark-disable; the budget only
    # binds when a real measurement exists.
    if rec.wall_seconds is not None:
        assert rec.wall_seconds < WALL_BUDGET_SECONDS, (
            f"whole-program lint took {rec.wall_seconds:.2f}s over "
            f"{SRC_ROOT} — budget is {WALL_BUDGET_SECONDS}s; did path "
            f"enumeration or the summary fixpoint go superlinear?"
        )


def test_bench_lint_lexical_only(benchmark):
    # The R1-R7 layer alone, for attributing regressions: if the full
    # run blows the budget but this stays flat, the flow layer did it.
    findings = benchmark.pedantic(
        lambda: lint_paths([SRC_ROOT], flow=False), rounds=3, warmup_rounds=1
    )
    assert findings == []
    harness.emit_wall("lint:lexical_full_src", benchmark)
