"""Kernel microbenchmarks — real wall-time measurements.

Unlike the figure benchmarks (which report *modelled* times from the
simulation), these measure actual NumPy kernel throughput: the batch
intersection engine, the orientation filter and the sequential
counter.  They exist to catch performance regressions in the
vectorized hot paths the HPC-Python guides call out.
"""

import harness
import numpy as np
import pytest

from repro.core.edge_iterator import edge_iterator, matrix_count
from repro.core.intersect import batch_intersect_count, gather_blocks
from repro.core.orientation import orient_by_degree
from repro.graphs import generators as gen


@pytest.fixture(scope="module")
def medium_graph():
    return gen.rmat(13, 16, seed=1)


@pytest.fixture(scope="module")
def intersection_batch(medium_graph):
    og = orient_by_degree(medium_graph)
    src = np.repeat(og.vertices(), og.degrees)
    a_cat, a_x = gather_blocks(og.xadj, og.adjncy, og.adjncy)
    b_cat, b_x = gather_blocks(og.xadj, og.adjncy, src)
    return a_cat, a_x, b_cat, b_x, og.num_vertices


def test_bench_batch_intersection(benchmark, intersection_batch):
    a_cat, a_x, b_cat, b_x, n = intersection_batch
    result = benchmark(batch_intersect_count, a_cat, a_x, b_cat, b_x, n)
    assert result.total > 0
    harness.emit_wall("kernel:batch_intersect", benchmark)


def test_bench_batched_side_swap(benchmark):
    """Adaptive side swap: searchsorted probes from the smaller side.

    The batch has one side ~32x heavier than the other; the swap in
    :func:`batch_intersect_count` keeps the binary-search side small,
    and (asserted here) the result is identical either way because the
    merge is symmetric.
    """
    rng = np.random.default_rng(3)
    n, big, small = 20_000, 64, 2
    # Strictly increasing rows -> sorted unique blocks after ravel.
    a_cat = np.cumsum(rng.integers(1, 5, size=(n, big)), axis=1).ravel()
    b_cat = np.cumsum(rng.integers(1, 5, size=(n, small)), axis=1).ravel()
    a_x = np.arange(n + 1, dtype=np.int64) * big
    b_x = np.arange(n + 1, dtype=np.int64) * small
    bound = int(max(a_cat.max(), b_cat.max())) + 1
    result = benchmark(batch_intersect_count, a_cat, a_x, b_cat, b_x, bound)
    swapped = batch_intersect_count(b_cat, b_x, a_cat, a_x, bound)
    assert np.array_equal(result.counts, swapped.counts)
    assert result.ops == swapped.ops
    harness.emit_wall(
        "kernel:batch_intersect_asymmetric", benchmark, pairs=n, ratio=big // small
    )


def test_bench_orientation(benchmark, medium_graph):
    og = benchmark(orient_by_degree, medium_graph)
    assert og.num_arcs == medium_graph.num_edges


def test_bench_sequential_count(benchmark, medium_graph):
    res = benchmark(edge_iterator, medium_graph)
    assert res.triangles == matrix_count(medium_graph)
    harness.emit_wall("kernel:sequential_count", benchmark, triangles=res.triangles)


def test_bench_gather_blocks(benchmark, medium_graph):
    og = orient_by_degree(medium_graph)
    ids = np.arange(og.num_vertices, dtype=np.int64)
    cat, xadj = benchmark(gather_blocks, og.xadj, og.adjncy, ids)
    assert cat.size == og.num_arcs


def test_bench_rmat_generation(benchmark):
    g = benchmark.pedantic(
        lambda: gen.rmat(12, 16, seed=9), rounds=3, iterations=1
    )
    assert g.num_vertices == 4096


def test_bench_rgg_generation(benchmark):
    g = benchmark.pedantic(
        lambda: gen.rgg2d(1 << 12, expected_edges=16 << 12, seed=9),
        rounds=3,
        iterations=1,
    )
    assert g.num_vertices == 4096


def test_bench_rhg_generation(benchmark):
    g = benchmark.pedantic(
        lambda: gen.rhg(1 << 12, avg_degree=32, seed=9), rounds=3, iterations=1
    )
    assert g.num_vertices == 4096


def test_bench_bloom_filter(benchmark):
    from repro.amq import BloomFilter

    keys = np.arange(1 << 14, dtype=np.int64)

    def build_and_query():
        f = BloomFilter.for_elements(keys.size, bits_per_element=8, seed=1)
        f.add(keys)
        return int(np.count_nonzero(f.query(keys)))

    assert benchmark(build_and_query) == keys.size
