"""Kernel microbenchmarks — real wall-time measurements.

Unlike the figure benchmarks (which report *modelled* times from the
simulation), these measure actual NumPy kernel throughput: the batch
intersection engine, the orientation filter and the sequential
counter.  They exist to catch performance regressions in the
vectorized hot paths the HPC-Python guides call out.
"""

import time

import harness
import numpy as np
import pytest
from conftest import save_artifact

from repro.analysis.tables import format_table
from repro.core import backends
from repro.core.edge_iterator import edge_iterator, matrix_count
from repro.core.intersect import batch_intersect_count, gather_blocks
from repro.core.orientation import orient_by_degree
from repro.graphs import generators as gen


@pytest.fixture(scope="module")
def medium_graph():
    return gen.rmat(13, 16, seed=1)


@pytest.fixture(scope="module")
def intersection_batch(medium_graph):
    og = orient_by_degree(medium_graph)
    src = np.repeat(og.vertices(), og.degrees)
    a_cat, a_x = gather_blocks(og.xadj, og.adjncy, og.adjncy)
    b_cat, b_x = gather_blocks(og.xadj, og.adjncy, src)
    return a_cat, a_x, b_cat, b_x, og.num_vertices


@pytest.fixture(scope="module")
def rmat16_batch():
    """The backend-comparison workload: every arc pair of RMAT scale 16.

    ~900k pairs / ~95M concatenated elements — large enough that kernel
    throughput, not dispatch overhead, decides the ranking (the regime
    the paper's graphs live in).
    """
    og = orient_by_degree(gen.rmat(16, 16, seed=1))
    src = np.repeat(og.vertices(), og.degrees)
    a_cat, a_x = gather_blocks(og.xadj, og.adjncy, og.adjncy)
    b_cat, b_x = gather_blocks(og.xadj, og.adjncy, src)
    return a_cat, a_x, b_cat, b_x, og.num_vertices


def _regime_batches():
    """Synthetic batches spanning the auto-tuner's pair-size regimes."""
    rng = np.random.default_rng(42)
    out = {}
    for name, (k, a_len, b_len) in {
        "balanced": (60_000, 24, 32),
        "skewed": (8_000, 4, 512),
        "tiny": (48, 8, 12),
    }.items():
        a = np.cumsum(rng.integers(1, 5, size=(k, a_len)), axis=1).ravel()
        b = np.cumsum(rng.integers(1, 5, size=(k, b_len)), axis=1).ravel()
        ax = np.arange(k + 1, dtype=np.int64) * a_len
        bx = np.arange(k + 1, dtype=np.int64) * b_len
        bound = int(max(a.max(), b.max())) + 1
        out[name] = (a.astype(np.int64), ax, b.astype(np.int64), bx, bound)
    return out


def test_bench_batch_intersection(benchmark, intersection_batch):
    a_cat, a_x, b_cat, b_x, n = intersection_batch
    result = benchmark(batch_intersect_count, a_cat, a_x, b_cat, b_x, n)
    assert result.total > 0
    harness.emit_wall("kernel:batch_intersect", benchmark)


def test_bench_batched_side_swap(benchmark):
    """Adaptive side swap: searchsorted probes from the smaller side.

    The batch has one side ~32x heavier than the other; the swap in
    :func:`batch_intersect_count` keeps the binary-search side small,
    and (asserted here) the result is identical either way because the
    merge is symmetric.
    """
    rng = np.random.default_rng(3)
    n, big, small = 20_000, 64, 2
    # Strictly increasing rows -> sorted unique blocks after ravel.
    a_cat = np.cumsum(rng.integers(1, 5, size=(n, big)), axis=1).ravel()
    b_cat = np.cumsum(rng.integers(1, 5, size=(n, small)), axis=1).ravel()
    a_x = np.arange(n + 1, dtype=np.int64) * big
    b_x = np.arange(n + 1, dtype=np.int64) * small
    bound = int(max(a_cat.max(), b_cat.max())) + 1
    result = benchmark(batch_intersect_count, a_cat, a_x, b_cat, b_x, bound)
    swapped = batch_intersect_count(b_cat, b_x, a_cat, a_x, bound)
    assert np.array_equal(result.counts, swapped.counts)
    assert result.ops == swapped.ops
    harness.emit_wall(
        "kernel:batch_intersect_asymmetric", benchmark, pairs=n, ratio=big // small
    )


def test_bench_kernel_backends(rmat16_batch, results_dir):
    """Pluggable kernel backends on the RMAT scale-16 batch.

    Times ``batch_intersect_count`` under every *loadable* backend
    (``numpy`` always; ``numba`` / ``native`` when their toolchains are
    installed; ``auto`` dispatching to its tuned winner) and pins the
    bit-identity contract: same counts, same charged ops — accounting
    happens in the dispatcher, before any backend runs.  Compiled
    backends must beat the keyed searchsorted baseline — ``native`` by
    >= 2x (the acceptance bar for shipping a C extension at all); when
    a toolchain is missing, the committed artifact records the skip
    instead of silently shrinking the table.
    """
    a_cat, a_x, b_cat, b_x, n = rmat16_batch
    rows = []
    results = {}
    skipped = []
    status = backends.backend_status()
    for name in backends.available_backends():
        if status.get(name) != "ok":
            skipped.append(f"{name}: {status.get(name, 'unknown')}")
            continue
        with backends.use_backend(name):
            batch_intersect_count(a_cat, a_x, b_cat, b_x, n)  # warm-up / JIT / tune
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                res = batch_intersect_count(a_cat, a_x, b_cat, b_x, n)
                best = min(best, time.perf_counter() - t0)
        results[name] = res
        rows.append({"backend": name, "wall time [s]": best, "ops": res.ops})
        harness.emit("kernel_backends", wall_seconds=best, backend=name)
    reference = results["numpy"]
    for name, res in results.items():
        assert np.array_equal(res.counts, reference.counts), name
        assert res.ops == reference.ops, name
    baseline = next(r["wall time [s]"] for r in rows if r["backend"] == "numpy")
    for r in rows:
        r["speedup vs numpy"] = baseline / r["wall time [s]"]
    text = format_table(
        rows,
        ["backend", "wall time [s]", "ops", "speedup vs numpy"],
        title=(
            f"Kernel backends: batch_intersect_count on RMAT scale 16 "
            f"({a_x.size - 1} pairs, {a_cat.size + b_cat.size} elements) "
            f"- outputs and charged ops bit-identical"
        ),
    )
    for note in skipped:
        text += f"\n\nbackend {note} - not loadable in this environment (skipped)"
    save_artifact(results_dir, "kernel_backends.txt", text)
    if "native" in results:
        native_wall = next(
            r["wall time [s]"] for r in rows if r["backend"] == "native"
        )
        assert native_wall * 2.0 <= baseline, (
            f"native must be >= 2x numpy on this batch "
            f"(native {native_wall:.4f}s vs numpy {baseline:.4f}s)"
        )
    if "numba" in results:
        numba_wall = next(
            r["wall time [s]"] for r in rows if r["backend"] == "numba"
        )
        assert numba_wall < baseline, "compiled merge loops should beat searchsorted"
    if "native" not in results and "numba" not in results:
        pytest.skip("no compiled backend loadable; numpy-only table committed")


def test_bench_backend_regime_sweep(results_dir):
    """Size-regime sweep: every loadable backend on the tuner's regimes.

    The committed table shows *why* the auto backend exists: the
    per-regime ranking is not constant (e.g. dispatch overhead dominates
    tiny batches; galloping pays off on skewed ones), and the winner
    column is exactly what ``repro-tc backends tune`` persists.
    """
    status = backends.backend_status()
    loadable = [n for n in backends.available_backends()
                if status.get(n) == "ok" and n != "auto"]
    rows = []
    for regime, batch in _regime_batches().items():
        a_cat, a_x, b_cat, b_x, bound = batch
        row = {"regime": regime, "pairs": a_x.size - 1}
        walls = {}
        ref = None
        for name in loadable:
            with backends.use_backend(name):
                batch_intersect_count(a_cat, a_x, b_cat, b_x, bound)  # warm-up
                best = float("inf")
                for _ in range(5):
                    t0 = time.perf_counter()
                    res = batch_intersect_count(a_cat, a_x, b_cat, b_x, bound)
                    best = min(best, time.perf_counter() - t0)
            if ref is None:
                ref = res
            assert np.array_equal(res.counts, ref.counts), (regime, name)
            walls[name] = best
            row[f"{name} [s]"] = best
            harness.emit(
                "kernel_regime_sweep", wall_seconds=best, backend=name, regime=regime
            )
        row["winner"] = min(walls, key=walls.get)
        rows.append(row)
    columns = ["regime", "pairs"] + [f"{n} [s]" for n in loadable] + ["winner"]
    text = format_table(
        rows,
        columns,
        title=(
            "Kernel backend regime sweep: best-of-5 batch_intersect_count "
            "wall time per pair-size regime (winner = what 'repro-tc "
            "backends tune' would pick)"
        ),
    )
    save_artifact(results_dir, "kernel_regime_sweep.txt", text)


def test_bench_orientation(benchmark, medium_graph):
    og = benchmark(orient_by_degree, medium_graph)
    assert og.num_arcs == medium_graph.num_edges


def test_bench_sequential_count(benchmark, medium_graph):
    res = benchmark(edge_iterator, medium_graph)
    assert res.triangles == matrix_count(medium_graph)
    harness.emit_wall("kernel:sequential_count", benchmark, triangles=res.triangles)


def test_bench_gather_blocks(benchmark, medium_graph):
    og = orient_by_degree(medium_graph)
    ids = np.arange(og.num_vertices, dtype=np.int64)
    cat, xadj = benchmark(gather_blocks, og.xadj, og.adjncy, ids)
    assert cat.size == og.num_arcs


def test_bench_rmat_generation(benchmark):
    g = benchmark.pedantic(
        lambda: gen.rmat(12, 16, seed=9), rounds=3, iterations=1
    )
    assert g.num_vertices == 4096


def test_bench_rgg_generation(benchmark):
    g = benchmark.pedantic(
        lambda: gen.rgg2d(1 << 12, expected_edges=16 << 12, seed=9),
        rounds=3,
        iterations=1,
    )
    assert g.num_vertices == 4096


def test_bench_rhg_generation(benchmark):
    g = benchmark.pedantic(
        lambda: gen.rhg(1 << 12, avg_degree=32, seed=9), rounds=3, iterations=1
    )
    assert g.num_vertices == 4096


def test_bench_bloom_filter(benchmark):
    from repro.amq import BloomFilter

    keys = np.arange(1 << 14, dtype=np.int64)

    def build_and_query():
        f = BloomFilter.for_elements(keys.size, bits_per_element=8, seed=1)
        f.add(keys)
        return int(np.count_nonzero(f.query(keys)))

    assert benchmark(build_and_query) == keys.size
