"""Fig. 2 — message aggregation on friendster (basic distributed algorithm).

The paper's motivating experiment: the basic distributed EDGEITERATOR
(Algorithm 2) run with and without dynamic message aggregation on the
friendster graph.  Without aggregation every neighborhood is its own
message and the startup term ``alpha * #messages`` dominates; with
aggregation the same traffic collapses into a few messages per PE
pair.

Expected shape (asserted): aggregation wins at every PE count by a
large factor, message counts differ by an order of magnitude, and the
non-aggregated variant scales sublinearly because the per-message
startup cost does not shrink with p.
"""

import harness
from conftest import run_once, save_artifact

from repro.analysis.runner import run_algorithm
from repro.analysis.tables import format_table
from repro.graphs.datasets import dataset
from repro.graphs.distributed import distribute

PE_COUNTS = (4, 8, 16, 32)


def _sweep():
    g = dataset("friendster", scale=1.0)
    rows = []
    for p in PE_COUNTS:
        dist = distribute(g, num_pes=p)
        no_aggr = run_algorithm(dist, "naive")
        aggr = run_algorithm(dist, "naive-aggregated")
        assert no_aggr.triangles == aggr.triangles
        rows.append(
            {
                "p": p,
                "no-aggregation time": no_aggr.time,
                "aggregated time": aggr.time,
                "speedup": no_aggr.time / aggr.time,
                "no-aggregation max msgs": no_aggr.max_messages,
                "aggregated max msgs": aggr.max_messages,
                "volume": aggr.total_volume,
            }
        )
    return rows


def test_fig2_aggregation_on_friendster(benchmark, results_dir):
    rows = run_once(benchmark, _sweep)
    text = format_table(
        rows,
        [
            "p",
            "no-aggregation time",
            "aggregated time",
            "speedup",
            "no-aggregation max msgs",
            "aggregated max msgs",
            "volume",
        ],
        title="Fig. 2: basic distributed EDGEITERATOR on friendster stand-in, "
        "with vs without message aggregation (modelled seconds)",
    )
    save_artifact(results_dir, "fig2_aggregation.txt", text)
    for r in rows:
        harness.emit(
            "fig2_aggregation",
            simulated_time=r["aggregated time"],
            max_messages=r["aggregated max msgs"],
            total_volume=r["volume"],
            p=r["p"],
            variant="aggregated",
        )
        harness.emit(
            "fig2_aggregation",
            simulated_time=r["no-aggregation time"],
            max_messages=r["no-aggregation max msgs"],
            p=r["p"],
            variant="no-aggregation",
        )

    # Aggregation dominates at every p by a large factor, and message
    # counts differ by an order of magnitude (the Fig. 2 gap).
    for r in rows:
        assert r["aggregated time"] * 5 < r["no-aggregation time"]
        assert r["aggregated max msgs"] * 9 < r["no-aggregation max msgs"]
    # Per-message startup makes the non-aggregated variant scale worse
    # than ideally: 8x the cores buy well under 8x the speed.
    assert rows[-1]["no-aggregation time"] > rows[0]["no-aggregation time"] / 8
