"""Wall-clock win of the packed frame wire format (the PR headline).

Two arms exchange the *same* cut-neighborhood batches (RMAT scale 14,
p = 16, aggregation on) through the buffered queue:

* **legacy** — one ``Record`` object and one ``post(...)`` call per cut
  arc on the send side, and an object-at-a-time list receiver
  (``to_records()``) on the other end: the pre-frame hot path;
* **frames** — one ``post_many(...)`` call per PE and the
  :class:`RecordFrame` arrays consumed directly.

Both arms are charge-identical (property-tested in
``tests/test_frames.py``); here we measure the Python wall time the
frame path removes and assert the headline >= 2x speedup.  The emitted
``wall_seconds`` rows land in ``BENCH_<date>.json`` so the win stays
visible in benchmark history.
"""

import time

import harness
import numpy as np
import pytest
from conftest import run_once, save_artifact

from repro.core.engine import _surrogate_filter
from repro.core.intersect import gather_blocks
from repro.core.kernels import as_frame
from repro.core.orientation import orient_by_degree
from repro.graphs import generators as gen
from repro.graphs.distributed import distribute
from repro.net import BufferedMessageQueue, Machine, Record, RecordFrame

SCALE = 14
NUM_PES = 16


@pytest.fixture(scope="module")
def cut_batches():
    """Per-rank cut-arc batches of an oriented RMAT graph (scale 14).

    The orientation is computed globally (no simulated exchange needed
    for a sender benchmark); per rank we keep the surrogate-filtered
    cut arcs — exactly the record stream the engine's global phase
    posts.
    """
    g = gen.rmat(SCALE, 16, seed=1)
    dist = distribute(g, num_pes=NUM_PES)
    og = orient_by_degree(g)
    batches = []
    threshold = 0
    for rank in range(NUM_PES):
        lg = dist.view(rank)
        vlo, vhi = lg.vlo, lg.vhi
        src = np.repeat(
            np.arange(vlo, vhi, dtype=np.int64), np.diff(og.xadj[vlo : vhi + 1])
        )
        dst = og.adjncy[og.xadj[vlo] : og.xadj[vhi]]
        cut = lg.partition.rank_of(dst) != rank
        c_src, c_dst = src[cut], dst[cut]
        dst_ranks = lg.partition.rank_of(c_dst) if c_dst.size else c_dst
        sends = _surrogate_filter(c_src, dst_ranks, enabled=True)
        slots = c_src[sends]
        neighbors, xadj = gather_blocks(og.xadj, og.adjncy, slots)
        targets = np.full(slots.size, -1, dtype=np.int64)
        batches.append((dst_ranks[sends], slots, targets, xadj, neighbors))
        threshold = max(threshold, int(lg.num_local_arcs))
    return batches, threshold


def exchange_program(ctx, batches, threshold, mode):
    dests, vertices, targets, xadj, neighbors = batches[ctx.rank]
    q = BufferedMessageQueue(ctx, "nbh", threshold_words=threshold)
    if mode == "frames":
        q.post_many(dests, vertices, targets, xadj, neighbors)
    else:
        for i in range(dests.size):
            rec = Record(int(vertices[i]), neighbors[xadj[i] : xadj[i + 1]])
            q.post(int(dests[i]), rec)
    received = yield from q.finalize()
    if mode == "frames":
        frame = as_frame(received)
        return frame.num_records, int(frame.neighbors.size)
    # Legacy receiver: one Python object per record.
    recs = (
        received.to_records()
        if isinstance(received, RecordFrame)
        else list(received)
    )
    return len(recs), int(sum(r.neighbors.size for r in recs))


def test_bench_frame_path_speedup(benchmark, cut_batches, results_dir):
    batches, threshold = cut_batches
    posted = sum(b[0].size for b in batches)

    def both_arms():
        t0 = time.perf_counter()
        legacy = Machine(NUM_PES).run(exchange_program, batches, threshold, "legacy")
        t1 = time.perf_counter()
        frames = Machine(NUM_PES).run(exchange_program, batches, threshold, "frames")
        t2 = time.perf_counter()
        return legacy, frames, t1 - t0, t2 - t1

    legacy, frames, wall_legacy, wall_frames = run_once(benchmark, both_arms)

    # Same exchange, observationally: contents, charges, clock.
    assert frames.values == legacy.values
    assert frames.time == legacy.time
    for fm, lm in zip(frames.metrics.per_pe, legacy.metrics.per_pe):
        assert fm.words_sent == lm.words_sent
        assert fm.messages_sent == lm.messages_sent

    speedup = wall_legacy / wall_frames
    harness.emit(
        "frames:legacy_records",
        wall_seconds=wall_legacy,
        simulated_time=legacy.time,
        graph=f"rmat{SCALE}",
        p=NUM_PES,
        records=posted,
    )
    harness.emit(
        "frames:packed_frames",
        wall_seconds=wall_frames,
        simulated_time=frames.time,
        graph=f"rmat{SCALE}",
        p=NUM_PES,
        records=posted,
    )
    text = (
        f"frame wire format, rmat scale {SCALE}, p={NUM_PES}, "
        f"{posted} records\n"
        f"  legacy per-record path: {wall_legacy:8.3f} s wall\n"
        f"  packed frame path:      {wall_frames:8.3f} s wall\n"
        f"  speedup:                {speedup:8.1f} x\n"
    )
    save_artifact(results_dir, "frames_speedup.txt", text)
    assert speedup >= 2.0, f"frame path only {speedup:.2f}x faster"
