"""Localized vs. global crash recovery (ISSUE 8's headline claim).

Global restart throws away *every* PE's progress when one rank
crash-stops: the rewind bill is ``p`` times the work lost on the
failed rank.  Localized recovery keeps the survivors running — the
crashed rank is heartbeat-detected, restored from its partner's
checkpoint replica, and brought back by replaying the senders' message
logs — so the bill is one rank's outage plus the replay traffic,
roughly independent of ``p``.

Both strategies face the *same* timed crash (same rank, same simulated
second, same contended network) and both must return the exact count.
Overheads are measured against each strategy's own fault-free
baseline so transport/heartbeat bookkeeping is not conflated with
recovery cost.

Asserted:

* exact counts everywhere, for both strategies;
* at ``p >= 256`` the localized overhead is strictly below the global
  overhead (the paper-scale regime where restarting everyone is
  ruinous);
* survivors never re-execute a phase under localized recovery;
* the localized run is deterministic: two reruns produce
  byte-identical Chrome traces.
"""

import harness
from conftest import run_once, save_artifact

from repro.analysis.tables import format_table
from repro.core.checkpoint import CheckpointStore, run_with_recovery
from repro.core.ditric import DITRIC_CONFIG
from repro.core.engine import counting_program
from repro.faults import FaultPlan, TimedCrash
from repro.faults.chaos import _survivor_phase_reexecutions
from repro.graphs.distributed import distribute
from repro.graphs.generators import gnm
from repro.net import Machine
from repro.obs import chrome_trace_json
from repro.sim.network import Network

PE_COUNTS = (64, 256)
CRASH_FRACTION = 0.5
CONFIG = DITRIC_CONFIG


def _localized_machine(p, plan=None):
    return Machine(
        p,
        network=Network(model="contended"),
        fault_plan=plan,
        recovery="localized",
    )


def _global_machine(p, plan=None):
    return Machine(
        p,
        network=Network(model="contended"),
        fault_plan=plan,
        transport="reliable",
        checkpoint_store=CheckpointStore(p),
    )


def _experiment():
    g = gnm(512, 2048, seed=3, name="gnm512")
    rows = []
    for p in PE_COUNTS:
        dist = distribute(g, num_pes=p)
        crash_rank = p // 2

        loc_base = _localized_machine(p).run(counting_program, dist, CONFIG)
        crash_time = loc_base.time * CRASH_FRACTION
        loc_plan = FaultPlan(
            0, crash_at_time=(TimedCrash(rank=crash_rank, at_time=crash_time),)
        )
        loc = _localized_machine(p, loc_plan).run(counting_program, dist, CONFIG)

        glob_base = _global_machine(p).run(counting_program, dist, CONFIG)
        glob_plan = FaultPlan(
            0, crash_at_time=(TimedCrash(rank=crash_rank, at_time=crash_time),)
        )
        glob = run_with_recovery(
            _global_machine(p, glob_plan), counting_program, dist, CONFIG
        )

        rerun_plan = FaultPlan(
            0, crash_at_time=(TimedCrash(rank=crash_rank, at_time=crash_time),)
        )
        rerun = _localized_machine(p, rerun_plan).run(counting_program, dist, CONFIG)

        rows.append(
            {
                "p": p,
                "baseline count": int(loc_base.values[0].triangles_total),
                "localized count": int(loc.values[0].triangles_total),
                "global count": int(glob.values[0].triangles_total),
                "localized base": loc_base.time,
                "localized time": loc.time,
                "localized overhead": loc.time - loc_base.time,
                "global base": glob_base.time,
                "global time": glob.total_time,
                "global overhead": glob.total_time - glob_base.time,
                "restarts": glob.restarts,
                "recovered": loc.recovery.recovered_ranks,
                "replayed": loc.recovery.replayed_messages,
                "reexecutions": _survivor_phase_reexecutions(
                    loc.metrics, crash_rank
                ),
                "trace": chrome_trace_json(loc.metrics, run_name="bench_recovery"),
                "rerun trace": chrome_trace_json(
                    rerun.metrics, run_name="bench_recovery"
                ),
            }
        )
    return rows


def test_localized_beats_global_restart(benchmark, results_dir):
    rows = run_once(benchmark, _experiment)
    text = format_table(
        rows,
        [
            "p",
            "localized base",
            "localized overhead",
            "global base",
            "global overhead",
            "restarts",
            "replayed",
        ],
    )
    save_artifact(results_dir, "recovery_overhead.txt", text)
    for row in rows:
        for strategy in ("localized", "global"):
            harness.emit(
                "recovery_overhead",
                simulated_time=row[f"{strategy} time"],
                triangles=row[f"{strategy} count"],
                algorithm="ditric",
                p=row["p"],
                recovery=strategy,
                overhead=row[f"{strategy} overhead"],
            )
    for row in rows:
        cell = f"p={row['p']}"
        assert row["localized count"] == row["baseline count"], cell
        assert row["global count"] == row["baseline count"], cell
        assert row["recovered"] == (row["p"] // 2,), cell
        assert row["reexecutions"] == 0, cell
        assert row["restarts"] >= 1, cell
        assert row["localized overhead"] > 0, cell
        assert row["trace"] == row["rerun trace"], f"{cell}: trace not deterministic"
        if row["p"] >= 256:
            assert row["localized overhead"] < row["global overhead"], (
                f"{cell}: localized recovery cost "
                f"{row['localized overhead']:.6f}s did not beat global "
                f"restart cost {row['global overhead']:.6f}s"
            )
