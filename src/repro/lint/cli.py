"""``python -m repro.lint`` — lint SPMD programs for protocol bugs."""

from __future__ import annotations

import argparse
import sys

from .findings import RULES
from .runner import lint_paths

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static checker for the SPMD protocol contract of the simulated "
            "machine (rules R1-R7; see docs/SPMD_CONTRACT.md). Suppress a "
            "deliberate violation with '# noqa: R<n>' on the offending line."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the summary line"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; exit status 1 iff findings were reported, 2 on usage errors."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for code, text in sorted(RULES.items()):
            print(f"{code}: {text}")
        return 0
    try:
        findings = lint_paths(args.paths)
    except OSError as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.format())
    if not args.quiet:
        n = len(findings)
        print(f"repro.lint: {n} finding{'s' if n != 1 else ''}")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
