"""``python -m repro.lint`` — lint SPMD programs for protocol bugs."""

from __future__ import annotations

import argparse
import sys

from .baseline import apply_baseline, load_baseline, write_baseline
from .emit import to_json, to_sarif, to_text
from .findings import RULES
from .runner import lint_paths

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static checker for the SPMD protocol contract of the simulated "
            "machine: lexical rules R1-R7 plus the whole-program dataflow "
            "rules R8-R12 (see docs/SPMD_CONTRACT.md and "
            "docs/STATIC_ANALYSIS.md). Suppress a deliberate violation with "
            "'# noqa: R<n>' on the offending line; dataflow rules require a "
            "justification: '# noqa: R8 -- <why this is safe>'."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the summary line"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (json/sarif are byte-deterministic documents)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="filter findings recorded in this baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        metavar="FILE",
        help="write current findings to FILE as the new baseline and exit",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail when the baseline contains stale (no-longer-firing) entries",
    )
    parser.add_argument(
        "--no-flow",
        action="store_true",
        help="skip the whole-program dataflow rules R8-R12",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point.

    Exit status: 0 clean, 1 findings (or, with ``--strict``, stale
    baseline entries), 2 on usage errors.
    """
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for code, text in sorted(RULES.items()):
            print(f"{code}: {text}")
        return 0
    findings = lint_paths(args.paths, flow=not args.no_flow)

    if args.update_baseline:
        n = write_baseline(args.update_baseline, findings)
        print(f"repro.lint: wrote {n} baseline entr{'ies' if n != 1 else 'y'}")
        return 0

    stale: list[dict] = []
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro.lint: error: {exc}", file=sys.stderr)
            return 2
        findings, stale = apply_baseline(findings, baseline)
        for entry in stale:
            print(
                f"repro.lint: stale baseline entry {entry['fingerprint']} "
                f"({entry['code']} in {entry['path']}) no longer fires — "
                f"remove it",
                file=sys.stderr,
            )

    if args.format == "json":
        print(to_json(findings))
    elif args.format == "sarif":
        print(to_sarif(findings))
    else:
        if findings:
            print(to_text(findings))
        if not args.quiet:
            n = len(findings)
            print(f"repro.lint: {n} finding{'s' if n != 1 else ''}")
    if findings:
        return 1
    if args.strict and stale:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
