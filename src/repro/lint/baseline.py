"""Committed finding baselines: accept known findings, flag stale ones.

A baseline file records fingerprints of findings a team has reviewed
and chosen to carry (typically while burning down a newly introduced
rule).  Fingerprints hash ``path + code + message`` — deliberately not
the line number, so re-formatting or moving code does not invalidate
an entry — and the workflow is:

* ``--update-baseline`` writes the current findings to the file;
* ``--baseline FILE`` filters matching findings from the report;
* entries that no longer match anything are *stale*; ``--strict``
  turns stale entries into a failure so fixed findings cannot keep
  haunting the baseline (CI runs the strict form).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .findings import Finding

__all__ = ["fingerprint", "load_baseline", "write_baseline", "apply_baseline"]

_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Line-number-free identity of a finding (move-tolerant)."""
    blob = f"{finding.path}\t{finding.code}\t{finding.message}".encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def load_baseline(path: str | Path) -> dict[str, dict]:
    """Fingerprint -> entry map from a baseline file."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("version") != _VERSION:
        raise ValueError(f"unsupported baseline version: {doc.get('version')!r}")
    return {e["fingerprint"]: e for e in doc.get("suppressions", [])}


def write_baseline(path: str | Path, findings: list[Finding]) -> int:
    """Write the findings as a fresh baseline; returns the entry count."""
    entries = [
        {
            "fingerprint": fingerprint(f),
            "code": f.code,
            "path": f.path,
            "message": f.message,
        }
        for f in findings
    ]
    # One entry per fingerprint, stable order for clean diffs.
    unique = {e["fingerprint"]: e for e in entries}
    doc = {
        "version": _VERSION,
        "suppressions": sorted(
            unique.values(), key=lambda e: (e["path"], e["code"], e["fingerprint"])
        ),
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return len(unique)


def apply_baseline(
    findings: list[Finding], baseline: dict[str, dict]
) -> tuple[list[Finding], list[dict]]:
    """Split findings against a baseline.

    Returns ``(new_findings, stale_entries)``: findings whose
    fingerprint is not in the baseline, and baseline entries that
    matched nothing this run (candidates for deletion).
    """
    used: set[str] = set()
    new: list[Finding] = []
    for f in findings:
        fp = fingerprint(f)
        if fp in baseline:
            used.add(fp)
        else:
            new.append(f)
    stale = [e for fp, e in sorted(baseline.items()) if fp not in used]
    return new, stale
