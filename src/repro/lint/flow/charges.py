"""Charge coverage (R11) and checkpoint-domain consistency (R12).

R11 — every NumPy compute statement on an SPMD path must have its cost
flow into the alpha-beta model.  The audit is function-granular: an
SPMD function that performs vectorized compute but neither charges
directly (``ctx.charge`` / ``charge_time`` / a message-bearing
primitive) nor calls any callee that (transitively) charges is doing
work the simulated timeline never sees — its modelled time is a lie
for exactly the hot paths that matter.  ``np.random.*`` is excluded
(R4's territory) and trivially-cheap constructors (``np.empty``,
dtype queries) are allowlisted.

R12 — the coordinated-checkpoint contract of
:func:`repro.core.checkpoint.run_with_recovery`: a ``ctx.checkpoint``
must be guarded by a preceding ``ctx.restore`` of the same domain (the
restore-else-recompute idiom), checkpoint/restore domain names must be
literals (rank-computed names break the store's global-stability
pruning), and state captured in the snapshot must not be mutated
afterwards in the same block — on restart the mutation is silently
lost while peers replay the stale snapshot.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..rules import _is_ctx_expr, _walk_no_nested_functions
from .callgraph import CallGraph

__all__ = ["check_charge_coverage", "check_checkpoint_consistency"]

#: ``np.*`` attributes that allocate/inspect without meaningful work.
_NP_CHEAP = frozenset(
    {
        "empty",
        "empty_like",
        "asarray",
        "ascontiguousarray",
        "dtype",
        "iinfo",
        "finfo",
        "result_type",
        "can_cast",
        "isscalar",
        "int64",
        "int32",
        "float64",
        "bool_",
        "ndim",
        "shape",
        "promote_types",
    }
)

#: Methods that mutate their receiver in place (R12 state loss).
_MUTATOR_ATTRS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "update",
        "add",
        "discard",
        "setdefault",
        "sort",
        "reverse",
        "fill",
    }
)


def _np_compute_call(call: ast.Call) -> bool:
    """A ``np.<...>`` call that does O(n) work (not cheap, not random)."""
    func = call.func
    segments: list[str] = []
    node: ast.AST = func
    while isinstance(node, ast.Attribute):
        segments.append(node.attr)
        node = node.value
    if not (isinstance(node, ast.Name) and node.id in ("np", "numpy")):
        return False
    segments.reverse()  # e.g. np.add.at -> ["add", "at"]
    if not segments or segments[0] == "random":
        return False  # unseeded np.random is rule R4's finding
    return segments[-1] not in _NP_CHEAP and segments[0] not in _NP_CHEAP


def check_charge_coverage(decl, cg: CallGraph) -> list[Finding]:
    """R11 over one SPMD function: compute with no route to the model."""
    fn = decl.node
    compute_sites = [
        n
        for n in _walk_no_nested_functions(fn.body)
        if isinstance(n, ast.Call) and _np_compute_call(n)
    ]
    if not compute_sites:
        return []
    if decl.direct_charge or any(cg.charges(c) for c in decl.calls):
        return []
    first = min(compute_sites, key=lambda n: (n.lineno, n.col_offset))
    return [
        Finding(
            path=decl.path,
            line=first.lineno,
            col=first.col_offset + 1,
            code="R11",
            message=(
                f"SPMD function '{fn.name}' performs NumPy compute but "
                f"never charges the cost model — no ctx.charge, no "
                f"message-bearing primitive, and no callee that charges, "
                f"so this work is invisible to the simulated timeline"
            ),
        )
    ]


def _ctx_method_call(node: ast.AST, method: str) -> ast.Call | None:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == method
        and _is_ctx_expr(node.func.value)
    ):
        return node
    return None


def _blocks(fn) -> list[list[ast.stmt]]:
    """Every statement list of the function (nested defs excluded)."""
    out: list[list[ast.stmt]] = []
    stack: list[list[ast.stmt]] = [fn.body]
    while stack:
        block = stack.pop()
        out.append(block)
        for stmt in block:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for field in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field, None)
                if sub:
                    stack.append(sub)
            for handler in getattr(stmt, "handlers", []) or []:
                stack.append(handler.body)
            for case in getattr(stmt, "cases", []) or []:
                stack.append(case.body)
    return out


def check_checkpoint_consistency(decl, cg: CallGraph) -> list[Finding]:
    """R12 over one function using ``ctx.checkpoint`` / ``ctx.restore``."""
    fn = decl.node
    path = decl.path
    findings: list[Finding] = []
    checkpoints: list[ast.Call] = []
    restores: list[ast.Call] = []
    for n in _walk_no_nested_functions(fn.body):
        call = _ctx_method_call(n, "checkpoint")
        if call is not None:
            checkpoints.append(call)
        call = _ctx_method_call(n, "restore")
        if call is not None:
            restores.append(call)
    if not checkpoints and not restores:
        return []

    def literal_name(call: ast.Call) -> str | None:
        arg = call.args[0] if call.args else None
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        return None

    def emit(node: ast.AST, message: str) -> None:
        findings.append(
            Finding(
                path=path,
                line=node.lineno,
                col=node.col_offset + 1,
                code="R12",
                message=message,
            )
        )

    restored: dict[str, int] = {}
    for call in restores:
        name = literal_name(call)
        if name is None:
            emit(
                call,
                "ctx.restore(...) domain name must be a string literal — "
                "computed names defeat the store's global-stability pruning "
                "and can differ across ranks",
            )
        else:
            restored.setdefault(name, call.lineno)

    blocks = _blocks(fn)
    for call in checkpoints:
        name = literal_name(call)
        if name is None:
            emit(
                call,
                "ctx.checkpoint(...) domain name must be a string literal — "
                "computed names defeat the store's global-stability pruning "
                "and can differ across ranks",
            )
            continue
        if name not in restored or restored[name] >= call.lineno:
            emit(
                call,
                f"ctx.checkpoint('{name}') without a preceding "
                f"ctx.restore('{name}') guard — on restart this phase "
                f"re-runs and re-sends while peers replay their snapshots "
                f"(use the restore-else-recompute idiom)",
            )
        if len(call.args) > 1:
            _check_mutation_after(call, blocks, emit)
    return findings


def _check_mutation_after(call: ast.Call, blocks, emit) -> None:
    """Flag mutations of checkpointed state later in the same block."""
    captured = {
        n.id for n in ast.walk(call.args[1]) if isinstance(n, ast.Name)
    }
    if not captured:
        return
    for block in blocks:
        idx = next(
            (
                i
                for i, stmt in enumerate(block)
                if isinstance(stmt, ast.Expr) and stmt.value is call
            ),
            None,
        )
        if idx is None:
            continue
        for stmt in block[idx + 1 :]:
            for n in _walk_no_nested_functions([stmt]):
                mutated = _mutates(n, captured)
                if mutated is not None:
                    emit(
                        n,
                        f"'{mutated}' is captured by the checkpoint at line "
                        f"{call.lineno} but mutated afterwards — on restart "
                        f"the snapshot replays the stale value and this "
                        f"mutation is silently lost",
                    )
        return


def _mutates(node: ast.AST, captured: set[str]) -> str | None:
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for t in targets:
            base = t
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name) and base.id in captured:
                return base.id
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _MUTATOR_ATTRS
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in captured
    ):
        return node.func.value.id
    return None
