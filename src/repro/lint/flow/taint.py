"""Rank-taint inference and the unordered-destination rule (R10).

A value is *rank-tainted* when it can differ across PEs running the
same program: anything derived from ``ctx.rank``, from received
messages (``recv`` / ``try_recv`` / ``drain`` / a queue ``finalize``),
from checkpoint replay (``ctx.restore`` — present on the recovering
PE, ``None`` elsewhere mid-crash), or transitively from those through
arithmetic, indexing, calls, and loop targets.

Two deliberate *sanitizers* keep the analysis useful on real programs:

* the results of ``allreduce(...)`` and ``bcast(...)`` are clean —
  they are rank-invariant by construction (every PE gets the same
  value), which is exactly how convergence loops (k-core, connected
  components) legitimately branch on data;
* function parameters are clean — SPMD programs receive the same
  configuration on every PE.  A parameter that genuinely varies by
  rank (the partition view) re-taints as soon as it is combined with
  ``ctx.rank``, which is how such views are obtained.

``ctx.num_pes`` is clean (same on every PE); ``ctx.rank`` is the root
source.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..rules import (
    _container_kind_of_value,
    _FunctionInfo,
    _walk_no_nested_functions,
)
from .callgraph import CallGraph, _callee_name

__all__ = [
    "function_taint",
    "expr_tainted",
    "mentions_rank",
    "check_unordered_destinations",
]

#: Method calls whose result is received data (rank-local by nature).
_SOURCE_ATTRS = frozenset({"recv", "try_recv", "restore", "pending", "finalize"})
#: Free functions whose result is received data.
_SOURCE_NAMES = frozenset({"drain"})
#: Collectives whose *result* is rank-invariant (same value on all PEs).
_SANITIZER_NAMES = frozenset({"allreduce", "bcast"})
#: ``ctx`` attributes that are identical on every PE.
_CLEAN_CTX_ATTRS = frozenset({"num_pes"})


def expr_tainted(expr: ast.AST, tainted: set[str]) -> bool:
    """Whether ``expr`` can evaluate to a rank-dependent value."""
    if isinstance(expr, ast.Name):
        return expr.id in tainted
    if isinstance(expr, ast.Attribute):
        if expr.attr == "rank":
            return True
        if expr.attr in _CLEAN_CTX_ATTRS:
            return False
        return expr_tainted(expr.value, tainted)
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name):
            if func.id in _SANITIZER_NAMES:
                return False
            if func.id in _SOURCE_NAMES:
                return True
        if isinstance(func, ast.Attribute):
            if func.attr in _SANITIZER_NAMES:
                return False
            if func.attr in _SOURCE_ATTRS:
                return True
            if expr_tainted(func.value, tainted):
                return True
        return any(
            expr_tainted(a, tainted) for a in expr.args
        ) or any(expr_tainted(kw.value, tainted) for kw in expr.keywords)
    if isinstance(expr, (ast.Constant, ast.Lambda)):
        return False
    return any(expr_tainted(child, tainted) for child in ast.iter_child_nodes(expr))


def _target_names(target: ast.AST) -> list[str]:
    names: list[str] = []
    for n in ast.walk(target):
        if isinstance(n, ast.Name):
            names.append(n.id)
    return names


def function_taint(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Fixpoint set of local names holding rank-dependent values."""
    tainted: set[str] = set()
    body = fn.body
    for _ in range(10):  # assignments form chains, not deep recursions
        before = len(tainted)
        for n in _walk_no_nested_functions(body):
            if isinstance(n, ast.Assign):
                if expr_tainted(n.value, tainted):
                    for t in n.targets:
                        tainted.update(_target_names(t))
            elif isinstance(n, (ast.AugAssign, ast.AnnAssign)):
                if n.value is not None and expr_tainted(n.value, tainted):
                    tainted.update(_target_names(n.target))
            elif isinstance(n, ast.NamedExpr):
                if expr_tainted(n.value, tainted):
                    tainted.add(n.target.id)
            elif isinstance(n, ast.For):
                if expr_tainted(n.iter, tainted):
                    tainted.update(_target_names(n.target))
            elif isinstance(n, (ast.With, ast.AsyncWith)):
                for item in n.items:
                    if item.optional_vars is not None and expr_tainted(
                        item.context_expr, tainted
                    ):
                        tainted.update(_target_names(item.optional_vars))
        if len(tainted) == before:
            break
    return tainted


def mentions_rank(expr: ast.AST, rank_aliases: set[str]) -> bool:
    """Lexically rank-dependent (what rule R2 already sees)."""
    for n in ast.walk(expr):
        if isinstance(n, ast.Attribute) and n.attr == "rank":
            return True
        if isinstance(n, ast.Name) and n.id in rank_aliases:
            return True
    return False


# -- R10: unordered iteration feeding message destinations -------------

_SEND_ATTRS = frozenset({"send", "post", "post_items"})


def _body_sends(body: list[ast.stmt]) -> bool:
    for n in _walk_no_nested_functions(body):
        if (
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr in _SEND_ATTRS
        ):
            return True
    return False


def _lexically_unordered(expr: ast.AST, info: _FunctionInfo) -> bool:
    """The shapes rule R3 already flags — R10 defers to it."""
    if _container_kind_of_value(expr) is not None:
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("list", "tuple", "reversed", "enumerate"):
            return bool(expr.args) and _lexically_unordered(expr.args[0], info)
        if isinstance(func, ast.Attribute) and func.attr in ("keys", "values", "items"):
            return True
    if isinstance(expr, ast.Name):
        return info.container_kinds.get(expr.id) is not None
    return False


def _resolved_unordered(
    expr: ast.AST,
    env: dict[str, ast.AST],
    cg: CallGraph,
    depth: int = 0,
    seen: frozenset[str] = frozenset(),
) -> str | None:
    """Trace ``expr`` through aliases/callees to a set/dict, if it leads
    there; returns a human-readable description of the chain's end."""
    if depth > 6:
        return None
    kind = _container_kind_of_value(expr)
    if kind is not None:
        return kind
    if isinstance(expr, ast.Name):
        if expr.id in seen or expr.id not in env:
            return None
        inner = _resolved_unordered(
            env[expr.id], env, cg, depth + 1, seen | {expr.id}
        )
        return inner
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("sorted",):
            return None  # explicitly ordered
        callee = _callee_name(expr)
        if callee is not None and cg.returns_unordered(callee):
            return f"set/dict returned by '{callee}()'"
    return None


def check_unordered_destinations(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    info: _FunctionInfo,
    cg: CallGraph,
    path: str,
) -> list[Finding]:
    """R10: send/post destinations drawn from unordered iteration that
    R3's single-hop lexical tracking cannot see."""
    findings: list[Finding] = []
    env: dict[str, ast.AST] = {}
    for n in _walk_no_nested_functions(fn.body):
        if isinstance(n, ast.Assign) and len(n.targets) == 1:
            t = n.targets[0]
            if isinstance(t, ast.Name):
                env[t.id] = n.value
    for n in _walk_no_nested_functions(fn.body):
        if not isinstance(n, ast.For) or not _body_sends(n.body):
            continue
        if _lexically_unordered(n.iter, info):
            continue  # R3 reports this one
        what = _resolved_unordered(n.iter, env, cg)
        if what is not None:
            findings.append(
                Finding(
                    path=path,
                    line=n.lineno,
                    col=n.col_offset + 1,
                    code="R10",
                    message=(
                        f"message destinations iterate a {what} — iteration "
                        f"order is a hash artifact, so message order differs "
                        f"across runs; iterate sorted(...) instead"
                    ),
                )
            )
    return findings
