"""Interprocedural dataflow analysis for SPMD programs (rules R8–R12).

Where rules R1–R7 (:mod:`repro.lint.rules`) check one line or one
lexical region at a time, this subpackage proves properties over *all
paths* of a whole program: per-function CFGs (:mod:`.cfg`), a
name-resolved call graph with fixpoint summaries (:mod:`.callgraph`),
rank-taint inference (:mod:`.taint`), collective-sequence divergence —
static deadlock detection (:mod:`.collectives`) — and charge/checkpoint
audits (:mod:`.charges`).  Architecture notes live in
``docs/STATIC_ANALYSIS.md``.
"""

from .analyzer import FLOW_CODES, analyze_modules
from .callgraph import CallGraph
from .cfg import CFG, build_cfg, sequences
from .taint import expr_tainted, function_taint

__all__ = [
    "FLOW_CODES",
    "analyze_modules",
    "CallGraph",
    "CFG",
    "build_cfg",
    "sequences",
    "expr_tainted",
    "function_taint",
]
