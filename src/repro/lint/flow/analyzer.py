"""Orchestration of the whole-program dataflow rules (R8–R12).

One :class:`~repro.lint.flow.callgraph.CallGraph` is built over every
module handed to :func:`analyze_modules` (the linted file set), then
each *SPMD* function — one that handles a ``PEContext`` (the same
scope test rules R4/R7 use) — is run through the per-function checks:

* collective-sequence divergence (R8/R9, ``collectives.py``),
* unordered send destinations the lexical rule misses (R10,
  ``taint.py``),
* charge coverage (R11) and checkpoint consistency (R12,
  ``charges.py``).

Functions outside SPMD scope (graph builders, analysis tooling, the
machine internals themselves) are exempt: the contract only binds code
that runs *on* the machine.

Findings are deduplicated on their full identity — the call graph is
resolved by simple name, so one defect can be rediscovered along
several call paths; the user should see it once.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import FLOW_CODES, Finding
from .callgraph import CallGraph
from .charges import check_charge_coverage, check_checkpoint_consistency
from .collectives import check_collective_divergence
from .taint import check_unordered_destinations

__all__ = ["analyze_modules", "FLOW_CODES"]


def analyze_modules(modules: Iterable[tuple[str, ast.Module]]) -> list[Finding]:
    """Run the interprocedural rules over parsed modules.

    ``modules`` is a list of ``(path, tree)`` pairs; the call graph and
    summaries span all of them, so cross-file calls resolve as long as
    caller and callee are linted together (the normal ``src`` run).
    Returns deduplicated findings sorted by location.
    """
    modules = list(modules)
    cg = CallGraph(modules)
    findings: set[Finding] = set()
    for decl in cg.decls:
        if not decl.info.is_spmd:
            continue
        fn = decl.node
        findings.update(check_collective_divergence(fn, decl.info, cg, decl.path))
        findings.update(check_unordered_destinations(fn, decl.info, cg, decl.path))
        findings.update(check_charge_coverage(decl, cg))
        findings.update(check_checkpoint_consistency(decl, cg))
    return sorted(findings)
