"""Per-function control-flow graphs for the dataflow rules (R8–R12).

The CFG is deliberately small: basic blocks hold *statement markers*
(for compound statements only the header expression — an ``if`` test, a
``for`` iterable — is evaluated "at" the marker; the controlled bodies
live in successor blocks).  ``with`` bodies are inlined since a context
manager does not branch.  ``try`` is modelled coarsely: the handler can
be entered from the block that starts the ``try``.

On top of the graph, :func:`sequences` enumerates the *collective
sequence abstraction*: the set of per-path symbol tuples produced by a
caller-supplied extractor.  Loops are bounded (every edge may be taken
at most twice per path), so a loop body contributes its zero- and
one-iteration shapes — enough to distinguish "all ranks enter the same
collectives" from "some path skips or repeats one".  Enumeration is
capped; on overflow a ``...`` sentinel sequence marks the truncation so
callers never mistake a truncated set for a proven-equal one.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable

__all__ = ["Block", "CFG", "build_cfg", "header_exprs", "sequences", "OVERFLOW"]

#: Sentinel sequence appended when path enumeration hits its cap.
OVERFLOW = ("...",)


class Block:
    """One basic block: statement markers plus successor block ids."""

    __slots__ = ("id", "stmts", "succs")

    def __init__(self, block_id: int):
        self.id = block_id
        self.stmts: list[ast.stmt] = []
        self.succs: list[int] = []


class CFG:
    """Entry/exit-delimited basic-block graph of one statement list.

    ``branches`` maps each ``if`` statement to the pair of blocks where
    its then/else paths continue (the else entry is the join block when
    there is no ``orelse``), so rules can compare the *continuations*
    of the two arms all the way to function exit — which is what makes
    balanced early-return diamonds compare equal.
    """

    __slots__ = ("blocks", "entry", "exit", "branches")

    def __init__(
        self,
        blocks: list[Block],
        entry: int,
        exit_id: int,
        branches: dict[ast.stmt, tuple[int, int]],
    ):
        self.blocks = blocks
        self.entry = entry
        self.exit = exit_id
        self.branches = branches


def header_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """The expressions evaluated *at* a block's statement marker.

    For compound statements this is only the header (test/iterable/
    context expressions); their bodies are represented by successor
    blocks, so returning them here would double-count.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, ast.For):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.Return, ast.Expr)):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    if isinstance(stmt, (ast.Try, ast.Match)):
        return []
    return [stmt]


class _Builder:
    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.branches: dict[ast.stmt, tuple[int, int]] = {}
        self.exit = self.new_block().id

    def new_block(self) -> Block:
        b = Block(len(self.blocks))
        self.blocks.append(b)
        return b

    def edge(self, src: int | None, dst: int) -> None:
        if src is not None and dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)

    def build(
        self,
        stmts: Iterable[ast.stmt],
        cur: int | None,
        loops: list[tuple[int, int]],
    ) -> int | None:
        """Wire ``stmts`` starting at block ``cur``; returns the fall-through
        block (or ``None`` when control cannot reach past the list)."""
        for stmt in stmts:
            if cur is None:
                return None
            if isinstance(stmt, ast.If):
                self.blocks[cur].stmts.append(stmt)
                then_b = self.new_block()
                self.edge(cur, then_b.id)
                then_end = self.build(stmt.body, then_b.id, loops)
                if stmt.orelse:
                    else_b = self.new_block()
                    self.edge(cur, else_b.id)
                    else_end = self.build(stmt.orelse, else_b.id, loops)
                else:
                    else_end = cur
                join = self.new_block()
                self.edge(then_end, join.id)
                self.edge(else_end, join.id)
                self.branches[stmt] = (
                    then_b.id,
                    else_b.id if stmt.orelse else join.id,
                )
                cur = join.id if (then_end is not None or else_end is not None) else None
            elif isinstance(stmt, (ast.While, ast.For)):
                header = self.new_block()
                self.edge(cur, header.id)
                header.stmts.append(stmt)
                after = self.new_block()
                body_b = self.new_block()
                self.edge(header.id, body_b.id)
                infinite = isinstance(stmt, ast.While) and (
                    isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
                )
                if not infinite:
                    self.edge(header.id, after.id)
                body_end = self.build(stmt.body, body_b.id, loops + [(header.id, after.id)])
                self.edge(body_end, header.id)
                cur = self.build(stmt.orelse, after.id, loops)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self.blocks[cur].stmts.append(stmt)
                cur = self.build(stmt.body, cur, loops)
            elif isinstance(stmt, ast.Try):
                body_b = self.new_block()
                self.edge(cur, body_b.id)
                join = self.new_block()
                body_end = self.build(list(stmt.body) + list(stmt.orelse), body_b.id, loops)
                self.edge(body_end, join.id)
                for handler in stmt.handlers:
                    hb = self.new_block()
                    self.edge(cur, hb.id)
                    self.edge(self.build(handler.body, hb.id, loops), join.id)
                cur = self.build(stmt.finalbody, join.id, loops)
            elif isinstance(stmt, ast.Return):
                self.blocks[cur].stmts.append(stmt)
                self.edge(cur, self.exit)
                cur = None
            elif isinstance(stmt, ast.Raise):
                # Dead end on purpose: a raising path aborts the run
                # (the machine surfaces the error), so it does not
                # participate in the collective-order comparison.
                self.blocks[cur].stmts.append(stmt)
                cur = None
            elif isinstance(stmt, ast.Break):
                self.edge(cur, loops[-1][1] if loops else self.exit)
                cur = None
            elif isinstance(stmt, ast.Continue):
                self.edge(cur, loops[-1][0] if loops else self.exit)
                cur = None
            else:
                self.blocks[cur].stmts.append(stmt)
        return cur


def build_cfg(stmts: Iterable[ast.stmt]) -> CFG:
    """Build the CFG of one statement list (a function body or branch arm)."""
    b = _Builder()
    entry = b.new_block()
    end = b.build(list(stmts), entry.id, [])
    b.edge(end, b.exit)
    return CFG(b.blocks, entry.id, b.exit, b.branches)


def sequences(
    cfg: CFG,
    symbols_of: Callable[[ast.stmt], tuple[str, ...]],
    *,
    start: int | None = None,
    max_paths: int = 128,
    max_len: int = 32,
) -> frozenset[tuple[str, ...]]:
    """All bounded ``start``→exit symbol sequences of ``cfg``.

    ``symbols_of`` maps one statement marker to the (possibly empty)
    tuple of symbols it emits — for the collective-order rules, the
    collectives entered while evaluating that statement's header.
    ``start`` defaults to the entry block; rules pass a branch target
    from :attr:`CFG.branches` to enumerate one arm's continuation.
    Raising paths are dropped (they abort, they do not reorder).
    """
    out: set[tuple[str, ...]] = set()
    # Each stack frame: (block id, symbols so far, edge-use counts).
    stack: list[tuple[int, tuple[str, ...], dict[tuple[int, int], int]]] = [
        (cfg.entry if start is None else start, (), {})
    ]
    while stack:
        if len(out) >= max_paths:
            out.add(OVERFLOW)
            break
        block_id, seq, used = stack.pop()
        block = cfg.blocks[block_id]
        for stmt in block.stmts:
            syms = symbols_of(stmt)
            if syms:
                seq = seq + syms
        if len(seq) > max_len:
            seq = seq[:max_len] + OVERFLOW
        if block_id == cfg.exit:
            out.add(seq)
            continue
        if not block.succs:
            continue  # raising / aborting path — not comparable
        for succ in block.succs:
            edge = (block_id, succ)
            count = used.get(edge, 0)
            if count >= 2:
                continue  # loop bound: each edge at most twice per path
            nxt = dict(used)
            nxt[edge] = count + 1
            stack.append((succ, seq, nxt))
    return frozenset(out)
