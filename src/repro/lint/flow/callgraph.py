"""Whole-program function collection and interprocedural summaries.

SPMD programs on the simulated machine are plain Python, so the call
graph is resolved *by simple name*: a call ``f(...)`` or ``obj.f(...)``
reaches every analyzed function named ``f``.  Where several functions
share a name their summaries are merged conservatively (any-of), which
over-approximates reachability — the safe direction for the deadlock
and charge-coverage rules.

Three summaries are computed to a fixpoint over the call graph:

``has_collective``
    the function (transitively) enters a collective from
    :mod:`repro.net.comm` or a queue/router ``finalize``;
``charges``
    the function (transitively) feeds the alpha-beta cost model —
    ``ctx.charge`` / ``charge_time``, a message-bearing primitive
    (``send`` / ``post*`` / ``flush`` / ``reliable_send``), or a
    collective (which sends internally);
``returns_unordered``
    the function returns a ``set``/``dict`` (its iteration order is a
    hash artifact — rule R10 material when it feeds send destinations).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..rules import (
    COLLECTIVE_FUNCTIONS,
    _collective_name,
    _container_kind_of_value,
    _FunctionInfo,
    _walk_no_nested_functions,
)

__all__ = ["FunctionDecl", "CallGraph"]

#: Attribute calls that feed costs into the model (directly or by
#: sending): the queues' ``post*``/``flush`` charge wire words when they
#: flush, and every ``ctx.send`` is charged by the machine itself.
_CHARGE_ATTRS = frozenset(
    {"charge", "charge_time", "send", "post", "post_many", "post_items", "flush"}
)
_CHARGE_NAMES = frozenset({"reliable_send"})


def _callee_name(call: ast.Call) -> str | None:
    """The simple name a call resolves through, if any."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class FunctionDecl:
    """One analyzed function plus its local (non-transitive) facts."""

    __slots__ = (
        "path",
        "qualname",
        "name",
        "node",
        "info",
        "calls",
        "direct_collective",
        "direct_charge",
        "direct_unordered_return",
        "return_call_names",
    )

    def __init__(self, path: str, qualname: str, node: ast.FunctionDef | ast.AsyncFunctionDef):
        self.path = path
        self.qualname = qualname
        self.name = node.name
        self.node = node
        self.info = _FunctionInfo(node)
        self.calls: set[str] = set()
        self.direct_collective = False
        self.direct_charge = False
        self.return_call_names: set[str] = set()
        for n in _walk_no_nested_functions(node.body):
            if isinstance(n, ast.Call):
                callee = _callee_name(n)
                if callee is not None:
                    self.calls.add(callee)
                if _collective_name(n) is not None:
                    self.direct_collective = True
                    self.direct_charge = True
                func = n.func
                if isinstance(func, ast.Attribute) and func.attr in _CHARGE_ATTRS:
                    self.direct_charge = True
                if isinstance(func, ast.Name) and func.id in _CHARGE_NAMES:
                    self.direct_charge = True
        self.direct_unordered_return = False
        for n in _walk_no_nested_functions(node.body):
            if isinstance(n, ast.Return) and n.value is not None:
                value = n.value
                if _container_kind_of_value(value) is not None:
                    self.direct_unordered_return = True
                elif (
                    isinstance(value, ast.Name)
                    and self.info.container_kinds.get(value.id) is not None
                ):
                    self.direct_unordered_return = True
                elif isinstance(value, ast.Call):
                    callee = _callee_name(value)
                    if callee is not None:
                        self.return_call_names.add(callee)


def _collect(path: str, tree: ast.Module) -> list[FunctionDecl]:
    decls: list[FunctionDecl] = []

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}" if prefix else child.name
                decls.append(FunctionDecl(path, qualname, child))
                walk(child, qualname + ".")
            elif isinstance(child, ast.ClassDef):
                walk(child, (prefix + child.name if prefix else child.name) + ".")
            else:
                walk(child, prefix)

    walk(tree, "")
    return decls


class CallGraph:
    """All functions of the analyzed module set, with fixpoint summaries."""

    def __init__(self, modules: Iterable[tuple[str, ast.Module]]):
        self.decls: list[FunctionDecl] = []
        for path, tree in modules:
            self.decls.extend(_collect(path, tree))
        self.by_name: dict[str, list[FunctionDecl]] = {}
        for decl in self.decls:
            self.by_name.setdefault(decl.name, []).append(decl)
        self._has_collective = self._fixpoint(
            seed=lambda d: d.direct_collective, via=lambda d: d.calls
        )
        # The comm-module collectives count even when their definitions
        # are outside the analyzed set (e.g. a lone snippet).
        for name in COLLECTIVE_FUNCTIONS:
            self._has_collective[name] = True
        self._has_collective["finalize"] = True
        self._charges = self._fixpoint(
            seed=lambda d: d.direct_charge, via=lambda d: d.calls
        )
        self._returns_unordered = self._fixpoint(
            seed=lambda d: d.direct_unordered_return, via=lambda d: d.return_call_names
        )

    def _fixpoint(self, *, seed, via) -> dict[str, bool]:
        flags = {name: any(seed(d) for d in decls) for name, decls in self.by_name.items()}
        changed = True
        while changed:
            changed = False
            for name, decls in self.by_name.items():
                if flags[name]:
                    continue
                if any(flags.get(c, False) for d in decls for c in via(d)):
                    flags[name] = True
                    changed = True
        return flags

    # -- summary queries (by simple callee name) -----------------------
    def has_collective(self, name: str) -> bool:
        """Calling ``name`` can enter a collective (transitively)."""
        return self._has_collective.get(name, False)

    def charges(self, name: str) -> bool:
        """Calling ``name`` feeds the cost model (transitively)."""
        return self._charges.get(name, False)

    def returns_unordered(self, name: str) -> bool:
        """Calling ``name`` returns a set/dict (transitively)."""
        return self._returns_unordered.get(name, False)
