"""Static deadlock detection: divergent collective sequences (R8, R9).

Every PE must enter the same collectives in the same order.  Rule R2
polices the *lexical* version of this (a collective textually inside a
``rank``-mentioning region); these rules prove the property over
control flow and the call graph:

R8 — the collective *sequence* can structurally diverge across ranks:

* an ``if`` under a rank-divergent guard whose two arms enter
  different collective sequences **through callees** (R2 cannot see
  into a callee);
* a loop whose trip count can differ across ranks (rank-tainted test,
  or a ``break``/``return`` under a rank-divergent guard inside it)
  while the loop body enters collectives;
* an early ``return`` under a rank-divergent guard with collectives
  later in the function — the returning PE skips them.

R9 — the same arm-divergence but reached purely through *dataflow*
taint: the guard never mentions ``rank`` lexically (so R2 is blind),
yet its condition is derived from ``ctx.rank``, received messages, or
checkpoint replay, and the arms' *direct* collective sequences differ.

Arm comparison uses the CFG's bounded collective-sequence abstraction
(:func:`..flow.cfg.sequences`), so *balanced* branches — both arms
entering the same collectives — are correctly accepted, which plain
region-marking cannot do.  Divergence that is both lexical and direct
is left to R2 (one finding per bug).  ``ctx.recv`` is deliberately not
in the collective alphabet: point-to-point receives under rank guards
are how the collectives themselves are implemented.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..rules import _collective_name, _walk_no_nested_functions
from .callgraph import CallGraph, _callee_name
from .cfg import build_cfg, header_exprs, sequences
from .taint import expr_tainted, function_taint, mentions_rank

__all__ = ["check_collective_divergence"]


class _Checker:
    def __init__(self, fn, info, cg: CallGraph, path: str):
        self.fn = fn
        self.cg = cg
        self.path = path
        self.tainted = function_taint(fn)
        self.rank_aliases = info.rank_aliases
        self.findings: list[Finding] = []
        self.cfg = build_cfg(fn.body)

    # -- the collective alphabet ---------------------------------------
    def _symbol(self, call: ast.Call) -> str | None:
        name = _collective_name(call)
        if name is not None:
            return name
        callee = _callee_name(call)
        if callee is not None and self.cg.has_collective(callee):
            return f"{callee}()"
        return None

    def _stmt_symbols(self, stmt: ast.stmt) -> tuple[str, ...]:
        out: list[str] = []
        for expr in header_exprs(stmt):
            for n in _walk_no_nested_functions([expr]):
                if isinstance(n, ast.Call):
                    sym = self._symbol(n)
                    if sym is not None:
                        out.append(sym)
        return tuple(out)

    def _subtree_symbols(self, stmts: list[ast.stmt]) -> set[str]:
        return {
            sym
            for n in _walk_no_nested_functions(stmts)
            if isinstance(n, ast.Call) and (sym := self._symbol(n)) is not None
        }

    # -- guard classification ------------------------------------------
    def _guard_kind(self, test: ast.AST) -> str | None:
        if mentions_rank(test, self.rank_aliases):
            return "lexical"
        if expr_tainted(test, self.tainted):
            return "taint"
        return None

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=node.lineno,
                col=node.col_offset + 1,
                code=code,
                message=message,
            )
        )

    # -- traversal ------------------------------------------------------
    def run(self) -> list[Finding]:
        self._walk(self.fn.body, guards=(), loops=[])
        return self.findings

    def _walk(self, stmts, guards, loops) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                kind = self._guard_kind(stmt.test)
                if kind is not None:
                    self._check_arms(stmt, kind)
                inner = guards + ((kind, stmt.test.lineno),) if kind else guards
                self._walk(stmt.body, inner, loops)
                self._walk(stmt.orelse, inner, loops)
            elif isinstance(stmt, (ast.While, ast.For)):
                test = stmt.test if isinstance(stmt, ast.While) else stmt.iter
                kind = self._guard_kind(test)
                record = {"node": stmt, "divergent": kind, "entry_depth": len(guards)}
                inner = guards + ((kind, test.lineno),) if kind else guards
                self._walk(stmt.body, inner, loops + [record])
                self._walk(stmt.orelse, guards, loops)
                if record["divergent"] is not None:
                    self._check_loop(stmt, record["divergent"])
            elif isinstance(stmt, (ast.Break, ast.Return)):
                # A rank-divergent exit makes enclosing loops' trip
                # counts rank-dependent.
                affected = loops[-1:] if isinstance(stmt, ast.Break) else loops
                for record in affected:
                    divergent = next(
                        (
                            k
                            for k, _ in guards[record["entry_depth"]:]
                            if k is not None
                        ),
                        None,
                    )
                    if divergent is not None and record["divergent"] is None:
                        record["divergent"] = divergent
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._walk(stmt.body, guards, loops)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, guards, loops)
                for handler in stmt.handlers:
                    self._walk(handler.body, guards, loops)
                self._walk(stmt.orelse, guards, loops)
                self._walk(stmt.finalbody, guards, loops)
            elif isinstance(stmt, ast.Match):
                for case in stmt.cases:
                    self._walk(case.body, guards, loops)

    # -- the two divergence shapes -------------------------------------
    def _check_arms(self, stmt: ast.If, kind: str) -> None:
        """Compare the *continuations* of the two arms to function exit.

        Suffix comparison (rather than comparing the arm bodies alone)
        is what accepts balanced diamonds: an arm that enters a
        collective and then returns is equivalent to falling through to
        the same collective later.
        """
        if stmt not in self.cfg.branches:
            return
        then_b, else_b = self.cfg.branches[stmt]
        then_seqs = sequences(self.cfg, self._stmt_symbols, start=then_b)
        else_seqs = sequences(self.cfg, self._stmt_symbols, start=else_b)
        if any("..." in seq for seqs in (then_seqs, else_seqs) for seq in seqs):
            return  # enumeration truncated — cannot prove divergence
        if not then_seqs or not else_seqs:
            # Every path through one arm raises.  An aborting PE takes
            # the whole run down loudly; it cannot *silently* skip
            # collectives, so there is no deadlock to report.
            return
        if then_seqs == else_seqs:
            return
        # Attribute the divergence to the symbols lexically in the arms;
        # when the arms hold none, the divergence is an early exit that
        # skips the continuation's collectives.
        arm_syms = self._subtree_symbols(list(stmt.body) + list(stmt.orelse))
        body_local = sequences(build_cfg(stmt.body), self._stmt_symbols)
        else_local = sequences(build_cfg(stmt.orelse), self._stmt_symbols)
        if arm_syms and body_local != else_local:
            has_callee = any(s.endswith("()") for s in arm_syms)
            if kind == "lexical" and not has_callee:
                return  # R2 reports each lexically-guarded collective
            if has_callee:
                via = sorted(s for s in arm_syms if s.endswith("()"))
                self._emit(
                    stmt,
                    "R8",
                    f"collective sequence diverges across the arms of this "
                    f"rank-dependent branch: {', '.join(via)} enter "
                    f"collectives on one path but not the other — PEs "
                    f"taking different arms deadlock",
                )
            else:
                self._emit(
                    stmt,
                    "R9",
                    f"branch condition is rank-tainted (derived from "
                    f"ctx.rank, received data, or checkpoint replay) and "
                    f"its arms enter different collective sequences "
                    f"({', '.join(sorted(arm_syms))}) — PEs diverge "
                    f"without any lexical mention of rank",
                )
        else:
            skipped = sorted(
                {s for seq in then_seqs ^ else_seqs for s in seq}
            )
            self._emit(
                stmt,
                "R8",
                f"rank-dependent early exit: one arm leaves the function "
                f"while the other continues into collectives "
                f"({', '.join(skipped)}) — returning PEs never enter them "
                f"while the rest block",
            )

    def _check_loop(self, stmt, kind: str) -> None:
        symbols = self._subtree_symbols(stmt.body)
        if not symbols:
            return
        if kind == "lexical" and not any(s.endswith("()") for s in symbols):
            # The loop condition itself mentions rank and the
            # collectives are lexically inside — R2's case.
            return
        self._emit(
            stmt,
            "R8",
            f"loop trip count can differ across ranks while the body enters "
            f"collectives ({', '.join(sorted(symbols))}) — PEs that iterate "
            f"more times enter extra collectives and deadlock",
        )

def check_collective_divergence(fn, info, cg: CallGraph, path: str) -> list[Finding]:
    """R8/R9 over one SPMD function."""
    return _Checker(fn, info, cg, path).run()
