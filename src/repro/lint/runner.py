"""File walking, ``# noqa`` suppression, and the linting entry points.

Two analysis layers run here: the per-module lexical rules R1–R7
(:func:`repro.lint.rules.check_module`) and the whole-program dataflow
rules R8–R12 (:func:`repro.lint.flow.analyze_modules`), which see the
entire linted file set at once so cross-file calls resolve.

Suppression semantics differ by layer.  A lexical finding is silenced
by ``# noqa`` or ``# noqa: R<n>`` on its line, as before.  A *flow*
finding demands a justification: ``# noqa: R8 -- <why this is safe>``
— a bare ``# noqa`` (or a coded one without the ``-- reason`` tail)
does not silence R8–R12, because every such suppression is a claim
about global program behaviour that reviewers must be able to audit.

Unreadable and unparseable files are reported as R0 findings rather
than raised, so one broken file cannot abort a whole-tree lint, and
identical findings reached along several call-graph paths are
deduplicated before reporting.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable

from .findings import FLOW_CODES, Finding
from .rules import check_module

__all__ = ["lint_source", "lint_file", "lint_paths"]

_NOQA = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*))?"
    r"(?:\s*--\s*(?P<why>\S.*))?",
    re.IGNORECASE,
)

#: Directories never descended into when expanding path arguments.
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", ".hypothesis", "build", "dist"}


def _suppressed(finding: Finding, lines: list[str]) -> bool:
    """True if the finding's source line carries a matching ``# noqa``.

    Flow findings (R8–R12) additionally require the ``-- reason`` tail:
    the suppression must say *why* the global property still holds.
    """
    if not (1 <= finding.line <= len(lines)):
        return False
    m = _NOQA.search(lines[finding.line - 1])
    if m is None:
        return False
    codes = m.group("codes")
    if codes is None:
        # Bare "# noqa" silences the lexical rules only.
        return finding.code not in FLOW_CODES
    if finding.code not in {c.strip().upper() for c in codes.split(",")}:
        return False
    if finding.code in FLOW_CODES:
        return m.group("why") is not None
    return True


def _parse(source: str, path: str) -> tuple[ast.Module | None, Finding | None]:
    try:
        return ast.parse(source, filename=path), None
    except SyntaxError as exc:
        return None, Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            code="R0",
            message=f"syntax error: {exc.msg}",
        )


def _finish(
    findings: Iterable[Finding], lines_of: dict[str, list[str]]
) -> list[Finding]:
    """Deduplicate, sort, and apply inline suppression."""
    return [
        f
        for f in sorted(set(findings))
        if not _suppressed(f, lines_of.get(f.path, []))
    ]


def lint_source(source: str, path: str = "<string>", *, flow: bool = True) -> list[Finding]:
    """Lint Python source text; returns findings not silenced by noqa."""
    tree, err = _parse(source, path)
    if tree is None:
        return [err]
    findings = list(check_module(tree, path))
    if flow:
        from .flow import analyze_modules

        findings.extend(analyze_modules([(path, tree)]))
    return _finish(findings, {path: source.splitlines()})


def lint_file(path: str | Path, *, flow: bool = True) -> list[Finding]:
    """Lint one file; I/O and parse failures come back as R0 findings."""
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(path=str(p), line=1, col=1, code="R0", message=f"cannot read file: {exc}")
        ]
    return lint_source(source, str(p), flow=flow)


def _expand(paths: Iterable[str | Path]) -> list[Path]:
    out: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if not (_SKIP_DIRS & set(f.relative_to(p).parts))
            )
        else:
            out.append(p)
    return out


def lint_paths(paths: Iterable[str | Path], *, flow: bool = True) -> list[Finding]:
    """Lint files and directories (recursively); findings sorted by location.

    The dataflow rules see every successfully parsed module of the run
    as one program, so a collective reached through a cross-file callee
    is still attributed to its caller.
    """
    findings: list[Finding] = []
    modules: list[tuple[str, ast.Module]] = []
    lines_of: dict[str, list[str]] = {}
    for f in _expand(paths):
        try:
            source = f.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(path=str(f), line=1, col=1, code="R0", message=f"cannot read file: {exc}")
            )
            continue
        tree, err = _parse(source, str(f))
        if tree is None:
            findings.append(err)
            continue
        lines_of[str(f)] = source.splitlines()
        modules.append((str(f), tree))
        findings.extend(check_module(tree, str(f)))
    if flow and modules:
        from .flow import analyze_modules

        findings.extend(analyze_modules(modules))
    return _finish(findings, lines_of)
