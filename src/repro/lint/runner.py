"""File walking, ``# noqa`` suppression, and the linting entry points."""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable

from .findings import Finding
from .rules import check_module

__all__ = ["lint_source", "lint_file", "lint_paths"]

_NOQA = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9,\s]+))?", re.IGNORECASE)

#: Directories never descended into when expanding path arguments.
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", ".hypothesis", "build", "dist"}


def _suppressed(finding: Finding, lines: list[str]) -> bool:
    """True if the finding's source line carries a matching ``# noqa``."""
    if not (1 <= finding.line <= len(lines)):
        return False
    m = _NOQA.search(lines[finding.line - 1])
    if m is None:
        return False
    codes = m.group("codes")
    if codes is None:
        return True  # bare "# noqa" silences everything on the line
    return finding.code in {c.strip().upper() for c in codes.split(",")}


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint Python source text; returns findings not silenced by noqa."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="R0",
                message=f"syntax error: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    return [f for f in check_module(tree, path) if not _suppressed(f, lines)]


def lint_file(path: str | Path) -> list[Finding]:
    """Lint one file."""
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def _expand(paths: Iterable[str | Path]) -> list[Path]:
    out: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if not (_SKIP_DIRS & set(f.relative_to(p).parts))
            )
        else:
            out.append(p)
    return out


def lint_paths(paths: Iterable[str | Path]) -> list[Finding]:
    """Lint files and directories (recursively); findings sorted by location."""
    findings: list[Finding] = []
    for f in _expand(paths):
        findings.extend(lint_file(f))
    return sorted(findings)
