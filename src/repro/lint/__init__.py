"""Static SPMD protocol linter for programs on the simulated machine.

The machine's programming contract — collectives driven with ``yield
from``, identical collective order on every PE, deterministic message
order, explicit message costs, vectorized message hot paths — is
unchecked by Python itself; this package enforces it with AST analysis:
the per-module lexical rules R1–R7 plus the whole-program dataflow
rules R8–R12 (static deadlock, rank taint, charge coverage, checkpoint
consistency — see ``docs/STATIC_ANALYSIS.md``).  All rules are
catalogued in :data:`~repro.lint.findings.RULES` and documented with
examples in ``docs/SPMD_CONTRACT.md``.

Run it as ``python -m repro.lint src`` or ``repro-tc lint``; its runtime
sibling is ``Machine(..., protocol_check=True)``.
"""

from .findings import FLOW_CODES, Finding, RULES
from .runner import lint_file, lint_paths, lint_source

__all__ = ["Finding", "FLOW_CODES", "RULES", "lint_file", "lint_paths", "lint_source"]
