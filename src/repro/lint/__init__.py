"""Static SPMD protocol linter for programs on the simulated machine.

The machine's programming contract — collectives driven with ``yield
from``, identical collective order on every PE, deterministic message
order, explicit message costs, vectorized message hot paths — is
unchecked by Python itself; this
package enforces it with AST analysis (rules R1–R7, catalogued in
:data:`~repro.lint.findings.RULES` and documented with examples in
``docs/SPMD_CONTRACT.md``).

Run it as ``python -m repro.lint src`` or ``repro-tc lint``; its runtime
sibling is ``Machine(..., protocol_check=True)``.
"""

from .findings import Finding, RULES
from .runner import lint_file, lint_paths, lint_source

__all__ = ["Finding", "RULES", "lint_file", "lint_paths", "lint_source"]
