"""AST rules enforcing the SPMD protocol contract (R1–R7, R13, R14).

The machine in :mod:`repro.net.machine` runs SPMD programs written as
generators; its correctness contract (``docs/SPMD_CONTRACT.md``) cannot
be expressed in the type system, so these rules check it syntactically:

R1
    A collective from :mod:`repro.net.comm` (or ``ctx.recv``, or a
    queue/router ``finalize``) is a *generator function*: calling it
    builds a generator, and only ``yield from`` drives it.  A call whose
    value is not consumed by ``yield from`` does nothing — no messages,
    no barrier, no error — which is the nastiest bug this architecture
    admits.
R2
    All PEs must enter the same collectives in the same order.  A
    collective lexically inside an ``if``/``while`` whose condition
    depends on the PE rank (or a ``for`` whose iterable does) is the
    canonical way to break that.
R3
    The machine guarantees deterministic runs.  Iterating a ``set`` (or
    a dict in hash-keyed idioms ported from C++) while sending messages
    makes the message order an artifact of hashing; iterate
    ``sorted(...)`` instead.
R4
    Cost-model and determinism hygiene inside SPMD code: every
    ``ctx.send`` must carry an explicit ``words`` cost, and SPMD code
    must not consult wall clocks or unseeded random generators.
R5
    A program decorated ``@fault_tolerant`` promises to survive the
    :mod:`repro.faults` fault model, which requires every hand-written
    point-to-point send to go through
    :func:`repro.net.reliable.reliable_send` (the aggregation queues
    and collectives already ride the machine's transport).  A direct
    ``ctx.send`` in such a program bypasses the runtime guard.
R6
    ``ctx.span(...)`` / ``ctx.phase(...)`` open a timed region that the
    observability layer (:mod:`repro.obs`) attributes and merges across
    PEs.  Two things go wrong syntactically: calling it outside a
    ``with`` statement builds the context manager and never enters it
    (no span is recorded), and computing the label from rank-dependent
    state gives every PE a different span name, which breaks cross-PE
    merging and the phase profiler's buckets.  R6 therefore requires
    the call to be the context expression of a ``with`` item and its
    label to be a string literal.
R13
    Simulated time and engine state are owned by the machine: SPMD
    program code must go through the :class:`~repro.net.machine.PEContext`
    API (``ctx.charge`` / ``ctx.charge_time`` / ``ctx.send`` / spans)
    and never mutate time-keyed engine state directly.  Flagged are
    assignments (plain or augmented) in SPMD scope whose target is (a)
    a ``ctx`` internal — anything reached through ``ctx.metrics`` or a
    ``ctx._private`` attribute, e.g. ``ctx.metrics.clock += 5`` or
    ``ctx._inbox[tag] = ...`` — or (b) a time-keyed scheduler
    attribute (``clock``, ``send_time``, ``busy_until``) of any object,
    e.g. ``msg.send_time = 0.0``.  Such writes desynchronize the event
    engine's heap ordering from the per-PE clocks (a PE's pending
    resume event was scheduled at the *old* clock), so the run stops
    being a pure function of its inputs.
R14
    Localized recovery (``Machine(recovery="localized")``) restores a
    crashed rank from its *partner's* checkpoint replica, so it only
    works with a partner-replication-capable store and with restored
    state that still matches what the survivors replayed against.  Two
    shapes break this: (a) constructing
    ``Machine(..., recovery="localized",
    checkpoint_store=CheckpointStore(...))`` — a plain store has no
    replica to ship (the machine also rejects it at runtime; the rule
    catches it before any run); (b) inside a ``@fault_tolerant``
    program, mutating a name bound from ``ctx.restore(...)`` (an
    ``.append``/``.update``/item write) with no ``ctx.checkpoint``
    afterwards — after an in-place respawn the partner replica would
    resurrect the *pre-mutation* state while survivors replay messages
    computed from the mutated one.
R7
    The message hot path must stay vectorized: unpacking numpy arrays
    element-wise (``.tolist()``, ``zip(a.tolist(), ...)``,
    ``range(len(a))``, ``range(a.size)``) just to ``post`` one
    :class:`~repro.net.frames.Record` per element rebuilds in Python
    what ``post_many`` does in one packed
    :class:`~repro.net.frames.RecordFrame` call — same contents, same
    words charge, a fraction of the interpreter overhead.  Only plain
    ``Record`` payloads are flagged: opaque per-destination objects
    (e.g. ``AmqRecord`` Bloom filters) have no frameable array batch
    and legitimately post one at a time.

The rules are heuristic by design (no type inference); suppress a
deliberate violation with ``# noqa: R<n>`` on the offending line.
"""

from __future__ import annotations

import ast

from .findings import Finding

__all__ = ["check_module"]

#: Generator-function collectives of :mod:`repro.net.comm`.
COLLECTIVE_FUNCTIONS = frozenset(
    {
        "barrier",
        "reduce_to_root",
        "bcast",
        "allreduce",
        "alltoallv_dense",
        "sparse_alltoall",
    }
)

#: Generator methods that are collective: ``BufferedMessageQueue.finalize``
#: and ``GridRouter.finalize`` (both must be entered by every PE).
COLLECTIVE_METHODS = frozenset({"finalize"})

#: ``time`` / ``datetime`` attributes that read the wall clock.
WALL_CLOCK = {
    "time": {"time", "perf_counter", "perf_counter_ns", "monotonic", "process_time"},
    "datetime": {"now", "utcnow", "today"},
}

#: ``random`` module functions drawing from the (unseeded) global state.
UNSEEDED_RANDOM = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "betavariate",
        "expovariate",
    }
)

#: ``np.random`` legacy functions using the global ``RandomState``.
NP_GLOBAL_RANDOM = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "seed",
    }
)


#: Attributes that key the event engine's time ordering (R13): writing
#: them from program code desynchronizes the scheduler's heap from the
#: simulated clocks.
TIME_KEYED_ATTRS = frozenset({"clock", "send_time", "busy_until"})

#: Container methods that mutate their receiver in place (R14b).
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "sort",
        "reverse",
    }
)


def _is_ctx_expr(node: ast.AST) -> bool:
    """``ctx`` or ``<anything>.ctx`` — the conventional PEContext handle."""
    if isinstance(node, ast.Name):
        return node.id == "ctx"
    return isinstance(node, ast.Attribute) and node.attr == "ctx"


def _collective_name(call: ast.Call) -> str | None:
    """The collective's name if ``call`` invokes one, else ``None``."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in COLLECTIVE_FUNCTIONS:
        return func.id
    if isinstance(func, ast.Attribute):
        if func.attr in COLLECTIVE_FUNCTIONS:
            return func.attr
        if func.attr in COLLECTIVE_METHODS:
            return func.attr
    return None


def _is_ctx_recv(call: ast.Call) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "recv"
        and _is_ctx_expr(func.value)
    )


def _is_send_call(call: ast.Call) -> bool:
    return isinstance(call.func, ast.Attribute) and call.func.attr == "send"


def _is_record_ctor(node: ast.AST) -> bool:
    """``Record(...)`` or ``<mod>.Record(...)`` — the frameable payload."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "Record"
    return isinstance(func, ast.Attribute) and func.attr == "Record"


def _array_derived_iter(expr: ast.AST) -> bool:
    """True for iterables that unpack numpy arrays element by element.

    Recognized shapes (R7): ``x.tolist()``, ``range(len(x))`` /
    ``range(x.size)`` / ``range(x.shape[0])``, and ``zip`` /
    ``enumerate`` / ``list`` / ``tuple`` / ``reversed`` wrapping any of
    those.
    """
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    if isinstance(func, ast.Attribute) and func.attr == "tolist":
        return True
    if isinstance(func, ast.Name):
        if func.id == "range" and expr.args:
            bound = expr.args[-1] if len(expr.args) == 1 else expr.args[1]
            if (
                isinstance(bound, ast.Call)
                and isinstance(bound.func, ast.Name)
                and bound.func.id == "len"
            ):
                return True
            for n in ast.walk(bound):
                if isinstance(n, ast.Attribute) and n.attr in ("size", "shape"):
                    return True
        if func.id in ("zip", "enumerate", "list", "tuple", "reversed"):
            return any(_array_derived_iter(a) for a in expr.args)
    return False


def _walk_no_nested_functions(nodes):
    """Yield nodes of the given statements without entering nested defs."""
    stack = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _FunctionInfo:
    """Per-function facts the rules share."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef):
        self.node = fn
        args = fn.args
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        has_ctx_param = any(
            a.arg == "ctx"
            or (
                a.annotation is not None
                and "PEContext" in ast.dump(a.annotation)
            )
            for a in all_args
        )
        body_nodes = list(_walk_no_nested_functions(fn.body))
        touches_ctx = any(
            (isinstance(n, ast.Attribute) and _is_ctx_expr(n.value))
            or (isinstance(n, ast.Name) and n.id == "ctx")
            for n in body_nodes
        )
        #: SPMD scope: the function handles a PEContext (R4 applies).
        self.is_spmd = has_ctx_param or touches_ctx
        #: Marked ``@fault_tolerant`` (R5 applies to its direct sends).
        self.is_fault_tolerant = any(
            (isinstance(d, ast.Name) and d.id == "fault_tolerant")
            or (isinstance(d, ast.Attribute) and d.attr == "fault_tolerant")
            for d in fn.decorator_list
        )
        #: Local names aliasing ``ctx.rank`` (``rank = ctx.rank``).
        self.rank_aliases: set[str] = {"rank"}
        for n in body_nodes:
            if isinstance(n, ast.Assign) and isinstance(n.value, ast.Attribute):
                if n.value.attr == "rank":
                    for t in n.targets:
                        if isinstance(t, ast.Name):
                            self.rank_aliases.add(t.id)
        #: Local names bound to set/dict constructors (R3 inference).
        self.container_kinds: dict[str, str] = {}
        for n in body_nodes:
            if isinstance(n, ast.Assign) and len(n.targets) == 1:
                t = n.targets[0]
                if isinstance(t, ast.Name):
                    kind = _container_kind_of_value(n.value)
                    if kind is not None:
                        self.container_kinds[t.id] = kind
                    else:
                        self.container_kinds.pop(t.id, None)


def _container_kind_of_value(node: ast.AST) -> str | None:
    """Classify an expression as building a ``set``/``dict``, if obvious."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return "set"
        if node.func.id == "dict":
            return "dict"
    return None


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str):
        self.path = path
        self.findings: list[Finding] = []
        self._fn_stack: list[_FunctionInfo] = []
        #: Lines of ``test`` expressions of enclosing rank-dependent regions.
        self._rank_regions: list[int] = []

    # -- plumbing ------------------------------------------------------
    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    @property
    def _fn(self) -> _FunctionInfo | None:
        return self._fn_stack[-1] if self._fn_stack else None

    def _mentions_rank(self, expr: ast.AST) -> bool:
        aliases = self._fn.rank_aliases if self._fn else {"rank"}
        for n in ast.walk(expr):
            if isinstance(n, ast.Attribute) and n.attr == "rank":
                return True
            if isinstance(n, ast.Name) and n.id in aliases:
                return True
        return False

    # -- scopes --------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        self._fn_stack.append(_FunctionInfo(node))
        saved_regions = self._rank_regions
        self._rank_regions = []
        self._check_r14_restored_mutations(self._fn_stack[-1])
        self.generic_visit(node)
        self._rank_regions = saved_regions
        self._fn_stack.pop()

    # -- R2 regions ----------------------------------------------------
    def visit_If(self, node: ast.If) -> None:
        self._visit_rank_region(node, node.test)

    def visit_While(self, node: ast.While) -> None:
        self._visit_rank_region(node, node.test)

    def _visit_rank_region(self, node, test: ast.AST) -> None:
        self.visit(test)
        dependent = self._mentions_rank(test)
        if dependent:
            self._rank_regions.append(test.lineno)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        if dependent:
            self._rank_regions.pop()

    # -- R3 + rank-dependent for loops ---------------------------------
    def visit_For(self, node: ast.For) -> None:
        kind = self._unordered_iter_kind(node.iter)
        if kind is not None and self._loop_body_sends(node.body):
            self._emit(
                node,
                "R3",
                f"loop over a {kind} sends messages — message order follows "
                f"{kind} iteration order, not the program; iterate "
                f"sorted(...) instead",
            )
        if (
            self._fn is not None
            and self._fn.is_spmd
            and _array_derived_iter(node.iter)
        ):
            self._check_r7(node)
        self.visit(node.iter)
        self.visit(node.target)
        dependent = self._mentions_rank(node.iter)
        if dependent:
            self._rank_regions.append(node.iter.lineno)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        if dependent:
            self._rank_regions.pop()

    def _unordered_iter_kind(self, expr: ast.AST) -> str | None:
        kind = _container_kind_of_value(expr)
        if kind is not None:
            return kind
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id == "sorted":
                    return None  # explicitly ordered
                if func.id in ("list", "tuple", "reversed", "enumerate") and expr.args:
                    return self._unordered_iter_kind(expr.args[0])
            if isinstance(func, ast.Attribute) and func.attr in (
                "keys",
                "values",
                "items",
            ):
                return "dict"
        if isinstance(expr, ast.Name) and self._fn is not None:
            return self._fn.container_kinds.get(expr.id)
        return None

    def _loop_body_sends(self, body) -> bool:
        for n in _walk_no_nested_functions(body):
            if isinstance(n, ast.Call) and _is_send_call(n):
                return True
        return False

    # -- R7: per-record posting over unpacked arrays ---------------------
    def _check_r7(self, loop: ast.For) -> None:
        body_nodes = list(_walk_no_nested_functions(loop.body))
        # Loop-local names bound to a Record(...) construction.
        record_names = {
            t.id
            for n in body_nodes
            if isinstance(n, ast.Assign) and _is_record_ctor(n.value)
            for t in n.targets
            if isinstance(t, ast.Name)
        }

        def payload_is_record(arg: ast.AST) -> bool:
            for n in ast.walk(arg):
                if _is_record_ctor(n):
                    return True
                if isinstance(n, ast.Name) and n.id in record_names:
                    return True
            return False

        for n in body_nodes:
            if not (
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr == "post"
            ):
                continue
            if getattr(n, "_repro_r7", False):
                continue  # already reported under an enclosing loop
            if any(payload_is_record(a) for a in n.args):
                n._repro_r7 = True  # type: ignore[attr-defined]
                self._emit(
                    n,
                    "R7",
                    "per-record '.post(Record(...))' in a Python loop over "
                    "unpacked arrays — pack the batch and make one "
                    "'post_many(dest_ranks, vertices, targets, xadj, "
                    "neighbors)' call instead (identical contents and "
                    "words charge)",
                )

    # -- R13: direct mutation of engine state from SPMD code -------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_r13(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_r13(node.target)
        self.generic_visit(node)

    @staticmethod
    def _attr_chain(target: ast.AST) -> tuple[str, list[str]] | None:
        """``(root, attrs)`` of a dotted/subscripted assignment target."""
        attrs: list[str] = []
        node = target
        while True:
            if isinstance(node, ast.Subscript):
                node = node.value
            elif isinstance(node, ast.Attribute):
                attrs.append(node.attr)
                node = node.value
            elif isinstance(node, ast.Name):
                attrs.reverse()
                return node.id, attrs
            else:
                return None

    def _check_r13(self, target: ast.AST) -> None:
        if self._fn is None or not self._fn.is_spmd:
            return
        chain = self._attr_chain(target)
        if chain is None or not chain[1]:
            return
        root, attrs = chain
        # (a) ctx internals: anything assigned through ctx.metrics or a
        # ctx._private attribute (also via a stored handle like self.ctx).
        through_ctx = attrs if root == "ctx" else (
            attrs[attrs.index("ctx") + 1 :] if "ctx" in attrs else None
        )
        if through_ctx and any(a == "metrics" or a.startswith("_") for a in through_ctx):
            self._emit(
                target,
                "R13",
                f"direct mutation of engine state "
                f"'{root}.{'.'.join(attrs)}' in SPMD code — program code "
                f"must account time and state through the PEContext API "
                f"(ctx.charge / ctx.charge_time / ctx.send), never by "
                f"writing machine internals",
            )
            return
        # (b) time-keyed scheduler attributes on any object.  ``self``
        # is exempt: a class mutating its own ``clock`` field is
        # modelling its own state, not the machine's.
        if root != "self" and attrs[-1] in TIME_KEYED_ATTRS:
            self._emit(
                target,
                "R13",
                f"assignment to time-keyed attribute "
                f"'{root}.{'.'.join(attrs)}' in SPMD code — simulated "
                f"time is owned by the event engine; advancing or "
                f"rewinding it directly desynchronizes the scheduler "
                f"(use ctx.charge_time for modelled delays)",
            )

    # -- R14: localized recovery misuse ----------------------------------
    @staticmethod
    def _callee_name(call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def _check_r14_machine(self, node: ast.Call) -> None:
        """R14a: ``Machine(recovery='localized')`` with a plain store."""
        if self._callee_name(node) != "Machine":
            return
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        mode = kwargs.get("recovery")
        if not (isinstance(mode, ast.Constant) and mode.value == "localized"):
            return
        store = kwargs.get("checkpoint_store")
        if (
            isinstance(store, ast.Call)
            and self._callee_name(store) == "CheckpointStore"
        ):
            self._emit(
                node,
                "R14",
                "Machine(recovery='localized') built with a plain "
                "CheckpointStore — localized recovery restores a crashed "
                "rank from its partner's replica, which a stable-storage "
                "store never ships; use BuddyCheckpointStore (or omit "
                "checkpoint_store to get one)",
            )

    def _check_r14_restored_mutations(self, info: _FunctionInfo) -> None:
        """R14b: restored state mutated with no later re-checkpoint.

        Only ``@fault_tolerant`` programs are policed: they are the ones
        localized recovery respawns from partner replicas, where a
        mutation the replica never saw resurrects pre-mutation state
        while survivors replay messages computed from the mutated one.
        """
        if not info.is_fault_tolerant:
            return
        body_nodes = list(_walk_no_nested_functions(info.node.body))
        restored: dict[str, int] = {}
        for n in body_nodes:
            if (
                isinstance(n, ast.Assign)
                and isinstance(n.value, ast.Call)
                and isinstance(n.value.func, ast.Attribute)
                and n.value.func.attr == "restore"
                and _is_ctx_expr(n.value.func.value)
            ):
                for t in n.targets:
                    if isinstance(t, ast.Name):
                        restored[t.id] = n.lineno
        if not restored:
            return
        last_checkpoint = max(
            (
                n.lineno
                for n in body_nodes
                if isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr == "checkpoint"
                and _is_ctx_expr(n.func.value)
            ),
            default=-1,
        )

        def flag(name: str, node: ast.AST, how: str) -> None:
            if node.lineno <= restored[name]:
                return
            if node.lineno < last_checkpoint:
                return  # a later ctx.checkpoint refreshes the replica
            self._emit(
                node,
                "R14",
                f"{how} mutates '{name}' (bound from ctx.restore) with no "
                f"ctx.checkpoint afterwards — after an in-place respawn "
                f"the partner replica restores the pre-mutation state "
                f"while survivors replay against the mutated one; "
                f"re-checkpoint after the mutation",
            )

        for n in body_nodes:
            if (
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr in MUTATING_METHODS
                and isinstance(n.func.value, ast.Name)
                and n.func.value.id in restored
            ):
                flag(n.func.value.id, n, f"'.{n.func.attr}(...)'")
            elif isinstance(n, (ast.Assign, ast.AugAssign)):
                targets = n.targets if isinstance(n, ast.Assign) else [n.target]
                for t in targets:
                    chain = self._attr_chain(t)
                    if chain is None or chain[0] not in restored:
                        continue
                    # A bare-name Assign rebinds; everything else —
                    # item/attribute writes, augmented assignment —
                    # mutates the restored object in place.
                    if isinstance(n, ast.Assign) and isinstance(t, ast.Name):
                        continue
                    flag(chain[0], t, "item/attribute write")

    # -- R1 / R2 / R4 at call sites ------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _collective_name(node)
        is_recv = _is_ctx_recv(node)
        if (name is not None or is_recv) and not isinstance(
            getattr(node, "_repro_parent", None), ast.YieldFrom
        ):
            what = name if name is not None else "ctx.recv"
            self._emit(
                node,
                "R1",
                f"'{what}(...)' is a generator: without 'yield from' it is "
                f"created and dropped and the operation never runs",
            )
        if name is not None and self._rank_regions:
            self._emit(
                node,
                "R2",
                f"collective '{name}' inside rank-dependent control flow "
                f"(condition at line {self._rank_regions[-1]}) — PEs may "
                f"enter collectives in diverging order",
            )
        if self._fn is not None and self._fn.is_spmd:
            self._check_r4(node)
        self._check_r6(node)
        self._check_r14_machine(node)
        if (
            self._fn is not None
            and self._fn.is_fault_tolerant
            and _is_send_call(node)
            and _is_ctx_expr(node.func.value)
        ):
            self._emit(
                node,
                "R5",
                "direct ctx.send(...) inside a @fault_tolerant program — "
                "use reliable_send(ctx, ...) so the reliable transport can "
                "sequence and retransmit the message",
            )
        self.generic_visit(node)

    def _check_r6(self, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in ("span", "phase")
            and _is_ctx_expr(func.value)
        ):
            return
        what = f"ctx.{func.attr}"
        parent = getattr(node, "_repro_parent", None)
        entered = isinstance(parent, ast.withitem) and parent.context_expr is node
        if not entered:
            self._emit(
                node,
                "R6",
                f"'{what}(...)' outside a 'with' statement — the span context "
                f"manager is built but never entered, so no time is recorded; "
                f"write 'with {what}(...):'",
            )
        label: ast.AST | None = node.args[0] if node.args else None
        if label is None:
            for kw in node.keywords:
                if kw.arg == "name":
                    label = kw.value
        if label is not None and not (
            isinstance(label, ast.Constant) and isinstance(label.value, str)
        ):
            self._emit(
                node,
                "R6",
                f"'{what}(...)' label must be a string literal — computed or "
                f"rank-dependent labels give PEs diverging span names, which "
                f"breaks cross-PE merging and phase-profile buckets",
            )

    def _check_r4(self, node: ast.Call) -> None:
        func = node.func
        if (
            _is_send_call(node)
            and _is_ctx_expr(func.value)
            and not any(isinstance(a, ast.Starred) for a in node.args)
        ):
            has_words = len(node.args) >= 4 or any(
                kw.arg == "words" for kw in node.keywords
            )
            if not has_words:
                self._emit(
                    node,
                    "R4",
                    "ctx.send(...) without an explicit 'words' cost argument "
                    "— every message must be charged to the alpha-beta model",
                )
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            mod, attr = func.value.id, func.attr
            if attr in WALL_CLOCK.get(mod, ()):
                self._emit(
                    node,
                    "R4",
                    f"wall-clock call '{mod}.{attr}()' in SPMD code — "
                    f"simulated time must come from the machine's cost model",
                )
            if mod == "random" and attr in UNSEEDED_RANDOM:
                self._emit(
                    node,
                    "R4",
                    f"unseeded 'random.{attr}()' in SPMD code breaks run "
                    f"determinism; use numpy.random.default_rng(seed)",
                )
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in ("np", "numpy")
            and func.attr in NP_GLOBAL_RANDOM
        ):
            self._emit(
                node,
                "R4",
                f"global-state 'np.random.{func.attr}(...)' in SPMD code "
                f"breaks run determinism; use numpy.random.default_rng(seed)",
            )


def check_module(tree: ast.Module, path: str) -> list[Finding]:
    """Run every rule over a parsed module; returns unsuppressed findings."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]
    checker = _Checker(path)
    checker.visit(tree)
    return sorted(checker.findings)
