"""Finding records produced by the SPMD protocol linter."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "RULES", "FLOW_CODES"]

#: Rule code -> one-line description (see ``docs/SPMD_CONTRACT.md`` for
#: the rationale and bad/good examples of each).
RULES: dict[str, str] = {
    "R1": (
        "collective (or ctx.recv) called without 'yield from' — the "
        "generator is created and silently dropped"
    ),
    "R2": (
        "collective invoked under rank-dependent control flow — PEs may "
        "diverge in collective entry order"
    ),
    "R3": (
        "loop over a set/dict whose body sends messages — iteration order "
        "is not a deterministic function of the program"
    ),
    "R4": (
        "SPMD hygiene: ctx.send without an explicit words cost, or "
        "wall-clock / unseeded randomness inside SPMD code"
    ),
    "R5": (
        "direct ctx.send inside a program marked @fault_tolerant — "
        "route it through repro.net.reliable.reliable_send so the "
        "transport can sequence and retransmit it"
    ),
    "R6": (
        "ctx.span/ctx.phase misuse — the call must be entered via a "
        "'with' statement and carry a string-literal (rank-invariant) "
        "label, or the observability layer records nothing mergeable"
    ),
    "R7": (
        "per-record Record post inside a Python loop over unpacked "
        "arrays — use the packed post_many(...) frame path, which "
        "charges identical words without per-element interpreter cost"
    ),
    "R8": (
        "collective sequence can diverge across ranks (static deadlock): "
        "a rank-dependent branch, loop trip count, or early return makes "
        "PEs enter different collectives — proven over the CFG and call "
        "graph, including collectives reached through callees"
    ),
    "R9": (
        "rank-tainted branch guards divergent collectives: the condition "
        "is derived from ctx.rank, received data, or checkpoint replay "
        "through dataflow R2's lexical check cannot see"
    ),
    "R10": (
        "message destinations drawn from unordered iteration (a set/dict "
        "reached through aliases or a callee's return value) — message "
        "order becomes a hash artifact; iterate sorted(...)"
    ),
    "R11": (
        "SPMD function performs NumPy compute but never charges the "
        "alpha-beta cost model (no ctx.charge, no message-bearing "
        "primitive, no charging callee) — the work is invisible to the "
        "simulated timeline"
    ),
    "R12": (
        "checkpoint-domain inconsistency: ctx.checkpoint without its "
        "ctx.restore guard, a non-literal domain name, or checkpointed "
        "state mutated after the snapshot — run_with_recovery would "
        "silently lose the difference on restart"
    ),
    "R13": (
        "SPMD code mutates engine-owned state directly (ctx.metrics.*, "
        "ctx._private, or a time-keyed attribute like clock/send_time/"
        "busy_until) — programs must charge time and send messages "
        "through the PEContext API so the event engine stays the single "
        "writer of simulated time"
    ),
    "R14": (
        "localized-recovery misuse: Machine(recovery='localized') built "
        "with a non-partner-capable CheckpointStore (restore has no "
        "replica to ship), or restored state mutated in a "
        "@fault_tolerant program without a later ctx.checkpoint — after "
        "an in-place respawn the partner replica no longer matches the "
        "state survivors assume"
    ),
    "R0": "file could not be parsed or read",
}

#: Codes produced by the dataflow pass (:mod:`repro.lint.flow`).
#: Suppressing one inline requires a justification:
#: ``# noqa: R8 -- <why this is safe>``.
FLOW_CODES = frozenset({"R8", "R9", "R10", "R11", "R12"})


@dataclass(frozen=True, order=True)
class Finding:
    """One linter diagnostic, formatted ``path:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """Render in the conventional compiler-diagnostic shape."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
