"""Finding records produced by the SPMD protocol linter."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "RULES"]

#: Rule code -> one-line description (see ``docs/SPMD_CONTRACT.md`` for
#: the rationale and bad/good examples of each).
RULES: dict[str, str] = {
    "R1": (
        "collective (or ctx.recv) called without 'yield from' — the "
        "generator is created and silently dropped"
    ),
    "R2": (
        "collective invoked under rank-dependent control flow — PEs may "
        "diverge in collective entry order"
    ),
    "R3": (
        "loop over a set/dict whose body sends messages — iteration order "
        "is not a deterministic function of the program"
    ),
    "R4": (
        "SPMD hygiene: ctx.send without an explicit words cost, or "
        "wall-clock / unseeded randomness inside SPMD code"
    ),
    "R5": (
        "direct ctx.send inside a program marked @fault_tolerant — "
        "route it through repro.net.reliable.reliable_send so the "
        "transport can sequence and retransmit it"
    ),
    "R6": (
        "ctx.span/ctx.phase misuse — the call must be entered via a "
        "'with' statement and carry a string-literal (rank-invariant) "
        "label, or the observability layer records nothing mergeable"
    ),
    "R7": (
        "per-record Record post inside a Python loop over unpacked "
        "arrays — use the packed post_many(...) frame path, which "
        "charges identical words without per-element interpreter cost"
    ),
    "R0": "file could not be parsed",
}


@dataclass(frozen=True, order=True)
class Finding:
    """One linter diagnostic, formatted ``path:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """Render in the conventional compiler-diagnostic shape."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
