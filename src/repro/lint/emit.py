"""Machine-readable finding emitters: JSON and SARIF 2.1.0.

Both formats are byte-deterministic for a given finding list (sorted
keys, no timestamps, no absolute environment paths), so CI can diff
them and the determinism test can assert byte-identical output across
runs.  The SARIF document is the minimal profile GitHub code scanning
accepts: one run, one driver, rule metadata from :data:`RULES`, one
result per finding with a physical location.
"""

from __future__ import annotations

import json

from .findings import RULES, Finding

__all__ = ["to_text", "to_json", "to_sarif"]


def to_text(findings: list[Finding]) -> str:
    """The compiler-style one-line-per-finding rendering."""
    return "\n".join(f.format() for f in findings)


def to_json(findings: list[Finding]) -> str:
    """A stable JSON document: ``{"findings": [...], "count": n}``."""
    doc = {
        "count": len(findings),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def _sarif_uri(path: str) -> str:
    return path.replace("\\", "/")


def to_sarif(findings: list[Finding]) -> str:
    """A SARIF 2.1.0 document (the shape GitHub annotations consume)."""
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": [
                            {
                                "id": code,
                                "shortDescription": {"text": text},
                            }
                            for code, text in sorted(RULES.items())
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": f.code,
                        "level": "error",
                        "message": {"text": f.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": _sarif_uri(f.path)
                                    },
                                    "region": {
                                        "startLine": f.line,
                                        "startColumn": f.col,
                                    },
                                }
                            }
                        ],
                    }
                    for f in findings
                ],
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
