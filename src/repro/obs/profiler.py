"""Phase profiler: decompose a run's critical path into Fig.-7 categories.

The paper's Fig. 7 attributes the running time of the slowest PE to
algorithm phases; the profiler reproduces that taxonomy from span
records and the communication counters:

* one *compute* bucket per top-level span label (``preprocessing``,
  ``local``, ``contraction``, ``global``, ...) — the span's elapsed
  time minus everything attributed below;
* ``communication`` — all message-endpoint time (alpha + beta*l) of
  the critical PE, wherever it was charged;
* ``wait`` — clock fast-forwards to causal message timestamps (idle
  time behind stragglers or late senders);
* ``retransmit`` — reliable-transport fault-repair time (zero on
  fault-free runs);
* ``recovery`` — localized-recovery time (detection wait, partner
  restore, log replay; zero on crash-free runs and under global
  restart);
* ``other`` — time outside every span (e.g. the final allreduce's
  local bookkeeping).

By construction the buckets partition the critical PE's clock, so
:meth:`PhaseProfile.percentages` sums to 100%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net.metrics import RunMetrics

__all__ = ["PhaseProfile", "profile_metrics"]


@dataclass
class PhaseProfile:
    """Critical-path time decomposition of one simulated run."""

    num_pes: int
    #: Modelled running time (the critical PE's final clock).
    makespan: float
    #: Rank of the PE defining the makespan.
    critical_rank: int
    #: Category -> simulated seconds on the critical PE; partitions
    #: ``makespan`` (compute buckets in program order, then
    #: communication / wait / retransmit / other).
    categories: dict[str, float] = field(default_factory=dict)

    def percentages(self) -> dict[str, float]:
        """Category -> percent of the makespan; sums to ~100."""
        total = self.makespan
        if total <= 0:
            return {name: 0.0 for name in self.categories}
        return {name: 100.0 * t / total for name, t in self.categories.items()}

    def format(self, *, title: str = "") -> str:
        """Aligned text table (seconds and percentages)."""
        pct = self.percentages()
        width = max((len(n) for n in self.categories), default=8)
        lines = []
        if title:
            lines.append(title)
        lines.append(
            f"critical path: PE {self.critical_rank} of {self.num_pes}, "
            f"makespan {self.makespan:.6f} s"
        )
        for name, seconds in self.categories.items():
            lines.append(f"  {name:<{width}s}  {seconds:12.6f} s  {pct[name]:6.2f} %")
        lines.append(f"  {'total':<{width}s}  {self.makespan:12.6f} s  {sum(pct.values()):6.2f} %")
        return "\n".join(lines)


def profile_metrics(metrics: RunMetrics) -> PhaseProfile:
    """Profile the critical-path PE of a finished run."""
    if not metrics.per_pe:
        return PhaseProfile(num_pes=0, makespan=0.0, critical_rank=0)
    rank = metrics.critical_rank
    pe = metrics.per_pe[rank]
    categories: dict[str, float] = {}
    compute_in_spans = 0.0
    for span in pe.spans:
        if span.depth != 0:
            continue  # children are covered by their top-level ancestor
        if span.name.startswith("recover:"):
            continue  # the whole outage is in the ``recovery`` bucket
        categories[span.name] = categories.get(span.name, 0.0) + span.compute_time
        compute_in_spans += span.compute_time
    categories["communication"] = pe.comm_seconds
    categories["wait"] = pe.wait_seconds
    categories["retransmit"] = pe.retransmit_seconds
    categories["recovery"] = pe.recovery_seconds
    other = pe.clock - compute_in_spans - pe.comm_seconds - pe.wait_seconds
    other -= pe.retransmit_seconds
    other -= pe.recovery_seconds
    categories["other"] = max(0.0, other)
    return PhaseProfile(
        num_pes=metrics.num_pes,
        makespan=pe.clock,
        critical_rank=rank,
        categories=categories,
    )
