"""CSV export of spans and run summaries for the analysis tables.

Two flat tables cover what the evaluation scripts consume:

* :func:`spans_csv` — one row per closed span (rank, name, depth,
  interval, and the compute/comm/wait/retransmit decomposition);
* :func:`summary_csv` — one row per run from
  :class:`~repro.analysis.runner.RunResult`-shaped dicts (the same
  normalization the benchmark records use).

Both render with the stdlib ``csv`` module so quoting is standard, and
both are deterministic for a fixed-seed run.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Mapping

from ..net.metrics import RunMetrics

__all__ = ["spans_csv", "summary_csv"]

SPAN_COLUMNS = (
    "rank",
    "name",
    "depth",
    "start_s",
    "end_s",
    "elapsed_s",
    "compute_s",
    "comm_s",
    "wait_s",
    "retransmit_s",
    "recovery_s",
)


def spans_csv(metrics: RunMetrics) -> str:
    """All merged spans of a run as a CSV table (header included)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(SPAN_COLUMNS)
    for s in metrics.merged_spans():
        writer.writerow(
            [
                s.rank,
                s.name,
                s.depth,
                f"{s.start:.9f}",
                f"{s.end:.9f}",
                f"{s.elapsed:.9f}",
                f"{s.compute_time:.9f}",
                f"{s.comm_time:.9f}",
                f"{s.wait_time:.9f}",
                f"{s.retransmit_time:.9f}",
                f"{s.recovery_time:.9f}",
            ]
        )
    return buf.getvalue()


def summary_csv(rows: Iterable[Mapping[str, object]]) -> str:
    """Dict rows (e.g. ``RunResult.as_dict()``) as one CSV table.

    The column set is the union over rows, first-seen order, so sweeps
    mixing algorithms with different phase sets still align.
    """
    rows = list(rows)
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(
        buf, fieldnames=columns, restval="", lineterminator="\n"
    )
    writer.writeheader()
    for row in rows:
        writer.writerow(dict(row))
    return buf.getvalue()
