"""Chrome trace-event JSON export.

Produces the `trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_:

* one *process* (pid 0) models the simulated machine, one *thread* per
  PE (tid = rank), named via ``M`` metadata events;
* every closed :class:`~repro.net.trace.SpanRecord` becomes a complete
  ``"ph": "X"`` duration event (microsecond timestamps on the simulated
  clock) whose ``args`` carry the compute/communication/wait/retransmit
  decomposition;
* message events from an attached :class:`~repro.net.trace.Tracer`
  (send / recv / drop / retry) become thread-scoped instant events
  (``"ph": "i"``, ``"s": "t"``).

Output is deterministic: events are sorted by timestamp with stable
tie-breakers and serialized with sorted keys, so a fixed-seed run
always produces a byte-identical trace file.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..net.metrics import RunMetrics
from ..net.trace import Tracer

__all__ = ["chrome_trace", "chrome_trace_json", "write_chrome_trace"]

#: Process id used for the whole simulated machine.
MACHINE_PID = 0

_INSTANT_LABEL = {
    "send": "send",
    "recv": "recv",
    "drop": "drop (fault)",
    "retry": "retransmit",
}


def _us(seconds: float) -> float:
    """Simulated seconds -> trace microseconds (rounded for stability)."""
    return round(seconds * 1e6, 6)


def chrome_trace(
    metrics: RunMetrics, tracer: Tracer | None = None, *, run_name: str = "repro"
) -> dict:
    """Build the trace dict (``{"traceEvents": [...], ...}``) for a run."""
    events: list[dict] = []
    num_pes = metrics.num_pes
    events.append(
        {
            "ph": "M",
            "pid": MACHINE_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"simulated machine ({run_name}, p={num_pes})"},
        }
    )
    for rank in range(num_pes):
        events.append(
            {
                "ph": "M",
                "pid": MACHINE_PID,
                "tid": rank,
                "name": "thread_name",
                "args": {"name": f"PE {rank}"},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": MACHINE_PID,
                "tid": rank,
                "name": "thread_sort_index",
                "args": {"sort_index": rank},
            }
        )

    spans = []
    for span in metrics.merged_spans():
        spans.append(
            {
                "ph": "X",
                "pid": MACHINE_PID,
                "tid": span.rank,
                "name": span.name,
                "cat": "span",
                "ts": _us(span.start),
                "dur": _us(span.elapsed),
                "args": {
                    "depth": span.depth,
                    "compute_us": _us(span.compute_time),
                    "comm_us": _us(span.comm_time),
                    "wait_us": _us(span.wait_time),
                    "retransmit_us": _us(span.retransmit_time),
                    "recovery_us": _us(span.recovery_time),
                },
            }
        )

    messages = []
    if tracer is not None:
        for e in tracer.events:
            if e.kind == "phase":
                continue  # spans cover phases with strictly more detail
            messages.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": MACHINE_PID,
                    "tid": e.rank,
                    "name": f"{_INSTANT_LABEL.get(e.kind, e.kind)} tag={e.tag!r}",
                    "cat": f"msg.{e.kind}",
                    "ts": _us(e.time),
                    "args": {"peer": e.peer, "words": e.words},
                }
            )

    # Deterministic ordering: spans outermost-first at equal timestamps
    # (so viewers nest them correctly), instants after spans.
    spans.sort(key=lambda ev: (ev["ts"], ev["tid"], ev["args"]["depth"], ev["name"]))
    messages.sort(key=lambda ev: (ev["ts"], ev["tid"], ev["cat"], ev["name"]))
    events.extend(spans)
    events.extend(messages)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "makespan_us": _us(metrics.makespan),
            "num_pes": num_pes,
            "source": "repro.obs.chrome",
        },
    }


def chrome_trace_json(
    metrics: RunMetrics, tracer: Tracer | None = None, *, run_name: str = "repro"
) -> str:
    """The trace serialized deterministically (sorted keys, fixed layout)."""
    return json.dumps(
        chrome_trace(metrics, tracer, run_name=run_name),
        sort_keys=True,
        indent=1,
    )


def write_chrome_trace(
    path: str | Path,
    metrics: RunMetrics,
    tracer: Tracer | None = None,
    *,
    run_name: str = "repro",
) -> Path:
    """Write the trace file; returns the path for chaining/logging."""
    out = Path(path)
    out.write_text(chrome_trace_json(metrics, tracer, run_name=run_name) + "\n")
    return out
