"""Observability: structured tracing, exporters, and the phase profiler.

This package unifies the raw plumbing of :mod:`repro.net.trace`
(message/phase event streams) and :mod:`repro.net.metrics` (per-PE
counters and :class:`~repro.net.trace.SpanRecord` lists) behind the
interfaces the evaluation needs:

* :mod:`repro.obs.chrome` — Chrome trace-event JSON export; the files
  load directly in ``chrome://tracing`` and `Perfetto
  <https://ui.perfetto.dev>`_;
* :mod:`repro.obs.csvexport` — flat CSV tables of spans and run
  summaries for the analysis scripts;
* :mod:`repro.obs.render` — terminal timeline / flamegraph renderer;
* :mod:`repro.obs.profiler` — per-phase breakdown of the critical-path
  PE (local / contraction / global / communication / wait /
  retransmit), percentages summing to 100% of simulated time;
* :mod:`repro.obs.bench` — normalized benchmark records, the
  ``BENCH_<date>.json`` writer, and the baseline-diff regression gate
  behind ``repro-tc bench`` and ``make bench-smoke``.

Spans are produced by SPMD programs via ``with ctx.span("label")``
(see :meth:`repro.net.machine.PEContext.span`); lint rule R6 enforces
context-manager usage and rank-invariant literal labels.  All event
streams carry *simulated* timestamps owned by the event engine of
:mod:`repro.sim`, so traces are byte-identical across reruns and
across schedulers (event vs legacy round-robin) — pinned by
``tests/test_machine.py`` / ``tests/test_faults.py``.  Usage guide:
``docs/OBSERVABILITY.md``.
"""

from ..net.trace import SpanRecord
from .bench import (
    BenchRecord,
    Regression,
    diff_records,
    format_diff,
    load_bench_json,
    record_from_run,
    smoke_suite,
    write_bench_json,
)
from .chrome import chrome_trace, chrome_trace_json, write_chrome_trace
from .csvexport import spans_csv, summary_csv
from .profiler import PhaseProfile, profile_metrics
from .render import render_flamegraph

__all__ = [
    "SpanRecord",
    "BenchRecord",
    "Regression",
    "diff_records",
    "format_diff",
    "load_bench_json",
    "record_from_run",
    "smoke_suite",
    "write_bench_json",
    "chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "spans_csv",
    "summary_csv",
    "PhaseProfile",
    "profile_metrics",
    "render_flamegraph",
]
