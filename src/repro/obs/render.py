"""Terminal timeline / flamegraph renderer for span records.

One block of rows per PE: each nesting depth renders as its own lane,
spans as labelled bars positioned on a shared simulated-time axis
scaled to the run's makespan.  Complements ``render_timeline`` in
:mod:`repro.net.trace` (a chronological event log) with an at-a-glance
per-PE phase picture that needs no external viewer.
"""

from __future__ import annotations

from ..net.metrics import RunMetrics

__all__ = ["render_flamegraph"]


def _bar(label: str, cells: int) -> str:
    """A bar of ``cells`` character cells carrying ``label`` inside."""
    if cells <= 0:
        return ""
    if cells <= 2:
        return "#" * cells
    inner = label[: cells - 2]
    return "[" + inner.ljust(cells - 2, "=") + "]"


def render_flamegraph(metrics: RunMetrics, *, width: int = 72) -> str:
    """Render every PE's span lanes over a common time axis."""
    makespan = metrics.makespan
    lines = [
        f"simulated timeline, makespan {makespan:.6f} s "
        f"({width} cells, critical PE {metrics.critical_rank})"
    ]
    scale = width / makespan if makespan > 0 else 0.0
    for rank, pe in enumerate(metrics.per_pe):
        depths = sorted({s.depth for s in pe.spans})
        lines.append(
            f"PE {rank}  clock={pe.clock:.6f}s  comm={pe.comm_seconds:.6f}s  "
            f"wait={pe.wait_seconds:.6f}s"
        )
        for depth in depths:
            lane = [" "] * width
            for s in sorted(
                (s for s in pe.spans if s.depth == depth),
                key=lambda s: (s.start, s.name),
            ):
                lo = min(width - 1, int(s.start * scale))
                hi = min(width, max(lo + 1, int(s.end * scale)))
                for i, ch in enumerate(_bar(s.name, hi - lo)):
                    lane[lo + i] = ch
            lines.append(f"  d{depth} |{''.join(lane)}|")
        if not depths:
            lines.append("  (no spans recorded)")
    return "\n".join(lines)
