"""Normalized benchmark records and the ``BENCH_<date>.json`` pipeline.

Every benchmark in ``benchmarks/`` (via ``benchmarks/harness.py``) and
every ``repro-tc bench`` invocation emits :class:`BenchRecord` rows —
one normalized measurement each: a *name*, the identifying *params*
(graph, algorithm, PE count, seed, ...), the paper's simulated-cost
metrics (modelled time, communication volume, peak buffer words), and
the Python wall time of the run.

Records accumulate into ``BENCH_<date>.json`` files.  A committed
baseline (``benchmarks/baseline/BENCH_baseline.json``) is the
regression gate: :func:`diff_records` compares the *simulated* cost of
matching records — the simulation is deterministic, so any drift is a
real algorithmic change, and ``make bench-smoke`` fails CI when a
record's simulated time regresses by more than the threshold (15% by
default).  Wall times are recorded for trend inspection but never
gated (they depend on the host).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.runner import RunResult

__all__ = [
    "BenchRecord",
    "Regression",
    "record_from_run",
    "write_bench_json",
    "load_bench_json",
    "bench_json_name",
    "diff_records",
    "format_diff",
    "smoke_suite",
    "DEFAULT_THRESHOLD",
]

#: Relative simulated-cost increase that fails the regression gate.
DEFAULT_THRESHOLD = 0.15

#: Schema tag written into every BENCH_*.json file.
SCHEMA = "repro-bench-v1"


@dataclass(frozen=True)
class BenchRecord:
    """One normalized benchmark measurement."""

    #: Stable record name, e.g. ``"fig6_strong:orkut:cetric"``.
    name: str
    #: Identifying parameters (graph, p, seed, ...); part of the match
    #: key when diffing against a baseline.
    params: dict = field(default_factory=dict)
    #: Modelled running time in seconds (None for wall-time-only rows).
    simulated_time: float | None = None
    #: Total words sent across the machine.
    total_volume: int | None = None
    #: Max words sent by any PE (the paper's bottleneck metric).
    bottleneck_volume: int | None = None
    #: Max messages sent by any PE.
    max_messages: int | None = None
    #: Aggregation-buffer high-water mark (words) over PEs.
    peak_words: int | None = None
    #: Python wall-clock seconds of the experiment body (not gated,
    #: excluded from :func:`diff_records` — it depends on the host).
    wall_seconds: float | None = None
    #: Triangle count, when the benchmark produced one (sanity anchor).
    triangles: int | None = None

    @property
    def key(self) -> tuple:
        """Identity for baseline matching: name + sorted params."""
        return (self.name, tuple(sorted(self.params.items())))

    def to_dict(self) -> dict:
        """JSON-ready dict (schema of ``BENCH_<date>.json`` records)."""
        return {
            "name": self.name,
            "params": dict(self.params),
            "simulated_time": self.simulated_time,
            "total_volume": self.total_volume,
            "bottleneck_volume": self.bottleneck_volume,
            "max_messages": self.max_messages,
            "peak_words": self.peak_words,
            "wall_seconds": self.wall_seconds,
            "triangles": self.triangles,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchRecord":
        """Inverse of :meth:`to_dict` (ignores unknown keys)."""
        return cls(
            name=data["name"],
            params=dict(data.get("params", {})),
            simulated_time=data.get("simulated_time"),
            total_volume=data.get("total_volume"),
            bottleneck_volume=data.get("bottleneck_volume"),
            max_messages=data.get("max_messages"),
            peak_words=data.get("peak_words"),
            # Legacy files (pre-rename) wrote "wall_time".
            wall_seconds=data.get("wall_seconds", data.get("wall_time")),
            triangles=data.get("triangles"),
        )


def record_from_run(
    name: str, result: "RunResult", *, wall_seconds: float | None = None, **params
) -> BenchRecord:
    """Normalize a :class:`~repro.analysis.runner.RunResult` row.

    Failed runs (e.g. TriC out-of-memory points) normalize to records
    with ``None`` costs and a ``failed`` param, so baselines keep the
    failure boundary visible without gating on it.
    """
    params = {"algorithm": result.algorithm, "p": result.num_pes, **params}
    if not result.ok:
        params["failed"] = result.failed
        return BenchRecord(name=name, params=params, wall_seconds=wall_seconds)
    return BenchRecord(
        name=name,
        params=params,
        simulated_time=result.time,
        total_volume=result.total_volume,
        bottleneck_volume=result.bottleneck_volume,
        max_messages=result.max_messages,
        peak_words=result.peak_buffer_words,
        wall_seconds=wall_seconds,
        triangles=result.triangles,
    )


def bench_json_name(date: str | None = None) -> str:
    """``BENCH_<date>.json`` — date from ``REPRO_BENCH_DATE`` or today."""
    if date is None:
        date = os.environ.get("REPRO_BENCH_DATE") or time.strftime("%Y-%m-%d")
    return f"BENCH_{date}.json"


def write_bench_json(
    records: Iterable[BenchRecord],
    path: str | Path | None = None,
    *,
    date: str | None = None,
    append: bool = True,
) -> Path:
    """Write (or extend) a ``BENCH_*.json`` file; returns its path.

    With ``append`` (the default) existing records in the target file
    are kept and records with an identical key are replaced — so a day
    of repeated ``repro-tc bench`` runs accumulates one file.
    """
    out = Path(path) if path is not None else Path(bench_json_name(date))
    merged: dict[tuple, BenchRecord] = {}
    if append and out.exists():
        for old in load_bench_json(out):
            merged[old.key] = old
    for rec in records:
        merged[rec.key] = rec
    payload = {
        "schema": SCHEMA,
        "records": [r.to_dict() for r in merged.values()],
    }
    out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return out


def load_bench_json(path: str | Path) -> list[BenchRecord]:
    """Read the records of one ``BENCH_*.json`` file."""
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict):
        rows = data.get("records", [])
    else:  # bare list — accepted for hand-written baselines
        rows = data
    return [BenchRecord.from_dict(r) for r in rows]


@dataclass(frozen=True)
class Regression:
    """One simulated-cost regression against the baseline."""

    name: str
    params: dict
    baseline_time: float
    current_time: float

    @property
    def ratio(self) -> float:
        """current / baseline simulated time."""
        return self.current_time / self.baseline_time

    def format(self) -> str:
        """One diagnostic line."""
        params = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return (
            f"{self.name} ({params}): simulated time "
            f"{self.baseline_time:.6f}s -> {self.current_time:.6f}s "
            f"({(self.ratio - 1.0):+.1%})"
        )


def diff_records(
    baseline: Iterable[BenchRecord],
    current: Iterable[BenchRecord],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[Regression]:
    """Simulated-cost regressions of ``current`` vs ``baseline``.

    Records match by :attr:`BenchRecord.key`; a record is a regression
    when its simulated time exceeds the baseline's by more than
    ``threshold`` (relative).  Records missing on either side never
    fail the gate (new benchmarks appear, old ones retire), and rows
    without a simulated time (wall-time-only microbenchmarks) are
    skipped.
    """
    base = {r.key: r for r in baseline}
    out: list[Regression] = []
    for rec in current:
        old = base.get(rec.key)
        if old is None or old.simulated_time is None or rec.simulated_time is None:
            continue
        if old.simulated_time <= 0:
            continue
        if rec.simulated_time > old.simulated_time * (1.0 + threshold):
            out.append(
                Regression(
                    name=rec.name,
                    params=dict(rec.params),
                    baseline_time=old.simulated_time,
                    current_time=rec.simulated_time,
                )
            )
    out.sort(key=lambda r: r.ratio, reverse=True)
    return out


def format_diff(
    regressions: list[Regression],
    *,
    compared: int,
    threshold: float = DEFAULT_THRESHOLD,
) -> str:
    """Human-readable gate verdict."""
    if not regressions:
        return (
            f"bench diff: {compared} record(s) compared, no simulated-cost "
            f"regression above {threshold:.0%}"
        )
    lines = [
        f"bench diff: {len(regressions)} regression(s) above {threshold:.0%} "
        f"({compared} record(s) compared):"
    ]
    lines.extend("  " + r.format() for r in regressions)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The smoke suite behind `make bench-smoke`
# ----------------------------------------------------------------------
def smoke_suite(*, scale_time: float = 1.0) -> list[BenchRecord]:
    """Tiny fixed-seed instances covering the algorithm families.

    Deterministic by construction (seeded generators, simulated costs),
    so the committed baseline matches bit-for-bit until an algorithm or
    cost-model change shifts simulated costs.  ``scale_time``
    multiplies the recorded simulated times — the injection hook the
    regression-gate tests use to prove the gate trips (see
    ``docs/BENCHMARKS.md``).
    """
    from ..analysis.runner import run_algorithm
    from ..graphs import generators as gen
    from ..graphs.distributed import distribute

    cases = [
        ("gnm", gen.gnm(256, 2048, seed=1), 4, ("ditric", "cetric", "tric")),
        ("rmat", gen.rmat(8, 16, seed=1), 4, ("cetric", "cetric2")),
        ("rgg2d", gen.rgg2d(256, expected_edges=2048, seed=1), 8, ("ditric2",)),
    ]
    records: list[BenchRecord] = []
    for graph_name, graph, p, algorithms in cases:
        dist = distribute(graph, num_pes=p)
        for algo in algorithms:
            t0 = time.perf_counter()
            res = run_algorithm(dist, algo)
            wall = time.perf_counter() - t0
            rec = record_from_run(
                f"smoke:{graph_name}", res, wall_seconds=wall, graph=graph_name, seed=1
            )
            if rec.simulated_time is not None and scale_time != 1.0:
                rec = BenchRecord(
                    name=rec.name,
                    params=rec.params,
                    simulated_time=rec.simulated_time * scale_time,
                    total_volume=rec.total_volume,
                    bottleneck_volume=rec.bottleneck_volume,
                    max_messages=rec.max_messages,
                    peak_words=rec.peak_words,
                    wall_seconds=rec.wall_seconds,
                    triangles=rec.triangles,
                )
            records.append(rec)
    return records
