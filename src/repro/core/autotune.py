"""Auto-tuning backend selector (the ``auto`` kernel backend).

Different pair-size regimes favour different kernels: the vectorized
numpy ``searchsorted`` amortizes well on huge balanced batches, the
native merge loops win once blocks fit cache lines, and galloping
binary search dominates on skewed ``|A| << |B|`` pairs.  Instead of
hard-coding that matrix per machine, the ``auto`` backend measures it
once:

* :func:`tune` runs a **seeded one-shot microbenchmark**: for each of
  three representative regimes (``balanced`` / ``skewed`` / ``tiny``)
  it times every *loadable concrete* backend on a synthetic batch
  (fixed seed, so the batch is identical across runs and machines) and
  records the per-regime winner.
* The result is persisted to a JSON cache keyed by platform, Python,
  NumPy and per-backend versions/availability, so later processes —
  including ``ProcessMachine`` workers — skip the measurement.  The
  cache lives next to the native build artifacts
  (``repro.core.native.builder.cache_root``); ``REPRO_TUNER_CACHE``
  overrides the path.
* At dispatch time the ``auto`` backend classifies the incoming batch
  (sizes only — O(1)) and delegates to the cached winner's kernel.

Selection precedence is untouched: ``auto`` runs only when explicitly
selected (``set_backend("auto")`` / ``REPRO_KERNEL_BACKEND=auto`` /
``repro-tc --kernel-backend auto``), so explicit backend choices
always bypass the tuner.  And since every concrete backend satisfies
the kernel contract, ``auto`` is output-identical to every other
backend — only wall clock moves (pinned by ``tests/test_equivalence.py``).
"""

from __future__ import annotations

import json
import logging
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

__all__ = [
    "REGIMES",
    "ENV_TUNER_CACHE",
    "classify_regime",
    "tuner_cache_path",
    "cache_key",
    "tune",
    "cached_winners",
    "load_or_tune",
    "invalidate",
    "make_auto_backend",
]

log = logging.getLogger("repro.kernels")

ENV_TUNER_CACHE = "REPRO_TUNER_CACHE"

#: The pair-size regimes the tuner distinguishes.
REGIMES = ("balanced", "skewed", "tiny")

#: Batches with fewer total elements than this are "tiny" (dispatch
#: overhead dominates any kernel difference).
TINY_TOTAL = 4096
#: B/A concatenation ratio from which a batch counts as "skewed".
SKEW_RATIO = 8

#: Seed for the synthetic microbenchmark batches.
TUNE_SEED = 20230517  # the paper's IPDPS publication date

#: Winners resolved for this process (regime -> backend name).
_WINNERS: dict[str, str] | None = None


def classify_regime(a_size: int, b_size: int, k: int) -> str:
    """O(1) regime label for a pre-conditioned batch (``a <= b`` side)."""
    if a_size + b_size < TINY_TOTAL:
        return "tiny"
    if b_size >= SKEW_RATIO * max(a_size, 1):
        return "skewed"
    return "balanced"


def tuner_cache_path() -> Path:
    override = os.environ.get(ENV_TUNER_CACHE, "").strip()
    if override:
        return Path(override)
    from .native.builder import cache_root

    return cache_root() / "kernel_tuner.json"


def _candidate_backends() -> list[str]:
    """Loadable *concrete* backends (never ``auto`` itself)."""
    from . import backends

    names = []
    for name in backends.available_backends():
        if name == "auto":
            continue
        try:
            backends._load(name)
        except (ImportError, KeyError):
            continue
        names.append(name)
    return names


def cache_key() -> str:
    """Fingerprint of everything that could change the winners."""
    from . import backends

    parts = [
        platform.machine(),
        platform.system(),
        "py" + ".".join(map(str, sys.version_info[:2])),
        "numpy" + np.__version__,
    ]
    for name in sorted(backends.available_backends()):
        if name == "auto":
            continue
        status = "ok"
        try:
            backends._load(name)
        except ImportError:
            status = "unavailable"
        except KeyError:  # pragma: no cover - registry always knows these
            status = "unknown"
        version = ""
        if name == "numba" and status == "ok":
            import numba

            version = numba.__version__
        elif name == "native" and status == "ok":
            from .native import build_key

            version = build_key()
        parts.append(f"{name}={status}:{version}")
    return "|".join(parts)


def _synthetic_batch(rng: np.random.Generator, regime: str):
    """A representative pre-conditioned batch for ``regime``.

    Blocks are strictly-increasing (cumsum of positive steps), i.e.
    sorted unique — the dispatcher's precondition.
    """
    if regime == "balanced":
        k, a_len, b_len, bound_step = 8192, 24, 32, 5
    elif regime == "skewed":
        k, a_len, b_len, bound_step = 1024, 4, 512, 5
    else:  # tiny
        k, a_len, b_len, bound_step = 24, 8, 12, 5
    a = np.cumsum(rng.integers(1, bound_step, size=(k, a_len)), axis=1).ravel()
    b = np.cumsum(rng.integers(1, bound_step, size=(k, b_len)), axis=1).ravel()
    ax = np.arange(k + 1, dtype=np.int64) * a_len
    bx = np.arange(k + 1, dtype=np.int64) * b_len
    bound = int(max(a.max(), b.max())) + 1
    return a.astype(np.int64), ax, b.astype(np.int64), bx, bound


def tune(seed: int = TUNE_SEED, repeats: int = 3) -> dict[str, str]:
    """Run the microbenchmark; returns ``{regime: winner}`` (no I/O)."""
    from . import backends

    candidates = _candidate_backends()
    winners: dict[str, str] = {}
    for regime in REGIMES:
        rng = np.random.default_rng(seed)
        a, ax, b, bx, bound = _synthetic_batch(rng, regime)
        best_name, best_time = "numpy", float("inf")
        for name in candidates:
            kernel = backends._load(name)
            kernel.count(a, ax, b, bx, bound)  # warm-up / JIT / build
            wall = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                kernel.count(a, ax, b, bx, bound)
                wall = min(wall, time.perf_counter() - t0)
            if wall < best_time:
                best_name, best_time = name, wall
        winners[regime] = best_name
    return winners


def cached_winners() -> dict[str, str] | None:
    """The persisted winners for this platform key, if any."""
    path = tuner_cache_path()
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    entry = data.get(cache_key())
    if not isinstance(entry, dict):
        return None
    winners = entry.get("winners")
    if not isinstance(winners, dict) or set(winners) != set(REGIMES):
        return None
    return {str(k): str(v) for k, v in winners.items()}


def _persist(winners: dict[str, str]) -> None:
    path = tuner_cache_path()
    data = {}
    try:
        data = json.loads(path.read_text())
        if not isinstance(data, dict):
            data = {}
    except (OSError, ValueError):
        pass
    data[cache_key()] = {"winners": winners, "tuned_at": time.time()}
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
        tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
    except OSError as exc:  # read-only home: tune per process, don't fail
        log.debug("could not persist tuner cache to %s (%s)", path, exc)


def load_or_tune(force: bool = False) -> dict[str, str]:
    """Winners for this process: cache file, else tune once and persist."""
    global _WINNERS
    if _WINNERS is not None and not force:
        return _WINNERS
    winners = None if force else cached_winners()
    if winners is None:
        log.info("auto backend: tuning kernel backends (one-shot, seeded)")
        winners = tune()
        _persist(winners)
    _WINNERS = winners
    return winners


def invalidate() -> None:
    """Forget the in-process winners (tests; ``backends tune --force``)."""
    global _WINNERS
    _WINNERS = None


def make_auto_backend():
    """Build the ``auto`` :class:`~repro.core.backends.KernelBackend`.

    Each call classifies the (already swapped) batch and delegates to
    the tuned winner for that regime.  Winners are resolved through
    :func:`~repro.core.backends.resolve_backend`, so a cached winner
    that became unavailable degrades to numpy like any other selection.
    """
    from .backends import KernelBackend, resolve_backend

    def _delegate(a_xadj, a_concat, b_concat):
        regime = classify_regime(a_concat.size, b_concat.size, a_xadj.size - 1)
        winner = load_or_tune()[regime]
        backend = resolve_backend(winner)
        if backend.name == "auto":  # pragma: no cover - tuner never picks auto
            backend = resolve_backend("numpy")
        return backend

    def count(a_concat, a_xadj, b_concat, b_xadj, vertex_bound):
        backend = _delegate(a_xadj, a_concat, b_concat)
        return backend.count(a_concat, a_xadj, b_concat, b_xadj, vertex_bound)

    def elements(a_concat, a_xadj, b_concat, b_xadj, vertex_bound):
        backend = _delegate(a_xadj, a_concat, b_concat)
        return backend.elements(a_concat, a_xadj, b_concat, b_xadj, vertex_bound)

    def count_elements(a_concat, a_xadj, b_concat, b_xadj, vertex_bound):
        backend = _delegate(a_xadj, a_concat, b_concat)
        if backend.count_elements is not None:
            return backend.count_elements(
                a_concat, a_xadj, b_concat, b_xadj, vertex_bound
            )
        pair_idx, elems = backend.elements(
            a_concat, a_xadj, b_concat, b_xadj, vertex_bound
        )
        counts = np.bincount(pair_idx, minlength=a_xadj.size - 1).astype(np.int64)
        return counts, pair_idx, elems

    return KernelBackend("auto", count, elements, count_elements)
