"""Distributed triangle enumeration (Section IV-E).

"Since each triangle is found exactly once, this can be easily
generalized to the case of triangle enumeration."  This module does
exactly that: the CETRIC/DITRIC traversal with the element-returning
kernels, yielding on every PE the list of triangles *it discovered*.
The union over PEs is the exact triangle set, each triangle appearing
exactly once (asserted by the tests against the sequential
enumeration).

Useful when the application needs the triangles themselves (motif
analysis, support counting for truss decomposition) rather than
counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..graphs.distributed import DistGraph
from ..net.aggregation import BufferedMessageQueue
from ..net.comm import allreduce
from ..net.indirect import GridRouter
from ..net.machine import PEContext
from .engine import EngineConfig, _post_cut_neighborhoods, _surrogate_filter
from .kernels import record_pairs_elements
from .lcc import _triangles_elements_local
from .preprocessing import build_oriented, exchange_ghost_degrees

__all__ = ["PETriangles", "enumerate_program", "gather_all_triangles"]


@dataclass
class PETriangles:
    """Per-PE enumeration outcome."""

    #: Triangles found on this PE, one row ``[a, b, c]`` with ascending
    #: vertex ids; globally disjoint across PEs and jointly complete.
    triangles: np.ndarray
    #: Global total (consistency check, equals ``sum len(triangles)``).
    total: int


def _rows(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    tri = np.column_stack([a, b, c])
    tri.sort(axis=1)
    return tri


def enumerate_program(
    ctx: PEContext,
    dist: DistGraph,
    config: EngineConfig = EngineConfig(contraction=True),
) -> Generator[None, None, PETriangles]:
    """SPMD triangle enumeration (CETRIC- or DITRIC-flavoured)."""
    lg = dist.view(ctx.rank)
    vlo, vhi = lg.vlo, lg.vhi
    bound = dist.num_vertices + 1

    with ctx.phase("preprocessing"):
        yield from exchange_ghost_degrees(ctx, lg, mode=config.degree_exchange)
        og = build_oriented(ctx, lg, with_ghosts=config.contraction)

    parts: list[np.ndarray] = []
    with ctx.phase("local"):
        a, b, c = _triangles_elements_local(ctx, og, expanded=config.contraction)
        if a.size:
            parts.append(_rows(a, b, c))
        yield

    if config.contraction:
        with ctx.phase("contraction"):
            send_xadj, send_adj = og.contracted()
            ctx.charge(og.oadjncy.size)
    else:
        send_xadj, send_adj = og.oxadj, og.oadjncy

    with ctx.phase("global"):
        threshold = config.threshold_words(lg.num_local_arcs)
        router = (
            GridRouter(ctx, "enum-nbh", threshold)
            if config.indirect
            else BufferedMessageQueue(ctx, "enum-nbh", threshold)
        )
        nloc = lg.num_local_vertices
        s_src = np.repeat(np.arange(nloc, dtype=np.int64), np.diff(send_xadj))
        cut_mask = ~lg.is_local(send_adj)
        c_src = s_src[cut_mask]
        c_dst = send_adj[cut_mask]
        dst_ranks = lg.partition.rank_of(c_dst) if c_dst.size else c_dst
        sends = _surrogate_filter(c_src, dst_ranks, enabled=config.surrogate)
        ctx.charge(c_src.size)
        _post_cut_neighborhoods(
            router, send_xadj, send_adj, c_src, c_dst, dst_ranks, sends, vlo,
            targeted=False,
        )
        records = yield from router.finalize()
        rv, ru, rw = record_pairs_elements(
            ctx,
            records,
            send_xadj if config.contraction else og.oxadj,
            send_adj if config.contraction else og.oadjncy,
            vlo,
            vhi,
            bound,
        )
        if rv.size:
            parts.append(_rows(rv, ru, rw))
        yield

    mine = (
        np.concatenate(parts, axis=0) if parts else np.empty((0, 3), dtype=np.int64)
    )
    total = yield from allreduce(ctx, int(mine.shape[0]), lambda x, y: x + y)
    return PETriangles(triangles=mine, total=int(total))


def gather_all_triangles(values: list[PETriangles]) -> np.ndarray:
    """Union of per-PE triangle lists, canonically sorted (driver-side)."""
    parts = [v.triangles for v in values if v.triangles.size]
    if not parts:
        return np.empty((0, 3), dtype=np.int64)
    tri = np.concatenate(parts, axis=0)
    order = np.lexsort((tri[:, 2], tri[:, 1], tri[:, 0]))
    return tri[order]
