"""Orienting graphs along a total order; out-/in-neighborhoods.

Applying the degree order of :mod:`repro.core.ordering` to an
undirected :class:`~repro.graphs.csr.CSRGraph` keeps, for every vertex
``v``, only the out-neighbors ``N_v^+ = {u : v ≺ u}``.  The result is
an *oriented* CSR graph (one arc per edge) that is acyclic by
construction — the property that guarantees each triangle is counted
exactly once from its ≺-smallest vertex.

The orientation is a pure NumPy filter over the adjacency array; no
per-edge Python work.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from .ordering import DegreeOrder

__all__ = ["orient", "orient_by_degree", "out_neighborhoods", "is_acyclic_orientation"]


def orient(graph: CSRGraph, order: DegreeOrder) -> CSRGraph:
    """Keep only arcs ``(v, u)`` with ``v ≺ u`` under ``order``.

    Neighborhood sortedness (by vertex id) is preserved because
    filtering a sorted sequence keeps it sorted.
    """
    if graph.oriented:
        raise ValueError("graph is already oriented")
    if order.num_vertices != graph.num_vertices:
        raise ValueError("order covers a different vertex count")
    src = np.repeat(graph.vertices(), graph.degrees)
    keep = order.compare(src, graph.adjncy)
    new_adj = graph.adjncy[keep]
    # Recompute offsets from per-vertex kept counts.
    kept_counts = np.bincount(src[keep], minlength=graph.num_vertices)
    xadj = np.zeros(graph.num_vertices + 1, dtype=np.int64)
    np.cumsum(kept_counts, out=xadj[1:])
    return CSRGraph(
        xadj,
        new_adj,
        oriented=True,
        sorted_neighborhoods=graph.sorted_neighborhoods,
        name=graph.name,
    )


def orient_by_degree(graph: CSRGraph) -> CSRGraph:
    """Orient with the COMPACT-FORWARD degree order (paper default)."""
    return orient(graph, DegreeOrder.from_degrees(graph.degrees))


def out_neighborhoods(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Return oriented ``(xadj, adjncy)`` without building a new graph.

    Convenience for kernels that want raw arrays; equivalent to
    ``orient_by_degree(graph)`` but skipping the CSRGraph wrapper when
    the input is already oriented.
    """
    if graph.oriented:
        return graph.xadj, graph.adjncy
    og = orient_by_degree(graph)
    return og.xadj, og.adjncy


def is_acyclic_orientation(oriented: CSRGraph) -> bool:
    """Check that the arc relation is a DAG (sanity/test helper).

    Any orientation along a total order is acyclic; this verifies it
    directly by checking that every arc increases the degree-order key.
    """
    if not oriented.oriented:
        raise ValueError("expected an oriented graph")
    src = np.repeat(oriented.vertices(), oriented.degrees)
    # Out-degree keys are not the orientation keys; a DAG check via
    # topological sort is the robust route.
    import networkx as nx

    dg = nx.DiGraph()
    dg.add_nodes_from(range(oriented.num_vertices))
    dg.add_edges_from(zip(src.tolist(), oriented.adjncy.tolist()))
    return nx.is_directed_acyclic_graph(dg)
