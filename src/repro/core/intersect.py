"""Neighborhood set-intersection kernels with work accounting.

The inner loop of every EDGEITERATOR variant is
``|N_v^+ ∩ N_u^+|`` over sorted arrays.  The paper implements the
merge-based intersection of COMPACT-FORWARD and charges each
intersection ``|a| + |b|`` comparisons; GPU codes use binary-search
(``searchsorted``) variants instead (Section III-C).

Per the HPC-Python guides, hot paths must not loop per edge in Python.
The batch kernels here vectorize *across pairs*: all needle arrays are
concatenated, offset-keyed so each pair's haystack occupies a disjoint
key range, and one global :func:`numpy.searchsorted` resolves every
membership test at once.  Work is *accounted* in the merge model
(``|a| + |b|`` per pair), independent of how the kernel executes it, so
the simulated cost model matches the paper's analysis rather than
Python's constant factors.

``batch_intersect_count`` / ``batch_intersect_elements`` /
``batch_intersect_count_elements`` are *dispatchers*: they own
validation, the ops accounting, the empty fast path and the
small-into-large side swap, then hand the pre-conditioned arrays to
the kernel backend selected via :mod:`repro.core.backends` (``numpy``
by default; ``REPRO_KERNEL_BACKEND=native`` / ``numba`` /
``repro-tc --kernel-backend ...`` selects a compiled merge-loop
backend when available, ``auto`` the per-regime tuned winner).  The
fused variant returns per-pair counts *and* the hit streams from one
backend traversal — the shape the enumeration/LCC paths consume.
Because everything the cost model sees is computed *before* the
backend runs, simulated accounting is identical for every backend by
construction — see ``docs/KERNELS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "intersect_count",
    "intersect_sorted",
    "merge_cost",
    "BatchIntersections",
    "batch_intersect_count",
    "batch_intersect_elements",
    "batch_intersect_count_elements",
    "concat_xadj",
    "gather_blocks",
]


def gather_blocks(
    xadj: np.ndarray, adjncy: np.ndarray, block_ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather CSR blocks ``adjncy[xadj[i]:xadj[i+1]]`` for many ``i`` at once.

    Returns ``(concat, out_xadj)`` in the batch layout the intersection
    kernels expect — the vectorized equivalent of looping
    ``[adjncy[xadj[i]:xadj[i+1]] for i in block_ids]``.
    """
    xadj = np.asarray(xadj, dtype=np.int64)
    adjncy = np.asarray(adjncy, dtype=np.int64)
    block_ids = np.asarray(block_ids, dtype=np.int64)
    sizes = xadj[block_ids + 1] - xadj[block_ids]
    out_xadj = concat_xadj(sizes)
    total = int(out_xadj[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64), out_xadj
    # Global positions: start of each block repeated, plus the offset
    # of each element within its block.
    starts = np.repeat(xadj[block_ids], sizes)
    within = np.arange(total, dtype=np.int64) - np.repeat(out_xadj[:-1], sizes)
    return adjncy[starts + within], out_xadj


def merge_cost(size_a: int, size_b: int) -> int:
    """Comparison count charged for one merge-based intersection."""
    return int(size_a) + int(size_b)


def intersect_count(a: np.ndarray, b: np.ndarray) -> int:
    """``|a ∩ b|`` for two sorted unique arrays (scalar kernel)."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.size == 0 or b.size == 0:
        return 0
    if a.size > b.size:  # search the smaller array in the bigger one
        a, b = b, a
    idx = np.searchsorted(b, a)
    idx_clipped = np.minimum(idx, b.size - 1)
    return int(np.count_nonzero((idx < b.size) & (b[idx_clipped] == a)))


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a ∩ b`` as a sorted array (used by enumeration / LCC paths)."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.size == 0 or b.size == 0:
        return np.empty(0, dtype=np.int64)
    if a.size > b.size:
        a, b = b, a
    idx = np.searchsorted(b, a)
    idx_clipped = np.minimum(idx, b.size - 1)
    hit = (idx < b.size) & (b[idx_clipped] == a)
    return a[hit]


def concat_xadj(sizes: np.ndarray) -> np.ndarray:
    """Offsets array for a batch of variable-length blocks."""
    sizes = np.asarray(sizes, dtype=np.int64)
    xadj = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=xadj[1:])
    return xadj


@dataclass(frozen=True)
class BatchIntersections:
    """Result of a batched intersection.

    Attributes
    ----------
    counts:
        ``counts[i] = |A_i ∩ B_i|`` for pair ``i``.
    ops:
        Total charged comparisons, ``sum_i (|A_i| + |B_i|)`` — the
        quantity fed to the simulated cost model.
    """

    counts: np.ndarray
    ops: int

    @property
    def total(self) -> int:
        """Sum of all per-pair counts."""
        return int(self.counts.sum())


def _keyed(concat: np.ndarray, xadj: np.ndarray, bound: int) -> tuple[np.ndarray, np.ndarray]:
    """Offset-key a concatenation so block ``i`` lives in its own range."""
    k = xadj.size - 1
    pair_of = np.repeat(np.arange(k, dtype=np.int64), np.diff(xadj))
    return concat + pair_of * np.int64(bound), pair_of


def _numpy_batch_count(
    a_concat: np.ndarray,
    a_xadj: np.ndarray,
    b_concat: np.ndarray,
    b_xadj: np.ndarray,
    vertex_bound: int,
) -> np.ndarray:
    """Raw numpy count kernel (dispatcher preconditions apply).

    The keyed concatenation of the B side is globally sorted because
    every block is sorted and blocks occupy increasing key ranges, so a
    single ``searchsorted`` answers all membership queries.
    """
    k = a_xadj.size - 1
    keyed_a, pair_a = _keyed(a_concat, a_xadj, vertex_bound)
    keyed_b, _ = _keyed(b_concat, b_xadj, vertex_bound)
    idx = np.searchsorted(keyed_b, keyed_a)
    idx_clipped = np.minimum(idx, keyed_b.size - 1)
    hit = (idx < keyed_b.size) & (keyed_b[idx_clipped] == keyed_a)
    return np.bincount(pair_a[hit], minlength=k).astype(np.int64)


def _numpy_batch_elements(
    a_concat: np.ndarray,
    a_xadj: np.ndarray,
    b_concat: np.ndarray,
    b_xadj: np.ndarray,
    vertex_bound: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Raw numpy elements kernel (dispatcher preconditions apply)."""
    keyed_a, pair_a = _keyed(a_concat, a_xadj, vertex_bound)
    keyed_b, _ = _keyed(b_concat, b_xadj, vertex_bound)
    idx = np.searchsorted(keyed_b, keyed_a)
    idx_clipped = np.minimum(idx, keyed_b.size - 1)
    hit = (idx < keyed_b.size) & (keyed_b[idx_clipped] == keyed_a)
    return pair_a[hit], a_concat[hit]


def _numpy_batch_count_elements(
    a_concat: np.ndarray,
    a_xadj: np.ndarray,
    b_concat: np.ndarray,
    b_xadj: np.ndarray,
    vertex_bound: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Raw numpy fused kernel: one keyed search feeds both outputs."""
    k = a_xadj.size - 1
    keyed_a, pair_a = _keyed(a_concat, a_xadj, vertex_bound)
    keyed_b, _ = _keyed(b_concat, b_xadj, vertex_bound)
    idx = np.searchsorted(keyed_b, keyed_a)
    idx_clipped = np.minimum(idx, keyed_b.size - 1)
    hit = (idx < keyed_b.size) & (keyed_b[idx_clipped] == keyed_a)
    pair_idx = pair_a[hit]
    counts = np.bincount(pair_idx, minlength=k).astype(np.int64)
    return counts, pair_idx, a_concat[hit]


def _active_backend():
    # Imported lazily: backends.py pulls the raw numpy kernels from
    # this module at import time, so the dependency must point one way
    # at module load.
    from .backends import get_backend

    return get_backend()


def batch_intersect_count(
    a_concat: np.ndarray,
    a_xadj: np.ndarray,
    b_concat: np.ndarray,
    b_xadj: np.ndarray,
    vertex_bound: int,
) -> BatchIntersections:
    """Count ``|A_i ∩ B_i|`` for many pairs of sorted unique blocks at once.

    Parameters
    ----------
    a_concat, a_xadj:
        Concatenated A-side blocks and their offsets (``k + 1`` entries
        for ``k`` pairs); each block sorted ascending, values in
        ``[0, vertex_bound)``.
    b_concat, b_xadj:
        Same for the B side; must describe the same number of pairs.
    vertex_bound:
        Exclusive upper bound on element values (usually ``n``); used
        for the offset keying.

    Notes
    -----
    Validation, the ops accounting, the empty fast path and the side
    swap happen here; only the final counts come from the selected
    kernel backend, so the simulated cost is backend-independent.
    """
    a_concat = np.ascontiguousarray(a_concat, dtype=np.int64)
    b_concat = np.ascontiguousarray(b_concat, dtype=np.int64)
    a_xadj = np.ascontiguousarray(a_xadj, dtype=np.int64)
    b_xadj = np.ascontiguousarray(b_xadj, dtype=np.int64)
    if a_xadj.size != b_xadj.size:
        raise ValueError("A and B sides must have the same pair count")
    k = a_xadj.size - 1
    ops = merge_cost(a_concat.size, b_concat.size)
    if k == 0 or a_concat.size == 0 or b_concat.size == 0:
        return BatchIntersections(np.zeros(k, dtype=np.int64), ops)
    if a_concat.size > b_concat.size:
        # Search the smaller concatenation in the bigger one (the
        # scalar kernels' small-into-large rule, chosen per chunk by
        # total size).  Output-identical: hits are the common keyed
        # values, counted per pair, whichever side is searched; the
        # charged ops stay the symmetric merge cost.
        a_concat, b_concat = b_concat, a_concat
        a_xadj, b_xadj = b_xadj, a_xadj
    counts = _active_backend().count(a_concat, a_xadj, b_concat, b_xadj, vertex_bound)
    return BatchIntersections(counts, ops)


def batch_intersect_elements(
    a_concat: np.ndarray,
    a_xadj: np.ndarray,
    b_concat: np.ndarray,
    b_xadj: np.ndarray,
    vertex_bound: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Like :func:`batch_intersect_count` but return the hits themselves.

    Returns
    -------
    (pair_idx, elements, ops):
        For every common element ``w`` of pair ``i``, one entry with
        ``pair_idx == i`` and ``elements == w``.  Needed by triangle
        *enumeration* and the per-vertex Δ counters of the LCC
        extension, where the identity of the closing vertex matters.
    """
    a_concat = np.ascontiguousarray(a_concat, dtype=np.int64)
    b_concat = np.ascontiguousarray(b_concat, dtype=np.int64)
    a_xadj = np.ascontiguousarray(a_xadj, dtype=np.int64)
    b_xadj = np.ascontiguousarray(b_xadj, dtype=np.int64)
    if a_xadj.size != b_xadj.size:
        raise ValueError("A and B sides must have the same pair count")
    ops = merge_cost(a_concat.size, b_concat.size)
    if a_xadj.size - 1 == 0 or a_concat.size == 0 or b_concat.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), ops
    if a_concat.size > b_concat.size:
        # Small-into-large, as in batch_intersect_count.  The returned
        # (pair_idx, elements) stream is identical either way: blocks
        # are sorted unique, so hits emerge in (pair, element) order
        # from whichever side is searched.
        a_concat, b_concat = b_concat, a_concat
        a_xadj, b_xadj = b_xadj, a_xadj
    pair_idx, elements = _active_backend().elements(
        a_concat, a_xadj, b_concat, b_xadj, vertex_bound
    )
    return pair_idx, elements, ops


def batch_intersect_count_elements(
    a_concat: np.ndarray,
    a_xadj: np.ndarray,
    b_concat: np.ndarray,
    b_xadj: np.ndarray,
    vertex_bound: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Fused counts + hits for many pairs in one backend traversal.

    Returns
    -------
    (counts, pair_idx, elements, ops):
        ``counts[i] = |A_i ∩ B_i|`` per pair **and** the
        ``(pair_idx, elements)`` hit streams of
        :func:`batch_intersect_elements`, consistent by construction
        (``counts == bincount(pair_idx, minlength=k)``).  Used by the
        enumeration / LCC / per-vertex-Δ paths, which need the closing
        vertices *and* per-pair multiplicities: one fused call replaces
        a count pass plus an elements pass (or deriving one output from
        the other with an extra traversal of the hit stream).

    Notes
    -----
    Validation, ops accounting, the empty fast path and the side swap
    live here, exactly as in the unfused dispatchers, so simulated
    accounting stays bit-identical across backends by construction.
    Backends without a fused kernel (``count_elements is None``) run
    their elements kernel and the dispatcher derives the counts.
    """
    a_concat = np.ascontiguousarray(a_concat, dtype=np.int64)
    b_concat = np.ascontiguousarray(b_concat, dtype=np.int64)
    a_xadj = np.ascontiguousarray(a_xadj, dtype=np.int64)
    b_xadj = np.ascontiguousarray(b_xadj, dtype=np.int64)
    if a_xadj.size != b_xadj.size:
        raise ValueError("A and B sides must have the same pair count")
    k = a_xadj.size - 1
    ops = merge_cost(a_concat.size, b_concat.size)
    if k == 0 or a_concat.size == 0 or b_concat.size == 0:
        e = np.empty(0, dtype=np.int64)
        return np.zeros(k, dtype=np.int64), e, e.copy(), ops
    if a_concat.size > b_concat.size:
        # Small-into-large, as in the unfused dispatchers; outputs are
        # side-invariant because blocks are sorted unique.
        a_concat, b_concat = b_concat, a_concat
        a_xadj, b_xadj = b_xadj, a_xadj
    backend = _active_backend()
    if backend.count_elements is not None:
        counts, pair_idx, elements = backend.count_elements(
            a_concat, a_xadj, b_concat, b_xadj, vertex_bound
        )
    else:
        pair_idx, elements = backend.elements(
            a_concat, a_xadj, b_concat, b_xadj, vertex_bound
        )
        counts = np.bincount(pair_idx, minlength=k).astype(np.int64)
    return counts, pair_idx, elements, ops
