"""Wedge (open 2-path) counting — the ``wedges`` column of Table I.

A *wedge* at vertex ``v`` is an unordered pair of neighbors
``{u, w} ⊆ N_v``; the total wedge count ``sum_v C(d_v, 2)`` bounds the
work of wedge-checking algorithms (HavoqGT's visitor approach generates
wedges of the *oriented* graph instead, which is what
:func:`oriented_wedges` reports).
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from .orientation import orient_by_degree

__all__ = ["wedge_count", "wedges_per_vertex", "oriented_wedges", "global_clustering_coefficient"]


def wedges_per_vertex(graph: CSRGraph) -> np.ndarray:
    """``C(d_v, 2)`` for every vertex (undirected degrees)."""
    if graph.oriented:
        raise ValueError("wedge counts are defined on the undirected graph")
    d = graph.degrees
    return d * (d - 1) // 2


def wedge_count(graph: CSRGraph) -> int:
    """Total number of wedges ``sum_v C(d_v, 2)``."""
    return int(wedges_per_vertex(graph).sum())


def oriented_wedges(graph: CSRGraph) -> int:
    """Wedges of the degree-oriented graph, ``sum_v C(d_v^+, 2)``.

    This is the number of candidate pairs HavoqGT-style algorithms
    test for closure; degree orientation shrinks it dramatically on
    skewed graphs.
    """
    og = graph if graph.oriented else orient_by_degree(graph)
    d = og.degrees
    return int((d * (d - 1) // 2).sum())


def global_clustering_coefficient(graph: CSRGraph, triangles: int | None = None) -> float:
    """Transitivity ``3 T / W`` (0.0 for wedge-free graphs)."""
    w = wedge_count(graph)
    if w == 0:
        return 0.0
    if triangles is None:
        from .edge_iterator import edge_iterator

        triangles = edge_iterator(graph).triangles
    return 3.0 * triangles / w
