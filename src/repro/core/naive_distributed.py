"""The basic distributed EDGEITERATOR (paper Algorithm 2 / Fig. 2).

The direct adaptation of EDGEITERATOR to a 1D-partitioned graph:
process local arcs locally, ship ``N_v^+`` across every cut arc.
Without aggregation each neighborhood is its own message — the
configuration whose startup overhead Fig. 2 demonstrates; with
aggregation it becomes DITRIC minus the surrogate filter.
"""

from __future__ import annotations

from typing import Generator

from ..graphs.distributed import DistGraph
from ..net.machine import PEContext
from .engine import EngineConfig, PECounts, counting_program

__all__ = ["naive_program", "NAIVE_CONFIG", "NAIVE_AGGREGATED_CONFIG"]

#: Algorithm 2 verbatim: no aggregation, no surrogate (duplicate sends
#: of the same neighborhood to the same PE do happen, as in the paper's
#: motivating discussion).
NAIVE_CONFIG = EngineConfig(
    contraction=False, aggregate=False, indirect=False, surrogate=False
)

#: Algorithm 2 plus dynamic aggregation — the "with aggregation" series
#: of Fig. 2.
NAIVE_AGGREGATED_CONFIG = EngineConfig(
    contraction=False, aggregate=True, indirect=False, surrogate=False
)


def naive_program(
    ctx: PEContext,
    dist: DistGraph,
    *,
    aggregate: bool = False,
) -> Generator[None, None, PECounts]:
    """SPMD program for the basic distributed edge iterator."""
    config = NAIVE_AGGREGATED_CONFIG if aggregate else NAIVE_CONFIG
    return (yield from counting_program(ctx, dist, config))
