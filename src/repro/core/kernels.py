"""Batched counting kernels shared by all distributed algorithms.

Each helper performs many ``|A ∩ B|`` intersections in one vectorized
batch (per the HPC-Python guidance) and charges the merge-model cost to
the PE's simulated clock.  Work is chunked so temporary arrays stay
bounded even when a PE processes millions of arc pairs.

Received record batches arrive as a
:class:`~repro.net.frames.RecordFrame` — already in the CSR layout the
batch kernels consume — so the receiver side runs without any
per-record Python iteration.  Plain ``list[Record]`` inputs (hand-rolled
callers, the TriC baseline) are packed into a frame on entry.

The ``batch_intersect_*`` calls dispatch to the kernel backend selected
via :mod:`repro.core.backends` (``REPRO_KERNEL_BACKEND`` /
``repro-tc --kernel-backend``): ``numpy`` by default, or the compiled
``numba`` merge loops when available.  The charged ops are computed by
the dispatcher before any backend runs, so everything in this module is
backend-agnostic — see ``docs/KERNELS.md``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..net.frames import Record, RecordFrame
from ..net.machine import PEContext
from .intersect import (
    batch_intersect_count,
    batch_intersect_count_elements,
    gather_blocks,
)

__all__ = [
    "as_frame",
    "count_csr_pairs",
    "count_record_pairs",
    "record_pairs_elements",
    "chunked",
]

#: Default number of arc pairs per vectorized batch.
CHUNK_PAIRS = 1 << 18


def chunked(total: int, chunk: int = CHUNK_PAIRS) -> Iterator[slice]:
    """Yield slices covering ``range(total)`` in ``chunk``-sized pieces."""
    for start in range(0, total, chunk):
        yield slice(start, min(start + chunk, total))


def as_frame(records: RecordFrame | list[Record]) -> RecordFrame:
    """Frame view of a received batch (packs legacy record lists)."""
    if isinstance(records, RecordFrame):
        return records
    return RecordFrame.from_records(records)


def count_csr_pairs(
    ctx: PEContext,
    left_xadj: np.ndarray,
    left_adj: np.ndarray,
    left_slots: np.ndarray,
    right_xadj: np.ndarray,
    right_adj: np.ndarray,
    right_slots: np.ndarray,
    bound: int,
) -> int:
    """Sum of ``|L_i ∩ R_i|`` over pairs of CSR blocks.

    Pair ``i`` intersects block ``left_slots[i]`` of the left CSR with
    block ``right_slots[i]`` of the right CSR.  Charges merge cost.
    """
    if left_slots.size != right_slots.size:
        raise ValueError("slot arrays must align")
    total = 0
    for sl in chunked(left_slots.size):
        lcat, lx = gather_blocks(left_xadj, left_adj, left_slots[sl])
        rcat, rx = gather_blocks(right_xadj, right_adj, right_slots[sl])
        res = batch_intersect_count(lcat, lx, rcat, rx, bound)
        ctx.charge(res.ops)
        total += res.total
    return total


def _expand_record_pairs(
    ctx: PEContext,
    frame: RecordFrame,
    vlo: int,
    vhi: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """For received records, enumerate the (record, local target) pairs.

    A record with an explicit target (Algorithm 2 shape) yields exactly
    one pair for that edge.  A broadcast record (surrogate shape)
    yields one pair per owned ``u ∈ A(v)``.  Returns
    ``(rxadj, radj, rec_idx, targets)``: the record-CSR plus, per pair,
    its record index and owned ``u``.  Works entirely on the frame's
    arrays — no per-record iteration.
    """
    rxadj = frame.xadj
    radj = frame.neighbors
    has_target = frame.targets >= 0
    rec_idx_parts: list[np.ndarray] = []
    target_parts: list[np.ndarray] = []
    if np.any(has_target):
        idx = np.flatnonzero(has_target)
        tg = frame.targets[idx]
        ok = (tg >= vlo) & (tg < vhi)
        rec_idx_parts.append(idx[ok])
        target_parts.append(tg[ok])
        ctx.charge(idx.size)
    if not np.all(has_target):
        # Entries of broadcast records only.
        rec_of_entry = np.repeat(
            np.arange(frame.num_records, dtype=np.int64), np.diff(rxadj)
        )
        bmask = ~has_target[rec_of_entry]
        cand_rec = rec_of_entry[bmask]
        cand_u = radj[bmask]
        local_mask = (cand_u >= vlo) & (cand_u < vhi)
        rec_idx_parts.append(cand_rec[local_mask])
        target_parts.append(cand_u[local_mask])
        ctx.charge(cand_u.size)  # scan for local targets (Algorithm 3 line 15)
    rec_idx = (
        np.concatenate(rec_idx_parts) if rec_idx_parts else np.empty(0, dtype=np.int64)
    )
    targets = (
        np.concatenate(target_parts) if target_parts else np.empty(0, dtype=np.int64)
    )
    return rxadj, radj, rec_idx, targets


def count_record_pairs(
    ctx: PEContext,
    records: RecordFrame | list[Record],
    local_xadj: np.ndarray,
    local_adj: np.ndarray,
    vlo: int,
    vhi: int,
    bound: int,
) -> int:
    """Receiver-side counting: ``sum |A(v) ∩ A(u)|`` for received records.

    ``local_xadj``/``local_adj`` is the receiver's oriented (or
    contracted) CSR over owned-vertex slots.  For every record
    ``(v, A(v))`` and every ``u ∈ A(v) ∩ V_i``, intersect the record's
    array with the local ``A(u)`` (Algorithm 2 lines 6-7 /
    Algorithm 3 lines 14-16).
    """
    frame = as_frame(records)
    rxadj, radj, rec_idx, targets = _expand_record_pairs(ctx, frame, vlo, vhi)
    if rec_idx.size == 0:
        return 0
    total = 0
    for sl in chunked(rec_idx.size):
        # Left side: each pair re-reads its record's full array.
        lcat, lx = gather_blocks(rxadj, radj, rec_idx[sl])
        rcat, rx = gather_blocks(local_xadj, local_adj, targets[sl] - vlo)
        res = batch_intersect_count(lcat, lx, rcat, rx, bound)
        ctx.charge(res.ops)
        total += res.total
    return total


def record_pairs_elements(
    ctx: PEContext,
    records: RecordFrame | list[Record],
    local_xadj: np.ndarray,
    local_adj: np.ndarray,
    vlo: int,
    vhi: int,
    bound: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`count_record_pairs` but returning the triangles.

    Returns ``(v_ids, u_ids, w_ids)`` — one entry per triangle found at
    this receiver, where ``v`` is the record vertex, ``u`` the owned
    middle vertex and ``w`` the closing vertex.  Needed by the LCC
    extension, which must credit all three corners.
    """
    frame = as_frame(records)
    rxadj, radj, rec_idx, targets = _expand_record_pairs(ctx, frame, vlo, vhi)
    if rec_idx.size == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), e.copy()
    vertices = frame.vertices
    v_out, u_out, w_out = [], [], []
    for sl in chunked(rec_idx.size):
        lcat, lx = gather_blocks(rxadj, radj, rec_idx[sl])
        rcat, rx = gather_blocks(local_xadj, local_adj, targets[sl] - vlo)
        counts, _, closing, ops = batch_intersect_count_elements(lcat, lx, rcat, rx, bound)
        ctx.charge(ops)
        # The hit stream is in (pair, element) order, so expanding the
        # per-pair endpoints by the fused counts reproduces the
        # endpoint-per-hit gather without indexing through pair_idx.
        v_out.append(np.repeat(vertices[rec_idx[sl]], counts))
        u_out.append(np.repeat(targets[sl], counts))
        w_out.append(closing)
    return (
        np.concatenate(v_out),
        np.concatenate(u_out),
        np.concatenate(w_out),
    )
