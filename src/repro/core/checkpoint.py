"""Coordinated checkpoint/restart for simulated SPMD runs.

The counting pipeline has natural phase boundaries (Lemma 1's
decomposition: preprocessing → local counting → contraction → global
counting).  Fault-tolerant programs bracket each phase with

.. code-block:: python

    state = ctx.restore("local")
    if state is None:
        state = ...compute the phase...
        ctx.checkpoint("local", state)

so that after a crash-stop the run is re-executed from the start but
every phase up to the last *globally stable* checkpoint is replayed
from its snapshot instead of recomputed — only the lost phase runs
again.

Consistency
-----------
Restart safety hinges on all PEs agreeing on which phases replay: if
one PE restored "local" while a peer recomputed it, the recomputing
peer would re-send messages the restorer never receives (or vice
versa) and the machine would deadlock.  :meth:`CheckpointStore.
prune_to_stable` enforces agreement by discarding everything beyond
the longest snapshot prefix shared by *all* ranks — the simulated
analogue of coordinated (Chandy–Lamport-style) checkpointing, where a
checkpoint only counts once every rank has written it.

Costs
-----
Writing and reading snapshots is charged to the alpha-beta model like
messaging stable storage (``alpha + beta * state_words``), so
checkpoint cadence is visible in simulated time.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

import numpy as np

from ..net.machine import Machine, MachineResult, PECrashError

__all__ = [
    "BuddyCheckpointStore",
    "CheckpointStore",
    "RecoveryResult",
    "run_with_recovery",
    "state_words",
]


def state_words(state: Any) -> int:
    """Size of a snapshot in machine words (cost-model currency).

    Numpy arrays count their elements; containers count their items
    recursively; scalars and everything unsized count one word.  The
    estimate only needs to be deterministic and roughly proportional
    to the real serialization size.
    """
    if isinstance(state, np.ndarray):
        return max(1, int(state.size))
    if isinstance(state, dict):
        return max(1, sum(1 + state_words(v) for v in state.values()))
    if isinstance(state, (list, tuple, set, frozenset)):
        return max(1, sum(state_words(v) for v in state))
    return 1


class CheckpointStore:
    """Per-rank ordered snapshot lists with stable-prefix pruning.

    One store outlives the :class:`~repro.net.machine.Machine` runs it
    serves: :func:`run_with_recovery` keeps it across restart attempts
    so re-executions find the surviving snapshots.  Snapshots are
    deep-copied on the way in *and* out — a program mutating restored
    state cannot corrupt the stored copy a later restart will need.
    """

    #: Whether snapshots are replicated to a partner rank (the buddy
    #: scheme localized recovery restores from).  Plain stores are
    #: stable-storage only; ``Machine(recovery="localized")`` rejects
    #: them (lint rule R14 flags it statically).
    supports_partner_replication = False

    def __init__(self, num_pes: int):
        if num_pes < 1:
            raise ValueError("need at least one PE")
        self._snaps: list[list[tuple[str, Any, int]]] = [[] for _ in range(num_pes)]
        self._cursors: list[int] = [0] * num_pes

    @property
    def num_pes(self) -> int:
        """Number of ranks the store tracks."""
        return len(self._snaps)

    def begin_run(self) -> None:
        """Rewind every rank's replay cursor (called by ``Machine.run``)."""
        self._cursors = [0] * len(self._snaps)

    def names(self, rank: int) -> list[str]:
        """Snapshot names of ``rank`` in checkpoint order."""
        return [name for name, _, _ in self._snaps[rank]]

    def save(self, rank: int, name: str, state: Any) -> int:
        """Record a snapshot; returns its size in words (for costing).

        Anything the rank had checkpointed beyond its current replay
        position belongs to an abandoned execution and is truncated —
        the re-run's snapshots supersede it.
        """
        if state is None:
            raise ValueError("checkpoint state must not be None")
        snaps = self._snaps[rank]
        cursor = self._cursors[rank]
        del snaps[cursor:]
        words = state_words(state)
        snaps.append((name, copy.deepcopy(state), words))
        self._cursors[rank] = cursor + 1
        return words

    def load(self, rank: int, name: str) -> tuple[Any, int] | None:
        """Replay the next snapshot if it is named ``name``.

        Returns ``(state, words)`` and advances the rank's cursor, or
        ``None`` when the stable prefix is exhausted (or names
        mismatch, which means the program's phase structure changed —
        the phase is then recomputed and re-checkpointed).
        """
        snaps = self._snaps[rank]
        cursor = self._cursors[rank]
        if cursor < len(snaps) and snaps[cursor][0] == name:
            _, state, words = snaps[cursor]
            self._cursors[rank] = cursor + 1
            return copy.deepcopy(state), words
        return None

    def prune_to_stable(self) -> int:
        """Discard snapshots past the longest all-ranks-agree prefix.

        Returns the stable prefix length.  After pruning, every rank
        holds the same sequence of snapshot *names*, so a restarted
        run replays the same phases on every PE — the property that
        keeps the SPMD message pattern consistent across a restart.
        """
        depth = min((len(s) for s in self._snaps), default=0)
        stable = 0
        for i in range(depth):
            names = {s[i][0] for s in self._snaps}
            if len(names) != 1:
                break
            stable = i + 1
        for snaps in self._snaps:
            del snaps[stable:]
        return stable


class BuddyCheckpointStore(CheckpointStore):
    """Checkpoints with partner replication (localized recovery).

    Each rank's snapshots are also held by a *partner* rank at offset
    ``partner_offset`` (mod p) — the simulated analogue of buddy
    checkpointing, where recovery state survives a single failure
    without a global stable-storage round.  ``ctx.checkpoint`` prices
    the replica shipment as a real message (both endpoints pay
    ``alpha + beta * words``), and localized recovery restores a
    crashed rank from :meth:`replica_words` worth of partner data
    instead of re-reading global storage.

    The store itself keeps one authoritative copy per rank (this is a
    simulation — the partner's replica is the *cost* of the scheme,
    not a second data structure); what the buddy discipline changes is
    who pays, and that a respawned rank can rewind alone:
    :meth:`respawn_rank` resets one cursor where the coordinated
    :meth:`prune_to_stable` would have discarded every rank's tail.
    Simultaneous failure of a rank *and* its partner is out of scope
    (it would need a second replica level).
    """

    supports_partner_replication = True

    def __init__(self, num_pes: int, *, partner_offset: int = 1):
        super().__init__(num_pes)
        if num_pes > 1 and partner_offset % num_pes == 0:
            raise ValueError(
                "partner_offset must not map a rank onto itself (mod num_pes)"
            )
        self.partner_offset = int(partner_offset)

    def partner_of(self, rank: int) -> int:
        """The rank holding ``rank``'s checkpoint replicas."""
        return (rank + self.partner_offset) % self.num_pes

    def replica_words(self, rank: int) -> int:
        """Words the partner ships to restore ``rank`` (all snapshots)."""
        return sum(words for _, _, words in self._snaps[rank])

    def respawn_rank(self, rank: int) -> None:
        """Rewind one rank's replay cursor for an in-place respawn.

        Localized recovery's counterpart of :meth:`begin_run`: only
        the crashed rank re-executes, so only its cursor rewinds —
        survivors' cursors (already past their snapshots) are
        untouched, and no global stable-prefix pruning is needed.
        """
        self._cursors[rank] = 0


@dataclass
class RecoveryResult:
    """A completed run plus the crash/restart history that produced it."""

    result: MachineResult
    #: Number of restarts (0 = the first attempt succeeded).
    restarts: int
    #: ``(rank, event_index)`` of each crash, in order.
    crashes: tuple[tuple[int, int], ...] = field(default=())
    #: Simulated makespan of each *aborted* attempt at the moment its
    #: crash fired — the work global restart throws away.
    attempt_times: tuple[float, ...] = field(default=())

    @property
    def values(self) -> list[Any]:
        """Per-PE return values of the surviving run."""
        return self.result.values

    @property
    def time(self) -> float:
        """Modelled running time of the surviving run."""
        return self.result.time

    @property
    def lost_time(self) -> float:
        """Simulated seconds spent on attempts that were thrown away."""
        return sum(self.attempt_times)

    @property
    def total_time(self) -> float:
        """Cumulative simulated cost across *all* attempts.

        ``lost_time + time`` — what the machine actually paid for the
        answer, as opposed to :attr:`time`, which only prices the
        surviving run and silently hides the cost of global restarts.
        This is the number localized recovery competes against in
        ``benchmarks/bench_recovery.py``.
        """
        return self.lost_time + self.result.time


def run_with_recovery(
    machine: Machine,
    program: Callable[..., Generator[None, None, Any]],
    /,
    *args,
    max_restarts: int = 8,
    **kwargs,
) -> RecoveryResult:
    """Run ``program`` to completion, restarting after PE crash-stops.

    Drives ``machine.run`` in a loop: a :class:`PECrashError` aborts
    the attempt, the checkpoint store is pruned to its globally stable
    prefix, and the program is re-executed — restored phases replay
    from snapshots, the lost phase recomputes.  The machine's fault
    plan keeps its state across attempts, so each scheduled crash
    fires exactly once and the re-run proceeds past it.

    If the machine has no checkpoint store, one is attached (restarts
    then re-run the whole program — correct, just without the saved
    work).
    """
    if machine.checkpoint_store is None:
        machine.checkpoint_store = CheckpointStore(machine.num_pes)
    store = machine.checkpoint_store
    crashes: list[tuple[int, int]] = []
    attempt_times: list[float] = []
    while True:
        store.prune_to_stable()
        try:
            result = machine.run(program, *args, **kwargs)
        except PECrashError as crash:
            crashes.append((crash.rank, crash.event))
            # The aborted attempt's cost is its makespan at the crash:
            # every PE ran (and is thrown away) up to that point.
            attempt_times.append(
                max((c.metrics.clock for c in machine._contexts), default=0.0)
            )
            if len(crashes) > max_restarts:
                raise
            continue
        return RecoveryResult(
            result=result,
            restarts=len(crashes),
            crashes=tuple(crashes),
            attempt_times=tuple(attempt_times),
        )
