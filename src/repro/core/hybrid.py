"""Hybrid (threads × MPI ranks) execution model (Section IV-D, Fig. 8).

The paper's hybrid prototype keeps the number of physical cores fixed
(``cores = threads × ranks``) and varies the threads-per-rank count.
Its observed behaviour, which this model reproduces:

* the **local phase** speeds up by up to ~1.67 with 12 threads thanks
  to edge-centric work splitting (well below linear — the kernels are
  memory-bound);
* the **communication volume** drops by up to ~84 % because fewer,
  larger ranks have fewer cut edges;
* the **global phase** becomes the bottleneck: MPI runs in *funneled*
  mode, one communication thread per rank serializes message handling
  while the workers idle, so the hybrid variant ends up *slower*
  overall than plain MPI.

The model layers three analytic effects on top of a real simulated run
with ``ranks = cores / threads`` PEs:

1. local-phase time divided by the measured-efficiency speedup
   ``S(t) = t / (1 + sigma (t - 1))`` with ``sigma`` calibrated to the
   paper's 1.67× @ 12 threads (``sigma ~= 0.56``);
2. communication quantities taken directly from the smaller-``p`` run
   (the volume reduction is *measured*, not assumed);
3. global-phase time inflated by the funneled-communication factor
   ``1 + phi * (1 - 1/t)``: with one comm thread among ``t``, message
   handling no longer overlaps with the workers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.csr import CSRGraph
from ..graphs.distributed import distribute
from ..net.costmodel import DEFAULT_SPEC, MachineSpec
from ..net.machine import Machine
from .engine import EngineConfig, counting_program

__all__ = ["HybridResult", "thread_speedup", "run_hybrid", "SIGMA_DEFAULT", "PHI_DEFAULT"]

#: Serial fraction of the threaded local phase; 0.56 reproduces the
#: paper's 1.67x speedup at 12 threads.
SIGMA_DEFAULT = 0.56

#: Funneled-mode contention factor for the global phase.
PHI_DEFAULT = 1.5


def thread_speedup(threads: int, sigma: float = SIGMA_DEFAULT) -> float:
    """Amdahl-style speedup ``t / (1 + sigma (t - 1))`` of the local phase."""
    if threads < 1:
        raise ValueError("threads must be >= 1")
    return threads / (1.0 + sigma * (threads - 1))


@dataclass(frozen=True)
class HybridResult:
    """Modelled outcome of one (cores, threads) hybrid configuration."""

    cores: int
    threads: int
    ranks: int
    local_time: float
    global_time: float
    other_time: float
    total_volume: int
    bottleneck_volume: int
    triangles: int

    @property
    def total_time(self) -> float:
        """Modelled end-to-end time."""
        return self.local_time + self.global_time + self.other_time


def run_hybrid(
    graph: CSRGraph,
    cores: int,
    threads: int,
    *,
    config: EngineConfig = EngineConfig(indirect=True),
    spec: MachineSpec = DEFAULT_SPEC,
    sigma: float = SIGMA_DEFAULT,
    phi: float = PHI_DEFAULT,
) -> HybridResult:
    """Model one hybrid configuration at a fixed core count.

    ``threads`` must divide ``cores``; ``ranks = cores // threads`` PEs
    are actually simulated (so cut structure, volume and message counts
    are measured at the real rank count), then the thread-level effects
    are applied analytically per the module docstring.
    """
    if cores < 1 or threads < 1 or cores % threads != 0:
        raise ValueError("threads must divide cores")
    ranks = cores // threads
    dist = distribute(graph, num_pes=ranks)
    result = Machine(ranks, spec).run(counting_program, dist, config)
    phases = result.metrics.phase_breakdown()
    local = phases.get("local", 0.0)
    glob = phases.get("global", 0.0)
    other = sum(t for k, t in phases.items() if k not in ("local", "global"))
    s = thread_speedup(threads, sigma)
    funnel = 1.0 + phi * (1.0 - 1.0 / threads)
    return HybridResult(
        cores=cores,
        threads=threads,
        ranks=ranks,
        local_time=local / s,
        global_time=glob * funnel,
        other_time=other,
        total_volume=result.metrics.total_volume,
        bottleneck_volume=result.metrics.bottleneck_volume,
        triangles=result.values[0].triangles_total,
    )
