"""Distributed preprocessing: ghost-degree exchange and orientation.

Paper Section IV-D ("Preprocessing"): before counting, every PE must

1. learn the degrees of its ghost vertices (``exchange_ghost_degree``
   in Algorithm 3) — required because the degree-based total order
   compares ``(degree, id)`` pairs and ghost degrees are remote
   information;
2. orient its local neighborhoods along that order and keep them
   sorted;
3. (CETRIC only) expand the adjacency structure with the *local*
   neighborhoods of ghost vertices, obtained by rewiring incoming cut
   edges — no communication needed.

The degree exchange is implemented over the dense all-to-all by
default, as in the paper's evaluation ("we use a simple dense
all-to-all operation"), with the sparse variant available
(``mode="sparse"``) for ablations.

All construction work is vectorized and charged to the simulated cost
model: one operation per adjacency entry touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..graphs.distributed import LocalGraph
from ..net.comm import alltoallv_dense, sparse_alltoall
from ..net.machine import PEContext
from .intersect import concat_xadj

__all__ = [
    "exchange_ghost_degrees",
    "OrientedLocalGraph",
    "build_oriented",
    "DEGREE_XCHG_PHASE",
]

#: Phase label under which degree-exchange time is accounted.
DEGREE_XCHG_PHASE = "preprocessing"


def exchange_ghost_degrees(
    ctx: PEContext,
    lg: LocalGraph,
    *,
    mode: str = "dense",
) -> Generator[None, None, np.ndarray]:
    """Fetch the degrees of all ghost vertices (collective).

    Every PE *pushes*: for each owned vertex ``v`` it sends
    ``(v, d_v)`` to every PE that owns a neighbor of ``v`` — those are
    exactly the PEs at which ``v`` is a ghost.  Payload per partner is
    a pair of arrays (ids, degrees), 2 words per entry.

    Returns the degree array aligned with ``lg.ghost_vertices`` and
    also stores it on ``lg.ghost_degrees``.
    """
    if mode not in ("dense", "sparse"):
        raise ValueError("mode must be 'dense' or 'sparse'")
    part = lg.partition
    cut = lg.cut_edges()
    # Who needs which of my vertices: unique (target rank, v) pairs.
    payloads: dict[int, tuple[tuple[np.ndarray, np.ndarray], int]] = {}
    if cut.size:
        tgt_ranks = part.rank_of(cut[:, 1])
        pairs = np.unique(np.column_stack([tgt_ranks, cut[:, 0]]), axis=0)
        ctx.charge(cut.shape[0])  # scanning cut arcs to build send lists
        for rank in np.unique(pairs[:, 0]):
            ids = pairs[pairs[:, 0] == rank, 1]
            degs = lg.xadj[ids - lg.vlo + 1] - lg.xadj[ids - lg.vlo]
            payloads[int(rank)] = ((ids, degs), 2 * ids.size)
    if mode == "dense":
        msgs = yield from alltoallv_dense(ctx, payloads, tag_label="deg-xchg")
    else:
        triples = [(d, p, w) for d, (p, w) in payloads.items()]
        msgs = yield from sparse_alltoall(ctx, triples, tag_label="deg-xchg")
    ghosts = lg.ghost_vertices
    ghost_degrees = np.zeros(ghosts.size, dtype=np.int64)
    for msg in msgs:
        if msg.payload is None:
            continue
        ids, degs = msg.payload
        slots = np.searchsorted(ghosts, ids)
        ghost_degrees[slots] = degs
        ctx.charge(ids.size)
    lg.ghost_degrees = ghost_degrees
    return ghost_degrees


@dataclass
class OrientedLocalGraph:
    """A PE's degree-oriented view, ready for counting.

    Arrays (all global vertex ids, neighborhoods sorted by id):

    * ``oxadj`` / ``oadjncy`` — ``A(v) = {x in N_v | x > v}`` for every
      owned vertex ``v`` (Algorithm 3 line 3); slot of ``v`` is
      ``v - vlo``.
    * ``goxadj`` / ``goadjncy`` — ``A(g) = {x in N_g | x > g, x in V_i}``
      for every ghost ``g`` (Algorithm 3 line 4), indexed by ghost
      slot; present only when built with ``with_ghosts=True``
      (CETRIC's expanded local graph).
    * ``key_bound`` and the degree arrays let callers evaluate the
      total order for any locally known vertex.
    """

    lg: LocalGraph
    oxadj: np.ndarray
    oadjncy: np.ndarray
    goxadj: np.ndarray | None
    goadjncy: np.ndarray | None
    #: Order keys of owned vertices (aligned with local slots).
    local_keys: np.ndarray
    #: Order keys of ghosts (aligned with ghost slots).
    ghost_keys: np.ndarray

    @property
    def vlo(self) -> int:
        """First owned vertex id (slot 0)."""
        return self.lg.vlo

    @property
    def num_vertices(self) -> int:
        """Global vertex count (key/offset bound for batch kernels)."""
        return self.lg.partition.num_vertices

    def out_neighborhood(self, v: int) -> np.ndarray:
        """``A(v)`` of an owned vertex."""
        s = v - self.lg.vlo
        return self.oadjncy[self.oxadj[s] : self.oxadj[s + 1]]

    def out_degrees(self) -> np.ndarray:
        """``d^+`` of all owned vertices."""
        return np.diff(self.oxadj)

    def ghost_out_neighborhood(self, slot: int) -> np.ndarray:
        """``A(g)`` of the ghost in the given slot (local-restricted)."""
        if self.goxadj is None:
            raise RuntimeError("built without ghost neighborhoods")
        return self.goadjncy[self.goxadj[slot] : self.goxadj[slot + 1]]

    def order_keys_of(self, vertices: np.ndarray) -> np.ndarray:
        """Total-order keys for any locally known (owned or ghost) vertices.

        Needed by wedge-checking baselines that must decide which
        endpoint of a candidate closing edge is the ≺-smaller one.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        keys = np.empty(vertices.size, dtype=np.int64)
        local_mask = self.lg.is_local(vertices)
        keys[local_mask] = self.local_keys[vertices[local_mask] - self.lg.vlo]
        if not np.all(local_mask):
            slots = np.searchsorted(self.lg.ghost_vertices, vertices[~local_mask])
            keys[~local_mask] = self.ghost_keys[slots]
        return keys

    def contracted(self) -> tuple[np.ndarray, np.ndarray]:
        """CETRIC's contraction (Algorithm 3 line 8): drop non-cut arcs.

        Returns ``(cxadj, cadjncy)`` where the neighborhood of owned
        vertex ``v`` keeps only out-neighbors *not* local to this PE.
        """
        mask = ~self.lg.is_local(self.oadjncy)
        src_slots = np.repeat(
            np.arange(self.lg.num_local_vertices, dtype=np.int64),
            np.diff(self.oxadj),
        )
        counts = np.bincount(src_slots[mask], minlength=self.lg.num_local_vertices)
        cxadj = concat_xadj(counts)
        return cxadj, self.oadjncy[mask]


def _order_keys(degrees: np.ndarray, ids: np.ndarray, bound: int) -> np.ndarray:
    """``(degree, id)`` encoded so numeric ``<`` realizes the total order."""
    return degrees.astype(np.int64) * np.int64(bound) + ids.astype(np.int64)


def build_oriented(
    ctx: PEContext,
    lg: LocalGraph,
    *,
    with_ghosts: bool = False,
) -> OrientedLocalGraph:
    """Orient the local view along the degree order (no communication).

    Requires ``lg.ghost_degrees`` to be filled (run
    :func:`exchange_ghost_degrees` first) unless the PE has no ghosts.

    ``with_ghosts=True`` additionally builds the ghosts' local-restricted
    out-neighborhoods — the expanded local graph of CETRIC's local
    phase.  Work charged: one op per adjacency entry scanned.
    """
    ghosts = lg.ghost_vertices
    if ghosts.size and lg.ghost_degrees is None:
        raise RuntimeError("ghost degrees missing; run exchange_ghost_degrees")
    n = lg.partition.num_vertices
    bound = n + 1

    local_ids = lg.owned_vertices()
    local_keys = _order_keys(lg.degrees, local_ids, bound)
    ghost_keys = (
        _order_keys(lg.ghost_degrees, ghosts, bound)
        if ghosts.size
        else np.empty(0, dtype=np.int64)
    )

    # Key of every adjacency entry (local or ghost neighbor).
    def keys_of(vertices: np.ndarray) -> np.ndarray:
        keys = np.empty(vertices.size, dtype=np.int64)
        local_mask = lg.is_local(vertices)
        keys[local_mask] = local_keys[vertices[local_mask] - lg.vlo]
        if ghosts.size:
            gm = ~local_mask
            slots = np.searchsorted(ghosts, vertices[gm])
            keys[gm] = ghost_keys[slots]
        return keys

    src_keys = np.repeat(local_keys, lg.degrees)
    dst_keys = keys_of(lg.adjncy)
    keep = src_keys < dst_keys
    src_slots = np.repeat(
        np.arange(lg.num_local_vertices, dtype=np.int64), lg.degrees
    )
    counts = np.bincount(src_slots[keep], minlength=lg.num_local_vertices)
    oxadj = concat_xadj(counts)
    oadjncy = lg.adjncy[keep]
    ctx.charge(lg.adjncy.size)  # one pass over the local adjacency

    goxadj = goadjncy = None
    if with_ghosts:
        gxadj, gadjncy = lg.ghost_local_neighborhoods()
        # Keep x with x > g under the order: key(x) > key(g).
        g_src_keys = np.repeat(ghost_keys, np.diff(gxadj))
        g_dst_keys = local_keys[gadjncy - lg.vlo]
        gkeep = g_src_keys < g_dst_keys
        g_src_slots = np.repeat(np.arange(ghosts.size, dtype=np.int64), np.diff(gxadj))
        gcounts = np.bincount(g_src_slots[gkeep], minlength=ghosts.size)
        goxadj = concat_xadj(gcounts)
        goadjncy = gadjncy[gkeep]
        ctx.charge(gadjncy.size)

    return OrientedLocalGraph(
        lg=lg,
        oxadj=oxadj,
        oadjncy=oadjncy,
        goxadj=goxadj,
        goadjncy=goadjncy,
        local_keys=local_keys,
        ghost_keys=ghost_keys,
    )
