"""Local clustering coefficients, sequential and distributed (Section IV-E).

The paper's extension: every triangle ``{v, u, w}`` is found from
exactly one incident vertex, so per-vertex triangle counts ``Δ(v)``
can be maintained by crediting all three corners at the finding PE.
In the distributed case a corner may be a *ghost* of the finding PE
(both the record vertex and the closing vertex of a global-phase
triangle are ghosts of the receiver), so each PE also keeps Δ for its
ghosts and a postprocessing all-to-all pushes ghost-Δ values back to
the owners — "analogous to the initial degree exchange".

``LCC(v) = 2 Δ(v) / (d_v (d_v - 1))`` (the fraction of closed wedges
at ``v``; networkx's convention).  Vertices of degree < 2 get 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..graphs.csr import CSRGraph
from ..graphs.distributed import DistGraph
from ..net.aggregation import BufferedMessageQueue
from ..net.comm import allreduce, alltoallv_dense
from ..net.indirect import GridRouter
from ..net.machine import PEContext
from .edge_iterator import edge_iterator_per_vertex
from .engine import EngineConfig, _post_cut_neighborhoods, _surrogate_filter
from .intersect import batch_intersect_count_elements, gather_blocks
from .kernels import chunked, record_pairs_elements
from .preprocessing import OrientedLocalGraph, build_oriented, exchange_ghost_degrees

__all__ = ["lcc_from_delta", "lcc_sequential", "lcc_program", "PELcc"]


def lcc_from_delta(delta: np.ndarray, degrees: np.ndarray) -> np.ndarray:
    """``2 Δ / (d (d - 1))`` with 0 for degree < 2 vertices."""
    delta = np.asarray(delta, dtype=np.float64)
    degrees = np.asarray(degrees, dtype=np.float64)
    denom = degrees * (degrees - 1.0)
    out = np.zeros_like(delta)
    np.divide(2.0 * delta, denom, out=out, where=denom > 0)
    return out


def lcc_sequential(graph: CSRGraph) -> np.ndarray:
    """Exact LCC of every vertex via the sequential edge iterator."""
    delta, _ = edge_iterator_per_vertex(graph)
    return lcc_from_delta(delta, graph.degrees)


@dataclass
class PELcc:
    """Per-PE outcome of the distributed LCC program."""

    #: Exact Δ(v) for this PE's owned vertices (aligned with the slot).
    delta: np.ndarray
    #: LCC of owned vertices.
    lcc: np.ndarray
    #: Global triangle total (byproduct check: ``sum Δ / 3``).
    triangles_total: int


def _triangles_elements_local(
    ctx: PEContext, og: OrientedLocalGraph, *, expanded: bool
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Local-phase triangles as corner triples (a, b, closing).

    Mirrors :func:`repro.core.engine._local_phase_pairs` but keeps the
    identity of every triangle for Δ accumulation.
    """
    lg = og.lg
    vlo = lg.vlo
    bound = og.num_vertices + 1
    nloc = lg.num_local_vertices
    src_slots = np.repeat(np.arange(nloc, dtype=np.int64), np.diff(og.oxadj))
    dst = og.oadjncy
    dst_local = lg.is_local(dst)
    ghosts = lg.ghost_vertices

    groups: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    # (left_xadj, left_adj, left_slots, right_xadj, right_adj, right_slots)
    groups.append(
        (og.oxadj, og.oadjncy, src_slots[dst_local], og.oxadj, og.oadjncy, dst[dst_local] - vlo)
    )
    v_ids_of_group = [np.column_stack([src_slots[dst_local] + vlo, dst[dst_local]])]
    if expanded:
        g_src = src_slots[~dst_local]
        g_dst = dst[~dst_local]
        if g_src.size:
            g_slots = np.searchsorted(ghosts, g_dst)
            groups.append((og.oxadj, og.oadjncy, g_src, og.goxadj, og.goadjncy, g_slots))
            v_ids_of_group.append(np.column_stack([g_src + vlo, g_dst]))
        if ghosts.size:
            gh_src = np.repeat(np.arange(ghosts.size, dtype=np.int64), np.diff(og.goxadj))
            gh_dst = og.goadjncy
            groups.append(
                (og.goxadj, og.goadjncy, gh_src, og.oxadj, og.oadjncy, gh_dst - vlo)
            )
            v_ids_of_group.append(np.column_stack([ghosts[gh_src], gh_dst]))

    a_out, b_out, c_out = [], [], []
    for (lx, la, ls, rx, ra, rs), endpoints in zip(groups, v_ids_of_group):
        for sl in chunked(ls.size):
            lcat, lxa = gather_blocks(lx, la, ls[sl])
            rcat, rxa = gather_blocks(rx, ra, rs[sl])
            counts, _, closing, ops = batch_intersect_count_elements(
                lcat, lxa, rcat, rxa, bound
            )
            ctx.charge(ops)
            # pair_idx is nondecreasing with multiplicity counts[i], so
            # repeating the endpoint rows by the fused counts equals
            # endpoints[sl][pair_idx] — one traversal instead of two.
            ends = np.repeat(endpoints[sl], counts, axis=0)
            a_out.append(ends[:, 0])
            b_out.append(ends[:, 1])
            c_out.append(closing)
    if not a_out:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), e.copy()
    return np.concatenate(a_out), np.concatenate(b_out), np.concatenate(c_out)


def lcc_program(
    ctx: PEContext,
    dist: DistGraph,
    config: EngineConfig = EngineConfig(contraction=True),
) -> Generator[None, None, PELcc]:
    """Distributed exact LCC (CETRIC- or DITRIC-flavoured by config).

    Returns per-PE Δ and LCC arrays for the owned vertices; all PEs
    additionally learn the global triangle total (consistency check).
    """
    lg = dist.view(ctx.rank)
    vlo, vhi = lg.vlo, lg.vhi
    bound = dist.num_vertices + 1
    ghosts = lg.ghost_vertices

    with ctx.phase("preprocessing"):
        yield from exchange_ghost_degrees(ctx, lg, mode=config.degree_exchange)
        og = build_oriented(ctx, lg, with_ghosts=config.contraction)

    delta_local = np.zeros(lg.num_local_vertices, dtype=np.int64)
    delta_ghost = np.zeros(ghosts.size, dtype=np.int64)

    def credit(vertices: np.ndarray) -> None:
        """Add one triangle credit to each listed corner (owned or ghost)."""
        owned = (vertices >= vlo) & (vertices < vhi)
        np.add.at(delta_local, vertices[owned] - vlo, 1)
        if ghosts.size and not np.all(owned):
            slots = np.searchsorted(ghosts, vertices[~owned])
            np.add.at(delta_ghost, slots, 1)
        ctx.charge(vertices.size)

    with ctx.phase("local"):
        a, b, c = _triangles_elements_local(ctx, og, expanded=config.contraction)
        for corners in (a, b, c):
            credit(corners)
        yield

    if config.contraction:
        with ctx.phase("contraction"):
            send_xadj, send_adj = og.contracted()
            ctx.charge(og.oadjncy.size)
    else:
        send_xadj, send_adj = og.oxadj, og.oadjncy

    with ctx.phase("global"):
        threshold = config.threshold_words(lg.num_local_arcs)
        router = (
            GridRouter(ctx, "lcc-nbh", threshold)
            if config.indirect
            else BufferedMessageQueue(ctx, "lcc-nbh", threshold)
        )
        nloc = lg.num_local_vertices
        s_src = np.repeat(np.arange(nloc, dtype=np.int64), np.diff(send_xadj))
        cut_mask = ~lg.is_local(send_adj)
        c_src = s_src[cut_mask]
        c_dst = send_adj[cut_mask]
        dst_ranks = lg.partition.rank_of(c_dst) if c_dst.size else c_dst
        sends = _surrogate_filter(c_src, dst_ranks, enabled=config.surrogate)
        ctx.charge(c_src.size)
        _post_cut_neighborhoods(
            router, send_xadj, send_adj, c_src, c_dst, dst_ranks, sends, vlo,
            targeted=False,
        )
        records = yield from router.finalize()
        rv, ru, rw = record_pairs_elements(
            ctx,
            records,
            send_xadj if config.contraction else og.oxadj,
            send_adj if config.contraction else og.oadjncy,
            vlo,
            vhi,
            bound,
        )
        for corners in (rv, ru, rw):
            credit(corners)
        yield

    with ctx.phase("delta-exchange"):
        # Push ghost-Δ values back to their owners (Section IV-E).
        payloads: dict[int, tuple[tuple[np.ndarray, np.ndarray], int]] = {}
        if ghosts.size:
            nz = delta_ghost > 0
            gids = ghosts[nz]
            gvals = delta_ghost[nz]
            owner = lg.partition.rank_of(gids) if gids.size else gids
            for rank in np.unique(owner):
                sel = owner == rank
                payloads[int(rank)] = ((gids[sel], gvals[sel]), 2 * int(sel.sum()))
        msgs = yield from alltoallv_dense(ctx, payloads, tag_label="delta-xchg")
        for msg in msgs:
            if msg.payload is None:
                continue
            ids, vals = msg.payload
            np.add.at(delta_local, ids - vlo, vals)
            ctx.charge(ids.size)

    my_sum = int(delta_local.sum())
    grand = yield from allreduce(ctx, my_sum, lambda x, y: x + y)
    lcc = lcc_from_delta(delta_local, lg.degrees)
    return PELcc(delta=delta_local, lcc=lcc, triangles_total=int(grand) // 3)
