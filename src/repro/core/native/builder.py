"""Build-on-demand compilation of the native intersection kernels.

``kernels.c`` (shipped next to this module) is compiled into a cffi
API-mode extension the first time the ``native`` backend is selected.
The artifact is cached so every later process — including
``ProcessMachine`` workers — just ``dlopen``s it:

* **Location**: ``<package>/core/native/_build/`` when the package
  directory is writable (the usual dev-checkout case), else
  ``$XDG_CACHE_HOME/repro/native`` (``~/.cache/repro/native``).
  ``REPRO_NATIVE_BUILD_DIR`` overrides both.
* **Key**: the module name embeds a hash of the C source, the cdef,
  the cffi version, and the interpreter/platform tag, so editing the
  kernel or switching interpreters rebuilds instead of loading a stale
  artifact.  ``REPRO_NATIVE_REBUILD=1`` forces a rebuild regardless.
* **Failure**: *every* failure mode — no cffi wheel, no C compiler, a
  broken toolchain — is re-raised as ``ImportError``, which is exactly
  what :func:`repro.core.backends.resolve_backend` turns into the
  warn-once numpy fallback.  Selecting ``native`` never crashes a run.

Concurrent builders (e.g. spawn-started workers racing the driver) are
safe: each compiles in a private temp dir and installs the artifact
with an atomic ``os.replace``.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import os
import shutil
import sys
import sysconfig
import tempfile
from pathlib import Path

__all__ = ["build_key", "cache_root", "build_dir", "load_lib", "CDEF"]

#: Declarations mirrored from kernels.c (the cffi cdef).
CDEF = """
void repro_batch_count(const int64_t *a_concat, const int64_t *a_xadj,
                       const int64_t *b_concat, const int64_t *b_xadj,
                       int64_t k, int64_t *counts);
int64_t repro_batch_elements(const int64_t *a_concat, const int64_t *a_xadj,
                             const int64_t *b_concat, const int64_t *b_xadj,
                             int64_t k, int64_t *pair_out, int64_t *elem_out);
int64_t repro_batch_count_elements(const int64_t *a_concat, const int64_t *a_xadj,
                                   const int64_t *b_concat, const int64_t *b_xadj,
                                   int64_t k, int64_t *counts,
                                   int64_t *pair_out, int64_t *elem_out);
"""

ENV_BUILD_DIR = "REPRO_NATIVE_BUILD_DIR"
ENV_REBUILD = "REPRO_NATIVE_REBUILD"

_SOURCE_PATH = Path(__file__).with_name("kernels.c")

#: The loaded cffi module, memoized per process.
_LIB = None


def _source() -> str:
    return _SOURCE_PATH.read_text()


def build_key() -> str:
    """Hash naming the cached artifact (source × cffi × interpreter)."""
    try:
        import cffi

        cffi_version = cffi.__version__
    except ImportError:
        cffi_version = "none"
    tag = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    blob = "\x00".join([_source(), CDEF, cffi_version, sys.version.split()[0], tag])
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def cache_root() -> Path:
    """Root directory for native-backend state (builds, tuner cache)."""
    override = os.environ.get(ENV_BUILD_DIR, "").strip()
    if override:
        return Path(override)
    pkg_dir = Path(__file__).parent / "_build"
    try:
        pkg_dir.mkdir(exist_ok=True)
        probe = pkg_dir / f".writable-{os.getpid()}"
        probe.touch()
        probe.unlink()
        return pkg_dir
    except OSError:
        xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
        base = Path(xdg) if xdg else Path.home() / ".cache"
        return base / "repro" / "native"


def build_dir() -> Path:
    """Directory holding the compiled artifact for the current key."""
    return cache_root()


def _module_name() -> str:
    return f"_repro_native_{build_key()}"


def _artifact_path(directory: Path) -> Path:
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return directory / f"{_module_name()}{suffix}"


def _compile(directory: Path) -> Path:
    """Compile kernels.c into ``directory``; returns the artifact path."""
    from cffi import FFI

    ffibuilder = FFI()
    ffibuilder.cdef(CDEF)
    ffibuilder.set_source(
        _module_name(),
        _source(),
        extra_compile_args=["-O3"],
    )
    directory.mkdir(parents=True, exist_ok=True)
    # Private temp dir + atomic replace: concurrent builders (driver
    # racing spawn-started workers) never see a half-written artifact.
    tmp = Path(tempfile.mkdtemp(prefix="build-", dir=directory))
    try:
        built = Path(ffibuilder.compile(tmpdir=str(tmp), verbose=False))
        target = _artifact_path(directory)
        os.replace(built, target)
        return target
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _import_artifact(path: Path):
    name = _module_name()
    if name in sys.modules:
        return sys.modules[name]
    loader = importlib.machinery.ExtensionFileLoader(name, str(path))
    spec = importlib.util.spec_from_file_location(name, str(path), loader=loader)
    module = importlib.util.module_from_spec(spec)
    loader.exec_module(module)
    sys.modules[name] = module
    return module


def load_lib():
    """The compiled kernel module (``.lib`` / ``.ffi``), building if needed.

    Raises
    ------
    ImportError
        When cffi is missing or compilation fails for any reason —
        the signal the backend registry's graceful fallback expects.
    """
    global _LIB
    if _LIB is not None:
        return _LIB
    import cffi  # noqa: F401  -- missing wheel -> ImportError -> numpy fallback

    rebuild = os.environ.get(ENV_REBUILD, "").strip() not in ("", "0")
    directory = build_dir()
    artifact = _artifact_path(directory)
    try:
        if rebuild or not artifact.exists():
            artifact = _compile(directory)
        _LIB = _import_artifact(artifact)
    except ImportError:
        raise
    except Exception as exc:  # no compiler, broken toolchain, bad cache...
        raise ImportError(f"native kernel build failed: {exc}") from exc
    return _LIB
