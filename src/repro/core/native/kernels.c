/* Native batch intersection kernels for the repro.core.backends registry.
 *
 * The contract is docs/KERNELS.md: every block concat[xadj[i]:xadj[i+1]]
 * is sorted ascending with unique values, the dispatcher has already
 * swapped sides so the A concatenation is the smaller one, and hit
 * streams must come out in (pair, ascending element) order.  Per pair
 * the kernel picks between the paper's cache-friendly merge loop
 * (Sanders & Uhl, Section III-C) and a galloping binary-search variant
 * for skewed |A_i| << |B_i| (or |B_i| << |A_i|) pairs, where the merge
 * would touch every element of the big side.
 *
 * Charged ops (|A| + |B| per pair) are accounted by the Python
 * dispatcher before this code runs; nothing here feeds the cost model.
 */

#include <stdint.h>

typedef int64_t i64;

/* How much bigger one side must be before galloping beats merging. */
#define GALLOP_RATIO 16

/* First index in [lo, hi) with arr[idx] >= key (classic lower bound). */
static i64 lower_bound(const i64 *arr, i64 lo, i64 hi, i64 key)
{
    while (lo < hi) {
        i64 mid = lo + ((hi - lo) >> 1);
        if (arr[mid] < key)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/* Galloping lower bound: doubling probe from lo, then binary search in
 * the bracketed range.  O(log d) where d is the distance advanced, so a
 * full pass over A costs O(|A| log(|B|/|A|)) instead of O(|A| + |B|). */
static i64 gallop_lb(const i64 *arr, i64 lo, i64 hi, i64 key)
{
    i64 step = 1, lo2, hi2;
    if (lo >= hi || arr[lo] >= key)
        return lo;
    while (lo + step < hi && arr[lo + step] < key)
        step <<= 1;
    lo2 = lo + (step >> 1) + 1; /* arr[lo + step/2] < key is established */
    hi2 = (lo + step < hi) ? lo + step : hi;
    return lower_bound(arr, lo2, hi2, key);
}

/* One pair: count hits and (when outputs are non-NULL) append the hit
 * stream.  Values are emitted in ascending order on every strategy:
 * the merge advances both cursors monotonically, and the gallop scans
 * the sorted needle side in order. */
static i64 pair_intersect(const i64 *a, i64 an, const i64 *b, i64 bn,
                          i64 pair, i64 *pair_out, i64 *elem_out, i64 out)
{
    i64 start = out;
    if (an == 0 || bn == 0)
        return 0;
    if (an * GALLOP_RATIO <= bn) {
        i64 pos = 0, i;
        for (i = 0; i < an; i++) {
            pos = gallop_lb(b, pos, bn, a[i]);
            if (pos >= bn)
                break;
            if (b[pos] == a[i]) {
                if (pair_out) {
                    pair_out[out] = pair;
                    elem_out[out] = a[i];
                }
                out++;
                pos++;
            }
        }
    } else if (bn * GALLOP_RATIO <= an) {
        i64 pos = 0, i;
        for (i = 0; i < bn; i++) {
            pos = gallop_lb(a, pos, an, b[i]);
            if (pos >= an)
                break;
            if (a[pos] == b[i]) {
                if (pair_out) {
                    pair_out[out] = pair;
                    elem_out[out] = b[i];
                }
                out++;
                pos++;
            }
        }
    } else {
        i64 ai = 0, bi = 0;
        while (ai < an && bi < bn) {
            i64 av = a[ai], bv = b[bi];
            if (av == bv) {
                if (pair_out) {
                    pair_out[out] = pair;
                    elem_out[out] = av;
                }
                out++;
                ai++;
                bi++;
            } else if (av < bv) {
                ai++;
            } else {
                bi++;
            }
        }
    }
    return out - start;
}

/* counts[i] = |A_i ∩ B_i| for all k pairs. */
void repro_batch_count(const i64 *a_concat, const i64 *a_xadj,
                       const i64 *b_concat, const i64 *b_xadj,
                       i64 k, i64 *counts)
{
    i64 i;
    for (i = 0; i < k; i++) {
        counts[i] = pair_intersect(a_concat + a_xadj[i], a_xadj[i + 1] - a_xadj[i],
                                   b_concat + b_xadj[i], b_xadj[i + 1] - b_xadj[i],
                                   i, 0, 0, 0);
    }
}

/* Hit streams in (pair, ascending element) order; returns the total.
 * Output capacity: sum_i min(|A_i|, |B_i|) <= |a_concat| suffices. */
i64 repro_batch_elements(const i64 *a_concat, const i64 *a_xadj,
                         const i64 *b_concat, const i64 *b_xadj,
                         i64 k, i64 *pair_out, i64 *elem_out)
{
    i64 i, out = 0;
    for (i = 0; i < k; i++) {
        out += pair_intersect(a_concat + a_xadj[i], a_xadj[i + 1] - a_xadj[i],
                              b_concat + b_xadj[i], b_xadj[i + 1] - b_xadj[i],
                              i, pair_out, elem_out, out);
    }
    return out;
}

/* Fused pass: per-pair counts and the hit streams from one traversal
 * of the concatenations. */
i64 repro_batch_count_elements(const i64 *a_concat, const i64 *a_xadj,
                               const i64 *b_concat, const i64 *b_xadj,
                               i64 k, i64 *counts, i64 *pair_out, i64 *elem_out)
{
    i64 i, out = 0;
    for (i = 0; i < k; i++) {
        counts[i] = pair_intersect(a_concat + a_xadj[i], a_xadj[i + 1] - a_xadj[i],
                                   b_concat + b_xadj[i], b_xadj[i + 1] - b_xadj[i],
                                   i, pair_out, elem_out, out);
        out += counts[i];
    }
    return out;
}
