"""``repro.core.native`` — the cffi/C intersection kernel backend.

Implements the ``count`` / ``elements`` / fused ``count_elements``
kernel contract of ``docs/KERNELS.md`` in C (``kernels.c``): per-pair
merge loops plus a galloping binary-search variant for skewed
``|A_i| << |B_i|`` pairs.  The extension is compiled on demand at
first use and cached (see :mod:`.builder` for the cache location and
rebuild knobs); environments without cffi or a C compiler degrade to
the ``numpy`` backend through the registry's warn-once fallback.

Wrappers here only allocate output arrays and hand zero-copy buffer
views to the C functions — inputs may be read-only (e.g. shared-memory
frame views from ``repro.net.shm``), which ``ffi.from_buffer`` accepts
as const pointers.
"""

from __future__ import annotations

import numpy as np

from .builder import build_dir, build_key, cache_root, load_lib

__all__ = [
    "load_native_kernels",
    "native_available",
    "build_dir",
    "build_key",
    "cache_root",
]


def native_available() -> bool:
    """Whether the native backend can be built/loaded here (quietly)."""
    try:
        load_lib()
        return True
    except ImportError:
        return False


def load_native_kernels():
    """``(count, elements, count_elements)`` callables over the C lib.

    Raises ``ImportError`` when the extension cannot be built — the
    registry turns that into the numpy fallback.
    """
    module = load_lib()
    lib, ffi = module.lib, module.ffi

    def _in(arr: np.ndarray):
        # require_writable=False: received frames are read-only views.
        return ffi.from_buffer("int64_t[]", arr, require_writable=False)

    def _out(arr: np.ndarray):
        return ffi.from_buffer("int64_t[]", arr, require_writable=True)

    def count(a_concat, a_xadj, b_concat, b_xadj, vertex_bound):
        k = a_xadj.size - 1
        counts = np.empty(k, dtype=np.int64)
        lib.repro_batch_count(
            _in(a_concat), _in(a_xadj), _in(b_concat), _in(b_xadj), k, _out(counts)
        )
        return counts

    def elements(a_concat, a_xadj, b_concat, b_xadj, vertex_bound):
        k = a_xadj.size - 1
        # Hits per pair are bounded by the smaller block, so the A
        # concatenation (the smaller side overall) bounds the total.
        pair_out = np.empty(a_concat.size, dtype=np.int64)
        elem_out = np.empty(a_concat.size, dtype=np.int64)
        n = lib.repro_batch_elements(
            _in(a_concat), _in(a_xadj), _in(b_concat), _in(b_xadj),
            k, _out(pair_out), _out(elem_out),
        )
        return pair_out[:n], elem_out[:n]

    def count_elements(a_concat, a_xadj, b_concat, b_xadj, vertex_bound):
        k = a_xadj.size - 1
        counts = np.empty(k, dtype=np.int64)
        pair_out = np.empty(a_concat.size, dtype=np.int64)
        elem_out = np.empty(a_concat.size, dtype=np.int64)
        n = lib.repro_batch_count_elements(
            _in(a_concat), _in(a_xadj), _in(b_concat), _in(b_xadj),
            k, _out(counts), _out(pair_out), _out(elem_out),
        )
        return counts, pair_out[:n], elem_out[:n]

    return count, elements, count_elements
