"""Runtime-selected kernel backends for the batch intersection hot path.

``batch_intersect_count`` / ``batch_intersect_elements`` in
:mod:`repro.core.intersect` are the compute hot path of every algorithm
variant.  This module makes their *execution strategy* pluggable while
keeping their *accounting* fixed:

* The dispatcher in ``intersect.py`` owns everything observable by the
  simulation — input validation, dtype coercion, the empty fast path,
  the small-into-large side swap, and the charged merge-model ops
  (``|A| + |B|`` per pair).  A backend only supplies the raw kernels
  that produce counts/elements, so simulated accounting is
  *structurally* bit-identical across backends (pinned by
  ``tests/test_equivalence.py``).
* A backend receives pre-conditioned inputs: contiguous ``int64``
  arrays, ``k >= 1`` pairs, both concatenations nonempty, and the A
  side no larger than the B side.  ``count`` returns an ``int64``
  array of ``k`` per-pair counts; ``elements`` returns
  ``(pair_idx, elements)`` hit streams in (pair, ascending element)
  order — the canonical order both shipped backends emit naturally.

Four backends ship:

``numpy`` (default, always available)
    The offset-keyed global ``searchsorted`` formulation that has been
    the hot path since the frame PR.
``numba``
    Per-pair compiled merge loops (``@njit(cache=True)``), matching the
    paper's cache-friendly merge kernels.  Optional: when the ``numba``
    wheel is not importable the registry logs one warning and falls
    back to ``numpy`` — selection never raises for a *known* backend.
``native``
    The cffi/C extension of :mod:`repro.core.native`: merge loops plus
    a galloping binary-search variant for skewed pairs, compiled on
    demand at first use and cached.  Degrades exactly like ``numba``
    when cffi or a C compiler is missing.
``auto``
    A per-regime selector (:mod:`repro.core.autotune`): a seeded
    one-shot microbenchmark at first dispatch (or an explicit
    ``repro-tc backends tune``) times the concrete backends on
    representative pair-size regimes and dispatches each batch to the
    cached winner for its regime.

Selection (first match wins):

1. :func:`set_backend` / :func:`use_backend` in code,
2. the ``REPRO_KERNEL_BACKEND`` environment variable (which is how the
   ``repro-tc --kernel-backend`` CLI flag and ``ProcessMachine``
   workers propagate the choice),
3. the ``numpy`` default.

``auto`` participates like any other name: it runs only when
explicitly selected through one of these channels, so the existing
explicit-selection order always bypasses the tuner.

Registering a fifth backend is two calls — see ``docs/KERNELS.md`` for
a worked example and the exact kernel contract.
"""

from __future__ import annotations

import logging
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

import numpy as np

from .intersect import (
    _numpy_batch_count,
    _numpy_batch_count_elements,
    _numpy_batch_elements,
)

__all__ = [
    "KernelBackend",
    "register_backend",
    "available_backends",
    "backend_status",
    "get_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
    "ENV_BACKEND",
    "ENV_FALLBACK_WARNED",
]

log = logging.getLogger("repro.kernels")

#: Environment variable naming the preferred backend.
ENV_BACKEND = "REPRO_KERNEL_BACKEND"

#: Comma-separated backend names whose fallback warning was already
#: emitted by this process tree.  Set when the warning fires, inherited
#: through the environment by ``ProcessMachine`` workers (fork *and*
#: spawn), so a driver-side warning is never repeated per worker.
ENV_FALLBACK_WARNED = "REPRO_KERNEL_FALLBACK_WARNED"


@dataclass(frozen=True)
class KernelBackend:
    """A raw kernel pair behind the ``batch_intersect_*`` dispatcher.

    ``count(a_concat, a_xadj, b_concat, b_xadj, vertex_bound)`` returns
    per-pair intersection counts; ``elements(...)`` returns the
    ``(pair_idx, elements)`` hit streams.  ``count_elements(...)`` —
    optional — returns ``(counts, pair_idx, elements)`` from one fused
    traversal; when a backend leaves it ``None`` the dispatcher derives
    the counts from the hit stream instead (same outputs either way).
    See the module docstring for the preconditions the dispatcher
    guarantees.
    """

    name: str
    count: Callable[..., np.ndarray]
    elements: Callable[..., tuple[np.ndarray, np.ndarray]]
    count_elements: Callable[..., tuple[np.ndarray, np.ndarray, np.ndarray]] | None = None


#: name -> loader returning a KernelBackend (may raise ImportError).
_LOADERS: dict[str, Callable[[], KernelBackend]] = {}
#: Successfully built backends, by name.
_BACKENDS: dict[str, KernelBackend] = {}
#: Explicit in-process selection (overrides the environment).
_ACTIVE: str | None = None
#: Backends whose load already failed (warn once each).
_FAILED: dict[str, str] = {}


def register_backend(name: str, loader: Callable[[], KernelBackend]) -> None:
    """Register a backend under ``name``.

    ``loader`` is called lazily on first selection and may raise
    ``ImportError`` — the registry then logs a warning and the
    dispatcher falls back to ``numpy``.
    """
    _LOADERS[name] = loader


def available_backends() -> list[str]:
    """All registered backend names (loadable or not)."""
    return sorted(_LOADERS)


def backend_status() -> dict[str, str]:
    """Map of backend name -> ``"ok"`` or the load-failure reason."""
    status = {}
    for name in available_backends():
        try:
            _load(name)
            status[name] = "ok"
        except ImportError as exc:
            status[name] = f"unavailable ({exc})"
    return status


def _load(name: str) -> KernelBackend:
    if name in _BACKENDS:
        return _BACKENDS[name]
    if name not in _LOADERS:
        raise KeyError(
            f"unknown kernel backend {name!r}; registered: {available_backends()}"
        )
    backend = _LOADERS[name]()
    _BACKENDS[name] = backend
    return backend


def _fallback_warned(name: str) -> bool:
    """Whether some process in this tree already warned about ``name``."""
    return name in os.environ.get(ENV_FALLBACK_WARNED, "").split(",")


def _mark_fallback_warned(name: str) -> None:
    """Record the warning in the environment for child processes.

    ``ProcessMachine`` workers inherit the environment under both fork
    and spawn, so once the driver has warned, workers resolving the
    same unavailable backend stay silent instead of re-warning once
    per process (see also the eager driver-side resolve in
    ``ProcessMachine.run``).
    """
    warned = [n for n in os.environ.get(ENV_FALLBACK_WARNED, "").split(",") if n]
    if name not in warned:
        warned.append(name)
        os.environ[ENV_FALLBACK_WARNED] = ",".join(warned)


def resolve_backend(name: str | None = None) -> KernelBackend:
    """Resolve ``name`` (or the current selection) to a loaded backend.

    Unknown names raise ``KeyError``.  Known-but-unloadable backends
    (e.g. ``numba`` without the wheel) log one warning and degrade to
    ``numpy`` — runs never fail because an accelerator is missing.
    """
    if name is None:
        name = _ACTIVE or os.environ.get(ENV_BACKEND, "").strip() or "numpy"
    try:
        return _load(name)
    except KeyError:
        raise
    except ImportError as exc:
        if name not in _FAILED:
            _FAILED[name] = str(exc)
            if not _fallback_warned(name):
                log.warning(
                    "kernel backend %r unavailable (%s); falling back to numpy",
                    name,
                    exc,
                )
                _mark_fallback_warned(name)
        return _load("numpy")


def get_backend() -> KernelBackend:
    """The backend the dispatcher will use for the next batch call."""
    return resolve_backend(None)


def set_backend(name: str | None) -> None:
    """Select a backend process-wide (``None`` reverts to env/default).

    Validates eagerly: unknown names raise immediately rather than at
    the first intersection.
    """
    global _ACTIVE
    if name is not None:
        resolve_backend(name)
    _ACTIVE = name


@contextmanager
def use_backend(name: str | None):
    """Temporarily select a backend (tests, benchmarks)."""
    global _ACTIVE
    prev = _ACTIVE
    set_backend(name)
    try:
        yield
    finally:
        _ACTIVE = prev


# ---------------------------------------------------------------------------
# numpy backend (always available)
# ---------------------------------------------------------------------------


def _load_numpy() -> KernelBackend:
    return KernelBackend(
        "numpy",
        _numpy_batch_count,
        _numpy_batch_elements,
        _numpy_batch_count_elements,
    )


register_backend("numpy", _load_numpy)


# ---------------------------------------------------------------------------
# numba backend (optional)
# ---------------------------------------------------------------------------


def _load_numba() -> KernelBackend:
    import numba  # noqa: F401  (ImportError -> logged numpy fallback)
    from numba import njit

    @njit(cache=True)
    def _count(a_concat, a_xadj, b_concat, b_xadj, counts):  # pragma: no cover
        for i in range(counts.size):
            ai, ae = a_xadj[i], a_xadj[i + 1]
            bi, be = b_xadj[i], b_xadj[i + 1]
            c = 0
            while ai < ae and bi < be:
                av = a_concat[ai]
                bv = b_concat[bi]
                if av == bv:
                    c += 1
                    ai += 1
                    bi += 1
                elif av < bv:
                    ai += 1
                else:
                    bi += 1
            counts[i] = c

    @njit(cache=True)
    def _elements(  # pragma: no cover
        a_concat, a_xadj, b_concat, b_xadj, pair_out, elem_out
    ):
        out = 0
        for i in range(a_xadj.size - 1):
            ai, ae = a_xadj[i], a_xadj[i + 1]
            bi, be = b_xadj[i], b_xadj[i + 1]
            while ai < ae and bi < be:
                av = a_concat[ai]
                bv = b_concat[bi]
                if av == bv:
                    pair_out[out] = i
                    elem_out[out] = av
                    out += 1
                    ai += 1
                    bi += 1
                elif av < bv:
                    ai += 1
                else:
                    bi += 1
        return out

    def count(a_concat, a_xadj, b_concat, b_xadj, vertex_bound):
        counts = np.empty(a_xadj.size - 1, dtype=np.int64)
        _count(a_concat, a_xadj, b_concat, b_xadj, counts)
        return counts

    @njit(cache=True)
    def _count_elements(  # pragma: no cover
        a_concat, a_xadj, b_concat, b_xadj, counts, pair_out, elem_out
    ):
        out = 0
        for i in range(counts.size):
            ai, ae = a_xadj[i], a_xadj[i + 1]
            bi, be = b_xadj[i], b_xadj[i + 1]
            c = 0
            while ai < ae and bi < be:
                av = a_concat[ai]
                bv = b_concat[bi]
                if av == bv:
                    pair_out[out] = i
                    elem_out[out] = av
                    out += 1
                    c += 1
                    ai += 1
                    bi += 1
                elif av < bv:
                    ai += 1
                else:
                    bi += 1
            counts[i] = c
        return out

    def elements(a_concat, a_xadj, b_concat, b_xadj, vertex_bound):
        # Hits per pair are bounded by the smaller block, and the
        # dispatcher guarantees A is the smaller side overall, so
        # |a_concat| bounds the total output.
        pair_out = np.empty(a_concat.size, dtype=np.int64)
        elem_out = np.empty(a_concat.size, dtype=np.int64)
        n = _elements(a_concat, a_xadj, b_concat, b_xadj, pair_out, elem_out)
        return pair_out[:n], elem_out[:n]

    def count_elements(a_concat, a_xadj, b_concat, b_xadj, vertex_bound):
        counts = np.empty(a_xadj.size - 1, dtype=np.int64)
        pair_out = np.empty(a_concat.size, dtype=np.int64)
        elem_out = np.empty(a_concat.size, dtype=np.int64)
        n = _count_elements(
            a_concat, a_xadj, b_concat, b_xadj, counts, pair_out, elem_out
        )
        return counts, pair_out[:n], elem_out[:n]

    return KernelBackend("numba", count, elements, count_elements)


register_backend("numba", _load_numba)


# ---------------------------------------------------------------------------
# native backend (optional: cffi + a C compiler, built on demand)
# ---------------------------------------------------------------------------


def _load_native() -> KernelBackend:
    # Builds the extension at first use; any failure (no cffi wheel,
    # no compiler) surfaces as ImportError -> logged numpy fallback.
    from .native import load_native_kernels

    count, elements, count_elements = load_native_kernels()
    return KernelBackend("native", count, elements, count_elements)


register_backend("native", _load_native)


# ---------------------------------------------------------------------------
# auto backend (per-regime winner dispatch; always loadable)
# ---------------------------------------------------------------------------


def _load_auto() -> KernelBackend:
    from .autotune import make_auto_backend

    return make_auto_backend()


register_backend("auto", _load_auto)
