"""Runtime-selected kernel backends for the batch intersection hot path.

``batch_intersect_count`` / ``batch_intersect_elements`` in
:mod:`repro.core.intersect` are the compute hot path of every algorithm
variant.  This module makes their *execution strategy* pluggable while
keeping their *accounting* fixed:

* The dispatcher in ``intersect.py`` owns everything observable by the
  simulation — input validation, dtype coercion, the empty fast path,
  the small-into-large side swap, and the charged merge-model ops
  (``|A| + |B|`` per pair).  A backend only supplies the raw kernels
  that produce counts/elements, so simulated accounting is
  *structurally* bit-identical across backends (pinned by
  ``tests/test_equivalence.py``).
* A backend receives pre-conditioned inputs: contiguous ``int64``
  arrays, ``k >= 1`` pairs, both concatenations nonempty, and the A
  side no larger than the B side.  ``count`` returns an ``int64``
  array of ``k`` per-pair counts; ``elements`` returns
  ``(pair_idx, elements)`` hit streams in (pair, ascending element)
  order — the canonical order both shipped backends emit naturally.

Two backends ship:

``numpy`` (default, always available)
    The offset-keyed global ``searchsorted`` formulation that has been
    the hot path since the frame PR.
``numba``
    Per-pair compiled merge loops (``@njit(cache=True)``), matching the
    paper's cache-friendly merge kernels.  Optional: when the ``numba``
    wheel is not importable the registry logs one warning and falls
    back to ``numpy`` — selection never raises for a *known* backend.

Selection (first match wins):

1. :func:`set_backend` / :func:`use_backend` in code,
2. the ``REPRO_KERNEL_BACKEND`` environment variable (which is how the
   ``repro-tc --kernel-backend`` CLI flag and ``ProcessMachine``
   workers propagate the choice),
3. the ``numpy`` default.

Registering a third backend is two calls — see ``docs/KERNELS.md`` for
a worked example and the exact kernel contract.
"""

from __future__ import annotations

import logging
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

import numpy as np

from .intersect import _numpy_batch_count, _numpy_batch_elements

__all__ = [
    "KernelBackend",
    "register_backend",
    "available_backends",
    "backend_status",
    "get_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
    "ENV_BACKEND",
]

log = logging.getLogger("repro.kernels")

#: Environment variable naming the preferred backend.
ENV_BACKEND = "REPRO_KERNEL_BACKEND"


@dataclass(frozen=True)
class KernelBackend:
    """A raw kernel pair behind the ``batch_intersect_*`` dispatcher.

    ``count(a_concat, a_xadj, b_concat, b_xadj, vertex_bound)`` returns
    per-pair intersection counts; ``elements(...)`` returns the
    ``(pair_idx, elements)`` hit streams.  See the module docstring for
    the preconditions the dispatcher guarantees.
    """

    name: str
    count: Callable[..., np.ndarray]
    elements: Callable[..., tuple[np.ndarray, np.ndarray]]


#: name -> loader returning a KernelBackend (may raise ImportError).
_LOADERS: dict[str, Callable[[], KernelBackend]] = {}
#: Successfully built backends, by name.
_BACKENDS: dict[str, KernelBackend] = {}
#: Explicit in-process selection (overrides the environment).
_ACTIVE: str | None = None
#: Backends whose load already failed (warn once each).
_FAILED: dict[str, str] = {}


def register_backend(name: str, loader: Callable[[], KernelBackend]) -> None:
    """Register a backend under ``name``.

    ``loader`` is called lazily on first selection and may raise
    ``ImportError`` — the registry then logs a warning and the
    dispatcher falls back to ``numpy``.
    """
    _LOADERS[name] = loader


def available_backends() -> list[str]:
    """All registered backend names (loadable or not)."""
    return sorted(_LOADERS)


def backend_status() -> dict[str, str]:
    """Map of backend name -> ``"ok"`` or the load-failure reason."""
    status = {}
    for name in available_backends():
        try:
            _load(name)
            status[name] = "ok"
        except ImportError as exc:
            status[name] = f"unavailable ({exc})"
    return status


def _load(name: str) -> KernelBackend:
    if name in _BACKENDS:
        return _BACKENDS[name]
    if name not in _LOADERS:
        raise KeyError(
            f"unknown kernel backend {name!r}; registered: {available_backends()}"
        )
    backend = _LOADERS[name]()
    _BACKENDS[name] = backend
    return backend


def resolve_backend(name: str | None = None) -> KernelBackend:
    """Resolve ``name`` (or the current selection) to a loaded backend.

    Unknown names raise ``KeyError``.  Known-but-unloadable backends
    (e.g. ``numba`` without the wheel) log one warning and degrade to
    ``numpy`` — runs never fail because an accelerator is missing.
    """
    if name is None:
        name = _ACTIVE or os.environ.get(ENV_BACKEND, "").strip() or "numpy"
    try:
        return _load(name)
    except KeyError:
        raise
    except ImportError as exc:
        if name not in _FAILED:
            _FAILED[name] = str(exc)
            log.warning(
                "kernel backend %r unavailable (%s); falling back to numpy",
                name,
                exc,
            )
        return _load("numpy")


def get_backend() -> KernelBackend:
    """The backend the dispatcher will use for the next batch call."""
    return resolve_backend(None)


def set_backend(name: str | None) -> None:
    """Select a backend process-wide (``None`` reverts to env/default).

    Validates eagerly: unknown names raise immediately rather than at
    the first intersection.
    """
    global _ACTIVE
    if name is not None:
        resolve_backend(name)
    _ACTIVE = name


@contextmanager
def use_backend(name: str | None):
    """Temporarily select a backend (tests, benchmarks)."""
    global _ACTIVE
    prev = _ACTIVE
    set_backend(name)
    try:
        yield
    finally:
        _ACTIVE = prev


# ---------------------------------------------------------------------------
# numpy backend (always available)
# ---------------------------------------------------------------------------


def _load_numpy() -> KernelBackend:
    return KernelBackend("numpy", _numpy_batch_count, _numpy_batch_elements)


register_backend("numpy", _load_numpy)


# ---------------------------------------------------------------------------
# numba backend (optional)
# ---------------------------------------------------------------------------


def _load_numba() -> KernelBackend:
    import numba  # noqa: F401  (ImportError -> logged numpy fallback)
    from numba import njit

    @njit(cache=True)
    def _count(a_concat, a_xadj, b_concat, b_xadj, counts):  # pragma: no cover
        for i in range(counts.size):
            ai, ae = a_xadj[i], a_xadj[i + 1]
            bi, be = b_xadj[i], b_xadj[i + 1]
            c = 0
            while ai < ae and bi < be:
                av = a_concat[ai]
                bv = b_concat[bi]
                if av == bv:
                    c += 1
                    ai += 1
                    bi += 1
                elif av < bv:
                    ai += 1
                else:
                    bi += 1
            counts[i] = c

    @njit(cache=True)
    def _elements(  # pragma: no cover
        a_concat, a_xadj, b_concat, b_xadj, pair_out, elem_out
    ):
        out = 0
        for i in range(a_xadj.size - 1):
            ai, ae = a_xadj[i], a_xadj[i + 1]
            bi, be = b_xadj[i], b_xadj[i + 1]
            while ai < ae and bi < be:
                av = a_concat[ai]
                bv = b_concat[bi]
                if av == bv:
                    pair_out[out] = i
                    elem_out[out] = av
                    out += 1
                    ai += 1
                    bi += 1
                elif av < bv:
                    ai += 1
                else:
                    bi += 1
        return out

    def count(a_concat, a_xadj, b_concat, b_xadj, vertex_bound):
        counts = np.empty(a_xadj.size - 1, dtype=np.int64)
        _count(a_concat, a_xadj, b_concat, b_xadj, counts)
        return counts

    def elements(a_concat, a_xadj, b_concat, b_xadj, vertex_bound):
        # Hits per pair are bounded by the smaller block, and the
        # dispatcher guarantees A is the smaller side overall, so
        # |a_concat| bounds the total output.
        pair_out = np.empty(a_concat.size, dtype=np.int64)
        elem_out = np.empty(a_concat.size, dtype=np.int64)
        n = _elements(a_concat, a_xadj, b_concat, b_xadj, pair_out, elem_out)
        return pair_out[:n], elem_out[:n]

    return KernelBackend("numba", count, elements)


register_backend("numba", _load_numba)
