"""Sequential EDGEITERATOR / COMPACT-FORWARD (paper Algorithm 1).

Three interchangeable counters:

* :func:`edge_iterator` — the paper's Algorithm 1, vectorized across
  all oriented arcs with the batch intersection kernel.  Also reports
  the comparison count charged in the merge cost model.
* :func:`edge_iterator_per_vertex` — same traversal but returning the
  per-vertex triangle counts Δ(v) needed for local clustering
  coefficients (Section IV-E).
* :func:`matrix_count` — an independent ``scipy.sparse`` ground-truth
  oracle (``trace-free (A⋅A)∘A`` formulation) used to cross-check every
  other implementation in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from .intersect import (
    batch_intersect_count,
    batch_intersect_count_elements,
    batch_intersect_elements,
    gather_blocks,
)
from .orientation import orient_by_degree

__all__ = [
    "SequentialResult",
    "edge_iterator",
    "edge_iterator_per_vertex",
    "matrix_count",
    "triangle_edges",
]


@dataclass(frozen=True)
class SequentialResult:
    """Outcome of a sequential count.

    Attributes
    ----------
    triangles:
        Number of triangles in the graph (each counted once).
    intersection_ops:
        Total merge-model comparisons performed.
    """

    triangles: int
    intersection_ops: int


def _oriented(graph: CSRGraph) -> CSRGraph:
    return graph if graph.oriented else orient_by_degree(graph)


def edge_iterator(graph: CSRGraph) -> SequentialResult:
    """Count triangles with COMPACT-FORWARD.

    Accepts an undirected graph (oriented internally by degree order)
    or an already-oriented one.  For every oriented arc ``(v, u)`` the
    kernel counts ``|N_v^+ ∩ N_u^+|``; summing over arcs counts every
    triangle exactly once, from its ≺-smallest vertex.
    """
    og = _oriented(graph)
    src = np.repeat(og.vertices(), og.degrees)
    dst = og.adjncy
    # A side: N^+(dst); B side: N^+(src) — order irrelevant for counts.
    a_concat, a_xadj = gather_blocks(og.xadj, og.adjncy, dst)
    b_concat, b_xadj = gather_blocks(og.xadj, og.adjncy, src)
    res = batch_intersect_count(a_concat, a_xadj, b_concat, b_xadj, og.num_vertices)
    return SequentialResult(triangles=res.total, intersection_ops=res.ops)


def edge_iterator_per_vertex(graph: CSRGraph) -> tuple[np.ndarray, SequentialResult]:
    """Per-vertex triangle counts Δ(v) via the same traversal.

    Every triangle ``{v, u, w}`` is found once (iterating from its
    smallest vertex ``v`` over arc ``(v, u)`` with closing vertex
    ``w``); Δ is incremented for all three corners.
    """
    og = _oriented(graph)
    src = np.repeat(og.vertices(), og.degrees)
    dst = og.adjncy
    a_concat, a_xadj = gather_blocks(og.xadj, og.adjncy, dst)
    b_concat, b_xadj = gather_blocks(og.xadj, og.adjncy, src)
    counts, _, closing, ops = batch_intersect_count_elements(
        a_concat, a_xadj, b_concat, b_xadj, og.num_vertices
    )
    n = og.num_vertices
    delta = np.zeros(n, dtype=np.int64)
    # Crediting the arc endpoints per hit is a weighted bincount by the
    # fused per-pair counts; only the closing vertices need the stream.
    np.add.at(delta, src, counts)
    np.add.at(delta, dst, counts)
    np.add.at(delta, closing, 1)
    return delta, SequentialResult(triangles=closing.size, intersection_ops=ops)


def triangle_edges(graph: CSRGraph) -> np.ndarray:
    """Enumerate all triangles as ``(k, 3)`` vertex rows (ascending ids).

    Enumeration is a byproduct of the counting traversal (Section IV-E:
    "since each triangle is found exactly once, this generalizes to
    triangle enumeration").
    """
    og = _oriented(graph)
    src = np.repeat(og.vertices(), og.degrees)
    dst = og.adjncy
    a_concat, a_xadj = gather_blocks(og.xadj, og.adjncy, dst)
    b_concat, b_xadj = gather_blocks(og.xadj, og.adjncy, src)
    pair_idx, closing, _ = batch_intersect_elements(
        a_concat, a_xadj, b_concat, b_xadj, og.num_vertices
    )
    tri = np.column_stack([src[pair_idx], dst[pair_idx], closing])
    tri.sort(axis=1)
    return tri


def matrix_count(graph: CSRGraph) -> int:
    """Ground-truth triangle count via sparse matrix algebra.

    For the degree-oriented adjacency matrix ``A`` (a DAG), the number
    of triangles is ``sum((A @ A) ∘ A)``: entry ``(u, w)`` of ``A @ A``
    counts 2-paths ``u→v→w`` and the Hadamard mask keeps those closed
    by an arc ``u→w``.  Independent of the edge-iterator code path, so
    the two validate each other.
    """
    og = _oriented(graph)
    a = og.to_scipy()
    if a.nnz == 0:
        return 0
    return int(((a @ a).multiply(a)).sum())
