"""The paper's core algorithms: orientation, kernels, DITRIC, CETRIC.

Submodules are imported lazily where needed; the common entry points
are re-exported here.
"""

from .approx import amq_cetric_program, amq_lcc_program, colorful, doulion
from .components import PEComponents, components_program
from .cetric import CETRIC2_CONFIG, CETRIC_CONFIG, cetric2_program, cetric_program
from .ditric import DITRIC2_CONFIG, DITRIC_CONFIG, ditric2_program, ditric_program
from .edge_iterator import (
    SequentialResult,
    edge_iterator,
    edge_iterator_per_vertex,
    matrix_count,
    triangle_edges,
)
from .engine import EngineConfig, PECounts, counting_program
from .enumerate import enumerate_program, gather_all_triangles
from .hybrid import HybridResult, run_hybrid, thread_speedup
from .kcore import PECores, h_index, kcore_program
from .lcc import lcc_from_delta, lcc_program, lcc_sequential
from .naive_distributed import naive_program
from .preprocessing import OrientedLocalGraph, build_oriented, exchange_ghost_degrees
from .intersect import (
    BatchIntersections,
    batch_intersect_count,
    batch_intersect_count_elements,
    batch_intersect_elements,
    concat_xadj,
    gather_blocks,
    intersect_count,
    intersect_sorted,
    merge_cost,
)
from .ordering import DegreeOrder, degree_order_keys, precedes
from .orientation import (
    is_acyclic_orientation,
    orient,
    orient_by_degree,
    out_neighborhoods,
)
from .wedges import (
    global_clustering_coefficient,
    oriented_wedges,
    wedge_count,
    wedges_per_vertex,
)

__all__ = [
    "amq_cetric_program",
    "amq_lcc_program",
    "PEComponents",
    "components_program",
    "colorful",
    "doulion",
    "CETRIC_CONFIG",
    "CETRIC2_CONFIG",
    "cetric_program",
    "cetric2_program",
    "DITRIC_CONFIG",
    "DITRIC2_CONFIG",
    "ditric_program",
    "ditric2_program",
    "EngineConfig",
    "PECounts",
    "counting_program",
    "enumerate_program",
    "gather_all_triangles",
    "HybridResult",
    "run_hybrid",
    "thread_speedup",
    "PECores",
    "h_index",
    "kcore_program",
    "lcc_from_delta",
    "lcc_program",
    "lcc_sequential",
    "naive_program",
    "OrientedLocalGraph",
    "build_oriented",
    "exchange_ghost_degrees",
    "SequentialResult",
    "edge_iterator",
    "edge_iterator_per_vertex",
    "matrix_count",
    "triangle_edges",
    "BatchIntersections",
    "batch_intersect_count",
    "batch_intersect_count_elements",
    "batch_intersect_elements",
    "concat_xadj",
    "gather_blocks",
    "intersect_count",
    "intersect_sorted",
    "merge_cost",
    "DegreeOrder",
    "degree_order_keys",
    "precedes",
    "is_acyclic_orientation",
    "orient",
    "orient_by_degree",
    "out_neighborhoods",
    "global_clustering_coefficient",
    "oriented_wedges",
    "wedge_count",
    "wedges_per_vertex",
]
