"""Distributed connected components by label propagation.

A second demonstration (next to :mod:`repro.core.kcore`) that the
machine substrate hosts general vertex-centric analytics: every vertex
holds a component label initialized to its own id; each synchronous
round exchanges interface labels with neighbor PEs and relaxes

    label(v) <- min(label(v), min_{u in N_v} label(u)),

terminating when a global allreduce sees no change.  Converges in
O(diameter) rounds — fast on social/web graphs, slow on paths (which
the tests cover as the adversarial case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..graphs.distributed import DistGraph
from ..net.comm import allreduce, alltoallv_dense
from ..net.machine import PEContext

__all__ = ["PEComponents", "components_program"]


@dataclass
class PEComponents:
    """Per-PE outcome of the distributed components program."""

    #: Component label (minimum vertex id in the component) per owned vertex.
    labels: np.ndarray
    #: Number of synchronous rounds until the fixpoint.
    rounds: int
    #: Number of distinct components globally.
    num_components: int


def components_program(
    ctx: PEContext, dist: DistGraph
) -> Generator[None, None, PEComponents]:
    """SPMD connected components (run via ``Machine.run``)."""
    lg = dist.view(ctx.rank)
    ghosts = lg.ghost_vertices
    labels = lg.owned_vertices().astype(np.int64).copy()
    ghost_labels = ghosts.copy() if ghosts.size else np.empty(0, dtype=np.int64)

    cut = lg.cut_edges()
    send_plan: list[tuple[int, np.ndarray]] = []
    if cut.size:
        tgt = lg.partition.rank_of(cut[:, 1])
        pairs = np.unique(np.column_stack([tgt, cut[:, 0]]), axis=0)
        for rank in np.unique(pairs[:, 0]):
            send_plan.append((int(rank), pairs[pairs[:, 0] == rank, 1]))
        ctx.charge(cut.shape[0])

    rounds = 0
    while True:
        rounds += 1
        payloads = {
            rank: ((ids, labels[ids - lg.vlo]), 2 * ids.size)
            for rank, ids in send_plan
        }
        msgs = yield from alltoallv_dense(ctx, payloads, tag_label="cc-label")
        for msg in msgs:
            if msg.payload is None:
                continue
            ids, vals = msg.payload
            slots = np.searchsorted(ghosts, ids)
            ghost_labels[slots] = vals
            ctx.charge(ids.size)

        # Relax: label(v) <- min over closed neighborhood.
        nbr = np.empty(lg.adjncy.size, dtype=np.int64)
        local_mask = lg.is_local(lg.adjncy)
        nbr[local_mask] = labels[lg.adjncy[local_mask] - lg.vlo]
        if ghosts.size:
            gm = ~local_mask
            nbr[gm] = ghost_labels[np.searchsorted(ghosts, lg.adjncy[gm])]
        new_labels = labels.copy()
        if lg.adjncy.size:
            mins = np.minimum.reduceat(
                np.concatenate([nbr, [np.iinfo(np.int64).max]]),
                np.minimum(lg.xadj[:-1], nbr.size),
            )
            # reduceat on empty blocks picks the next element; mask them out.
            empty = np.diff(lg.xadj) == 0
            mins[empty] = np.iinfo(np.int64).max
            new_labels = np.minimum(labels, mins)
        ctx.charge(lg.adjncy.size)
        changed = int(np.count_nonzero(new_labels != labels))
        labels = new_labels

        total_changed = yield from allreduce(ctx, changed, lambda a, b: a + b)
        if total_changed == 0:
            break

    # A component's label is its minimum vertex id, which is owned by
    # exactly one PE: count the owned labels that equal their vertex id.
    my_roots = int(np.count_nonzero(labels == lg.owned_vertices()))
    num_components = yield from allreduce(ctx, my_roots, lambda a, b: a + b)
    return PEComponents(labels=labels, rounds=rounds, num_components=int(num_components))
