"""Distributed k-core decomposition on the simulated machine.

The paper's conclusion calls for graph-processing infrastructure that
makes "a variety of graph analysis tasks" efficient on distributed
memory; this module demonstrates that the machine substrate
generalizes beyond triangle counting by implementing the classic
locally-iterative core-number algorithm (Lü et al., "The H-index of a
network node and its relation to degree and coreness", 2016):

    est(v) <- H({est(u) : u in N_v}),   est(v) initialized to d_v,

where ``H`` is the h-index operator (the largest ``h`` such that at
least ``h`` neighbors have estimate ``>= h``).  The iteration
converges monotonically from above to the exact core numbers and only
ever reads neighbor estimates — so each round is one ghost-estimate
exchange, exactly like the ghost-degree exchange of the counting
preprocessing.

Rounds are synchronous; termination is a global allreduce on the
per-round change count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..graphs.distributed import DistGraph
from ..net.comm import allreduce, alltoallv_dense
from ..net.machine import PEContext

__all__ = ["PECores", "kcore_program", "h_index"]


def h_index(values: np.ndarray) -> int:
    """The h-index of a multiset: ``max h`` with ``h`` values ``>= h``."""
    if values.size == 0:
        return 0
    sorted_desc = np.sort(values)[::-1]
    ranks = np.arange(1, sorted_desc.size + 1)
    ok = sorted_desc >= ranks
    return int(ranks[ok].max(initial=0))


@dataclass
class PECores:
    """Per-PE outcome of the distributed k-core program."""

    #: Exact core numbers of the owned vertices (aligned with slots).
    cores: np.ndarray
    #: Number of synchronous rounds until the fixpoint.
    rounds: int


def _batch_h_index(est_of_neighbors: np.ndarray, xadj: np.ndarray) -> np.ndarray:
    """h-index per CSR block (vectorized inside each block)."""
    out = np.zeros(xadj.size - 1, dtype=np.int64)
    for i in range(xadj.size - 1):
        out[i] = h_index(est_of_neighbors[xadj[i] : xadj[i + 1]])
    return out


def kcore_program(ctx: PEContext, dist: DistGraph) -> Generator[None, None, PECores]:
    """SPMD core-number computation (run via ``Machine.run``)."""
    lg = dist.view(ctx.rank)
    ghosts = lg.ghost_vertices
    est_local = lg.degrees.astype(np.int64).copy()
    est_ghost = np.zeros(ghosts.size, dtype=np.int64)

    # Who needs which of my vertices' estimates (same pattern as the
    # ghost-degree exchange).
    cut = lg.cut_edges()
    send_plan: list[tuple[int, np.ndarray]] = []
    if cut.size:
        tgt = lg.partition.rank_of(cut[:, 1])
        pairs = np.unique(np.column_stack([tgt, cut[:, 0]]), axis=0)
        for rank in np.unique(pairs[:, 0]):
            send_plan.append((int(rank), pairs[pairs[:, 0] == rank, 1]))
        ctx.charge(cut.shape[0])

    rounds = 0
    while True:
        rounds += 1
        # Exchange current estimates of interface vertices.
        payloads = {
            rank: ((ids, est_local[ids - lg.vlo]), 2 * ids.size)
            for rank, ids in send_plan
        }
        msgs = yield from alltoallv_dense(ctx, payloads, tag_label="kcore-est")
        for msg in msgs:
            if msg.payload is None:
                continue
            ids, vals = msg.payload
            slots = np.searchsorted(ghosts, ids)
            est_ghost[slots] = vals
            ctx.charge(ids.size)

        # One h-index sweep over the owned vertices.
        nbr_est = np.empty(lg.adjncy.size, dtype=np.int64)
        local_mask = lg.is_local(lg.adjncy)
        nbr_est[local_mask] = est_local[lg.adjncy[local_mask] - lg.vlo]
        if ghosts.size:
            gm = ~local_mask
            nbr_est[gm] = est_ghost[np.searchsorted(ghosts, lg.adjncy[gm])]
        new_est = _batch_h_index(nbr_est, lg.xadj)
        # H-operator never increases estimates below the true core.
        changed = int(np.count_nonzero(new_est != est_local))
        ctx.charge(lg.adjncy.size)
        est_local = new_est

        total_changed = yield from allreduce(ctx, changed, lambda a, b: a + b)
        if total_changed == 0:
            break
    return PECores(cores=est_local, rounds=rounds)
