"""Approximate triangle counting (paper Sections III-B and IV-E).

Three approximations:

* :func:`amq_cetric_program` — the paper's own contribution: CETRIC
  with an **AMQ global phase**.  Type-1/2 triangles are counted
  exactly in the local phase; for type-3 triangles each shipped
  neighborhood ``A(v)`` is replaced by an approximate-membership
  structure ``A'(v)`` (Bloom filter or compressed single-shot Bloom
  filter).  The receiver approximates ``|A(u) ∩ A(v)|`` by querying
  all members of ``A(u)`` against ``A'(v)`` and, optionally, corrects
  the expected false positives to obtain a *truthful* estimator:
  with ``c`` positive out of ``s`` queries at FPR ``f``, the unbiased
  estimate of the true intersection is ``(c - s f) / (1 - f)``.
* :func:`doulion` — DOULION edge sampling (Tsourakakis et al.): keep
  each edge with probability ``q``, count exactly on the sparsified
  graph, scale by ``q^{-3}``.
* :func:`colorful` — colorful triangle counting (Pagh &
  Tsourakakis): color vertices with ``N`` colors, keep monochromatic
  edges, count, scale by ``N^2``.

DOULION and colorful need a triangle counter as a black box — any of
this package's exact algorithms — and only approximate the *global*
count, whereas the AMQ scheme also supports approximate local
clustering coefficients (the property the paper highlights).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Literal

import numpy as np

from ..amq.bloom import BloomFilter
from ..amq.ssbf import SingleShotBloomFilter
from ..graphs.builders import from_edges
from ..graphs.csr import CSRGraph
from ..graphs.distributed import DistGraph
from ..net.aggregation import BufferedMessageQueue
from ..net.comm import allreduce, alltoallv_dense
from ..net.indirect import GridRouter
from ..net.machine import PEContext
from .edge_iterator import edge_iterator
from .engine import EngineConfig, _local_phase_pairs, _surrogate_filter
from .preprocessing import build_oriented, exchange_ghost_degrees

__all__ = [
    "AmqRecord",
    "PEApproxCounts",
    "PEApproxLcc",
    "amq_cetric_program",
    "amq_lcc_program",
    "doulion",
    "colorful",
    "ApproxResult",
]


@dataclass(frozen=True)
class AmqRecord:
    """Global-phase record with an AMQ instead of the raw neighborhood.

    ``targets`` lists the members of ``A(v)`` owned by the destination
    PE (the sender knows them — they are the reason the record is sent
    at all), so the receiver knows which local intersections to
    evaluate; only the *rest* of ``A(v)`` is compressed away into the
    filter.
    """

    vertex: int
    targets: np.ndarray
    amq: BloomFilter | SingleShotBloomFilter
    #: |A(v)| at the sender (needed by nobody, kept for diagnostics).
    source_size: int

    @property
    def words(self) -> int:
        """Wire size: targets + filter + (vertex, sizes) header."""
        return int(self.targets.size) + int(self.amq.storage_words) + 3


@dataclass
class PEApproxCounts:
    """Per-PE outcome of the AMQ-approximate program."""

    estimate_total: float
    exact_local: int
    approx_remote: float


def _make_amq(
    kind: Literal["bloom", "ssbf"], neighborhood: np.ndarray, vertex: int, budget: float
) -> BloomFilter | SingleShotBloomFilter:
    """Build the sender-side filter for one neighborhood.

    The hash seed is derived from the record vertex so both endpoints
    agree without extra communication.
    """
    if kind == "bloom":
        f = BloomFilter.for_elements(neighborhood.size, bits_per_element=budget, seed=vertex)
    elif kind == "ssbf":
        f = SingleShotBloomFilter.for_elements(
            neighborhood.size, cells_per_element=budget, seed=vertex
        )
    else:
        raise ValueError("kind must be 'bloom' or 'ssbf'")
    f.add(neighborhood)
    return f


def amq_cetric_program(
    ctx: PEContext,
    dist: DistGraph,
    *,
    amq_kind: Literal["bloom", "ssbf"] = "bloom",
    budget: float = 8.0,
    correct_bias: bool = True,
    config: EngineConfig = EngineConfig(contraction=True),
) -> Generator[None, None, PEApproxCounts]:
    """CETRIC with the approximate (AMQ) global phase.

    Parameters
    ----------
    amq_kind:
        ``"bloom"`` (budget = bits per element) or ``"ssbf"``
        (budget = cells per element, FPR ~ 1/budget).
    correct_bias:
        Subtract the expected false positives, yielding the truthful
        estimator of Section IV-E.
    """
    if not config.contraction:
        raise ValueError("the AMQ phase replaces CETRIC's global phase; contraction required")
    lg = dist.view(ctx.rank)
    vlo, vhi = lg.vlo, lg.vhi

    with ctx.phase("preprocessing"):
        yield from exchange_ghost_degrees(ctx, lg, mode=config.degree_exchange)
        og = build_oriented(ctx, lg, with_ghosts=True)

    with ctx.phase("local"):
        exact_local = _local_phase_pairs(ctx, og, expanded=True)
        yield

    with ctx.phase("contraction"):
        send_xadj, send_adj = og.contracted()
        ctx.charge(og.oadjncy.size)

    with ctx.phase("global"):
        threshold = config.threshold_words(lg.num_local_arcs)
        router = (
            GridRouter(ctx, "amq-nbh", threshold)
            if config.indirect
            else BufferedMessageQueue(ctx, "amq-nbh", threshold)
        )
        nloc = lg.num_local_vertices
        s_src = np.repeat(np.arange(nloc, dtype=np.int64), np.diff(send_xadj))
        cut_mask = ~lg.is_local(send_adj)  # all true post-contraction
        c_src = s_src[cut_mask]
        c_dst = send_adj[cut_mask]
        dst_ranks = lg.partition.rank_of(c_dst) if c_dst.size else c_dst
        first = _surrogate_filter(c_src, dst_ranks, enabled=True)
        ctx.charge(c_src.size)
        # Group cut arcs into (vertex, destination PE) runs; the run
        # members are exactly the receiver-side targets.
        run_starts = np.flatnonzero(first)
        run_ends = np.concatenate([run_starts[1:], [c_src.size]])
        # Per-run loop, not post_many: each run builds an opaque AMQ
        # payload (a Bloom filter is inherently a per-destination
        # object), so there is no frameable array batch to pack.
        for start, end in zip(run_starts.tolist(), run_ends.tolist()):
            slot = int(c_src[start])
            rank = int(dst_ranks[start])
            v = vlo + slot
            nbh = send_adj[send_xadj[slot] : send_xadj[slot + 1]]
            amq = _make_amq(amq_kind, nbh, v, budget)
            ctx.charge(nbh.size)  # filter construction
            rec = AmqRecord(
                vertex=v,
                targets=c_dst[start:end],
                amq=amq,
                source_size=int(nbh.size),
            )
            router.post(rank, rec)
        records = yield from router.finalize()

        approx_remote = 0.0
        for rec in records:
            fpr = rec.amq.expected_fpr()
            for u in rec.targets.tolist():
                a_u = send_adj[send_xadj[u - vlo] : send_xadj[u - vlo + 1]]
                if a_u.size == 0:
                    continue
                hits = int(np.count_nonzero(rec.amq.query(a_u)))
                ctx.charge(a_u.size)
                if correct_bias and fpr < 1.0:
                    approx_remote += (hits - a_u.size * fpr) / (1.0 - fpr)
                else:
                    approx_remote += hits
        yield

    my_total = float(exact_local) + approx_remote
    grand = yield from allreduce(ctx, my_total, lambda a, b: a + b)
    return PEApproxCounts(
        estimate_total=float(grand),
        exact_local=int(exact_local),
        approx_remote=float(approx_remote),
    )


@dataclass
class PEApproxLcc:
    """Per-PE outcome of the approximate-LCC program."""

    #: Approximate Δ per owned vertex (types 1/2 exact, type 3 estimated).
    delta: np.ndarray
    #: Approximate LCC per owned vertex.
    lcc: np.ndarray
    #: Global triangle estimate (``sum Δ / 3`` over all PEs).
    estimate_total: float


def amq_lcc_program(
    ctx: PEContext,
    dist: DistGraph,
    *,
    amq_kind: Literal["bloom", "ssbf"] = "bloom",
    budget: float = 8.0,
    correct_bias: bool = True,
) -> Generator[None, None, PEApproxLcc]:
    """Approximate local clustering coefficients (Section IV-E).

    The property the paper highlights: sampling approximations
    (DOULION, colorful) only estimate the *global* count, but the AMQ
    scheme keeps every type-1/2 triangle exact and only approximates
    the type-3 contributions, so *per-vertex* Δ — and hence LCC —
    stays accurate.

    Bias correction scales each positive query's corner credit by the
    truthful-pair factor ``(c - s f) / ((1 - f) c)`` (``c`` positives
    of ``s`` queries at FPR ``f``), so the pair's total contribution
    matches the unbiased estimator of :func:`amq_cetric_program`.
    """
    # Local import: lcc imports engine helpers that this module also uses.
    from .lcc import _triangles_elements_local, lcc_from_delta

    lg = dist.view(ctx.rank)
    vlo, vhi = lg.vlo, lg.vhi
    ghosts = lg.ghost_vertices

    with ctx.phase("preprocessing"):
        yield from exchange_ghost_degrees(ctx, lg)
        og = build_oriented(ctx, lg, with_ghosts=True)

    delta_local = np.zeros(lg.num_local_vertices, dtype=np.float64)
    delta_ghost = np.zeros(ghosts.size, dtype=np.float64)

    def credit(vertices: np.ndarray, weight) -> None:
        owned = (vertices >= vlo) & (vertices < vhi)
        np.add.at(delta_local, vertices[owned] - vlo, np.broadcast_to(weight, vertices.shape)[owned])
        if ghosts.size and not np.all(owned):
            slots = np.searchsorted(ghosts, vertices[~owned])
            np.add.at(delta_ghost, slots, np.broadcast_to(weight, vertices.shape)[~owned])
        ctx.charge(vertices.size)

    with ctx.phase("local"):
        a, b, c = _triangles_elements_local(ctx, og, expanded=True)
        for corners in (a, b, c):
            credit(corners, 1.0)
        yield

    with ctx.phase("contraction"):
        send_xadj, send_adj = og.contracted()
        ctx.charge(og.oadjncy.size)

    with ctx.phase("global"):
        threshold = EngineConfig().threshold_words(lg.num_local_arcs)
        router = BufferedMessageQueue(ctx, "amq-lcc", threshold)
        nloc = lg.num_local_vertices
        s_src = np.repeat(np.arange(nloc, dtype=np.int64), np.diff(send_xadj))
        c_src = s_src
        c_dst = send_adj
        dst_ranks = lg.partition.rank_of(c_dst) if c_dst.size else c_dst
        first = _surrogate_filter(c_src, dst_ranks, enabled=True)
        ctx.charge(c_src.size)
        run_starts = np.flatnonzero(first)
        run_ends = np.concatenate([run_starts[1:], [c_src.size]])
        # Per-run loop as in amq_cetric_program: opaque AMQ payloads.
        for start, end in zip(run_starts.tolist(), run_ends.tolist()):
            slot = int(c_src[start])
            rank = int(dst_ranks[start])
            v = vlo + slot
            nbh = send_adj[send_xadj[slot] : send_xadj[slot + 1]]
            amq = _make_amq(amq_kind, nbh, v, budget)
            ctx.charge(nbh.size)
            router.post(
                rank,
                AmqRecord(
                    vertex=v,
                    targets=c_dst[start:end],
                    amq=amq,
                    source_size=int(nbh.size),
                ),
            )
        records = yield from router.finalize()
        for rec in records:
            fpr = rec.amq.expected_fpr()
            for u in rec.targets.tolist():
                a_u = send_adj[send_xadj[u - vlo] : send_xadj[u - vlo + 1]]
                if a_u.size == 0:
                    continue
                positive = rec.amq.query(a_u)
                ctx.charge(a_u.size)
                hits = int(np.count_nonzero(positive))
                if hits == 0:
                    continue
                if correct_bias and fpr < 1.0:
                    weight = max(0.0, (hits - a_u.size * fpr) / ((1.0 - fpr) * hits))
                else:
                    weight = 1.0
                # Corners: record vertex v (ghost), owned u, positives w.
                credit(np.array([rec.vertex], dtype=np.int64), weight * hits)
                delta_local[u - vlo] += weight * hits
                credit(a_u[positive], weight)
        yield

    with ctx.phase("delta-exchange"):
        payloads: dict[int, tuple[tuple[np.ndarray, np.ndarray], int]] = {}
        if ghosts.size:
            nz = delta_ghost > 0
            gids = ghosts[nz]
            gvals = delta_ghost[nz]
            owner = lg.partition.rank_of(gids) if gids.size else gids
            for rank in np.unique(owner):
                sel = owner == rank
                payloads[int(rank)] = ((gids[sel], gvals[sel]), 2 * int(sel.sum()))
        msgs = yield from alltoallv_dense(ctx, payloads, tag_label="amq-delta")
        for msg in msgs:
            if msg.payload is None:
                continue
            ids, vals = msg.payload
            np.add.at(delta_local, ids - vlo, vals)
            ctx.charge(ids.size)

    my_sum = float(delta_local.sum())
    grand = yield from allreduce(ctx, my_sum, lambda x, y: x + y)
    lcc = lcc_from_delta(delta_local, lg.degrees)
    return PEApproxLcc(delta=delta_local, lcc=lcc, estimate_total=float(grand) / 3.0)


# ----------------------------------------------------------------------
# Black-box sampling approximations (Section III-B baselines)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ApproxResult:
    """Outcome of a sampling-based approximation."""

    estimate: float
    #: Triangles counted in the reduced graph.
    reduced_count: int
    #: Edges of the reduced graph.
    reduced_edges: int


def doulion(
    graph: CSRGraph,
    q: float,
    *,
    seed: int = 0,
    counter: Callable[[CSRGraph], int] | None = None,
) -> ApproxResult:
    """DOULION: sample edges with probability ``q``, scale by ``q^{-3}``."""
    if not (0.0 < q <= 1.0):
        raise ValueError("q must be in (0, 1]")
    rng = np.random.default_rng(seed)
    edges = graph.undirected_edges()
    keep = rng.random(edges.shape[0]) < q
    reduced = from_edges(edges[keep], num_vertices=graph.num_vertices, name=f"{graph.name}|doulion")
    count = counter(reduced) if counter else edge_iterator(reduced).triangles
    return ApproxResult(
        estimate=count / q**3, reduced_count=int(count), reduced_edges=reduced.num_edges
    )


def colorful(
    graph: CSRGraph,
    num_colors: int,
    *,
    seed: int = 0,
    counter: Callable[[CSRGraph], int] | None = None,
) -> ApproxResult:
    """Colorful triangle counting: keep monochromatic edges, scale by ``N^2``."""
    if num_colors < 1:
        raise ValueError("need at least one color")
    rng = np.random.default_rng(seed)
    colors = rng.integers(0, num_colors, size=graph.num_vertices)
    edges = graph.undirected_edges()
    keep = colors[edges[:, 0]] == colors[edges[:, 1]]
    reduced = from_edges(edges[keep], num_vertices=graph.num_vertices, name=f"{graph.name}|colorful")
    count = counter(reduced) if counter else edge_iterator(reduced).triangles
    return ApproxResult(
        estimate=count * float(num_colors) ** 2,
        reduced_count=int(count),
        reduced_edges=reduced.num_edges,
    )
