"""Degree-based total vertex ordering (Section III, COMPACT-FORWARD).

Triangle counters orient the undirected input along a total order
``u ≺ v`` to count each triangle exactly once.  The paper uses the
degree-based order of Latapy's COMPACT-FORWARD::

    u ≺ v  <=>  d_u < d_v, or (d_u == d_v and u < v)

which directs edges towards high-degree vertices and provably bounds
the out-degree by ``O(sqrt(m))``, shrinking the neighborhoods that get
intersected *and* shipped across the network.

In the distributed setting every comparison may involve a ghost vertex
whose degree is only known after the ghost-degree exchange, so the
comparator works on explicit ``(degree, id)`` key pairs rather than on
a global rank array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DegreeOrder", "degree_order_keys", "precedes"]


def degree_order_keys(degrees: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Encode ``(degree, id)`` pairs into single sortable int64 keys.

    With ``key = degree * n + id`` (n = a bound larger than any id),
    ``key_u < key_v`` iff ``u ≺ v``.  Callers must pass the same id
    bound everywhere; :class:`DegreeOrder` wraps this bookkeeping.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    ids = np.asarray(ids, dtype=np.int64)
    bound = np.int64(ids.max(initial=0)) + 1
    return degrees * bound + ids


def precedes(du: int, u: int, dv: int, v: int) -> bool:
    """Scalar comparator ``u ≺ v`` on ``(degree, id)`` pairs."""
    return (du, u) < (dv, v)


@dataclass(frozen=True)
class DegreeOrder:
    """A realized degree-based total order over vertex ids ``0..n-1``.

    Stores one int64 key per vertex such that ``u ≺ v`` iff
    ``key[u] < key[v]``.  A PE can build this for its local+ghost
    vertices once degrees are known; in the sequential case all degrees
    are local.
    """

    keys: np.ndarray

    @classmethod
    def from_degrees(cls, degrees: np.ndarray) -> "DegreeOrder":
        """Build the order for vertices ``0..n-1`` with given degrees."""
        degrees = np.asarray(degrees, dtype=np.int64)
        n = degrees.size
        ids = np.arange(n, dtype=np.int64)
        return cls(keys=degrees * np.int64(n) + ids)

    @property
    def num_vertices(self) -> int:
        """Number of vertices the order covers."""
        return self.keys.size

    def compare(self, u, v) -> np.ndarray:
        """Vectorized ``u ≺ v`` (element-wise boolean)."""
        return self.keys[np.asarray(u)] < self.keys[np.asarray(v)]

    def rank_permutation(self) -> np.ndarray:
        """``perm[v]`` = position of ``v`` in the total order.

        Relabeling with this permutation makes ``≺`` coincide with
        numeric ``<`` — useful for tests and for the matrix-based
        counter.
        """
        order = np.argsort(self.keys, kind="stable")
        perm = np.empty_like(order)
        perm[order] = np.arange(order.size, dtype=np.int64)
        return perm
