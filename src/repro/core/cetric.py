"""CETRIC — communication-efficient triangle counting via contraction.

CETRIC (Section IV-C, Algorithm 3) runs in two phases:

1. **Local phase** on the *expanded local graph* (owned vertices plus
   ghosts, with ghost neighborhoods restricted to local vertices):
   finds every type-1 and type-2 triangle without any communication
   while preserving the degree orientation.
2. **Contraction** removes all non-cut arcs; by Lemma 1 the remaining
   cut graph contains exactly the type-3 triangles.
3. **Global phase** runs the DITRIC machinery on the contracted
   structure, so communication volume depends only on the cut.

CETRIC² adds grid-based indirect delivery in the global phase.
"""

from __future__ import annotations

from typing import Generator

from ..graphs.distributed import DistGraph
from ..net.machine import PEContext
from ..net.reliable import fault_tolerant
from .engine import EngineConfig, PECounts, counting_program

__all__ = ["cetric_program", "cetric2_program", "CETRIC_CONFIG", "CETRIC2_CONFIG"]

#: Plain CETRIC: contraction + aggregation + surrogate, direct delivery.
CETRIC_CONFIG = EngineConfig(contraction=True, aggregate=True, indirect=False, surrogate=True)

#: CETRIC² — adds grid-based indirect message delivery.
CETRIC2_CONFIG = EngineConfig(contraction=True, aggregate=True, indirect=True, surrogate=True)


@fault_tolerant
def cetric_program(
    ctx: PEContext, dist: DistGraph, config: EngineConfig = CETRIC_CONFIG
) -> Generator[None, None, PECounts]:
    """SPMD program for CETRIC (pass a modified config for ablations).

    Fault-tolerant: checkpoints at phase boundaries and survives the
    :mod:`repro.faults` fault model (see ``docs/FAULTS.md``).
    """
    if not config.contraction:
        raise ValueError("CETRIC requires contraction; use ditric_program")
    return (yield from counting_program(ctx, dist, config))


@fault_tolerant
def cetric2_program(ctx: PEContext, dist: DistGraph) -> Generator[None, None, PECounts]:
    """SPMD program for CETRIC² (indirect delivery)."""
    return (yield from counting_program(ctx, dist, CETRIC2_CONFIG))
