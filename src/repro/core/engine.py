"""The distributed counting engine behind DITRIC and CETRIC.

One parametrized SPMD program implements the whole algorithm family of
Section IV; the public entry points (:mod:`repro.core.ditric`,
:mod:`repro.core.cetric`, :mod:`repro.core.naive_distributed`) are
configurations of it:

=================== ============ =========== ========== ===========
variant             contraction  aggregation indirect   surrogate
=================== ============ =========== ========== ===========
Algorithm 2 (naive) no           off         no         off
Algorithm 2 + aggr  no           on          no         off
DITRIC              no           on          no         on
DITRIC²             no           on          yes        on
CETRIC              yes          on          no         on
CETRIC²             yes          on          yes        on
=================== ============ =========== ========== ===========

Phases are attributed to the labels Fig. 7 uses: ``preprocessing``
(degree exchange, orientation, and — for CETRIC — building the
expanded graph), ``local`` (intersections on locally available arcs),
``contraction`` and ``global`` (message exchange plus receiver-side
intersections and the final reduction).

Fault tolerance
---------------
The program is marked :func:`~repro.net.reliable.fault_tolerant`: on a
machine with a checkpoint store (see
:func:`repro.core.checkpoint.run_with_recovery`) it snapshots at the
phase boundaries of Lemma 1's decomposition — after the local phase
(oriented structure + type-1/2 count) and after contraction (the cut
send structure) — so a PE crash during the communication-heavy global
phase re-runs only that phase.  All point-to-point traffic flows
through the aggregation queues and collectives, which ride the
machine's transport; there are no raw ``ctx.send`` calls here (lint
rule R5 checks this).  Because every exchange goes through those
primitives — which complete in-flight sends (``ctx.sync_sends``)
before their termination barriers — the program runs unchanged on the
contended network model of :mod:`repro.sim` (see
``docs/SIMULATION.md``); checkpoint phase boundaries and retransmit
timers are engine events there, not extra scheduler rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..graphs.distributed import DistGraph
from ..net.aggregation import BufferedMessageQueue
from ..net.comm import allreduce
from ..net.indirect import GridRouter
from ..net.machine import PEContext
from ..net.messages import HEADER_WORDS
from ..net.reliable import fault_tolerant
from .intersect import gather_blocks
from .kernels import count_csr_pairs, count_record_pairs
from .preprocessing import OrientedLocalGraph, build_oriented, exchange_ghost_degrees

__all__ = ["EngineConfig", "PECounts", "counting_program"]


@dataclass(frozen=True)
class EngineConfig:
    """Knobs selecting an algorithm variant (see module table)."""

    #: CETRIC's two-phase scheme: count type-1/2 locally on the
    #: expanded graph, contract, run the global phase on cut edges only.
    contraction: bool = False
    #: Dynamic buffered aggregation (Section IV-A).  ``False`` sends one
    #: message per neighborhood — the Fig. 2 "no aggregation" setup.
    aggregate: bool = True
    #: Grid-based indirect delivery (Section IV-B) — the ² variants.
    indirect: bool = False
    #: Arifuzzaman-style redundant-send suppression (Section IV-D).
    surrogate: bool = True
    #: Ghost-degree exchange flavour: "dense" (paper default) or "sparse".
    degree_exchange: str = "dense"
    #: Aggregation threshold delta as a multiple of the local arc count
    #: (delta in O(|E_i|) gives the linear-memory guarantee).
    threshold_factor: float = 1.0

    def threshold_words(self, local_arcs: int) -> int:
        """The concrete flush threshold for a PE with ``local_arcs`` arcs."""
        if not self.aggregate:
            return 0
        return max(16, int(self.threshold_factor * max(local_arcs, 1)))


@dataclass
class PECounts:
    """Per-PE outcome of the counting program."""

    triangles_total: int
    local_count: int
    remote_count: int
    records_sent: int


def _local_phase_pairs(
    ctx: PEContext, og, *, expanded: bool
) -> int:
    """All intersections available without communication.

    ``expanded=False`` (DITRIC): arcs ``(v, u)`` with both endpoints
    owned, full ``A`` sets — finds type-1 triangles only.

    ``expanded=True`` (CETRIC): the expanded local graph — every arc of
    Algorithm 3 lines 5-7, with ghost ``A`` sets restricted to local
    vertices — finds all type-1 and type-2 triangles.
    """
    lg = og.lg
    vlo = lg.vlo
    bound = og.num_vertices + 1
    nloc = lg.num_local_vertices
    src_slots = np.repeat(np.arange(nloc, dtype=np.int64), np.diff(og.oxadj))
    dst = og.oadjncy
    dst_local = lg.is_local(dst)
    total = 0

    # Group 1: owned -> owned (both variants).
    l_src = src_slots[dst_local]
    l_dst = dst[dst_local]
    total += count_csr_pairs(
        ctx, og.oxadj, og.oadjncy, l_src, og.oxadj, og.oadjncy, l_dst - vlo, bound
    )
    if not expanded:
        return total

    ghosts = lg.ghost_vertices
    # Group 2: owned v -> ghost u; intersect full A(v) with the
    # local-restricted A(u) of the ghost.
    g_src = src_slots[~dst_local]
    g_dst = dst[~dst_local]
    if g_src.size:
        g_slots = np.searchsorted(ghosts, g_dst)
        total += count_csr_pairs(
            ctx, og.oxadj, og.oadjncy, g_src, og.goxadj, og.goadjncy, g_slots, bound
        )
    # Group 3: ghost g -> owned u (u in A(g), always owned by
    # construction); intersect A(g) with full A(u).
    if ghosts.size:
        gh_src_slots = np.repeat(
            np.arange(ghosts.size, dtype=np.int64), np.diff(og.goxadj)
        )
        gh_dst = og.goadjncy
        total += count_csr_pairs(
            ctx, og.goxadj, og.goadjncy, gh_src_slots, og.oxadj, og.oadjncy, gh_dst - vlo, bound
        )
    return total


def _surrogate_filter(
    src_slots: np.ndarray, dst_ranks: np.ndarray, *, enabled: bool
) -> np.ndarray:
    """Mask selecting which cut arcs trigger a neighborhood send.

    With the surrogate optimization only the first arc of each
    ``(vertex, destination PE)`` run sends; the runs are contiguous
    because neighborhoods are sorted by id and the 1D ID partition
    makes the owning rank monotone in the id (Section IV-D).
    """
    if src_slots.size == 0:
        return np.zeros(0, dtype=bool)
    if not enabled:
        return np.ones(src_slots.size, dtype=bool)
    first = np.ones(src_slots.size, dtype=bool)
    first[1:] = (src_slots[1:] != src_slots[:-1]) | (dst_ranks[1:] != dst_ranks[:-1])
    return first


def _post_cut_neighborhoods(
    router,
    send_xadj: np.ndarray,
    send_adj: np.ndarray,
    c_src: np.ndarray,
    c_dst: np.ndarray,
    dst_ranks: np.ndarray,
    sends: np.ndarray,
    vlo: int,
    *,
    targeted: bool,
) -> tuple[int, int]:
    """Post one record per selected cut arc, as a single packed batch.

    With ``targeted`` (Algorithm 2 shape) each record carries its owned
    endpoint ``c_dst``; otherwise the records are surrogate broadcasts.
    Returns ``(records, words)`` posted — ``words`` is exactly the sum
    of the per-record ``Record.words`` charges.
    """
    slots = c_src[sends]
    k = int(slots.size)
    if k == 0:
        return 0, 0
    neighbors, nbh_xadj = gather_blocks(send_xadj, send_adj, slots)
    targets = c_dst[sends] if targeted else np.full(k, -1, dtype=np.int64)
    router.post_many(dst_ranks[sends], vlo + slots, targets, nbh_xadj, neighbors)
    words = int(neighbors.size) + HEADER_WORDS * k + (k if targeted else 0)
    return k, words


@fault_tolerant
def counting_program(
    ctx: PEContext, dist: DistGraph, config: EngineConfig
) -> Generator[None, None, PECounts]:
    """SPMD triangle counting on one PE (run via ``Machine.run``)."""
    lg = dist.view(ctx.rank)
    vlo, vhi = lg.vlo, lg.vhi
    bound = dist.num_vertices + 1

    snap = ctx.restore("local")
    if snap is None:  # noqa: R8 -- restore() replays a globally consistent snapshot: the machine checkpoints all PEs at the same barrier, so every rank sees the same None-or-snapshot and takes the same arm
        with ctx.phase("preprocessing"):
            yield from exchange_ghost_degrees(ctx, lg, mode=config.degree_exchange)
            og = build_oriented(ctx, lg, with_ghosts=config.contraction)

        with ctx.phase("local"):
            local_count = _local_phase_pairs(ctx, og, expanded=config.contraction)
            yield

        ctx.checkpoint(
            "local",
            {
                "oxadj": og.oxadj,
                "oadjncy": og.oadjncy,
                "goxadj": og.goxadj,
                "goadjncy": og.goadjncy,
                "local_keys": og.local_keys,
                "ghost_keys": og.ghost_keys,
                "local_count": int(local_count),
            },
        )
    else:
        # Replay: the whole preprocessing + local phase — including the
        # degree-exchange messages — is skipped on *every* PE (the
        # store only replays globally stable snapshots), so the SPMD
        # message pattern stays consistent.
        og = OrientedLocalGraph(
            lg=lg,
            oxadj=snap["oxadj"],
            oadjncy=snap["oadjncy"],
            goxadj=snap["goxadj"],
            goadjncy=snap["goadjncy"],
            local_keys=snap["local_keys"],
            ghost_keys=snap["ghost_keys"],
        )
        local_count = snap["local_count"]
        yield

    if config.contraction:
        csnap = ctx.restore("contraction")
        if csnap is None:
            with ctx.phase("contraction"):
                send_xadj, send_adj = og.contracted()
                ctx.charge(og.oadjncy.size)  # one pass to drop non-cut arcs
            ctx.checkpoint(
                "contraction", {"send_xadj": send_xadj, "send_adj": send_adj}
            )
        else:
            send_xadj, send_adj = csnap["send_xadj"], csnap["send_adj"]
            yield
    else:
        send_xadj, send_adj = og.oxadj, og.oadjncy

    with ctx.phase("global"):
        threshold = config.threshold_words(lg.num_local_arcs)
        tag = "nbh"
        router = (
            GridRouter(ctx, tag, threshold)
            if config.indirect
            else BufferedMessageQueue(ctx, tag, threshold)
        )
        # Cut arcs of the *send* structure (full A for DITRIC,
        # contracted A for CETRIC); dst is a ghost for every kept arc.
        nloc = lg.num_local_vertices
        s_src = np.repeat(np.arange(nloc, dtype=np.int64), np.diff(send_xadj))
        s_dst = send_adj
        cut_mask = ~lg.is_local(s_dst)
        c_src = s_src[cut_mask]
        c_dst = s_dst[cut_mask]
        dst_ranks = lg.partition.rank_of(c_dst) if c_dst.size else c_dst
        sends = _surrogate_filter(c_src, dst_ranks, enabled=config.surrogate)
        ctx.charge(c_src.size)  # scanning cut arcs / surrogate bookkeeping
        # Surrogate: one broadcast (v, A(v)) record per destination PE
        # (the receiver loops over all its local u in A(v)).  Otherwise
        # the Algorithm 2 shape: one targeted ((v, u), A(v)) record per
        # cut arc, possibly shipping the same neighborhood repeatedly.
        records_sent, posted_words = _post_cut_neighborhoods(
            router,
            send_xadj,
            send_adj,
            c_src,
            c_dst,
            dst_ranks,
            sends,
            vlo,
            targeted=not config.surrogate,
        )
        ctx.charge(posted_words)  # buffer writes
        records = yield from router.finalize()
        remote_count = count_record_pairs(
            ctx,
            records,
            send_xadj if config.contraction else og.oxadj,
            send_adj if config.contraction else og.oadjncy,
            vlo,
            vhi,
            bound,
        )
        yield

    my_total = local_count + remote_count
    grand_total = yield from allreduce(ctx, my_total, lambda a, b: a + b)
    return PECounts(
        triangles_total=int(grand_total),
        local_count=int(local_count),
        remote_count=int(remote_count),
        records_sent=records_sent,
    )
