"""DITRIC — distributed triangle counting with dynamic aggregation.

DITRIC (Section IV) is the distributed EDGEITERATOR equipped with

* the dynamically buffered message queue (threshold ``delta`` in
  ``O(|E_i|)`` — linear memory despite superlinear volume),
* the asynchronous sparse all-to-all exchange of neighborhoods,
* the surrogate filter avoiding redundant neighborhood sends,

and, in the DITRIC² variant, grid-based indirect message delivery.

Use with :class:`repro.net.Machine`::

    machine = Machine(num_pes)
    result = machine.run(ditric_program, dist_graph)
    triangles = result.values[0].triangles_total
"""

from __future__ import annotations

from typing import Generator

from ..graphs.distributed import DistGraph
from ..net.machine import PEContext
from ..net.reliable import fault_tolerant
from .engine import EngineConfig, PECounts, counting_program

__all__ = ["ditric_program", "ditric2_program", "DITRIC_CONFIG", "DITRIC2_CONFIG"]

#: Plain DITRIC: aggregation + surrogate, direct delivery.
DITRIC_CONFIG = EngineConfig(contraction=False, aggregate=True, indirect=False, surrogate=True)

#: DITRIC² — adds grid-based indirect message delivery.
DITRIC2_CONFIG = EngineConfig(contraction=False, aggregate=True, indirect=True, surrogate=True)


@fault_tolerant
def ditric_program(
    ctx: PEContext, dist: DistGraph, config: EngineConfig = DITRIC_CONFIG
) -> Generator[None, None, PECounts]:
    """SPMD program for DITRIC (pass a modified config for ablations).

    Fault-tolerant: checkpoints at phase boundaries and survives the
    :mod:`repro.faults` fault model (see ``docs/FAULTS.md``).
    """
    if config.contraction:
        raise ValueError("DITRIC does not contract; use cetric_program")
    return (yield from counting_program(ctx, dist, config))


@fault_tolerant
def ditric2_program(ctx: PEContext, dist: DistGraph) -> Generator[None, None, PECounts]:
    """SPMD program for DITRIC² (indirect delivery)."""
    return (yield from counting_program(ctx, dist, DITRIC2_CONFIG))
