"""Command-line interface: ``repro-tc`` / ``python -m repro``.

Subcommands
-----------
``count``
    Count triangles on a dataset stand-in, generator instance, or
    graph file with any algorithm.
``lcc``
    Print local-clustering-coefficient statistics.
``sweep``
    Strong-scaling sweep over PE counts, printed as a figure panel.
``datasets``
    The Table-I stand-in statistics next to the paper's numbers.
``lint``
    Static SPMD-protocol checks (rules R1-R6) over source trees.
``chaos``
    Fault-injection campaign: sweep seeds x drop rates (plus one
    scheduled PE crash) and assert exact counts; ``--recovery
    localized`` recovers crashes in place instead of restarting
    (``docs/FAULTS.md``).
``bench``
    Instrumented benchmark run: emit a normalized record into
    ``BENCH_<date>.json``, write a Chrome/Perfetto trace, print the
    critical-path phase profile; ``--suite smoke`` runs the fixed
    regression-gate suite and ``--baseline`` diffs against a committed
    baseline (``docs/BENCHMARKS.md``).

Examples
--------
::

    repro-tc count --graph rgg2d:4096 --algorithm cetric -p 16
    repro-tc sweep --graph dataset:webbase-2001 --max-pes 32
    repro-tc datasets --scale 0.5
    repro-tc chaos --seeds 5 --drop-rates 0,0.05 --algorithms cetric
    repro-tc chaos --seeds 5 --drop-rates 0 --recovery localized
    repro-tc bench --algo cetric --gen rmat -p 16
    repro-tc bench --suite smoke --baseline benchmarks/baseline/BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import os
import re
import sys

import numpy as np

from .analysis import (
    ALGORITHMS,
    format_scaling_table,
    graph_stats,
    pe_counts_powers_of_two,
    strong_scaling,
)
from .api import count_triangles, local_clustering_coefficients
from .graphs import dataset as load_dataset
from .graphs import generators as gen
from .graphs.csr import CSRGraph
from .graphs.datasets import DATASET_NAMES, PAPER_STATS
from .graphs.io import load as load_file

__all__ = ["main", "parse_graph_spec"]


def parse_graph_spec(spec: str) -> CSRGraph:
    """Parse a graph specifier.

    Accepted forms::

        dataset:<name>[:scale]   Table-I stand-in (e.g. dataset:orkut)
        rgg2d:<n>[:seed]         generators with the paper defaults
        rhg:<n>[:seed]
        gnm:<n>[:seed]
        rmat:<scale>[:seed]      (vertex count 2**scale)
        <path>                   edge-list / METIS / .npz file
    """
    parts = spec.split(":")
    kind = parts[0]
    if kind == "dataset":
        if len(parts) < 2:
            raise ValueError("dataset spec needs a name, e.g. dataset:orkut")
        scale = float(parts[2]) if len(parts) > 2 else 1.0
        return load_dataset(parts[1], scale=scale)
    if kind in ("rgg2d", "rhg", "gnm", "rmat"):
        if len(parts) < 2:
            raise ValueError(f"{kind} spec needs a size, e.g. {kind}:4096")
        size = int(parts[1])
        seed = int(parts[2]) if len(parts) > 2 else 1
        if kind == "rgg2d":
            return gen.rgg2d(size, expected_edges=16 * size, seed=seed)
        if kind == "rhg":
            return gen.rhg(size, avg_degree=32.0, seed=seed)
        if kind == "gnm":
            return gen.gnm(size, 16 * size, seed=seed)
        return gen.rmat(size, 16, seed=seed)
    return load_file(spec)


def _cmd_count(args: argparse.Namespace) -> int:
    graph = parse_graph_spec(args.graph)
    res = count_triangles(graph, algorithm=args.algorithm, num_pes=args.pes)
    if not res.ok:
        print(f"{args.algorithm} failed: {res.failed}")
        return 1
    print(f"graph        : {graph.name} (n={graph.num_vertices}, m={graph.num_edges})")
    print(f"algorithm    : {args.algorithm} (p={res.num_pes})")
    print(f"triangles    : {res.triangles}")
    if args.algorithm != "sequential":
        print(f"modelled time: {res.time:.6f} s")
        print(f"max messages : {res.max_messages}")
        print(f"bottleneck communication volume: {res.bottleneck_volume} words")
        for name, t in sorted(res.phases.items()):
            print(f"  phase {name:<14s}: {t:.6f} s")
    return 0


def _cmd_lcc(args: argparse.Namespace) -> int:
    graph = parse_graph_spec(args.graph)
    lcc = local_clustering_coefficients(
        graph, num_pes=args.pes if args.pes > 0 else None
    )
    print(f"graph : {graph.name} (n={graph.num_vertices}, m={graph.num_edges})")
    print(f"mean LCC   : {lcc.mean():.6f}")
    print(f"median LCC : {np.median(lcc):.6f}")
    print(f"max LCC    : {lcc.max(initial=0):.6f}")
    hist, edges = np.histogram(lcc, bins=10, range=(0.0, 1.0))
    for lo, hi, count in zip(edges[:-1], edges[1:], hist):
        bar = "#" * int(50 * count / max(hist.max(), 1))
        print(f"  [{lo:4.2f},{hi:4.2f}) {count:8d} {bar}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    graph = parse_graph_spec(args.graph)
    pes = pe_counts_powers_of_two(args.max_pes, start=args.min_pes)
    algos = args.algorithms.split(",") if args.algorithms else [
        "ditric", "ditric2", "cetric", "cetric2", "tric", "havoqgt",
    ]
    rows = strong_scaling(graph, algos, pes)
    print(format_scaling_table(rows, "time", title=f"time [s] on {graph.name}"))
    print()
    print(format_scaling_table(rows, "max_messages", title="max #messages over PEs"))
    print()
    print(
        format_scaling_table(
            rows, "bottleneck_volume", title="bottleneck communication volume [words]"
        )
    )
    if args.plot:
        from .analysis.plot import plot_results

        print()
        print(plot_results(rows, "time", title=f"time vs p on {graph.name}"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import generate_report

    text = generate_report(
        scale=args.scale,
        pe_counts=tuple(int(p) for p in args.pes.split(",")),
    )
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_types(args: argparse.Namespace) -> int:
    graph = parse_graph_spec(args.graph)
    from .analysis.triangle_types import classify_triangles

    print(f"graph : {graph.name} (n={graph.num_vertices}, m={graph.num_edges})")
    print(f"{'p':>4s} {'type1':>10s} {'type2':>10s} {'type3':>10s} {'local %':>8s}")
    p = args.min_pes
    while p <= args.max_pes:
        counts = classify_triangles(graph, num_pes=p)
        print(
            f"{p:>4d} {counts.type1:>10d} {counts.type2:>10d} "
            f"{counts.type3:>10d} {counts.local_fraction:>8.1%}"
        )
        p *= 2
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    graph = parse_graph_spec(args.graph)
    from .analysis.verify import ground_truth_triangles

    truth = ground_truth_triangles(graph, cross_check=True)
    print(f"graph : {graph.name} (n={graph.num_vertices}, m={graph.num_edges})")
    print(f"oracle triangle count: {truth}")
    failures = 0
    algos = args.algorithms.split(",") if args.algorithms else [
        a for a in ALGORITHMS if a != "sequential"
    ]
    for algo in algos:
        res = count_triangles(graph, algorithm=algo, num_pes=args.pes)
        if not res.ok:
            print(f"  {algo:18s}: FAILED ({res.failed})")
            failures += 1
        elif res.triangles != truth:
            print(f"  {algo:18s}: MISMATCH ({res.triangles} != {truth})")
            failures += 1
        else:
            print(f"  {algo:18s}: ok ({res.time:.6f} s modelled)")
    return 1 if failures else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import main as lint_main

    argv = list(args.paths)
    if args.list_rules:
        argv.append("--list-rules")
    if args.strict:
        argv.append("--strict")
    if args.no_flow:
        argv.append("--no-flow")
    if args.format != "text":
        argv.extend(["--format", args.format])
    if args.baseline:
        argv.extend(["--baseline", args.baseline])
    if args.update_baseline:
        argv.extend(["--update-baseline", args.update_baseline])
    return lint_main(argv)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import format_campaign, run_campaign

    graph = parse_graph_spec(args.graph) if args.graph else None
    outcomes = run_campaign(
        algorithms=tuple(args.algorithms.split(",")),
        seeds=range(args.seeds),
        drop_rates=tuple(float(r) for r in args.drop_rates.split(",")),
        duplicate_rate=args.duplicate_rate,
        crash_fraction=None if args.no_crash else args.crash_fraction,
        graph=graph,
        num_pes=args.pes,
        recovery=args.recovery,
    )
    print(format_campaign(outcomes))
    return 0 if all(o.exact for o in outcomes) else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import time as _time
    from pathlib import Path

    from .analysis.runner import run_algorithm
    from .net.trace import Tracer
    from .obs import (
        bench,
        profile_metrics,
        record_from_run,
        write_chrome_trace,
    )

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    bench_path = out_dir / bench.bench_json_name()

    def _print_bench_table(records) -> None:
        print(f"{'record':<28s} {'algorithm':<10s} {'sim time [s]':>14s} "
              f"{'wall [s]':>10s} {'triangles':>10s}")
        for rec in records:
            sim = f"{rec.simulated_time:.6f}" if rec.simulated_time is not None else "-"
            wall = f"{rec.wall_seconds:.3f}" if rec.wall_seconds is not None else "-"
            tri = str(rec.triangles) if rec.triangles is not None else "-"
            algo = str(rec.params.get("algorithm", "-"))
            print(f"{rec.name:<28s} {algo:<10s} {sim:>14s} {wall:>10s} {tri:>10s}")

    if args.suite:
        if args.suite != "smoke":
            print(f"unknown suite {args.suite!r}; available: smoke")
            return 2
        records = bench.smoke_suite(scale_time=args.scale_time)
        bench.write_bench_json(records, bench_path)
        _print_bench_table(records)
        print(f"{len(records)} record(s) written to {bench_path}")
    else:
        spec_parts = [args.gen]
        if args.size:
            spec_parts.append(str(args.size))
        elif ":" not in args.gen and args.gen in ("rgg2d", "rhg", "gnm", "rmat"):
            spec_parts.append("10" if args.gen == "rmat" else "4096")
        spec_parts.append(str(args.seed))
        graph = parse_graph_spec(":".join(spec_parts))
        tracer = Tracer()
        t0 = _time.perf_counter()
        res = run_algorithm(graph, args.algo, num_pes=args.pes, tracer=tracer)
        wall = _time.perf_counter() - t0
        if not res.ok:
            print(f"{args.algo} failed: {res.failed}")
            return 1
        record = record_from_run(
            f"bench:{args.gen}", res, wall_seconds=wall, graph=graph.name, seed=args.seed
        )
        if args.scale_time != 1.0 and record.simulated_time is not None:
            record = bench.BenchRecord.from_dict(
                {**record.to_dict(), "simulated_time": record.simulated_time * args.scale_time}
            )
        bench.write_bench_json([record], bench_path)
        slug = re.sub(r"[^A-Za-z0-9._-]+", "-", graph.name).strip("-")
        trace_path = Path(
            args.trace or out_dir / f"trace_{args.algo}_{slug}_p{res.num_pes}.json"
        )
        write_chrome_trace(
            trace_path, res.metrics, tracer, run_name=f"{args.algo} on {graph.name}"
        )
        profile = profile_metrics(res.metrics)
        print(
            profile.format(
                title=f"{args.algo} on {graph.name} (p={res.num_pes}), "
                f"{res.triangles} triangles"
            )
        )
        _print_bench_table([record])
        print(f"bench record appended to {bench_path}")
        print(f"Chrome trace written to {trace_path} (open in https://ui.perfetto.dev)")
        records = [record]

    if args.baseline:
        baseline = bench.load_bench_json(args.baseline)
        regressions = bench.diff_records(
            baseline, records, threshold=args.threshold
        )
        compared = len(
            {r.key for r in records if r.simulated_time is not None}
            & {b.key for b in baseline if b.simulated_time is not None}
        )
        print(bench.format_diff(regressions, compared=compared, threshold=args.threshold))
        if regressions:
            return 1
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    from .core import autotune, backends

    if args.action == "tune":
        seed = args.seed if args.seed is not None else autotune.TUNE_SEED
        autotune.invalidate()
        winners = autotune.tune(seed=seed)
        autotune._persist(winners)
        autotune._WINNERS = winners
        print(f"tuned (seed={seed}); winners written to "
              f"{autotune.tuner_cache_path()}")
        for regime in autotune.REGIMES:
            print(f"  {regime:<10s} -> {winners[regime]}")
        return 0

    active = backends.get_backend()
    explicit = backends._ACTIVE or os.environ.get(backends.ENV_BACKEND, "").strip()
    via = (
        "set_backend()" if backends._ACTIVE
        else f"{backends.ENV_BACKEND}" if os.environ.get(backends.ENV_BACKEND, "").strip()
        else "default"
    )
    print(f"{'backend':<10s} {'status':<44s} {'fused':<6s}")
    for name, status in backends.backend_status().items():
        backend = backends._BACKENDS.get(name)
        fused = "yes" if backend is not None and backend.count_elements else "-"
        marker = " *" if name == (explicit or "numpy") else ""
        print(f"{name:<10s} {status:<44s} {fused:<6s}{marker}")
    print(f"\nactive: {active.name} (via {via})")
    if explicit and active.name != explicit:
        print(f"  note: {explicit!r} selected but unavailable; warn-once "
              f"fallback to numpy is in effect")
    winners = autotune.cached_winners()
    if winners is None:
        print("auto tuner: not tuned (runs at first 'auto' dispatch, or "
              "'repro-tc backends tune')")
    else:
        print(f"auto tuner winners ({autotune.tuner_cache_path()}):")
        for regime in autotune.REGIMES:
            print(f"  {regime:<10s} -> {winners[regime]}")
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    print(f"{'instance':<14s} {'n':>8s} {'m':>9s} {'wedges':>12s} {'triangles':>10s}"
          f"   | paper (millions): n, m, wedges, triangles")
    for name in DATASET_NAMES:
        g = load_dataset(name, scale=args.scale)
        s = graph_stats(g)
        p = PAPER_STATS[name]
        print(
            f"{name:<14s} {s.n:>8d} {s.m:>9d} {s.wedges:>12d} {s.triangles:>10d}"
            f"   | {p.n:g}, {p.m:g}, {p.wedges:g}, {p.triangles:g}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-tc`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-tc",
        description="Distributed-memory triangle counting (Sanders & Uhl reproduction)",
    )
    parser.add_argument(
        "--kernel-backend",
        default="",
        metavar="NAME",
        help="intersection kernel backend for this run (numpy, numba, "
        "native, auto, or a registered extra backend; see docs/KERNELS.md "
        "and 'repro-tc backends').  Equivalent to setting "
        "REPRO_KERNEL_BACKEND; unavailable backends log one warning and "
        "fall back to numpy.  Simulated costs are identical either way.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    c = sub.add_parser("count", help="count triangles")
    c.add_argument("--graph", required=True, help="graph spec (see parse_graph_spec)")
    c.add_argument("--algorithm", default="cetric", choices=ALGORITHMS)
    c.add_argument("-p", "--pes", type=int, default=4, help="simulated PEs")
    c.set_defaults(func=_cmd_count)

    l = sub.add_parser("lcc", help="local clustering coefficients")
    l.add_argument("--graph", required=True)
    l.add_argument("-p", "--pes", type=int, default=0, help="0 = sequential")
    l.set_defaults(func=_cmd_lcc)

    s = sub.add_parser("sweep", help="strong-scaling sweep")
    s.add_argument("--graph", required=True)
    s.add_argument("--min-pes", type=int, default=1)
    s.add_argument("--max-pes", type=int, default=16)
    s.add_argument("--algorithms", default="", help="comma-separated names")
    s.add_argument("--plot", action="store_true", help="append an ASCII log-log plot")
    s.set_defaults(func=_cmd_sweep)

    r = sub.add_parser("report", help="quick full-evaluation markdown report")
    r.add_argument("--scale", type=float, default=0.25)
    r.add_argument("--pes", default="2,4,8", help="comma-separated PE counts")
    r.add_argument("-o", "--output", default="", help="write to file instead of stdout")
    r.set_defaults(func=_cmd_report)

    t = sub.add_parser("types", help="triangle-type (Fig. 4) breakdown per p")
    t.add_argument("--graph", required=True)
    t.add_argument("--min-pes", type=int, default=2)
    t.add_argument("--max-pes", type=int, default=16)
    t.set_defaults(func=_cmd_types)

    v = sub.add_parser("verify", help="check every algorithm against the oracle")
    v.add_argument("--graph", required=True)
    v.add_argument("-p", "--pes", type=int, default=4)
    v.add_argument("--algorithms", default="", help="comma-separated names")
    v.set_defaults(func=_cmd_verify)

    d = sub.add_parser("datasets", help="Table-I stand-in statistics")
    d.add_argument("--scale", type=float, default=1.0)
    d.set_defaults(func=_cmd_datasets)

    be = sub.add_parser(
        "backends",
        help="list kernel backends (availability, fallback, tuner winners) "
        "or run the auto tuner ('backends tune'); see docs/KERNELS.md",
    )
    be.add_argument(
        "action",
        nargs="?",
        default="list",
        choices=("list", "tune"),
        help="'list' (default) prints the backend table; 'tune' runs the "
        "seeded microbenchmark and persists per-regime winners",
    )
    be.add_argument(
        "--seed",
        type=int,
        default=None,
        help="tuner microbenchmark seed (default: the built-in fixed seed)",
    )
    be.set_defaults(func=_cmd_backends)

    li = sub.add_parser("lint", help="static SPMD protocol checks (R1-R12)")
    li.add_argument("paths", nargs="*", default=["src"], help="files/dirs to lint")
    li.add_argument("--list-rules", action="store_true", help="print rule catalogue")
    li.add_argument("--strict", action="store_true", help="fail on stale baseline entries too")
    li.add_argument("--no-flow", action="store_true", help="skip dataflow rules R8-R12")
    li.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text", help="output format"
    )
    li.add_argument("--baseline", metavar="FILE", help="filter findings in this baseline")
    li.add_argument(
        "--update-baseline", metavar="FILE", help="rewrite FILE from current findings"
    )
    li.set_defaults(func=_cmd_lint)

    ch = sub.add_parser(
        "chaos", help="fault-injection campaign asserting exact counts"
    )
    ch.add_argument(
        "--graph", default="", help="graph spec (default: built-in GNM instance)"
    )
    ch.add_argument("--algorithms", default="ditric,cetric", help="comma-separated")
    ch.add_argument("--seeds", type=int, default=10, help="fault-plan seeds 0..N-1")
    ch.add_argument("--drop-rates", default="0,0.01,0.05", help="comma-separated")
    ch.add_argument("--duplicate-rate", type=float, default=0.0)
    ch.add_argument(
        "--crash-fraction",
        type=float,
        default=0.5,
        help="crash one PE at this fraction of the run",
    )
    ch.add_argument("--no-crash", action="store_true", help="disable the PE crash")
    ch.add_argument("-p", "--pes", type=int, default=4, help="simulated PEs")
    ch.add_argument(
        "--recovery",
        choices=("global", "localized"),
        default="global",
        help="crash recovery: restart from the last stable checkpoint "
        "(global) or heartbeat-detect + partner-restore + log-replay "
        "in place (localized)",
    )
    ch.set_defaults(func=_cmd_chaos)

    b = sub.add_parser(
        "bench",
        help="instrumented benchmark run: BENCH_<date>.json record + "
        "Chrome trace + phase profile (docs/BENCHMARKS.md)",
    )
    b.add_argument("--algo", default="cetric", choices=ALGORITHMS, help="algorithm")
    b.add_argument(
        "--gen",
        default="rmat",
        help="generator name (rmat/gnm/rgg2d/rhg) or full graph spec",
    )
    b.add_argument("--size", type=int, default=0, help="generator size (0 = default)")
    b.add_argument("--seed", type=int, default=1, help="generator seed")
    b.add_argument("-p", "--pes", type=int, default=16, help="simulated PEs")
    b.add_argument("--out", default=".", help="directory for BENCH_<date>.json")
    b.add_argument("--trace", default="", help="Chrome trace path (default: auto)")
    b.add_argument(
        "--suite", default="", help="run a fixed record suite instead ('smoke')"
    )
    b.add_argument(
        "--baseline",
        default="",
        help="BENCH_*.json baseline to diff against (exit 1 on regression)",
    )
    b.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative simulated-cost regression that fails the gate",
    )
    b.add_argument(
        "--scale-time",
        type=float,
        default=1.0,
        help="multiply recorded simulated times (synthetic-regression "
        "injection hook for validating the gate)",
    )
    b.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.kernel_backend:
        from .core.backends import set_backend

        # Select in-process and export so ProcessMachine workers (and
        # anything the command spawns) inherit the same choice.
        os.environ["REPRO_KERNEL_BACKEND"] = args.kernel_backend
        set_backend(args.kernel_backend)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
