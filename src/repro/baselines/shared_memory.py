"""Shared-memory parallel triangle counting (paper Section III-A1).

Two parallelization strategies over COMPACT-FORWARD, both used as the
paper's intra-node building blocks:

* :func:`vertex_parallel_count` — Shun & Tangwongsan's approach: the
  outer loops over vertices run in parallel; each worker processes a
  contiguous block of vertices.  Simple, but on skewed graphs a block
  containing a hub gets far more work than the others.
* :func:`edge_parallel_count` — Green et al.'s edge-centric strategy:
  the *arc list* is split into chunks of (estimated) equal work using
  the per-arc cost ``|A(v)| + |A(u)|`` and a prefix sum.  The paper
  adopts exactly this for CETRIC's hybrid local phase because it
  fixes the hub imbalance.

Both return per-worker work counts so the load-balance difference the
paper describes is measurable, and both run their workers through a
thread pool (NumPy kernels release the GIL for the bulk of the work;
the `parallel=False` escape hatch keeps results bit-identical for
tests).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..core.intersect import batch_intersect_count, gather_blocks
from ..core.orientation import orient_by_degree
from ..graphs.csr import CSRGraph

__all__ = ["SharedMemoryResult", "vertex_parallel_count", "edge_parallel_count"]


@dataclass(frozen=True)
class SharedMemoryResult:
    """Outcome of a shared-memory parallel count."""

    triangles: int
    #: Charged merge-model comparisons per worker (load balance view).
    work_per_worker: tuple[int, ...]

    @property
    def load_imbalance(self) -> float:
        """``max / mean`` of per-worker work (1.0 = perfect)."""
        w = np.asarray(self.work_per_worker, dtype=np.float64)
        if w.size == 0 or w.sum() == 0:
            return 1.0
        return float(w.max() / w.mean())


def _count_arc_range(
    og: CSRGraph, src: np.ndarray, lo: int, hi: int
) -> tuple[int, int]:
    """Count triangles over the arc range ``[lo, hi)``; returns (count, ops)."""
    s = src[lo:hi]
    d = og.adjncy[lo:hi]
    a_cat, a_x = gather_blocks(og.xadj, og.adjncy, s)
    b_cat, b_x = gather_blocks(og.xadj, og.adjncy, d)
    res = batch_intersect_count(a_cat, a_x, b_cat, b_x, og.num_vertices)
    return res.total, res.ops


def _run_chunks(
    og: CSRGraph,
    src: np.ndarray,
    boundaries: np.ndarray,
    parallel: bool,
) -> SharedMemoryResult:
    ranges = [
        (int(boundaries[i]), int(boundaries[i + 1]))
        for i in range(boundaries.size - 1)
    ]
    if parallel and len(ranges) > 1:
        with ThreadPoolExecutor(max_workers=len(ranges)) as pool:
            results = list(
                pool.map(lambda r: _count_arc_range(og, src, r[0], r[1]), ranges)
            )
    else:
        results = [_count_arc_range(og, src, lo, hi) for lo, hi in ranges]
    total = sum(c for c, _ in results)
    work = tuple(o for _, o in results)
    return SharedMemoryResult(triangles=total, work_per_worker=work)


def vertex_parallel_count(
    graph: CSRGraph, num_workers: int, *, parallel: bool = True
) -> SharedMemoryResult:
    """Vertex-centric parallel EDGEITERATOR (Shun & Tangwongsan style).

    Vertices are split into ``num_workers`` contiguous blocks; each
    worker intersects the out-neighborhoods of all arcs leaving its
    block.
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    og = graph if graph.oriented else orient_by_degree(graph)
    src = np.repeat(og.vertices(), og.degrees)
    # Vertex blocks translate to arc ranges via xadj.
    vcuts = np.linspace(0, og.num_vertices, num_workers + 1).astype(np.int64)
    boundaries = og.xadj[vcuts]
    return _run_chunks(og, src, boundaries, parallel)


def edge_parallel_count(
    graph: CSRGraph, num_workers: int, *, parallel: bool = True
) -> SharedMemoryResult:
    """Edge-centric parallel count with static work estimation (Green et al.).

    Per-arc work is estimated as ``|A(v)| + |A(u)|`` (the merge cost);
    chunk boundaries are the work quantiles of the prefix sum, so every
    worker gets nearly the same number of comparisons regardless of
    degree skew.
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    og = graph if graph.oriented else orient_by_degree(graph)
    src = np.repeat(og.vertices(), og.degrees)
    deg = np.diff(og.xadj)
    per_arc = deg[src] + deg[og.adjncy]
    prefix = np.zeros(per_arc.size + 1, dtype=np.int64)
    np.cumsum(per_arc, out=prefix[1:])
    targets = (np.arange(1, num_workers, dtype=np.float64) * prefix[-1]) / num_workers
    cuts = np.searchsorted(prefix[1:], targets, side="left") + 1
    boundaries = np.concatenate([[0], cuts, [per_arc.size]]).astype(np.int64)
    np.maximum.accumulate(boundaries, out=boundaries)
    return _run_chunks(og, src, boundaries, parallel)
