"""Competitor baselines the paper compares against.

* :mod:`~repro.baselines.tric` — TriC-like: no degree orientation,
  static single-shot buffering (OOM-prone), one dense all-to-all;
* :mod:`~repro.baselines.havoqgt` — HavoqGT-like: vertex-centric wedge
  visitors with batched delivery and heavyweight preprocessing;
* :mod:`~repro.baselines.shared_memory` — intra-node strategies
  (vertex-parallel Shun–Tangwongsan, edge-centric Green et al.).
"""

from .havoqgt import PEHavoqCounts, havoqgt_program
from .shared_memory import (
    SharedMemoryResult,
    edge_parallel_count,
    vertex_parallel_count,
)
from .tric import PETricCounts, tric_program

__all__ = [
    "PEHavoqCounts",
    "havoqgt_program",
    "SharedMemoryResult",
    "edge_parallel_count",
    "vertex_parallel_count",
    "PETricCounts",
    "tric_program",
]
