"""HavoqGT-like baseline (Pearce et al., HPEC 2017/2019).

The paper's strongest competitor is HavoqGT's vertex-centric triangle
counter: on the degree-oriented graph every vertex ``v`` generates all
*open wedges* ``{u, w} ⊆ A(v)`` and dispatches a **visitor** to the
owner of the wedge's ≺-smaller endpoint, which checks for the closing
arc.  Its traffic is therefore proportional to the number of oriented
wedges (two words per visitor) instead of the neighborhood volume our
algorithms ship — an order of magnitude more on most inputs, but
*less* on locality-free uniform graphs at large ``p`` where DITRIC
must re-send each neighborhood to many PEs (the GNM crossover of
Fig. 5).

Modelled characteristics, per the paper's observations:

* visitor traffic aggregated into fixed-size batches (HavoqGT's
  node-level aggregation + rerouting, simplified to direct chunked
  delivery — its topology-dependent routing has no analogue in a flat
  simulated network);
* a heavyweight ingestion/delegate-partitioning preprocessing phase:
  HavoqGT re-partitions hub neighborhoods across PEs, charged here as
  ``preprocessing_factor`` passes over the local edges plus one dense
  exchange — this is the phase the paper repeatedly reports as
  exceeding its time budget (">900 s", Section V-D);
* per-visitor framework overhead: every wedge visitor is created,
  queued and dispatched through the vertex-centric runtime, charged as
  ``visitor_overhead`` operations per wedge on top of the closure
  check.  Together with ``preprocessing_factor`` this constant is
  calibrated so the modelled gap to DITRIC at our scaled-down sizes
  matches the relative gaps of the paper's Figs. 5-6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..core.kernels import chunked
from ..core.preprocessing import build_oriented, exchange_ghost_degrees
from ..graphs.distributed import DistGraph
from ..net.comm import allreduce, alltoallv_dense, sparse_alltoall
from ..net.machine import PEContext

__all__ = ["havoqgt_program", "PEHavoqCounts"]


@dataclass
class PEHavoqCounts:
    """Per-PE outcome of the HavoqGT-like baseline."""

    triangles_total: int
    local_checks: int
    visitors_sent: int


def _wedge_pairs(
    oxadj: np.ndarray, oadjncy: np.ndarray, arc_slice: slice
) -> tuple[np.ndarray, np.ndarray]:
    """All wedge endpoint pairs (u, w) for a slice of oriented arcs.

    For the arc at global position ``e`` (the ``u`` endpoint inside
    ``A(v)``), pair it with every later entry of the same
    neighborhood.  Fully vectorized: one wedge per (entry, later
    entry) combination.
    """
    num_arcs = oadjncy.size
    arcs = np.arange(arc_slice.start, arc_slice.stop, dtype=np.int64)
    if arcs.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    # Neighborhood end for each arc: next xadj boundary at or above.
    nbh_end = oxadj[np.searchsorted(oxadj, arcs, side="right")]
    left_count = nbh_end - arcs - 1
    total = int(left_count.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    pair_arc = np.repeat(arcs, left_count)
    starts = np.zeros(arcs.size + 1, dtype=np.int64)
    np.cumsum(left_count, out=starts[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(starts[:-1], left_count)
    u = oadjncy[pair_arc]
    w = oadjncy[pair_arc + 1 + within]
    return u, w


def _closure_count(
    ctx: PEContext,
    arc_keys: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    bound: int,
    avg_logdeg: float,
    visitor_overhead: float,
) -> int:
    """Count pairs whose closing arc ``(a, b)`` exists locally.

    ``arc_keys`` is this PE's sorted array of ``src * bound + dst``
    arc keys.  Charged at one binary-search worth of comparisons plus
    the per-visitor dispatch overhead of the vertex-centric runtime.
    """
    if a.size == 0:
        return 0
    keys = a * np.int64(bound) + b
    idx = np.searchsorted(arc_keys, keys)
    idx_c = np.minimum(idx, max(arc_keys.size - 1, 0))
    hits = 0
    if arc_keys.size:
        hits = int(np.count_nonzero((idx < arc_keys.size) & (arc_keys[idx_c] == keys)))
    ctx.charge(int(a.size * (max(avg_logdeg, 1.0) + visitor_overhead)))
    return hits


def havoqgt_program(
    ctx: PEContext,
    dist: DistGraph,
    *,
    batch_pairs: int = 2048,
    preprocessing_factor: float = 24.0,
    visitor_overhead: float = 6.0,
) -> Generator[None, None, PEHavoqCounts]:
    """SPMD program for the HavoqGT-like vertex-centric counter."""
    lg = dist.view(ctx.rank)
    bound = dist.num_vertices + 1

    with ctx.phase("preprocessing"):
        yield from exchange_ghost_degrees(ctx, lg, mode="dense")
        og = build_oriented(ctx, lg, with_ghosts=False)
        # Ingestion + delegate partitioning of hub neighborhoods:
        # several passes over the local edges plus a dense exchange
        # (HavoqGT redistributes high-degree neighborhoods).
        ctx.charge(int(preprocessing_factor * max(lg.num_local_arcs, 1)))
        delegate_words = max(lg.num_local_arcs // max(ctx.num_pes, 1), 1)
        payloads = {
            d: (None, delegate_words) for d in range(ctx.num_pes) if d != ctx.rank
        }
        yield from alltoallv_dense(ctx, payloads, tag_label="hvq-delegate")

    # Sorted arc keys for O(log d)-style closure checks.
    nloc = lg.num_local_vertices
    src = np.repeat(lg.owned_vertices(), np.diff(og.oxadj))
    arc_keys = src * np.int64(bound) + og.oadjncy
    out_deg = np.diff(og.oxadj)
    avg_logdeg = float(np.log2(out_deg.max(initial=0) + 2.0))
    ctx.charge(og.oadjncy.size)

    local_checks = 0
    visitors_sent = 0
    count = 0
    outgoing: dict[int, list[np.ndarray]] = {}

    with ctx.phase("count"):
        # Generate wedges in bounded chunks of arcs.
        for sl in chunked(og.oadjncy.size, 1 << 16):
            u, w = _wedge_pairs(og.oxadj, og.oadjncy, sl)
            if u.size == 0:
                continue
            # Wedge generation plus visitor creation/queueing overhead.
            ctx.charge(int(u.size * (1.0 + visitor_overhead)))
            # Orient the candidate closing edge along the total order:
            # the ≺-smaller endpoint owns the potential closing arc.
            ku = og.order_keys_of(u)
            kw = og.order_keys_of(w)
            a = np.where(ku < kw, u, w)
            b = np.where(ku < kw, w, u)
            a_local = lg.is_local(a)
            count += _closure_count(
                ctx, arc_keys, a[a_local], b[a_local], bound, avg_logdeg, visitor_overhead
            )
            local_checks += int(np.count_nonzero(a_local))
            # Remote visitors, grouped by owner.
            ra = a[~a_local]
            rb = b[~a_local]
            if ra.size:
                owners = lg.partition.rank_of(ra)
                order = np.argsort(owners, kind="stable")
                owners, ra, rb = owners[order], ra[order], rb[order]
                cuts = np.flatnonzero(np.diff(owners)) + 1
                for dest, ua, ub in zip(
                    np.split(owners, cuts)[0:],
                    np.split(ra, cuts),
                    np.split(rb, cuts),
                ):
                    outgoing.setdefault(int(dest[0]), []).append(
                        np.column_stack([ua, ub])
                    )
            yield
        # Flush visitors in aggregated batches.
        triples = []
        for dest, parts in outgoing.items():
            pairs = np.concatenate(parts, axis=0)
            visitors_sent += pairs.shape[0]
            for sl in chunked(pairs.shape[0], batch_pairs):
                chunk = pairs[sl]
                triples.append((dest, chunk, 2 * chunk.shape[0] + 1))
        msgs = yield from sparse_alltoall(ctx, triples, tag_label="hvq-visit")
        for m in msgs:
            pairs = m.payload
            count += _closure_count(
                ctx, arc_keys, pairs[:, 0], pairs[:, 1], bound, avg_logdeg, visitor_overhead
            )
        yield

    grand = yield from allreduce(ctx, count, lambda x, y: x + y)
    return PEHavoqCounts(
        triangles_total=int(grand),
        local_checks=local_checks,
        visitors_sent=visitors_sent,
    )
