"""TriC-like baseline (Ghosh & Halappanavar, HPEC 2020).

The paper characterizes TriC by three design choices it then observes
in the experiments:

* **no degree orientation** — TriC works with the implicit vertex-ID
  order, so out-neighborhoods of hub vertices are not shrunk and the
  intersection work on skewed graphs balloons;
* **static message aggregation** — all outgoing neighborhoods are
  buffered *in full* before a **single irregular all-to-all**; the
  buffer is never emptied mid-run, so per-PE memory grows with the
  (superlinear) communication volume and large/skewed inputs crash
  with out-of-memory errors (Section V-D/V-E);
* the single batched exchange means exactly ``p - 1`` messages per PE
  — unbeatable startup cost on inputs with tiny cuts (road networks),
  where TriC is initially the fastest code in Fig. 6.

This reproduction keeps all three properties: ID orientation built
without any preprocessing exchange, one dense all-to-all, and a
:class:`~repro.net.machine.OutOfMemoryError` when the staged buffer
exceeds the machine's per-PE budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..graphs.distributed import DistGraph
from ..net.aggregation import Record
from ..net.comm import allreduce, alltoallv_dense
from ..net.machine import PEContext
from ..core.engine import _surrogate_filter
from ..core.intersect import concat_xadj
from ..core.kernels import count_csr_pairs, count_record_pairs

__all__ = ["tric_program", "PETricCounts"]


@dataclass
class PETricCounts:
    """Per-PE outcome of the TriC-like baseline."""

    triangles_total: int
    local_count: int
    remote_count: int
    staged_words: int


def _id_oriented(lg) -> tuple[np.ndarray, np.ndarray]:
    """Out-neighborhoods under the plain vertex-ID order (no exchange).

    ``A(v) = {u in N_v : u > v}`` — computable without ghost degrees,
    which is why TriC has essentially no preprocessing phase.
    """
    src = np.repeat(lg.owned_vertices(), lg.degrees)
    keep = lg.adjncy > src
    counts = np.bincount(
        (src[keep] - lg.vlo), minlength=lg.num_local_vertices
    )
    return concat_xadj(counts), lg.adjncy[keep]


def tric_program(
    ctx: PEContext, dist: DistGraph
) -> Generator[None, None, PETricCounts]:
    """SPMD program for the TriC-like baseline.

    Raises :class:`~repro.net.machine.OutOfMemoryError` when the
    statically staged send buffer exceeds ``spec.memory_words`` —
    reproducing TriC's crashes on large / skewed inputs.
    """
    lg = dist.view(ctx.rank)
    vlo, vhi = lg.vlo, lg.vhi
    bound = dist.num_vertices + 1

    with ctx.phase("preprocessing"):
        oxadj, oadjncy = _id_oriented(lg)
        ctx.charge(lg.adjncy.size)

    with ctx.phase("local"):
        nloc = lg.num_local_vertices
        src_slots = np.repeat(np.arange(nloc, dtype=np.int64), np.diff(oxadj))
        dst_local = lg.is_local(oadjncy)
        local_count = count_csr_pairs(
            ctx,
            oxadj,
            oadjncy,
            src_slots[dst_local],
            oxadj,
            oadjncy,
            oadjncy[dst_local] - vlo,
            bound,
        )
        yield

    with ctx.phase("global"):
        # Stage *everything* up front (static aggregation).
        c_src = src_slots[~dst_local]
        c_dst = oadjncy[~dst_local]
        dst_ranks = lg.partition.rank_of(c_dst) if c_dst.size else c_dst
        sends = _surrogate_filter(c_src, dst_ranks, enabled=True)
        ctx.charge(c_src.size)
        staged: dict[int, list[Record]] = {}
        staged_words_by_dest: dict[int, int] = {}
        staged_words = 0
        for slot, rank in zip(c_src[sends].tolist(), dst_ranks[sends].tolist()):
            nbh = oadjncy[oxadj[slot] : oxadj[slot + 1]]
            rec = Record(int(vlo + slot), nbh)
            staged.setdefault(rank, []).append(rec)
            staged_words_by_dest[rank] = staged_words_by_dest.get(rank, 0) + rec.words
            staged_words += rec.words
        ctx.metrics.note_buffer(staged_words)
        # The static buffer is never emptied before the exchange: if it
        # does not fit next to the local graph, the run dies — TriC's
        # observed failure mode on large/skewed inputs.
        ctx.check_memory(
            staged_words + lg.memory_words(),
            what="static TriC send buffer + local graph",
        )
        ctx.charge(staged_words)
        payloads = {
            rank: (records, staged_words_by_dest[rank])
            for rank, records in staged.items()
        }
        msgs = yield from alltoallv_dense(ctx, payloads, tag_label="tric")
        records: list[Record] = []
        for m in msgs:
            if m.payload is not None:
                records.extend(m.payload)
        remote_count = count_record_pairs(
            ctx, records, oxadj, oadjncy, vlo, vhi, bound
        )
        yield

    grand = yield from allreduce(
        ctx, local_count + remote_count, lambda a, b: a + b
    )
    return PETricCounts(
        triangles_total=int(grand),
        local_count=int(local_count),
        remote_count=int(remote_count),
        staged_words=staged_words,
    )
