"""High-level facade over the algorithm zoo.

Most users want one of two calls:

>>> from repro import count_triangles
>>> res = count_triangles(graph, algorithm="cetric", num_pes=16)
>>> res.triangles, res.time, res.bottleneck_volume

>>> from repro import local_clustering_coefficients
>>> lcc = local_clustering_coefficients(graph, num_pes=8)

Everything else (machine specs, ablation configs, per-phase metrics)
is reachable through the returned
:class:`~repro.analysis.runner.RunResult` and the subpackages.
"""

from __future__ import annotations

import numpy as np

from .analysis.runner import ALGORITHMS, RunResult, run_algorithm
from .core.engine import EngineConfig
from .core.lcc import lcc_program, lcc_sequential
from .graphs.csr import CSRGraph
from .graphs.distributed import distribute
from .net.costmodel import DEFAULT_SPEC, MachineSpec
from .net.machine import Machine

__all__ = ["count_triangles", "local_clustering_coefficients", "ALGORITHMS"]


def count_triangles(
    graph: CSRGraph,
    *,
    algorithm: str = "cetric",
    num_pes: int | None = None,
    spec: MachineSpec = DEFAULT_SPEC,
    **kwargs,
) -> RunResult:
    """Count triangles with any algorithm of the reproduction.

    Parameters
    ----------
    graph:
        Undirected input graph.
    algorithm:
        One of :data:`ALGORITHMS` (default the paper's CETRIC);
        ``"sequential"`` runs COMPACT-FORWARD without a machine.
    num_pes:
        Simulated PE count for distributed algorithms (default 4).
    spec:
        Cost-model constants (``repro.net.SUPERMUC`` by default).
    kwargs:
        Forwarded to :func:`repro.analysis.runner.run_algorithm`
        (``config_overrides``, ``program_kwargs``).
    """
    if algorithm == "sequential":
        return run_algorithm(graph, "sequential")
    return run_algorithm(
        graph, algorithm, num_pes if num_pes is not None else 4, spec=spec, **kwargs
    )


def local_clustering_coefficients(
    graph: CSRGraph,
    *,
    num_pes: int | None = None,
    spec: MachineSpec = DEFAULT_SPEC,
    config: EngineConfig | None = None,
) -> np.ndarray:
    """Exact LCC of every vertex (Section IV-E extension).

    ``num_pes=None`` computes sequentially; otherwise the distributed
    CETRIC-based LCC program runs on a simulated machine and the
    per-PE slices are concatenated back into one global array.
    """
    if num_pes is None:
        return lcc_sequential(graph)
    dist = distribute(graph, num_pes=num_pes)
    cfg = config if config is not None else EngineConfig(contraction=True)
    result = Machine(num_pes, spec).run(lcc_program, dist, cfg)
    return np.concatenate([v.lcc for v in result.values])
