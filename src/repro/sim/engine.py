"""The event-driven scheduler behind :class:`repro.net.machine.Machine`.

Why it exists
-------------
The original machine scheduled its PE generators strict round-robin:
every scheduling round resumed *every* live PE, so a PE blocked on an
empty inbox still cost one generator resumption per round.  At the
paper's scales (p = 2^9 .. 2^15, where most PEs idle through most of a
phase) that made the scheduler itself the bottleneck.  This engine
resumes a PE only when something it is waiting for happens — a message
delivery, a timer, the completion of its outstanding sends — so idle
PEs cost zero and runs with thousands of mostly-idle PEs complete in
time proportional to the *work*, not to ``rounds * p``.

Scheduling disciplines
----------------------
The engine picks one of three disciplines per run:

``compat-heap`` (default: ``Network(model="alpha-beta")``)
    Emulates the legacy round-robin schedule *exactly* while skipping
    the no-op polls.  The key observation: resuming a PE that is
    suspended inside ``ctx.recv`` with an empty inbox for its tag is a
    pure no-op — no clock, metric, RNG, or progress-counter change —
    so a schedule that skips exactly those resumptions replays the
    round-robin run bit-identically (same values, same simulated
    times, same fault-plan decision stream, same ``events`` counter).
    The discipline keeps a heap of ``(round, rank)`` pairs: a PE that
    yields while runnable is re-queued for the next round; a PE that
    parks (blocked, empty inbox) leaves the heap until a message for
    its tag arrives, at which point it is re-queued for the current
    round if its turn has not passed yet (sender rank < waker rank)
    and for the next round otherwise — exactly where round-robin would
    have next given it a non-noop resumption.

``compat-fullpoll`` (alpha-beta model + a fault plan with crashes)
    Crash events are keyed by the machine's event counter and the
    round-robin scheduler checks them at *every* rank visit, including
    no-op polls.  To keep crash coordinates bit-identical the engine
    falls back to full scheduling rounds — it still skips the no-op
    generator resumptions (they cannot fire a crash check's RNG; the
    check itself is replayed for every rank) but visits every live
    rank per round.  Crash campaigns run at small p, where this costs
    nothing.

``des`` (``Network(model="contended")``)
    True discrete-event simulation in *time* order: each runnable PE
    has a resume event at its own clock, message deliveries are events
    at their network arrival times (links queue under contention —
    see :mod:`repro.sim.network`), and transport timers (reliable
    retransmissions) are first-class events.  Because delivery is no
    longer instantaneous, programs that terminate a sparse exchange
    with barrier-plus-drain first wait for their own sends to complete
    (``ctx.sync_sends`` — the MPI_Issend/NBX discipline); the
    collectives in :mod:`repro.net.comm` and the aggregation queues do
    this automatically.

Deadlock and livelock
---------------------
All three disciplines detect true deadlock *exactly*: every live PE is
parked on a blocking receive (or on ``sync_sends``) and the event
queue holds nothing that could wake one — then ``DeadlockError`` is
raised immediately with the machine's full per-PE forensics.  A
separate bounded guard catches *livelock* (PEs spinning on bare
``yield``\\ s forever, which no scheduler can distinguish from a long
courtesy-yield sequence): consecutive zero-progress rounds (compat
disciplines, same 5-round bound the round-robin scheduler used) or
consecutive zero-progress events (``des``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from heapq import heappop, heappush
from typing import Any, Callable

from .events import (
    PRIORITY_DELIVERY,
    PRIORITY_RESUME,
    PRIORITY_TIMER,
    EventQueue,
)

__all__ = ["EngineStats", "SimEngine", "LIVELOCK_ROUNDS"]

#: Consecutive zero-progress scheduling rounds tolerated before the
#: livelock guard trips (compat disciplines).  True deadlock never
#: consumes this budget — it is detected exactly, in zero rounds.
LIVELOCK_ROUNDS = 5


@dataclass
class EngineStats:
    """What one engine run cost, in scheduler work (not simulated time)."""

    #: Discipline used: ``compat-heap``, ``compat-fullpoll``, or ``des``.
    discipline: str
    #: Generator resumptions performed (the dominant scheduler cost).
    steps: int = 0
    #: Heap events processed (resumes + deliveries + timers).
    events: int = 0
    #: Parked PEs woken by a matching delivery or send completion.
    wakeups: int = 0
    #: Crashed PEs respawned inside the running engine (localized
    #: recovery; always zero under global restart).
    respawns: int = 0

    @property
    def steps_per_pe(self) -> float:
        """Filled in by the machine: steps / num_pes."""
        return float(self.steps)


class SimEngine:
    """One run's event engine; constructed fresh by ``Machine.run``."""

    def __init__(self, machine):
        self.machine = machine
        self.queue = EventQueue()
        p = machine.num_pes
        if machine.network.model == "contended":
            discipline = "des"
        elif machine.fault_plan is not None and machine.fault_plan.crashes:
            discipline = "compat-fullpoll"
        else:
            discipline = "compat-heap"
        self.discipline = discipline
        self.stats = EngineStats(discipline=discipline)
        #: compat-heap scheduling state.
        self._heap: list[tuple[int, int]] | None = None
        self._parked_compat = [False] * p
        self._round = 0
        self._cur_rank = -1
        #: des scheduling state: ``None`` (runnable/absent), or
        #: ``("recv", tag)`` / ``("sends", None)`` park reasons.
        self._parked_des: list[tuple[str, Any] | None] = [None] * p
        self._gens: list = []
        self._live: set[int] = set()
        self._values: list = []

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, gens, live: set[int], values: list) -> None:
        """Drive the generators to completion (or a detected fault)."""
        self._gens = gens
        self._live = live
        self._values = values
        if self.discipline == "des":
            self._run_des()
        elif self.discipline == "compat-fullpoll":
            self._run_compat_fullpoll()
        else:
            self._run_compat_heap()

    # ------------------------------------------------------------------
    # Hooks called by the machine / transports
    # ------------------------------------------------------------------
    def on_deliver(self, dest: int, tag) -> None:
        """A message with ``tag`` just entered ``dest``'s inbox."""
        if self._heap is not None:
            self._wake_compat(dest, tag)
        elif self.discipline == "des":
            state = self._parked_des[dest]
            if state is not None and state[0] == "recv" and state[1] == tag:
                self._wake_des(dest)

    def on_sends_settled(self, rank: int) -> None:
        """``rank``'s last in-flight message was delivered (or dropped)."""
        if self.discipline == "des":
            state = self._parked_des[rank]
            if state is not None and state[0] == "sends":
                self._wake_des(rank)

    def post_delivery(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule a message-arrival callback (``des`` discipline)."""
        self.queue.push(time, PRIORITY_DELIVERY, fn)

    def call_at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule a transport timer / injection callback (``des``)."""
        self.queue.push(time, PRIORITY_TIMER, fn)

    def kill_pe(self, rank: int) -> None:
        """Crash-stop ``rank`` in place (localized recovery, ``des``).

        The generator is closed — ``GeneratorExit`` unwinds its open
        ``ctx.phase`` blocks, recording truncated spans at the
        crash-time clock — and the rank leaves the live set.  Deliveries
        addressed to it still land in its inbox (cleared at respawn;
        the transport's send logs cover re-delivery), but it is never
        resumed: pending resume events find it outside ``_live``.
        """
        self._live.discard(rank)
        self._parked_des[rank] = None
        gen = self._gens[rank]
        if gen is not None:
            gen.close()

    def respawn_pe(self, rank: int, gen, time: float) -> None:
        """Rejoin ``rank`` with a fresh generator at simulated ``time``.

        The recovery manager calls this after restoring the rank's
        checkpoint replica and scheduling the logged re-deliveries; the
        first resume is a normal PE step at the post-recovery clock
        (deliveries scheduled at the same time fire first —
        ``PRIORITY_DELIVERY`` precedes ``PRIORITY_RESUME``).
        """
        self._gens[rank] = gen
        self._parked_des[rank] = None
        self._live.add(rank)
        self.stats.respawns += 1
        self._schedule_resume(rank, max(time, self.queue.now))

    # ------------------------------------------------------------------
    # compat-heap: round-robin emulation without the no-op polls
    # ------------------------------------------------------------------
    def _run_compat_heap(self) -> None:
        from ..net.machine import DeadlockError

        machine = self.machine
        contexts = machine._contexts
        live = self._live
        gens = self._gens
        values = self._values
        # Round 0 starts with every PE runnable, in rank order — the
        # list is already a valid heap.
        heap: list[tuple[int, int]] = [(0, r) for r in range(machine.num_pes)]
        self._heap = heap
        parked = self._parked_compat
        idle_rounds = 0
        round_progress = machine._progress
        while heap:
            rnd, rank = heappop(heap)
            self.stats.events += 1
            if rnd > self._round:
                # Round boundary: replicate the round-robin scheduler's
                # livelock accounting (parked polls contribute no
                # progress there either, so the counts agree).
                if machine._progress == round_progress:
                    idle_rounds += 1
                    if idle_rounds >= LIVELOCK_ROUNDS:
                        raise DeadlockError(
                            machine._deadlock_diagnostic(
                                live, self._livelock_reason(idle_rounds)
                            )
                        )
                else:
                    idle_rounds = 0
                self._round = rnd
                round_progress = machine._progress
            if rank not in live:
                continue
            self._cur_rank = rank
            self.stats.steps += 1
            try:
                next(gens[rank])
            except StopIteration as stop:
                values[rank] = stop.value
                live.discard(rank)
                machine._note_progress()
                continue
            ctx = contexts[rank]
            tag = ctx._blocked_tag
            if tag is not None and not ctx._inbox.get(tag):
                # Resuming this PE again would be a no-op poll: park it
                # until a message for its tag arrives.
                parked[rank] = True
            else:
                heappush(heap, (rnd + 1, rank))
        if live:
            # Exact detection: the ready heap is empty, so every live
            # PE is parked on an empty inbox and nothing in the machine
            # can wake one — what the round-robin scheduler only
            # concluded after its idle-round grace period.
            raise DeadlockError(
                machine._deadlock_diagnostic(live, self._deadlock_reason(live))
            )

    def _wake_compat(self, dest: int, tag) -> None:
        if not self._parked_compat[dest]:
            return
        ctx = self.machine._contexts[dest]
        if ctx._blocked_tag != tag:
            return
        self._parked_compat[dest] = False
        self.stats.wakeups += 1
        # Round-robin placement: if the waker's rank precedes the woken
        # PE's, the woken PE's turn in the current round is still ahead.
        rnd = self._round if dest > self._cur_rank else self._round + 1
        heappush(self._heap, (rnd, dest))

    # ------------------------------------------------------------------
    # compat-fullpoll: exact crash coordinates under event-indexed plans
    # ------------------------------------------------------------------
    def _run_compat_fullpoll(self) -> None:
        from ..net.machine import DeadlockError, PECrashError

        machine = self.machine
        plan = machine.fault_plan
        contexts = machine._contexts
        live = self._live
        gens = self._gens
        values = self._values

        def is_parked(rank: int) -> bool:
            ctx = contexts[rank]
            tag = ctx._blocked_tag
            return tag is not None and not ctx._inbox.get(tag)

        idle_rounds = 0
        while live:
            before = machine._progress
            finished: list[int] = []
            for rank in sorted(live):
                # The round-robin scheduler consults the crash schedule
                # at every rank visit — parked or not — so this check
                # stays outside the no-op-poll skip.
                if plan.crash_due(rank, machine._progress):
                    raise PECrashError(rank, machine._progress)
                if is_parked(rank):
                    continue
                self.stats.steps += 1
                self.stats.events += 1
                try:
                    next(gens[rank])
                except StopIteration as stop:
                    values[rank] = stop.value
                    finished.append(rank)
                    machine._note_progress()
            live.difference_update(finished)
            if machine._progress == before:
                if live and all(is_parked(r) for r in live):
                    # The event counter is frozen, so one more sweep
                    # decides every crash the round-robin scheduler
                    # could still have fired while idling; then the
                    # deadlock is exact.
                    for rank in sorted(live):
                        if plan.crash_due(rank, machine._progress):
                            raise PECrashError(rank, machine._progress)
                    raise DeadlockError(
                        machine._deadlock_diagnostic(live, self._deadlock_reason(live))
                    )
                idle_rounds += 1
                if live and idle_rounds >= LIVELOCK_ROUNDS:
                    raise DeadlockError(
                        machine._deadlock_diagnostic(
                            live, self._livelock_reason(idle_rounds)
                        )
                    )
            else:
                idle_rounds = 0

    # ------------------------------------------------------------------
    # des: time-ordered discrete-event execution (contended network)
    # ------------------------------------------------------------------
    def _run_des(self) -> None:
        from ..net.machine import DeadlockError

        machine = self.machine
        live = self._live
        for rank in range(machine.num_pes):
            self._schedule_resume(rank, 0.0)
        manager = getattr(machine, "_recovery_manager", None)
        if manager is not None:
            manager.start(self)
        plan = machine.fault_plan
        if plan is not None:
            for index, crash in enumerate(plan.crash_at_time):
                self.call_at(
                    crash.at_time,
                    lambda i=index, c=crash: self._fire_timed_crash(i, c),
                )
        noop_events = 0
        noop_bound = max(256, 16 * machine.num_pes)
        while True:
            ev = self.queue.pop()
            if ev is None:
                break
            self.stats.events += 1
            before = machine._progress
            ev.fn()
            if machine._progress == before:
                noop_events += 1
                if noop_events >= noop_bound and live:
                    raise DeadlockError(
                        machine._deadlock_diagnostic(
                            live,
                            f"no machine progress across {noop_events} consecutive "
                            f"engine events (livelock guard)",
                        )
                    )
            else:
                noop_events = 0
        if live:
            raise DeadlockError(
                machine._deadlock_diagnostic(live, self._deadlock_reason(live))
            )

    def _fire_timed_crash(self, index: int, crash) -> None:
        """A :class:`~repro.faults.plan.TimedCrash` timer fired."""
        from ..net.machine import PECrashError

        machine = self.machine
        if not machine.fault_plan.claim_timed(index):
            return
        if crash.rank not in self._live:
            # The rank finished (or already crashed) before the
            # scheduled time; a dead PE cannot crash again.
            return
        manager = getattr(machine, "_recovery_manager", None)
        if manager is not None:
            manager.on_crash(crash.rank)
            return
        raise PECrashError(crash.rank, machine._progress)

    def _schedule_resume(self, rank: int, time: float) -> None:
        self.queue.push(time, PRIORITY_RESUME, lambda: self._step_des(rank))

    def _wake_des(self, rank: int) -> None:
        self._parked_des[rank] = None
        self.stats.wakeups += 1
        clock = self.machine._contexts[rank].metrics.clock
        self._schedule_resume(rank, max(clock, self.queue.now))

    def _step_des(self, rank: int) -> None:
        from ..net.machine import PECrashError

        machine = self.machine
        if rank not in self._live:
            return
        plan = machine.fault_plan
        if plan is not None and plan.crash_due(rank, machine._progress):
            manager = getattr(machine, "_recovery_manager", None)
            if manager is not None:
                manager.on_crash(rank)
                return
            raise PECrashError(rank, machine._progress)
        self.stats.steps += 1
        try:
            next(self._gens[rank])
        except StopIteration as stop:
            self._values[rank] = stop.value
            self._live.discard(rank)
            machine._note_progress()
            return
        ctx = machine._contexts[rank]
        tag = ctx._blocked_tag
        if tag is not None and not ctx._inbox.get(tag):
            self._parked_des[rank] = ("recv", tag)
        elif ctx._blocked_sends and machine._in_flight[rank] > 0:
            self._parked_des[rank] = ("sends", None)
        else:
            self._parked_des[rank] = None
            self._schedule_resume(rank, ctx.metrics.clock)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def _deadlock_reason(self, live: set[int]) -> str:
        return (
            f"exact deadlock: all {len(live)} live PE(s) are blocked and the "
            f"engine's event queue is empty — nothing in the machine can wake "
            f"them"
        )

    @staticmethod
    def _livelock_reason(idle_rounds: int) -> str:
        return (
            f"no progress in {idle_rounds} consecutive scheduler rounds "
            f"(livelock guard: some PE keeps yielding without ever blocking, "
            f"charging, or communicating)"
        )


def deliver_later(machine, msg, arrival: float, *, front: bool = False, settle: bool = True) -> None:
    """Schedule ``msg`` to enter its destination inbox at ``arrival``.

    Helper shared by the machine and the transports: rewrites the
    message's causal timestamp to the network arrival time (so the
    receiver's clock fast-forwards to when the wire actually finished,
    queueing included) and posts the delivery event.
    """
    out = replace(msg, send_time=arrival) if arrival != msg.send_time else msg
    machine._engine.post_delivery(
        arrival, lambda: machine._finish_delivery(out, front=front, settle=settle)
    )
