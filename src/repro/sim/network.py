"""The simulated interconnect: cost models with and without contention.

:class:`Network` decides *when a message arrives* given when it was
injected.  Two models are supported:

``"alpha-beta"`` (compatibility mode, the default)
    The flat single-ported model of paper Section II-B that this repo
    has always used: the wire itself is infinitely capacious, both
    endpoints pay ``alpha + beta * l``, and a message becomes visible
    at the sender's post-send clock.  Simulated times under this model
    are bit-identical to the legacy round-robin scheduler (the
    fingerprint test in ``tests/test_sim.py`` checks all eight
    algorithm variants), so the committed BENCH baseline migrates
    unchanged.

``"contended"``
    A two-level, link-capacitated hierarchy.  PEs are grouped into
    *nodes* of ``node_size`` consecutive ranks; every node owns one
    full-duplex **uplink** (node -> fabric) and one **downlink**
    (fabric -> node), each able to carry one message at a time at
    ``link_alpha + link_beta * l`` per message.  An inter-node message
    first occupies the source node's uplink, then the destination
    node's downlink; a message finding a link busy *queues* behind the
    traffic already granted it (``start = max(inject, busy_until)``).
    Intra-node messages bypass the links (the endpoint alpha-beta
    charges already model the NIC).  This is the effect the paper's
    grid-based indirection (Section IV-B) trades against: funnelling a
    PE row's traffic through one proxy serializes it on that proxy
    node's links, which the flat model cannot see.

The network mutates link occupancy as messages are injected, so it is
part of the simulation state: :meth:`Network.bind` (called by
``Machine.run``) rebinds the constants from the machine spec and clears
every link, making one :class:`Network` object reusable across runs
while keeping each run a pure function of its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Link", "Network", "NetworkStats"]

#: Supported cost models.
MODELS = ("alpha-beta", "contended")


@dataclass
class Link:
    """Occupancy state of one directed link (an uplink or a downlink)."""

    #: Simulated time at which the link finishes its granted traffic.
    busy_until: float = 0.0
    #: Messages carried.
    messages: int = 0
    #: Words carried.
    words: int = 0
    #: Total seconds messages spent queued waiting for this link.
    queue_seconds: float = 0.0


@dataclass(frozen=True)
class NetworkStats:
    """Machine-wide totals over all links of one run."""

    model: str
    links_used: int
    messages: int
    words: int
    #: Total link-queueing delay suffered by all messages (seconds);
    #: always 0.0 under the alpha-beta model.
    queue_seconds: float
    #: Largest queueing delay on any single link (the hot spot).
    max_link_queue_seconds: float


class Network:
    """First-class interconnect model, attached to a ``Machine``.

    Parameters
    ----------
    model:
        ``"alpha-beta"`` (flat, uncontended — the compatibility cost
        model) or ``"contended"`` (two-level link hierarchy).
    node_size:
        PEs per node in the contended hierarchy; ranks ``[k *
        node_size, (k+1) * node_size)`` share node ``k``'s links.
    link_alpha / link_beta:
        Per-link transit constants.  Default to the machine spec's
        ``alpha`` / ``beta`` at :meth:`bind` time, so an uncontended
        message pays one extra wire transit per hop relative to the
        flat model — the price of modelling the wire at all.
    oversubscription:
        Multiplier (>= 1) on the effective per-word link time: an
        oversubscribed fabric (fewer fabric ports than node ports, as
        on most fat-tree deployments) carries each word proportionally
        slower.  Applied on top of ``link_beta``.
    """

    def __init__(
        self,
        model: str = "alpha-beta",
        *,
        node_size: int = 16,
        link_alpha: float | None = None,
        link_beta: float | None = None,
        oversubscription: float = 1.0,
    ):
        if model not in MODELS:
            raise ValueError(f"unknown network model {model!r}; expected one of {MODELS}")
        if node_size < 1:
            raise ValueError("node_size must be >= 1")
        if oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1")
        self.model = model
        self.node_size = int(node_size)
        self._link_alpha_arg = link_alpha
        self._link_beta_arg = link_beta
        self.oversubscription = float(oversubscription)
        #: Effective constants, set by :meth:`bind`.
        self.link_alpha = link_alpha if link_alpha is not None else 0.0
        self.link_beta = (link_beta if link_beta is not None else 0.0) * self.oversubscription
        self.num_pes = 0
        self._links: dict[tuple[str, int], Link] = {}

    # ------------------------------------------------------------------
    def bind(self, spec, num_pes: int) -> None:
        """Bind spec-derived constants and reset all link state for a run."""
        la = self._link_alpha_arg if self._link_alpha_arg is not None else spec.alpha
        lb = self._link_beta_arg if self._link_beta_arg is not None else spec.beta
        self.link_alpha = float(la)
        self.link_beta = float(lb) * self.oversubscription
        self.num_pes = int(num_pes)
        self._links = {}

    def node_of(self, rank: int) -> int:
        """The node (link-sharing group) a PE belongs to."""
        return rank // self.node_size

    def transit_time(self, words: int) -> float:
        """One link transit: ``link_alpha + link_beta * l``."""
        return self.link_alpha + self.link_beta * float(words)

    def _link(self, kind: str, node: int) -> Link:
        key = (kind, node)
        link = self._links.get(key)
        if link is None:
            link = self._links[key] = Link()
        return link

    def arrival_time(self, src: int, dest: int, words: int, t: float) -> float:
        """When a message injected at ``t`` becomes visible at ``dest``.

        Under the contended model this *claims* link capacity: the
        message is granted the source uplink, then the destination
        downlink, each no earlier than the link frees up, and the
        links' ``busy_until`` advance past it.  Call exactly once per
        wire transmission, in injection order (the event engine's
        time-ordered execution guarantees this).
        """
        if self.model == "alpha-beta":
            return t
        nsrc = self.node_of(src)
        ndst = self.node_of(dest)
        if nsrc == ndst:
            return t
        transit = self.transit_time(words)
        up = self._link("up", nsrc)
        start = max(t, up.busy_until)
        up.queue_seconds += start - t
        end = start + transit
        up.busy_until = end
        up.messages += 1
        up.words += int(words)
        down = self._link("down", ndst)
        start2 = max(end, down.busy_until)
        down.queue_seconds += start2 - end
        end2 = start2 + transit
        down.busy_until = end2
        down.messages += 1
        down.words += int(words)
        return end2

    def stats(self) -> NetworkStats:
        """Aggregate link counters of the run so far."""
        links = list(self._links.values())
        return NetworkStats(
            model=self.model,
            links_used=len(links),
            messages=sum(l.messages for l in links),
            words=sum(l.words for l in links),
            queue_seconds=sum(l.queue_seconds for l in links),
            max_link_queue_seconds=max((l.queue_seconds for l in links), default=0.0),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.model == "alpha-beta":
            return "Network(model='alpha-beta')"
        return (
            f"Network(model='contended', node_size={self.node_size}, "
            f"link_alpha={self.link_alpha}, link_beta={self.link_beta})"
        )
