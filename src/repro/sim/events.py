"""Deterministic priority-queue event core of the simulation engine.

The engine (:mod:`repro.sim.engine`) is a classic discrete-event
simulator: a binary heap of pending events ordered by simulated time,
popped one at a time (the pmsim pattern — ``heapq.heappop`` of
``(time, ...)`` tuples).  Two details make the queue *deterministic*,
which the whole repo's bit-identical-replay guarantee rests on:

* Ties on time are broken first by an integer **priority class**
  (deliveries before timers before PE resumes — a message that arrives
  "now" is visible to a PE resumed "now"), then by a monotone
  **insertion sequence number**.  Floating-point equal times therefore
  never fall through to comparing payloads, and two runs that insert
  the same events in the same order pop them in the same order.
* The queue never consults wall clocks or randomness; it is a pure
  function of its insertion sequence.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = [
    "PRIORITY_DELIVERY",
    "PRIORITY_TIMER",
    "PRIORITY_RESUME",
    "Event",
    "EventQueue",
]

#: Message arrivals: processed first among same-time events so a PE
#: resumed at time ``t`` already sees everything that arrived at ``t``.
PRIORITY_DELIVERY = 0
#: Transport timers (retransmission timeouts) and generic callbacks.
PRIORITY_TIMER = 1
#: PE generator resumptions.
PRIORITY_RESUME = 2


class Event:
    """One scheduled occurrence: ``fn()`` runs when the event is popped.

    Total ordering is ``(time, priority, seq)``; ``seq`` is assigned by
    the queue at insertion, so the tuple is always orderable no matter
    what ``fn`` closes over.
    """

    __slots__ = ("time", "priority", "seq", "fn", "cancelled")

    def __init__(self, time: float, priority: int, seq: int, fn: Callable[[], Any]):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event(t={self.time!r}, prio={self.priority}, seq={self.seq})"


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        #: Simulated time of the last popped event (monotone).
        self.now = 0.0
        #: Total events ever pushed (diagnostics).
        self.pushed = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, priority: int, fn: Callable[[], Any]) -> Event:
        """Schedule ``fn`` at simulated ``time``; returns a cancellable handle."""
        ev = Event(time, priority, self._seq, fn)
        self._seq += 1
        self.pushed += 1
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event | None:
        """Remove and return the next live event (``None`` when empty).

        Cancelled events are skipped and discarded; ``now`` advances to
        the returned event's time.
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self.now = ev.time
            return ev
        return None

    def peek_time(self) -> float | None:
        """Time of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
