"""Event-driven simulation core (engine + network models).

Split out of :mod:`repro.net` so the scheduling machinery (events,
disciplines, link contention) lives apart from the programming model
(``Machine`` / ``PEContext`` / collectives), which now forms a thin
façade over this package.  See ``docs/SIMULATION.md``.
"""

from .engine import LIVELOCK_ROUNDS, EngineStats, SimEngine
from .events import (
    PRIORITY_DELIVERY,
    PRIORITY_RESUME,
    PRIORITY_TIMER,
    Event,
    EventQueue,
)
from .network import Link, Network, NetworkStats

__all__ = [
    "Event",
    "EventQueue",
    "PRIORITY_DELIVERY",
    "PRIORITY_TIMER",
    "PRIORITY_RESUME",
    "EngineStats",
    "SimEngine",
    "LIVELOCK_ROUNDS",
    "Link",
    "Network",
    "NetworkStats",
]
