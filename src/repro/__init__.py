"""repro — reproduction of Sanders & Uhl, "Engineering a Distributed-Memory
Triangle Counting Algorithm" (IPDPS 2023).

The package implements the paper's algorithms (DITRIC, CETRIC and their
grid-indirection variants, plus the LCC and AMQ-approximation
extensions), the baselines it compares against (TriC-like,
HavoqGT-like, shared-memory edge iterators), the KaGen-equivalent graph
generators it evaluates on, and a simulated distributed-memory machine
with the paper's own alpha-beta communication cost model.

Quickstart
----------
>>> from repro import count_triangles, generators
>>> g = generators.rgg2d(1 << 12, expected_edges=16 << 12, seed=1)
>>> result = count_triangles(g, algorithm="cetric", num_pes=8)
>>> result.triangles == count_triangles(g, algorithm="sequential").triangles
True
"""

from . import graphs
from .graphs import generators
from .version import __version__

# High-level facade (populated by repro.api; imported late to avoid cycles).
from .api import count_triangles, local_clustering_coefficients  # noqa: E402

__all__ = [
    "graphs",
    "generators",
    "count_triangles",
    "local_clustering_coefficients",
    "__version__",
]
