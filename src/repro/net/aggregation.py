"""Dynamic buffered message queues (paper Section IV-A).

DITRIC's message aggregation: each PE keeps one growable buffer per
communication partner and appends application *records* (a vertex id
plus its out-neighborhood) to them.  When the total buffered size
exceeds a threshold ``delta``, all buffers are flushed as one
aggregated message per destination, implemented in the real system
with double buffering over non-blocking sends.

Setting ``delta = O(|E_i|)`` bounds the memory used for aggregation by
the local input size — the paper's linear-memory guarantee, in contrast
to TriC's static single-shot buffers (reproduced in
:mod:`repro.baselines.tric`) which can exceed memory because the
*total* communication volume is superlinear.

In the simulation a non-blocking send completes instantly at
alpha+beta*l model cost, so double buffering has no separate timing
effect; what the queue faithfully reproduces is message *counts*,
aggregated message *sizes*, and the buffer high-water mark (the
memory claim).

A ``threshold_words`` of 0 degenerates to one message per record —
exactly the "no aggregation" configuration of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from .comm import barrier, drain
from .machine import PEContext
from .messages import HEADER_WORDS, Message, Tag

__all__ = ["Record", "BufferedMessageQueue", "unpack_records"]


@dataclass(frozen=True)
class Record:
    """One application record: a vertex and (some of) its neighborhood.

    ``words`` counts the neighborhood entries plus the
    :data:`~repro.net.messages.HEADER_WORDS` envelope (vertex id +
    length field), matching how the paper measures communication
    volume in machine words.

    ``target`` distinguishes the two message shapes of the paper:
    Algorithm 2 sends ``((v, u), N_v^+)`` — the receiver intersects for
    that single edge ``(v, u)`` — whereas the surrogate-optimized
    algorithms send ``(v, A(v))`` once per destination PE and the
    receiver loops over *all* its local ``u ∈ A(v)``.  ``target=None``
    selects the latter; a vertex id costs one extra word on the wire.
    """

    vertex: int
    neighbors: np.ndarray
    target: int | None = None

    @property
    def words(self) -> int:
        """Charged size of this record in machine words."""
        extra = 0 if self.target is None else 1
        return int(self.neighbors.size) + HEADER_WORDS + extra


class BufferedMessageQueue:
    """Per-destination aggregation buffers with a global flush threshold.

    Parameters
    ----------
    ctx:
        The owning PE's context.
    tag:
        Tag for the aggregated messages.
    threshold_words:
        Flush when the *total* buffered words exceed this (the paper's
        ``delta``).  0 means flush on every post (no aggregation).
    """

    def __init__(self, ctx: PEContext, tag: Tag, threshold_words: int):
        if threshold_words < 0:
            raise ValueError("threshold must be non-negative")
        self.ctx = ctx
        self.tag = tag
        self.threshold_words = int(threshold_words)
        self._buffers: dict[int, list[Record]] = {}
        self._buffer_words: dict[int, int] = {}
        self._total_words = 0
        self._local: list[Record] = []
        self.flushes = 0
        self.records_posted = 0

    @property
    def buffered_words(self) -> int:
        """Current total buffered size ``B = sum_j |B_j|``."""
        return self._total_words

    def post(self, dest: int, record: Record) -> None:
        """Append a record to buffer ``B_dest``; flush if over threshold.

        Records addressed to the posting PE itself bypass the network
        (handed back by :meth:`finalize` at zero wire cost).
        """
        if dest == self.ctx.rank:
            self._local.append(record)
            self.records_posted += 1
            return
        self._buffers.setdefault(dest, []).append(record)
        self._buffer_words[dest] = self._buffer_words.get(dest, 0) + record.words
        self._total_words += record.words
        self.records_posted += 1
        self.ctx.metrics.note_buffer(self._total_words)
        if self._total_words > self.threshold_words:
            self.flush()

    def flush(self) -> None:
        """Send every non-empty buffer as one aggregated message.

        These sends ride the machine's configured transport, so under
        a :mod:`repro.faults` plan the reliable layer sequences and
        retransmits them — fault-tolerant programs may use the queue
        freely (no :func:`~repro.net.reliable.reliable_send` wrapper
        needed; lint rule R5 only patrols hand-written ``ctx.send``).
        """
        if not self._buffers:
            return
        for dest, records in sorted(self._buffers.items()):
            words = self._buffer_words[dest]
            self.ctx.send(dest, self.tag, records, words)
        self._buffers = {}
        self._buffer_words = {}
        self._total_words = 0
        self.flushes += 1

    def finalize(self) -> Generator[None, None, list[Record]]:
        """Flush remaining buffers, synchronize, and drain received records.

        The barrier plays the role of NBX termination detection: after
        it completes, every PE has posted (and, in the simulation,
        delivered) all its sends, so the inbox drain is complete.
        Must be called by all PEs (collectively).
        """
        self.flush()
        yield from barrier(self.ctx)
        received = unpack_records(drain(self.ctx, self.tag))
        received.extend(self._local)
        self._local = []
        return received


def unpack_records(messages: list[Message]) -> list[Record]:
    """Flatten aggregated messages back into their records."""
    out: list[Record] = []
    for msg in messages:
        payload = msg.payload
        if isinstance(payload, Record):
            out.append(payload)
        else:
            out.extend(payload)
    return out
