"""Dynamic buffered message queues (paper Section IV-A).

DITRIC's message aggregation: each PE keeps one growable buffer per
communication partner and appends application *records* (a vertex id
plus its out-neighborhood) to them.  When the total buffered size
exceeds a threshold ``delta``, all buffers are flushed as one
aggregated message per destination, implemented in the real system
with double buffering over non-blocking sends.

Setting ``delta = O(|E_i|)`` bounds the memory used for aggregation by
the local input size — the paper's linear-memory guarantee, in contrast
to TriC's static single-shot buffers (reproduced in
:mod:`repro.baselines.tric`) which can exceed memory because the
*total* communication volume is superlinear.

In the simulation a non-blocking send completes instantly at
alpha+beta*l model cost, so double buffering has no separate timing
effect; what the queue faithfully reproduces is message *counts*,
aggregated message *sizes*, and the buffer high-water mark (the
memory claim).

A ``threshold_words`` of 0 degenerates to one message per record —
exactly the "no aggregation" configuration of Fig. 2.

Wire format
-----------
Buffered :class:`~repro.net.frames.Record` posts are packed into one
:class:`~repro.net.frames.RecordFrame` per destination at flush time,
and the vectorized :meth:`BufferedMessageQueue.post_many` appends whole
array chunks without ever materializing per-record objects.  Flush
boundaries are computed from the per-record cumulative word counts, so
message counts, sizes, and the buffer high-water mark are bit-identical
to posting the same records one at a time (see ``docs/PERFORMANCE.md``).
Opaque payloads with a ``words`` attribute (``AmqRecord``,
``ForwardRecord``) still travel as the objects they were posted as.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from .comm import barrier, drain
from .frames import (
    ForwardFrame,
    FrameBuilder,
    Record,
    RecordFrame,
    flatten_records,
    merge_frames,
)
from .machine import PEContext
from .messages import Message, Tag

__all__ = ["Record", "RecordFrame", "BufferedMessageQueue", "unpack_records"]


def _all_frameable(parts) -> bool:
    """True when every payload packs losslessly into one RecordFrame."""
    stack = list(parts)
    while stack:
        part = stack.pop()
        if isinstance(part, (list, tuple)):
            stack.extend(part)
        elif not isinstance(part, (Record, RecordFrame)):
            return False
    return True


class BufferedMessageQueue:
    """Per-destination aggregation buffers with a global flush threshold.

    Parameters
    ----------
    ctx:
        The owning PE's context.
    tag:
        Tag for the aggregated messages.
    threshold_words:
        Flush when the *total* buffered words exceed this (the paper's
        ``delta``).  0 means flush on every post (no aggregation).
    """

    def __init__(self, ctx: PEContext, tag: Tag, threshold_words: int):
        if threshold_words < 0:
            raise ValueError("threshold must be non-negative")
        self.ctx = ctx
        self.tag = tag
        self.threshold_words = int(threshold_words)
        self._builders: dict[int, FrameBuilder] = {}
        self._misc: dict[int, list] = {}
        self._buffer_words: dict[int, int] = {}
        self._total_words = 0
        self._local: list = []
        self.flushes = 0
        self.records_posted = 0

    @property
    def buffered_words(self) -> int:
        """Current total buffered size ``B = sum_j |B_j|``."""
        return self._total_words

    def post(self, dest: int, record) -> None:
        """Append a record to buffer ``B_dest``; flush if over threshold.

        Records addressed to the posting PE itself bypass the network
        (handed back by :meth:`finalize` at zero wire cost).  A
        :class:`Record` is packed into the destination's frame at flush
        time; any other payload with a ``words`` attribute rides along
        unpacked.
        """
        if dest == self.ctx.rank:
            self._local.append(record)
            self.records_posted += 1
            return
        if isinstance(record, Record):
            self._builders.setdefault(dest, FrameBuilder()).append_record(record)
        else:
            self._misc.setdefault(dest, []).append(record)
        self._buffer_words[dest] = self._buffer_words.get(dest, 0) + record.words
        self._total_words += record.words
        self.records_posted += 1
        self.ctx.metrics.note_buffer(self._total_words)
        if self._total_words > self.threshold_words:
            self.flush()

    def post_many(
        self,
        dest_ranks: np.ndarray,
        vertices: np.ndarray,
        targets: np.ndarray,
        xadj: np.ndarray,
        neighbors: np.ndarray,
        *,
        final_dests: np.ndarray | None = None,
    ) -> None:
        """Post a whole batch of records given in struct-of-arrays form.

        Record ``i`` is ``(vertices[i], targets[i],
        neighbors[xadj[i]:xadj[i+1]])`` bound for ``dest_ranks[i]``
        (``targets[i] == -1`` for broadcast).  With ``final_dests`` the
        records are grid row-hop forwards: ``dest_ranks`` holds the
        proxy and each record is charged one extra routing word, exactly
        like posting :class:`~repro.net.indirect.ForwardRecord` objects.

        Equivalent to posting the records one at a time in batch order —
        same flush boundaries, per-destination record order, buffer
        high-water marks, and wire words — without a Python loop over
        records.  Flush boundaries are found by ``searchsorted`` on the
        cumulative word counts; each threshold-crossing record closes a
        segment whose per-destination slices are appended to the frame
        builders in one gather.
        """
        dest_ranks = np.asarray(dest_ranks, dtype=np.int64)
        k = int(dest_ranks.size)
        if k == 0:
            return
        frame = RecordFrame(
            np.asarray(vertices, dtype=np.int64),
            np.asarray(targets, dtype=np.int64),
            np.asarray(xadj, dtype=np.int64),
            np.asarray(neighbors, dtype=np.int64),
        )
        if final_dests is not None:
            final_dests = np.asarray(final_dests, dtype=np.int64)
        self.records_posted += k

        self_mask = dest_ranks == self.ctx.rank
        if np.any(self_mask):
            idx = np.flatnonzero(self_mask)
            sub = frame.select(idx)
            if final_dests is not None:
                self._local.append(ForwardFrame(final_dests[idx], sub))
            else:
                self._local.append(sub)

        ridx = np.flatnonzero(~self_mask)
        n = int(ridx.size)
        if n == 0:
            return
        dests = dest_ranks[ridx]
        rw = frame.record_words()[ridx]
        if final_dests is not None:
            rw = rw + 1  # ForwardRecord routing word
        cw = np.cumsum(rw)
        fd = final_dests[ridx] if final_dests is not None else None

        start = 0
        prev = 0  # cumulative words consumed by earlier segments
        base = self._total_words
        while start < n:
            # First record whose cumulative total strictly exceeds the
            # threshold closes the segment (the legacy per-post rule).
            end = int(np.searchsorted(cw, self.threshold_words - base + prev, "right"))
            crosses = end < n
            stop = end + 1 if crosses else n
            self._append_segment(frame, ridx[start:stop], dests[start:stop],
                                 rw[start:stop], fd[start:stop] if fd is not None else None)
            self._total_words = base + int(cw[stop - 1]) - prev
            # Running totals rise monotonically within a segment, so one
            # high-water sample at the segment end equals per-post sampling.
            self.ctx.metrics.note_buffer(self._total_words)
            if not crosses:
                break
            self.flush()
            base = 0
            prev = int(cw[end])
            start = stop

    def _append_segment(self, frame, idx, dests, rw, fd) -> None:
        """Append one flush segment's records to per-destination builders."""
        order = np.argsort(dests, kind="stable")
        sub = frame.select(idx[order])
        d_sorted = dests[order]
        rw_sorted = rw[order]
        fd_sorted = fd[order] if fd is not None else None
        sizes = np.diff(sub.xadj)
        bounds = np.flatnonzero(np.diff(d_sorted)) + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [d_sorted.size]))
        for s, e in zip(starts.tolist(), ends.tolist()):
            dest = int(d_sorted[s])
            builder = self._builders.setdefault(dest, FrameBuilder())
            builder.append_chunk(
                sub.vertices[s:e],
                sub.targets[s:e],
                sizes[s:e],
                sub.neighbors[int(sub.xadj[s]) : int(sub.xadj[e])],
                final_dests=fd_sorted[s:e] if fd_sorted is not None else None,
            )
            self._buffer_words[dest] = self._buffer_words.get(dest, 0) + int(
                rw_sorted[s:e].sum()
            )

    def post_items(self, dest_ranks, records) -> None:
        """Post pre-built record objects, one per destination entry.

        Convenience for callers whose payloads are opaque objects
        (e.g. ``AmqRecord``) that cannot be framed; plain
        :class:`Record` batches should use :meth:`post_many`.
        """
        for dest, record in zip(dest_ranks, records):
            self.post(int(dest), record)

    def flush(self) -> None:
        """Send every non-empty buffer as one aggregated message.

        Buffered :class:`Record` chunks leave as one
        :class:`RecordFrame` per destination; opaque payloads ride in a
        list after the frame.  These sends use the machine's configured
        transport, so under a :mod:`repro.faults` plan the reliable
        layer sequences and retransmits them — fault-tolerant programs
        may use the queue freely (no
        :func:`~repro.net.reliable.reliable_send` wrapper needed; lint
        rule R5 only patrols hand-written ``ctx.send``).
        """
        if not self._builders and not self._misc:
            return
        for dest in sorted(set(self._builders) | set(self._misc)):
            words = self._buffer_words[dest]
            builder = self._builders.get(dest)
            misc = self._misc.get(dest)
            if builder is not None:
                payload = builder.build()
                if misc:
                    payload = [payload, *misc]
            else:
                payload = misc
            self.ctx.send(dest, self.tag, payload, words)
        self._builders = {}
        self._misc = {}
        self._buffer_words = {}
        self._total_words = 0
        self.flushes += 1

    def finalize(self) -> Generator[None, None, RecordFrame | list]:
        """Flush remaining buffers, synchronize, and drain received records.

        The barrier plays the role of NBX termination detection: after
        it completes, every PE has posted (and, in the simulation,
        delivered) all its sends, so the inbox drain is complete.
        Must be called by all PEs (collectively).

        Returns one merged :class:`RecordFrame` when everything received
        (and self-posted) is frameable — the fast path the counting
        kernels consume directly — and a flat list of payload objects
        otherwise (frames expanded in arrival order, so legacy consumers
        see exactly the records that were posted).
        """
        self.flush()
        # NBX discipline (see sparse_alltoall): our flushed frames must
        # finish delivery before the barrier concludes the exchange.
        yield from self.ctx.sync_sends()
        yield from barrier(self.ctx)
        parts = [msg.payload for msg in drain(self.ctx, self.tag)]
        parts.extend(self._local)
        self._local = []
        if _all_frameable(parts):
            return merge_frames(parts)
        return flatten_records(parts)


def unpack_records(messages: list[Message]) -> list:
    """Flatten aggregated messages back into their records.

    Frames are expanded into their constituent :class:`Record` objects;
    opaque payloads are passed through unchanged.
    """
    return flatten_records([msg.payload for msg in messages])
