"""mpi4py transport: run the SPMD programs under real MPI.

Third execution backend, for actual clusters.  Usage, from an MPI
launch (``mpiexec -n 8 python my_script.py``)::

    from mpi4py import MPI
    from repro.net.mpi import mpi_run
    from repro.core import counting_program, EngineConfig
    from repro.graphs import generators, distribute

    g = generators.rgg2d(1 << 18, expected_edges=16 << 18, seed=1)
    dist = distribute(g, num_pes=MPI.COMM_WORLD.Get_size())
    counts, metrics = mpi_run(counting_program, dist, EngineConfig(contraction=True))
    if MPI.COMM_WORLD.Get_rank() == 0:
        print(counts.triangles_total, metrics.words_sent)

Faithfulness notes:

* the repro hint that *per-edge* mpi4py kernels are too slow does not
  apply here: all hot paths are the same batched NumPy kernels as the
  other backends, and messages are aggregated records, not per-edge
  traffic;
* application tags (arbitrary hashables) are mapped onto MPI's integer
  tag space with a stable per-run dictionary replicated by identical
  program order on all ranks — the same property the collectives
  already rely on;
* like :class:`~repro.net.parallel.ProcessMachine`, the termination
  barriers carry over: ``isend`` completion plus the dissemination
  barrier's happens-before chain ensures drains see all data (the
  implementation posts receives eagerly through ``iprobe`` pumping).

This module imports mpi4py lazily; everything except :func:`mpi_run`
is importable (and unit-tested) without it.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from .costmodel import DEFAULT_SPEC, MachineSpec
from .machine import PEContext

__all__ = ["TagCodec", "MpiContext", "mpi_run"]


class TagCodec:
    """Stable mapping from hashable application tags to MPI integer tags.

    Both endpoints build the mapping *independently* but in the same
    order, because every tag is first used inside collectives or
    protocol phases that all ranks execute in identical program order.
    To be robust against benign ordering drift, the integer tag is not
    taken from arrival order but from a deterministic hash of the
    tag's repr, reduced into the portable MPI tag range.
    """

    #: Portable upper bound guaranteed by the MPI standard.
    TAG_UB = 32767

    def __init__(self) -> None:
        self._known: dict[int, Hashable] = {}

    def encode(self, tag: Hashable) -> int:
        """Deterministic integer tag; collisions raise loudly."""
        digest = self._stable_hash(tag)
        code = digest % (self.TAG_UB - 1) + 1
        seen = self._known.get(code)
        if seen is not None and repr(seen) != repr(tag):
            raise ValueError(
                f"MPI tag collision between {seen!r} and {tag!r}; "
                "rename one of the application tags"
            )
        self._known[code] = tag
        return code

    @staticmethod
    def _stable_hash(tag: Hashable) -> int:
        import hashlib

        return int.from_bytes(
            hashlib.blake2b(repr(tag).encode(), digest_size=8).digest(), "big"
        )


class MpiContext(PEContext):
    """PE context whose transport is mpi4py point-to-point messaging."""

    def __init__(self, comm, spec: MachineSpec):
        class _Bus:
            def __init__(self, outer):
                self._outer = outer

            def _deliver(self, msg):
                self._outer._isend(msg)

            def _note_progress(self):
                pass

        super().__init__(comm.Get_rank(), comm.Get_size(), spec, _Bus(self))
        self._comm = comm
        self._codec = TagCodec()
        self._pending_sends: list = []

    def _isend(self, msg) -> None:
        payload = (msg.tag, msg.payload, msg.words, msg.send_time)
        req = self._comm.isend(payload, dest=msg.dest, tag=self._codec.encode(msg.tag))
        self._pending_sends.append(req)
        # Opportunistically reap completed sends.
        self._pending_sends = [r for r in self._pending_sends if not r.Test()]

    def _pump(self) -> None:
        from mpi4py import MPI

        status = MPI.Status()
        while self._comm.iprobe(source=MPI.ANY_SOURCE, tag=MPI.ANY_TAG, status=status):
            src = status.Get_source()
            tag_code = status.Get_tag()
            payload = self._comm.recv(source=src, tag=tag_code)
            app_tag, app_payload, words, send_time = payload
            from repro.net.messages import Message

            self._inbox[app_tag].append(
                Message(
                    src=src,
                    dest=self.rank,
                    tag=app_tag,
                    payload=app_payload,
                    words=words,
                    send_time=send_time,
                )
            )

    def try_recv(self, tag):
        """Non-blocking receive over MPI (see PEContext)."""
        self._pump()
        return super().try_recv(tag)

    def pending(self, tag) -> int:
        """Queued message count for ``tag`` after probing MPI."""
        self._pump()
        return super().pending(tag)


def mpi_run(
    program: Callable,
    dist,
    *args,
    spec: MachineSpec = DEFAULT_SPEC,
    comm=None,
    **kwargs,
) -> tuple[Any, Any]:
    """Execute one PE of ``program`` under MPI (SPMD: call on every rank).

    Returns ``(value, metrics)`` for the calling rank.  ``dist`` may be
    a full :class:`~repro.graphs.distributed.DistGraph` (each rank uses
    its own view) or a :class:`~repro.net.parallel.RemoteDist`.
    """
    from mpi4py import MPI  # noqa: F401  (import error = no MPI available)

    world = comm if comm is not None else MPI.COMM_WORLD
    ctx = MpiContext(world, spec)
    if dist.num_pes != ctx.num_pes:
        raise ValueError(
            f"distribution has {dist.num_pes} parts but MPI world has {ctx.num_pes}"
        )
    gen = program(ctx, dist, *args, **kwargs)
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        value = stop.value
    # Drain outstanding sends before returning.
    for req in ctx._pending_sends:
        req.wait()
    return value, ctx.metrics
