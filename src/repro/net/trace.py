"""Optional event tracing for simulated runs.

Attach a :class:`Tracer` to a :class:`~repro.net.machine.Machine` and
every send, receive, phase transition, injected drop, and
retransmission is recorded with its simulated timestamp — the raw material for debugging protocols
(who sent what to whom, and when) and for the timeline rendering of
:func:`render_timeline`.

Tracing is strictly opt-in and costs nothing when absent (a single
``is None`` test per event).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

__all__ = ["SpanRecord", "TraceEvent", "Tracer", "render_timeline"]


@dataclass(frozen=True)
class SpanRecord:
    """One closed ``ctx.span`` interval on one PE.

    Spans are the structured counterpart of the flat ``phase`` trace
    events: they carry their nesting ``depth`` and a decomposition of
    the simulated time spent inside the interval —

    ``comm_time``
        seconds charged at message endpoints (``alpha + beta * words``
        for sends, receives, and acks);
    ``wait_time``
        seconds the PE's clock was fast-forwarded waiting for a
        message's causal timestamp (idle time on the critical path);
    ``retransmit_time``
        seconds charged by the reliable transport for retransmissions
        and duplicate discards (zero on fault-free runs);
    ``recovery_time``
        seconds charged by localized recovery while the span was open
        (a survivor shipping its checkpoint replica or re-sending
        logged messages for a crashed peer; zero on crash-free runs).

    The residue ``elapsed - comm_time - wait_time - retransmit_time -
    recovery_time`` is local compute.  Spans are recorded per PE in
    :attr:`repro.net.metrics.PEMetrics.spans` and merged across PEs by
    :meth:`repro.net.metrics.RunMetrics.merged_spans`; the exporters in
    :mod:`repro.obs` turn them into Chrome traces, CSV tables, and
    terminal flamegraphs.
    """

    rank: int
    name: str
    #: Simulated start/end clocks (seconds).
    start: float
    end: float
    #: Nesting depth: 0 for top-level phases, +1 per enclosing span.
    depth: int
    comm_time: float = 0.0
    wait_time: float = 0.0
    retransmit_time: float = 0.0
    recovery_time: float = 0.0

    @property
    def elapsed(self) -> float:
        """Simulated seconds covered by the span."""
        return self.end - self.start

    @property
    def compute_time(self) -> float:
        """Elapsed time minus communication, waiting, and repair time."""
        return max(
            0.0,
            self.elapsed
            - self.comm_time
            - self.wait_time
            - self.retransmit_time
            - self.recovery_time,
        )


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``kind`` is one of:

    * ``"send"`` — a message injection;
    * ``"recv"`` — a message consumption;
    * ``"phase"`` — a completed phase block;
    * ``"drop"`` — a wire transmission lost to an injected fault
      (:mod:`repro.faults`);
    * ``"retry"`` — a reliable-transport retransmission after a
      timeout (:mod:`repro.net.reliable`).

    For message events (``send``/``recv``/``drop``/``retry``) ``peer``
    is the other endpoint; for phase events ``tag`` holds the phase
    name and ``words`` the phase duration in seconds scaled by 1e9
    (integer nanoseconds) to keep the field integral.
    """

    kind: str
    time: float
    rank: int
    peer: int
    tag: Hashable
    words: int


@dataclass
class Tracer:
    """Collects trace events; attach via ``Machine(..., tracer=...)``."""

    events: list[TraceEvent] = field(default_factory=list)

    def send(self, time: float, src: int, dest: int, tag, words: int) -> None:
        """Record a message injection."""
        self.events.append(TraceEvent("send", time, src, dest, tag, words))

    def recv(self, time: float, rank: int, src: int, tag, words: int) -> None:
        """Record a message consumption."""
        self.events.append(TraceEvent("recv", time, rank, src, tag, words))

    def phase(self, rank: int, name: str, start: float, end: float) -> None:
        """Record a completed phase block."""
        self.events.append(
            TraceEvent("phase", start, rank, rank, name, int((end - start) * 1e9))
        )

    def drop(self, time: float, src: int, dest: int, tag, words: int) -> None:
        """Record a wire transmission lost to an injected fault."""
        self.events.append(TraceEvent("drop", time, src, dest, tag, words))

    def retry(self, time: float, src: int, dest: int, tag, words: int) -> None:
        """Record a reliable-transport retransmission after a timeout."""
        self.events.append(TraceEvent("retry", time, src, dest, tag, words))

    # ------------------------------------------------------------ query
    def messages_between(self, src: int, dest: int) -> list[TraceEvent]:
        """All sends from ``src`` to ``dest`` in order."""
        return [e for e in self.events if e.kind == "send" and e.rank == src and e.peer == dest]

    def words_by_tag(self) -> dict[Hashable, int]:
        """Total sent words per tag class (protocol volume breakdown)."""
        out: dict[Hashable, int] = {}
        for e in self.events:
            if e.kind == "send":
                out[e.tag] = out.get(e.tag, 0) + e.words
        return out

    def phase_spans(self, rank: int) -> list[tuple[str, float, float]]:
        """``(name, start, end)`` phase intervals of one PE."""
        return [
            (str(e.tag), e.time, e.time + e.words / 1e9)
            for e in self.events
            if e.kind == "phase" and e.rank == rank
        ]


def render_timeline(tracer: Tracer, *, max_events: int = 40) -> str:
    """A human-readable event log, chronologically ordered."""
    events = sorted(tracer.events, key=lambda e: (e.time, e.kind))
    lines = [f"{'time [us]':>12s}  event"]
    for e in events[:max_events]:
        t = e.time * 1e6
        if e.kind == "send":
            lines.append(f"{t:12.3f}  PE{e.rank} -> PE{e.peer}  {e.words}w  tag={e.tag!r}")
        elif e.kind == "recv":
            lines.append(f"{t:12.3f}  PE{e.rank} <- PE{e.peer}  {e.words}w  tag={e.tag!r}")
        elif e.kind == "drop":
            lines.append(
                f"{t:12.3f}  PE{e.rank} -x PE{e.peer}  {e.words}w  tag={e.tag!r}  DROPPED"
            )
        elif e.kind == "retry":
            lines.append(
                f"{t:12.3f}  PE{e.rank} ~> PE{e.peer}  {e.words}w  tag={e.tag!r}  RETRY"
            )
        else:
            lines.append(
                f"{t:12.3f}  PE{e.rank} phase {e.tag!r} ({e.words / 1e3:.3f} us)"
            )
    if len(events) > max_events:
        lines.append(f"... {len(events) - max_events} more events")
    return "\n".join(lines)
