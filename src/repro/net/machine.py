"""The simulated distributed-memory machine.

``p`` PEs execute SPMD programs written as Python *generators*: a
program does local work, posts messages, and ``yield``\\ s whenever it
wants the rest of the machine to make progress (the moral equivalent of
the paper's "each PE continuously polls for incoming messages").  The
:class:`Machine` is a thin façade over the event engine in
:mod:`repro.sim`: PE generators are resumed by *events* (message
delivery, timer expiry, send completion), so a PE blocked on an empty
inbox costs nothing and runs with thousands of mostly-idle PEs stay
fast.  ``Machine(scheduler="round-robin")`` keeps the original strict
round-robin loop as a reference; the default event scheduler replays
it bit-identically under the (default) alpha-beta network model — see
``docs/SIMULATION.md``.

Time is *modelled*, not measured: each PE owns a simulated clock that
advances by ``flop_time`` per charged local operation and by
``alpha + beta * l`` per message endpoint, per the cost model of
Section II-B.  Messages carry the sender's completion time; consuming a
message fast-forwards the receiver's clock to at least that timestamp
(causal ordering).  The modelled running time of a run is the maximum
final clock over PEs — the same "slowest processor" notion as the
paper's measured wall times.

Determinism: scheduling is a pure function of the deterministic event
order (see :mod:`repro.sim.events`), inboxes are FIFO per (tag) class,
and nothing consults real time or unseeded randomness, so a run is a
pure function of (program, inputs, spec, network, fault plan).

Writing programs
----------------
A *program factory* is ``factory(ctx, **kwargs) -> generator``.  Inside
the generator:

* ``ctx.charge(ops[, phase])`` — account local work;
* ``ctx.send(dest, tag, payload, words)`` — non-blocking send;
* ``ctx.try_recv(tag)`` — non-blocking receive (``None`` if empty);
* ``yield from ctx.recv(tag)`` — blocking receive;
* ``yield`` — bare progress point inside long local sections;
* ``return value`` — the PE's result, collected by ``Machine.run``.

Collectives (barrier, allreduce, alltoallv, sparse all-to-all) live in
:mod:`repro.net.comm` and are used with ``yield from``.
"""

from __future__ import annotations

import os
from collections import defaultdict, deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Generator

from ..sim.engine import EngineStats, SimEngine, deliver_later
from ..sim.network import Network, NetworkStats
from .costmodel import DEFAULT_SPEC, MachineSpec
from .messages import Message, Tag
from .metrics import PEMetrics, RunMetrics
from .reliable import LossyTransport, ReliableConfig, ReliableTransport
from .trace import SpanRecord

__all__ = [
    "Machine",
    "PEContext",
    "MachineResult",
    "DeadlockError",
    "OutOfMemoryError",
    "PECrashError",
    "ProtocolError",
]


class DeadlockError(RuntimeError):
    """All live PEs are idle, no messages are pending — nothing can progress."""


class PECrashError(RuntimeError):
    """A PE crash-stopped per the machine's fault plan.

    The whole run aborts (crash-stop, not fail-slow): on a real
    machine the survivors would detect the failure and re-launch from
    the last checkpoint, which is exactly what
    :func:`repro.core.checkpoint.run_with_recovery` does with this
    exception.
    """

    def __init__(self, rank: int, event: int):
        super().__init__(
            f"PE {rank} crash-stopped at machine event {event} (fault plan)"
        )
        self.rank = rank
        self.event = event


class ProtocolError(RuntimeError):
    """The SPMD protocol contract was violated.

    Raised only when the machine runs with ``protocol_check=True``:
    either two PEs entered different collectives at the same position of
    their collective-entry sequence (collective-order divergence — the
    bug class that deadlocks or silently miscounts on a real MPI
    machine), or messages were still undelivered when every program had
    returned (send/recv conservation failure).  See
    ``docs/SPMD_CONTRACT.md`` for the full contract.
    """


class OutOfMemoryError(RuntimeError):
    """A PE exceeded the per-PE memory budget of the machine spec.

    Raised by algorithms with static buffering (the TriC-like baseline)
    to reproduce the out-of-memory failures the paper reports.
    """


class PEContext:
    """Per-PE handle: clock, counters, message endpoints.

    Instances are created by :class:`Machine`; programs receive one and
    must not touch any other PE's context (that would be shared-memory
    cheating — the tests patrol this by construction of the API).
    """

    def __init__(self, rank: int, num_pes: int, spec: MachineSpec, machine: "Machine"):
        self.rank = rank
        self.num_pes = num_pes
        self.spec = spec
        self.metrics = PEMetrics(rank=rank)
        self._machine = machine
        self._inbox: dict[Tag, deque[Message]] = defaultdict(deque)
        self._collective_seq = 0
        self._phase_stack: list[tuple[str, float]] = []
        #: Tag this PE is currently blocked on inside ``recv`` (deadlock
        #: diagnostics); ``None`` while the PE is making progress.
        self._blocked_tag: Tag | None = None
        #: True while this PE is suspended inside ``sync_sends`` waiting
        #: for its in-flight messages to finish delivery (contended
        #: network model only; instant delivery never sets it).
        self._blocked_sends: bool = False
        #: Straggler factor (>= 1) multiplying every charged cost;
        #: set from the machine's fault plan, 1.0 on healthy PEs.
        self._slowdown: float = 1.0

    # ------------------------------------------------------------------
    # Clock / work accounting
    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        """This PE's simulated time in seconds."""
        return self.metrics.clock

    def charge(self, ops: int) -> None:
        """Account ``ops`` local operations (merge comparisons etc.)."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        self.metrics.local_ops += int(ops)
        self.metrics.clock += self._slowdown * self.spec.compute_time(int(ops))
        self._machine._note_progress()

    def charge_time(self, seconds: float) -> None:
        """Advance the clock directly (hybrid-executor support)."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.metrics.clock += self._slowdown * seconds
        self._machine._note_progress()

    @contextmanager
    def span(self, name: str):
        """Structured tracing: attribute the block's simulated time to ``name``.

        Spans nest (each records its own full interval, so an outer span
        covers its children), charge nothing, and record a
        :class:`~repro.net.trace.SpanRecord` carrying the nesting depth
        and a compute/communication/wait/retransmit decomposition of the
        interval — the raw material for the exporters and the phase
        profiler in :mod:`repro.obs`.

        Protocol contract (lint rule R6): open spans only as
        ``with ctx.span("label")`` where the label is a rank-invariant
        string literal — a span that is opened but never closed, or
        whose label differs across ranks, breaks trace merging.
        """
        m = self.metrics
        start = m.clock
        comm0 = m.comm_seconds
        wait0 = m.wait_seconds
        retr0 = m.retransmit_seconds
        rec0 = m.recovery_seconds
        depth = len(self._phase_stack)
        self._phase_stack.append((name, start))
        try:
            yield
        finally:
            self._phase_stack.pop()
            end = m.clock
            m.phase_times[name] += end - start
            m.spans.append(
                SpanRecord(
                    rank=self.rank,
                    name=name,
                    start=start,
                    end=end,
                    depth=depth,
                    comm_time=m.comm_seconds - comm0,
                    wait_time=m.wait_seconds - wait0,
                    retransmit_time=m.retransmit_seconds - retr0,
                    recovery_time=m.recovery_seconds - rec0,
                )
            )
            tracer = getattr(self._machine, "tracer", None)
            if tracer is not None:
                tracer.phase(self.rank, name, start, end)

    def phase(self, name: str):
        """Alias of :meth:`span` (the original phase-attribution API)."""
        return self.span(name)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dest: int, tag: Tag, payload: Any, words: int) -> None:
        """Non-blocking send; the sender pays ``alpha + beta * words`` now.

        Matches the paper's use of non-blocking MPI sends: the cost of
        injecting the message is charged to the sender, and the message
        becomes visible to the receiver no earlier than the sender's
        post-send clock.
        """
        if not (0 <= dest < self.num_pes):
            raise ValueError(f"invalid destination rank {dest}")
        if words < 0:
            raise ValueError("words must be non-negative")
        dt = self._slowdown * self.spec.message_time(words)
        self.metrics.clock += dt
        self.metrics.comm_seconds += dt
        self.metrics.messages_sent += 1
        self.metrics.words_sent += int(words)
        msg = Message(
            src=self.rank,
            dest=dest,
            tag=tag,
            payload=payload,
            words=int(words),
            send_time=self.metrics.clock,
        )
        tracer = getattr(self._machine, "tracer", None)
        if tracer is not None:
            tracer.send(self.metrics.clock, self.rank, dest, tag, int(words))
        # Transport shims (ProcessMachine, MpiContext) have no network
        # layer and deliver directly.
        transmit = getattr(self._machine, "_transmit", None)
        if transmit is not None:
            transmit(msg)
        else:
            self._machine._deliver(msg)

    def try_recv(self, tag: Tag) -> Message | None:
        """Consume the oldest pending message with ``tag``, if any.

        Consuming pays the receiver-side ``alpha + beta * words`` and
        fast-forwards the clock to the message's causal timestamp.
        """
        q = self._inbox.get(tag)
        if not q:
            return None
        msg = q.popleft()
        note_consumed = getattr(self._machine, "_note_consumed", None)
        if note_consumed is not None:
            note_consumed(msg)
        if msg.send_time > self.metrics.clock:
            self.metrics.wait_seconds += msg.send_time - self.metrics.clock
            self.metrics.clock = msg.send_time
        dt = self._slowdown * self.spec.message_time(msg.words)
        self.metrics.clock += dt
        self.metrics.comm_seconds += dt
        self.metrics.messages_received += 1
        self.metrics.words_received += msg.words
        tracer = getattr(self._machine, "tracer", None)
        if tracer is not None:
            tracer.recv(self.metrics.clock, self.rank, msg.src, msg.tag, msg.words)
        self._machine._note_progress()
        return msg

    def recv(self, tag: Tag) -> Generator[None, None, Message]:
        """Blocking receive: poll (yielding) until a message arrives."""
        while True:
            msg = self.try_recv(tag)
            if msg is not None:
                self._blocked_tag = None
                return msg
            self._blocked_tag = tag
            yield

    def pending(self, tag: Tag) -> int:
        """Number of queued messages with ``tag`` (no cost)."""
        q = self._inbox.get(tag)
        return len(q) if q else 0

    def sync_sends(self) -> Generator[None, None, None]:
        """Block until every send this PE has posted finished delivery.

        The MPI_Issend / NBX discipline: under the contended network
        model a posted message is *in flight* until its delivery event
        fires, so a program about to conclude an exchange with
        barrier-plus-drain must first wait for its own sends to land
        (otherwise a peer can pass the barrier and drain before a
        slow-link message arrives).  The collectives in
        :mod:`repro.net.comm` and the aggregation queues call this
        automatically.  Under instant delivery (the alpha-beta model,
        ``ProcessMachine``, MPI shims) there is nothing in flight and
        this yields zero times — bit-identity with the legacy
        scheduler is preserved.
        """
        machine = self._machine
        while True:
            in_flight = getattr(machine, "_in_flight", None)
            if in_flight is None or in_flight[self.rank] <= 0:
                break
            self._blocked_sends = True
            yield
        self._blocked_sends = False

    def enter_collective(self, label: str = "collective") -> int:
        """Monotone per-PE counter keying collective operations.

        All PEs enter collectives in the same program order (an MPI
        requirement the algorithms obey), so equal counters identify
        the same logical collective across PEs.  ``label`` names the
        collective for protocol checking: with ``protocol_check=True``
        the machine cross-validates that every PE's n-th collective
        entry carries the same label and raises :class:`ProtocolError`
        naming the diverging ranks otherwise.
        """
        self._collective_seq += 1
        # Transport shims (ProcessMachine, MpiContext) have no verifier.
        note = getattr(self._machine, "_note_collective_entry", None)
        if note is not None:
            note(self.rank, self._collective_seq, label)
        return self._collective_seq

    def new_collective_id(self) -> int:
        """Back-compat alias for :meth:`enter_collective` (unlabelled)."""
        return self.enter_collective()

    # ------------------------------------------------------------------
    # Checkpoint / restart (coordinated, phase-boundary)
    # ------------------------------------------------------------------
    def checkpoint(self, name: str, state: Any) -> bool:
        """Snapshot ``state`` under ``name`` at a phase boundary.

        No-op (returns ``False``) unless the machine carries a
        :class:`repro.core.checkpoint.CheckpointStore`.  Writing the
        snapshot is charged like sending its size to stable storage
        (``alpha + beta * words``), so checkpoint cadence shows up in
        simulated time.  Snapshots taken by one run become restorable
        only after :meth:`CheckpointStore.prune_to_stable` declares
        them globally consistent — programs never observe a checkpoint
        that some other PE missed.
        """
        store = getattr(self._machine, "checkpoint_store", None)
        if store is None:
            return False
        words = store.save(self.rank, name, state)
        self.metrics.clock += self._slowdown * self.spec.message_time(words)
        if getattr(store, "supports_partner_replication", False):
            mate = store.partner_of(self.rank)
            contexts = getattr(self._machine, "_contexts", None)
            if mate != self.rank and contexts:
                # Buddy scheme: the snapshot is also shipped to the
                # partner rank as a real message — both endpoints pay,
                # so replication cadence shows up in simulated time.
                ship = self.spec.message_time(words)
                self.metrics.clock += self._slowdown * ship
                self.metrics.comm_seconds += self._slowdown * ship
                buddy = contexts[mate]
                bdt = buddy._slowdown * ship
                buddy.metrics.clock += bdt
                buddy.metrics.comm_seconds += bdt
        note_ckpt = getattr(self._machine, "_note_checkpoint", None)
        if note_ckpt is not None:
            note_ckpt(self.rank)
        self._machine._note_progress()
        return True

    def restore(self, name: str) -> Any | None:
        """Return the next stable snapshot if it is named ``name``.

        ``None`` means "no checkpoint here — compute the phase".
        Snapshots replay strictly in the order they were taken, so a
        program that brackets each phase with
        ``state = ctx.restore(phase) or compute-and-checkpoint`` re-runs
        exactly the phases that follow the last globally stable
        checkpoint.  Reading a snapshot back is charged like receiving
        its size from stable storage.
        """
        store = getattr(self._machine, "checkpoint_store", None)
        if store is None:
            return None
        hit = store.load(self.rank, name)
        if hit is None:
            return None
        state, words = hit
        self.metrics.clock += self._slowdown * self.spec.message_time(words)
        self._machine._note_progress()
        return state

    def check_memory(self, words: int, *, what: str = "buffer") -> None:
        """Raise :class:`OutOfMemoryError` if ``words`` exceeds the budget."""
        if words > self.spec.memory_words:
            raise OutOfMemoryError(
                f"PE {self.rank}: {what} of {words} words exceeds the "
                f"per-PE budget of {self.spec.memory_words} words"
            )


@dataclass
class MachineResult:
    """Everything a simulated run produced."""

    #: Per-PE return values of the SPMD program.
    values: list[Any]
    metrics: RunMetrics
    #: Final value of the machine's monotone event counter — the
    #: coordinate system of :class:`repro.faults.plan.CrashEvent`
    #: schedules (a fault-free dry run measures it, then a crash can
    #: be planted at any fraction of the run).
    events: int = 0
    #: Scheduler-work accounting from the event engine (``None`` under
    #: the legacy round-robin scheduler).
    engine: EngineStats | None = None
    #: Link occupancy totals (``None`` under the flat alpha-beta model,
    #: which has no links to contend for).
    network: NetworkStats | None = None
    #: What localized recovery did during the run — membership events,
    #: replayed-message and restored-word totals (``None`` under
    #: ``recovery="global"``).
    recovery: Any | None = None

    @property
    def time(self) -> float:
        """Modelled running time (slowest PE)."""
        return self.metrics.makespan


class Machine:
    """``p`` PE programs with message passing over a simulated network.

    Parameters
    ----------
    num_pes:
        Number of simulated PEs.
    spec:
        Cost-model constants (alpha, beta, flop time, memory budget).
    network:
        :class:`repro.sim.network.Network` deciding message arrival
        times.  Defaults to ``Network(model="alpha-beta")`` — the flat
        uncontended compatibility model this repo has always used.
        ``Network(model="contended")`` adds link-level queueing and
        requires the (default) event scheduler.
    scheduler:
        ``"event"`` (default — the engine in :mod:`repro.sim.engine`;
        idle PEs cost zero) or ``"round-robin"`` (the legacy strict
        polling loop, kept as the bit-identity reference and for
        scheduler-comparison benchmarks).
    tracer:
        Optional :class:`repro.net.trace.Tracer` receiving all events.
    protocol_check:
        Opt-in runtime verification of the SPMD protocol contract
        (``docs/SPMD_CONTRACT.md``): every PE must enter the same
        collectives in the same order, and no message may remain
        undelivered at teardown.  Violations raise
        :class:`ProtocolError` with a diagnostic naming the diverging
        ranks and collectives.  ``None`` (the default) reads the
        ``REPRO_PROTOCOL_CHECK`` environment variable — the test suite
        sets it so every simulated run is verified.
    fault_plan:
        Optional :class:`repro.faults.plan.FaultPlan`; the machine
        consults it at every send (message faults), scheduling step
        (crash-stops), and cost charge (stragglers).
    transport:
        ``"direct"`` (fault-free fast path), ``"reliable"``
        (:class:`repro.net.reliable.ReliableTransport` — repairs all
        message faults, charging the repair costs), or ``"lossy"``
        (:class:`repro.net.reliable.LossyTransport` — faults reach the
        program).  Defaults to ``"reliable"`` when a fault plan is
        given, else ``"direct"``.
    reliable_config:
        :class:`repro.net.reliable.ReliableConfig` protocol tunables
        for the reliable transport.
    checkpoint_store:
        Optional :class:`repro.core.checkpoint.CheckpointStore`
        backing ``ctx.checkpoint`` / ``ctx.restore``; usually supplied
        by :func:`repro.core.checkpoint.run_with_recovery`.
    recovery:
        ``"global"`` (default — a fault-plan crash aborts the run with
        :class:`PECrashError`; pair with
        :func:`repro.core.checkpoint.run_with_recovery` to restart) or
        ``"localized"`` — crashes are detected by simulated heartbeats
        and repaired *inside* the running engine: the crashed rank
        restores from its partner's checkpoint replica and re-receives
        logged messages while survivors keep going (see
        :mod:`repro.faults.recovery` and ``docs/FAULTS.md``).
        Localized recovery requires the contended network model (the
        DES discipline), the reliable transport, and a
        partner-replication-capable checkpoint store (a
        :class:`repro.core.checkpoint.BuddyCheckpointStore` is
        attached automatically when none is given).
    recovery_config:
        :class:`repro.faults.recovery.RecoveryConfig` detector
        tunables (heartbeat period/timeout) for localized recovery.
    """

    def __init__(
        self,
        num_pes: int,
        spec: MachineSpec = DEFAULT_SPEC,
        *,
        network: Network | None = None,
        scheduler: str = "event",
        tracer=None,
        protocol_check: bool | None = None,
        fault_plan=None,
        transport: str | None = None,
        reliable_config: ReliableConfig | None = None,
        checkpoint_store=None,
        recovery: str = "global",
        recovery_config=None,
    ):
        if num_pes < 1:
            raise ValueError("need at least one PE")
        self.num_pes = num_pes
        self.spec = spec
        self.network = network if network is not None else Network()
        if scheduler not in ("event", "round-robin"):
            raise ValueError(
                f"unknown scheduler {scheduler!r}; expected 'event' or 'round-robin'"
            )
        if scheduler == "round-robin" and self.network.model != "alpha-beta":
            raise ValueError(
                "the round-robin scheduler only supports the alpha-beta "
                "network model; contended (delayed) delivery needs the "
                "event scheduler"
            )
        self.scheduler = scheduler
        #: Optional :class:`repro.net.trace.Tracer` receiving all events.
        self.tracer = tracer
        if protocol_check is None:
            protocol_check = os.environ.get(
                "REPRO_PROTOCOL_CHECK", ""
            ).strip().lower() in ("1", "true", "yes", "on")
        self.protocol_check = bool(protocol_check)
        if recovery not in ("global", "localized"):
            raise ValueError(
                f"unknown recovery mode {recovery!r}; expected 'global' or 'localized'"
            )
        if recovery == "localized" and self.network.model != "contended":
            raise ValueError(
                "localized recovery runs on heartbeat timers and in-engine "
                "respawn, which need the contended network model "
                "(Network(model='contended'))"
            )
        if (
            fault_plan is not None
            and getattr(fault_plan, "crash_at_time", ())
            and (scheduler != "event" or self.network.model != "contended")
        ):
            raise ValueError(
                "crash_at_time schedules fire as simulated-time engine "
                "events; they need the event scheduler and the contended "
                "network model"
            )
        if transport is None:
            transport = (
                "reliable"
                if (fault_plan is not None or recovery == "localized")
                else "direct"
            )
        if recovery == "localized" and transport != "reliable":
            raise ValueError(
                "localized recovery replays from the reliable transport's "
                "send logs; transport='reliable' is required"
            )
        if transport not in ("direct", "reliable", "lossy"):
            raise ValueError(
                f"unknown transport {transport!r}; "
                "expected 'direct', 'reliable', or 'lossy'"
            )
        if transport == "lossy" and fault_plan is None:
            raise ValueError("the lossy transport requires a fault plan")
        if transport == "direct" and fault_plan is not None and fault_plan.any_message_faults:
            raise ValueError(
                "a fault plan with message faults needs the 'reliable' or "
                "'lossy' transport; the direct path cannot inject them"
            )
        self.fault_plan = fault_plan
        self.transport = transport
        self.reliable_config = reliable_config
        self.recovery = recovery
        self.recovery_config = recovery_config
        if recovery == "localized":
            from ..core.checkpoint import BuddyCheckpointStore

            if checkpoint_store is None:
                checkpoint_store = BuddyCheckpointStore(num_pes)
            elif not getattr(checkpoint_store, "supports_partner_replication", False):
                raise ValueError(
                    "localized recovery restores from partner replicas; "
                    "pass a partner-replication-capable store "
                    "(BuddyCheckpointStore), not a plain CheckpointStore"
                )
        self.checkpoint_store = checkpoint_store
        #: The run's :class:`repro.faults.recovery.RecoveryManager`
        #: under localized recovery (``None`` otherwise / between runs).
        self._recovery_manager = None
        #: The wire transport (reliable / lossy) or ``None`` for direct.
        self._wire = None
        #: The event engine of the run in progress (``None`` otherwise).
        self._engine: SimEngine | None = None
        #: Per-PE count of posted-but-undelivered messages; ``None``
        #: under instant delivery (alpha-beta), where nothing is ever
        #: in flight.
        self._in_flight: list[int] | None = None
        self._contexts: list[PEContext] = []
        self._collective_log: list[list[str]] = []
        self._progress = 0

    # Internal hooks -----------------------------------------------------
    def _deliver(self, msg: Message, *, front: bool = False) -> None:
        """Append ``msg`` to its destination inbox and wake the receiver.

        ``front=True`` (fault-plan reordering) overtakes the queued
        messages of the same tag, when there are any.
        """
        q = self._contexts[msg.dest]._inbox[msg.tag]
        if front and q:
            q.appendleft(msg)
        else:
            q.append(msg)
        self._note_progress()
        if self._engine is not None:
            self._engine.on_deliver(msg.dest, msg.tag)

    def _transmit(self, msg: Message) -> None:
        """Carry one application send over the configured transport."""
        if self._in_flight is not None:
            self._in_flight[msg.src] += 1
        if self._wire is not None:
            self._wire.transmit(msg)
        else:
            self._inject(msg, msg.send_time)

    def _inject(self, msg: Message, t: float, *, front: bool = False, settle: bool = True) -> None:
        """A wire-complete message enters the network toward its inbox.

        Under instant delivery this is the familiar direct append.
        Under the contended model the network is consulted *at
        simulated time* ``t`` (via an engine event, so link capacity is
        claimed in time order) and the inbox append becomes a delivery
        event at the computed arrival.  ``settle=False`` marks wire
        duplicates, which must not decrement the sender's in-flight
        count a second time.
        """
        if self._engine is not None and self.network.model == "contended":
            self._engine.call_at(
                t, lambda: self._claim_and_deliver(msg, t, front=front, settle=settle)
            )
        else:
            self._deliver(msg, front=front)
            if settle:
                self._settle_send(msg.src)

    def _claim_and_deliver(self, msg: Message, t: float, *, front: bool, settle: bool) -> None:
        arrival = self.network.arrival_time(msg.src, msg.dest, msg.words, t)
        deliver_later(self, msg, arrival, front=front, settle=settle)

    def _finish_delivery(self, msg: Message, *, front: bool = False, settle: bool = True) -> None:
        self._deliver(msg, front=front)
        if settle:
            self._settle_send(msg.src)

    def _settle_send(self, src: int) -> None:
        """One of ``src``'s in-flight messages reached its fate."""
        if self._in_flight is None:
            return
        self._in_flight[src] -= 1
        if self._in_flight[src] <= 0 and self._engine is not None:
            self._engine.on_sends_settled(src)

    def _note_progress(self) -> None:
        self._progress += 1

    def _note_consumed(self, msg: Message) -> None:
        """A program consumed ``msg`` (localized-recovery log pruning)."""
        if (
            self._recovery_manager is not None
            and self._wire is not None
            and msg.channel_seq is not None
        ):
            self._wire.note_consumed(msg.src, msg.dest, msg.channel_seq)

    def _note_checkpoint(self, rank: int) -> None:
        """``rank`` checkpointed: snapshot its machine-level watermarks.

        Under localized recovery a respawn rewinds the rank to exactly
        this point — transport seqs (so its re-sends are suppressed at
        survivors) and collective counters (so re-entered collectives
        re-validate against the same positions).
        """
        manager = self._recovery_manager
        if manager is None:
            return
        if self._wire is not None:
            self._wire.note_checkpoint(rank)
        manager.note_checkpoint(
            rank,
            collective_seq=self._contexts[rank]._collective_seq,
            collective_entries=len(self._collective_log[rank])
            if self._collective_log
            else 0,
        )

    def _reset_pe_for_respawn(
        self, rank: int, collective_seq: int, collective_entries: int
    ) -> None:
        """Rewind ``rank``'s context to its last checkpoint (recovery).

        The inbox is cleared (the transport's send logs re-deliver
        everything unconsumed), block states reset, and the collective
        counters rewind so the re-execution's collective entries land
        at the positions the protocol verifier already validated for
        the peers.  In-flight counters are left untouched: stale wire
        copies still settle through the seq-dedup path.
        """
        pe = self._contexts[rank]
        pe._inbox.clear()
        pe._blocked_tag = None
        pe._blocked_sends = False
        pe._phase_stack.clear()
        pe._collective_seq = collective_seq
        if self._collective_log:
            del self._collective_log[rank][collective_entries:]

    def _note_collective_entry(self, rank: int, seq: int, label: str) -> None:
        """Record and cross-validate one PE's collective entry.

        The per-PE sequence counter is monotone, so the n-th entry of
        every PE must name the same collective; the first PE to disagree
        with an already-recorded peer trips the check — *before* the
        divergence has a chance to manifest as a deadlock or a silent
        mis-reduction.
        """
        if not self.protocol_check:
            return
        log = self._collective_log[rank]
        log.append(label)
        idx = seq - 1
        disagree = {
            other: olog[idx]
            for other, olog in enumerate(self._collective_log)
            if other != rank and len(olog) > idx and olog[idx] != label
        }
        if disagree:
            details = ", ".join(
                f"rank {r} entered '{lbl}'" for r, lbl in sorted(disagree.items())
            )
            raise ProtocolError(
                f"collective-order divergence at collective #{seq}: "
                f"rank {rank} entered '{label}' but {details}; all PEs must "
                f"enter the same collectives in the same order"
            )

    def _deadlock_diagnostic(self, live: set[int], reason: str) -> str:
        """Per-PE blocked tags and pending-message census for the error."""
        lines = [f"{reason}; waiting PEs: {sorted(live)}"]
        total_pending = 0
        for rank in sorted(live):
            ctx = self._contexts[rank]
            census = {tag: len(q) for tag, q in ctx._inbox.items() if q}
            total_pending += sum(census.values())
            if ctx._blocked_tag is not None:
                blocked = f"blocked on recv(tag={ctx._blocked_tag!r})"
            elif ctx._blocked_sends:
                inflight = self._in_flight[rank] if self._in_flight else 0
                blocked = f"blocked in sync_sends ({inflight} send(s) in flight)"
            else:
                blocked = "idle (no blocking recv recorded)"
            lines.append(f"  rank {rank}: {blocked}; pending inbox: {census or '{}'}")
        for rank in sorted(set(range(self.num_pes)) - live):
            ctx = self._contexts[rank]
            census = {tag: len(q) for tag, q in ctx._inbox.items() if q}
            if census:
                total_pending += sum(census.values())
                lines.append(
                    f"  rank {rank}: finished but holds undelivered messages: {census}"
                )
        lines.append(f"  {total_pending} message(s) pending machine-wide")
        return "\n".join(lines)

    def _check_teardown(self) -> None:
        """Protocol-check epilogue: conservation + matched collectives."""
        entry_counts = {rank: len(log) for rank, log in enumerate(self._collective_log)}
        if len(set(entry_counts.values())) > 1:
            details = ", ".join(
                f"rank {r}: {n} collectives" for r, n in sorted(entry_counts.items())
            )
            raise ProtocolError(
                f"collective-entry counts diverge at teardown ({details}); "
                f"some PE skipped or repeated a collective"
            )
        leftovers = {
            rank: {tag: len(q) for tag, q in ctx._inbox.items() if q}
            for rank, ctx in enumerate(self._contexts)
        }
        leftovers = {rank: census for rank, census in leftovers.items() if census}
        leftover_total = sum(sum(c.values()) for c in leftovers.values())
        # Over the lossy transport, injected duplicates may legitimately
        # sit unconsumed at teardown; anything beyond that allowance is
        # still a program bug.  Reliable and direct transports preserve
        # exact application-level conservation.
        allowed = 0
        if self._wire is not None and not self._wire.is_reliable:
            allowed = self._wire.wire_duplicates
        if leftover_total > allowed:
            sent = sum(c.metrics.messages_sent for c in self._contexts)
            received = sum(c.metrics.messages_received for c in self._contexts)
            details = "; ".join(
                f"rank {r}: {census}" for r, census in sorted(leftovers.items())
            )
            raise ProtocolError(
                f"message conservation violated at teardown: {sent} sent, "
                f"{received} received, {leftover_total} undelivered "
                f"({allowed} attributable to injected duplicates) — {details}"
            )

    # Public API ---------------------------------------------------------
    def run(
        self,
        program: Callable[..., Generator[None, None, Any]],
        /,
        *args,
        **kwargs,
    ) -> MachineResult:
        """Execute ``program(ctx, *args, **kwargs)`` on every PE.

        ``args``/``kwargs`` may contain per-PE sequences only if the
        program indexes them by ``ctx.rank`` itself; the machine passes
        them through verbatim.

        Raises
        ------
        DeadlockError
            If every live PE is blocked and nothing in the machine can
            wake one (detected exactly by the event engine: no runnable
            PE, empty event queue), or if the livelock guard trips on
            PEs that spin on bare ``yield`` without ever progressing.
        PECrashError
            If the fault plan crash-stops a PE; catch it with
            :func:`repro.core.checkpoint.run_with_recovery` to restart
            from the last stable checkpoint.
        """
        plan = self.fault_plan
        self._progress = 0
        self._contexts = [
            PEContext(rank, self.num_pes, self.spec, self) for rank in range(self.num_pes)
        ]
        if plan is not None:
            for ctx in self._contexts:
                ctx._slowdown = plan.slowdown(ctx.rank)  # noqa: R13 -- the machine owns its contexts
        self.network.bind(self.spec, self.num_pes)
        if self.recovery == "localized":
            from ..faults.recovery import RecoveryManager

            # Before the transport: the wire enables send logging only
            # when a recovery manager is present at construction.
            self._recovery_manager = RecoveryManager(self, self.recovery_config)
        else:
            self._recovery_manager = None
        self._spawn = lambda rank: program(self._contexts[rank], *args, **kwargs)
        if self.transport == "reliable":
            self._wire = ReliableTransport(self, plan, self.reliable_config)
        elif self.transport == "lossy":
            self._wire = LossyTransport(self, plan)
        else:
            self._wire = None
        self._in_flight = (
            [0] * self.num_pes if self.network.model == "contended" else None
        )
        if self.checkpoint_store is not None:
            self.checkpoint_store.begin_run()
        self._collective_log = [[] for _ in range(self.num_pes)]
        gens = [program(ctx, *args, **kwargs) for ctx in self._contexts]
        values: list[Any] = [None] * self.num_pes
        live = set(range(self.num_pes))

        engine_stats: EngineStats | None = None
        if self.scheduler == "event":
            engine = SimEngine(self)
            self._engine = engine
            try:
                engine.run(gens, live, values)
            finally:
                self._engine = None
            engine_stats = engine.stats
        else:
            self._run_round_robin(gens, live, values)
        if self.protocol_check:
            self._check_teardown()
        return MachineResult(
            values=values,
            metrics=RunMetrics(per_pe=[c.metrics for c in self._contexts]),
            events=self._progress,
            engine=engine_stats,
            network=self.network.stats() if self.network.model == "contended" else None,
            recovery=(
                self._recovery_manager.report
                if self._recovery_manager is not None
                else None
            ),
        )

    def _run_round_robin(self, gens, live: set[int], values: list[Any]) -> None:
        """The legacy strict polling scheduler (``scheduler="round-robin"``).

        Every round resumes every live PE — including PEs blocked on an
        empty inbox, whose resumption is a pure no-op.  Kept as the
        reference the event engine's compat disciplines are verified
        against (``tests/test_sim.py``) and as the slow side of the
        scale benchmark; new code should use the default scheduler.
        """
        plan = self.fault_plan
        idle_rounds = 0
        while live:
            before = self._progress
            finished: list[int] = []
            for rank in sorted(live):
                if plan is not None and plan.crash_due(rank, self._progress):
                    raise PECrashError(rank, self._progress)
                try:
                    next(gens[rank])
                except StopIteration as stop:
                    values[rank] = stop.value
                    finished.append(rank)
                    self._note_progress()
            live.difference_update(finished)
            if self._progress == before:
                # A courtesy ``yield`` produces one idle round; genuine
                # deadlock (everyone polling an empty inbox) produces
                # idle rounds forever.  A small grace period separates
                # the two without masking real livelocks.  (The event
                # scheduler needs no grace period: it detects the empty
                # event queue exactly.)
                idle_rounds += 1
                if live and idle_rounds >= 5:
                    raise DeadlockError(
                        self._deadlock_diagnostic(
                            live,
                            f"no progress in {idle_rounds} consecutive rounds",
                        )
                    )
            else:
                idle_rounds = 0
