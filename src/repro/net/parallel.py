"""Process-parallel backend: run the SPMD programs on real OS processes.

The simulated :class:`~repro.net.machine.Machine` is the *reference*
backend — deterministic, metric-complete, cost-modelled.  This module
provides a second backend with the same contract that actually
executes every PE in its own OS process, exchanging real pickled
messages over pipes: the execution path a user with a multicore box
(or, with an MPI transport, a cluster) would adopt.

Design
------
* Programs are unchanged: the same generator SPMD functions run on
  both backends.  ``yield`` simply returns control to the per-worker
  driver loop (and backs off briefly after repeated empty polls).
* Transport is one ``multiprocessing.SimpleQueue`` per PE.  Its
  ``put`` writes synchronously under a cross-process lock, so the
  happens-before reasoning of the termination barriers carries over
  from the simulation: when a dissemination barrier completes, every
  pre-barrier ``put`` has fully reached the destination pipe and a
  non-blocking drain is complete.
* Hot-path payloads are :class:`~repro.net.frames.RecordFrame`
  batches, so a flushed buffer pickles as four contiguous arrays
  rather than one dataclass per record (see ``docs/PERFORMANCE.md``).
* Each worker receives only *its own* local graph view (pickled once),
  exactly the distributed-memory data layout; the full
  :class:`~repro.graphs.distributed.DistGraph` never leaves the
  driver.
* Metrics: per-PE counters (messages, words, charged ops, modelled
  clock) are maintained identically and shipped back with the result.
  Modelled clocks may differ from the simulator in the last few
  per-message α charges because real delivery interleavings differ;
  counts, volumes and results are identical.

Limitations (documented, by design): Python's process start-up and
pickling overhead make this backend slower than the simulator for the
small instances of the test suite — its purpose is fidelity (real
parallel execution of the real message protocol), not speed records.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import Any, Callable

from ..graphs.distributed import DistGraph, LocalGraph
from .costmodel import DEFAULT_SPEC, MachineSpec
from .machine import MachineResult, OutOfMemoryError, PEContext
from .metrics import PEMetrics, RunMetrics

__all__ = ["ProcessMachine", "RemoteDist"]


class RemoteDist:
    """A worker-side stand-in for :class:`DistGraph` holding one view.

    Programs only ever call ``dist.view(ctx.rank)`` plus the global
    size accessors, so shipping a single view preserves the
    distributed-memory discipline *physically*: a worker process has
    no way to peek at other PEs' data.
    """

    def __init__(self, view: LocalGraph, num_vertices: int, num_edges: int, name: str):
        self._view = view
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.name = name
        self.partition = view.partition

    @property
    def num_pes(self) -> int:
        """Number of PEs in the world."""
        return self.partition.num_pes

    def view(self, rank: int) -> LocalGraph:
        """The local view — only this worker's own rank is available."""
        if rank != self._view.rank:
            raise KeyError(
                f"worker {self._view.rank} cannot access PE {rank}'s data"
            )
        return self._view


class _QueueBus:
    """Machine shim used by :class:`_WorkerContext` for send delivery."""

    def __init__(self, queues):
        self._queues = queues

    def _deliver(self, msg) -> None:
        # SimpleQueue.put serializes and writes under a lock: once it
        # returns, the message is fully in the destination pipe.
        self._queues[msg.dest].put(msg)

    def _note_progress(self) -> None:  # pragma: no cover - trivial
        pass


class _WorkerContext(PEContext):
    """PE context whose transport is real queues instead of the scheduler."""

    def __init__(self, rank: int, num_pes: int, spec: MachineSpec, queues):
        super().__init__(rank, num_pes, spec, _QueueBus(queues))
        self._own_queue = queues[rank]
        self._idle_polls = 0

    def _pump(self) -> None:
        """Move everything already in the OS pipe into the tag buckets."""
        while not self._own_queue.empty():
            msg = self._own_queue.get()
            self._inbox[msg.tag].append(msg)

    def try_recv(self, tag):
        """Non-blocking receive over the OS pipe (see PEContext)."""
        self._pump()
        msg = super().try_recv(tag)
        if msg is not None:
            self._idle_polls = 0
        return msg

    def pending(self, tag) -> int:
        """Queued message count for ``tag`` after pumping the pipe."""
        self._pump()
        return super().pending(tag)

    def backoff(self) -> None:
        """Sleep briefly after repeated empty polls (driver loop hook)."""
        self._idle_polls += 1
        if self._idle_polls > 64:
            time.sleep(0.0005)


def _worker(
    rank: int,
    num_pes: int,
    spec: MachineSpec,
    queues,
    result_queue,
    program: Callable,
    payload: tuple,
    kwargs: dict,
) -> None:
    """Worker process main: drive the generator to completion."""
    ctx = _WorkerContext(rank, num_pes, spec, queues)
    args = tuple(
        RemoteDist(*a.__getstate__()) if isinstance(a, _DistHandle) else a
        for a in payload
    )
    try:
        gen = program(ctx, *args, **kwargs)
        try:
            while True:
                next(gen)
                ctx.backoff()
        except StopIteration as stop:
            result_queue.put((rank, "ok", stop.value, ctx.metrics))
    except OutOfMemoryError as exc:
        result_queue.put((rank, "oom", str(exc), ctx.metrics))
    except Exception as exc:  # pragma: no cover - surfaced to the driver
        import traceback

        result_queue.put((rank, "error", traceback.format_exc(), ctx.metrics))


class _DistHandle:
    """Pickle-efficient courier for one PE's slice of a DistGraph."""

    def __init__(self, view: LocalGraph, num_vertices: int, num_edges: int, name: str):
        self._state = (view, num_vertices, num_edges, name)

    def __getstate__(self):
        return self._state

    def __setstate__(self, state):
        self._state = state


class ProcessMachine:
    """Run SPMD programs on real processes (one per PE).

    Drop-in alternative to :class:`~repro.net.machine.Machine` for
    programs whose per-PE arguments are a :class:`DistGraph` plus
    picklable configuration::

        result = ProcessMachine(8).run(counting_program, dist, config)

    ``DistGraph`` arguments are sliced so each worker receives only its
    own view.  Results and metrics come back exactly like the
    simulator's :class:`MachineResult`.
    """

    def __init__(self, num_pes: int, spec: MachineSpec = DEFAULT_SPEC, *, timeout: float = 300.0):
        if num_pes < 1:
            raise ValueError("need at least one PE")
        self.num_pes = num_pes
        self.spec = spec
        self.timeout = timeout

    def run(self, program: Callable, /, *args, **kwargs) -> MachineResult:
        """Execute ``program(ctx, *args, **kwargs)`` on every PE.

        Raises
        ------
        OutOfMemoryError
            If any PE exceeded its memory budget (mirroring the
            simulator's behaviour for the TriC baseline).
        RuntimeError
            If a worker died with an unexpected exception or the run
            timed out.
        """
        ctx_method = mp.get_context("fork" if os.name == "posix" else "spawn")
        queues = [ctx_method.SimpleQueue() for _ in range(self.num_pes)]
        result_queue = ctx_method.SimpleQueue()
        procs = []
        for rank in range(self.num_pes):
            payload = tuple(
                _DistHandle(a.view(rank), a.num_vertices, a.num_edges, a.name)
                if isinstance(a, DistGraph)
                else a
                for a in args
            )
            proc = ctx_method.Process(
                target=_worker,
                args=(rank, self.num_pes, self.spec, queues, result_queue,
                      program, payload, kwargs),
            )
            proc.start()
            procs.append(proc)

        values: list[Any] = [None] * self.num_pes
        metrics: list[PEMetrics] = [PEMetrics(rank=r) for r in range(self.num_pes)]
        failure: tuple[int, str, str] | None = None
        deadline = time.monotonic() + self.timeout
        try:
            collected = 0
            while collected < self.num_pes and failure is None:
                while result_queue.empty():
                    if time.monotonic() > deadline:
                        raise RuntimeError("parallel run timed out")
                    time.sleep(0.001)
                rank, status, value, pe_metrics = result_queue.get()
                metrics[rank] = pe_metrics
                collected += 1
                if status == "ok":
                    values[rank] = value
                else:
                    # A failed PE leaves its peers blocked on messages
                    # that will never arrive; tear the world down.
                    failure = (rank, status, value)
        finally:
            for proc in procs:
                if failure is not None and proc.is_alive():
                    proc.terminate()
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                    proc.join()
        if failure is not None:
            rank, status, detail = failure
            if status == "oom":
                raise OutOfMemoryError(detail)
            raise RuntimeError(f"PE {rank} failed:\n{detail}")
        return MachineResult(values=values, metrics=RunMetrics(per_pe=metrics))
