"""Process-parallel backend: run the SPMD programs on real OS processes.

The simulated :class:`~repro.net.machine.Machine` is the *reference*
backend — deterministic, metric-complete, cost-modelled.  This module
provides a second backend with the same contract that actually
executes every PE in its own OS process, exchanging real pickled
messages over pipes: the execution path a user with a multicore box
(or, with an MPI transport, a cluster) would adopt.

Design
------
* Programs are unchanged: the same generator SPMD functions run on
  both backends.  ``yield`` simply returns control to the per-worker
  driver loop (and backs off briefly after repeated empty polls).
* Control transport is one framed pipe per PE
  (:class:`_PipeChannel`).  A send returns only once the whole frame
  is in the destination pipe — under a cross-process lock, so frames
  never interleave — which preserves the happens-before reasoning of
  the termination barriers: when a dissemination barrier completes,
  every pre-barrier send has fully reached the destination pipe and a
  non-blocking drain is complete.  Unlike a blocking
  ``SimpleQueue.put``, a sender waiting for pipe space keeps
  *draining its own inbox*, so the classic cyclic-write deadlock (two
  PEs blocked mid-write into each other's full pipes, neither able to
  read) cannot occur at any payload size.
* Hot-path payloads travel **zero-copy** through a
  :class:`~repro.net.shm.SharedFramePool`: a flushed
  :class:`~repro.net.frames.RecordFrame`'s arrays are placed in a
  refcounted ``multiprocessing.shared_memory`` slot and only a tiny
  ``(slot, offsets, meta)`` descriptor crosses the pipe — no payload
  pickling on the send side, and the receive side reconstructs the
  arrays as read-only views into the slot (no copy-out; the slot is
  released when the receiver drops the payload).  Broadcast payloads
  sent to several destinations fill one slot once and fan out by
  refcount.  When the pool is exhausted (or a payload exceeds the
  slot size) the message *spills* to the legacy pickled path,
  observably identical and merely slower; ``REPRO_SHM_FRAMES=0`` or
  ``ProcessMachine(..., shm=False)`` turns the pool off entirely.
  Per-PE ``shm_frames`` / ``shm_spills`` / ``bytes_moved`` counters
  report what the transport actually did (see ``docs/PERFORMANCE.md``).
* Each worker receives only *its own* local graph view, exactly the
  distributed-memory data layout; the full
  :class:`~repro.graphs.distributed.DistGraph` never leaves the
  driver.  With the pool enabled each view is *published* once into a
  read-only shared segment and workers map it zero-copy.
* Metrics: per-PE counters (messages, words, charged ops, modelled
  clock) are maintained identically and shipped back with the result.
  Modelled clocks may differ from the simulator in the last few
  per-message α charges because real delivery interleavings differ;
  counts, volumes and results are identical — the simulated accounting
  is computed at ``ctx.send`` time, *before* the transport choice, so
  shm and pickled runs are bit-identical in every simulated counter
  (pinned by ``tests/test_equivalence.py``).
* The driver owns every shared-memory segment and unlinks them all in
  a ``finally`` block, so a crashing worker cannot leak ``/dev/shm``
  entries.

Limitations (documented, by design): Python's process start-up
overhead still makes this backend slower than the simulator for the
tiny instances of the test suite — its purpose is fidelity (real
parallel execution of the real message protocol) and real-graph
throughput, not micro-instance speed records.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import pickle
import time
import weakref
from typing import Any, Callable

from ..graphs.distributed import DistGraph, LocalGraph
from .costmodel import DEFAULT_SPEC, MachineSpec
from .machine import MachineResult, OutOfMemoryError, PEContext
from .metrics import PEMetrics, RunMetrics
from .shm import (
    PoolHandle,
    SharedFramePool,
    ShmObjectHandle,
    ShmPayload,
    attach_object,
    publish_object,
    shm_supported,
)

__all__ = ["ProcessMachine", "RemoteDist"]

#: Environment defaults for the shared-memory frame pool (overridable
#: per-machine via the ``ProcessMachine`` keyword arguments).
ENV_SHM = "REPRO_SHM_FRAMES"
ENV_SHM_SLOTS = "REPRO_SHM_SLOTS"
ENV_SHM_SLOT_BYTES = "REPRO_SHM_SLOT_BYTES"

#: Slots are virtual address space until touched (``/dev/shm`` is
#: sparse), so the defaults are sized for paper-scale frames rather
#: than for the tiny test instances: 256 slots × 16 MiB ≈ 4 GiB of
#: *address space*, of which only bytes actually framed are committed.
#: Zero-copy decode keeps a slot live for as long as the receiver
#: holds the payload, so the slot count bounds the number of frames
#: *alive* across the machine, not just in flight.
DEFAULT_SHM_SLOTS = 256
DEFAULT_SHM_SLOT_BYTES = 1 << 24  # 16 MiB per slot
#: Payloads with less array data than this pickle faster than a slot
#: round-trip; they stay on the legacy path (not counted as spills).
MIN_SHM_BYTES = 512


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name, "").strip().lower()
    if not raw:
        return default
    return raw not in ("0", "false", "no", "off")


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


class RemoteDist:
    """A worker-side stand-in for :class:`DistGraph` holding one view.

    Programs only ever call ``dist.view(ctx.rank)`` plus the global
    size accessors, so shipping a single view preserves the
    distributed-memory discipline *physically*: a worker process has
    no way to peek at other PEs' data.
    """

    def __init__(self, view: LocalGraph, num_vertices: int, num_edges: int, name: str):
        self._view = view
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.name = name
        self.partition = view.partition

    @property
    def num_pes(self) -> int:
        """Number of PEs in the world."""
        return self.partition.num_pes

    def view(self, rank: int) -> LocalGraph:
        """The local view — only this worker's own rank is available."""
        if rank != self._view.rank:
            raise KeyError(
                f"worker {self._view.rank} cannot access PE {rank}'s data"
            )
        return self._view


class _PipeChannel:
    """One PE's inbound message pipe with deadlock-free framed writes.

    Frames are ``8-byte big-endian length + payload`` written to a
    non-blocking OS pipe under a cross-process lock (so concurrent
    senders never interleave a frame).  The deadlock-freedom argument:
    a sender that cannot make progress — pipe full, or the frame lock
    held by another sender — repeatedly calls its ``pump`` callback,
    which drains its *own* inbound pipe into the context's tag
    buckets.  Every blocked writer is therefore also a running reader,
    so any cycle of full pipes resolves: some pipe in the cycle has a
    pumping reader, its writer completes, and progress propagates.
    ``send_bytes`` still returns only once the frame is fully inside
    the destination pipe, preserving the synchronous-put
    happens-before property the termination barriers rely on.

    POSIX-only (raw ``os.read``/``os.write`` on pipe descriptors);
    other platforms use :class:`_QueueChannel`.
    """

    def __init__(self, mpctx):
        self._rconn, self._wconn = mpctx.Pipe(duplex=False)
        self._wlock = mpctx.Lock()
        self._rbuf = bytearray()
        try:  # Linux: widen the pipe so big frames need fewer trips
            import fcntl

            fcntl.fcntl(self._wconn.fileno(), 1031, 1 << 20)  # F_SETPIPE_SZ
        except (ImportError, OSError):  # pragma: no cover - platform detail
            pass

    def send_bytes(self, data: bytes, pump: Callable[[], None]) -> None:
        """Write one frame, draining our own inbox while blocked."""
        fd = self._wconn.fileno()
        frame = memoryview(len(data).to_bytes(8, "big") + data)
        while not self._wlock.acquire(timeout=0.001):
            pump()
        try:
            os.set_blocking(fd, False)
            while frame.nbytes:
                try:
                    frame = frame[os.write(fd, frame) :]
                except BlockingIOError:
                    pump()
                    time.sleep(0.0002)
        finally:
            self._wlock.release()

    def drain(self) -> list[bytes]:
        """All complete frames currently in the pipe (non-blocking)."""
        fd = self._rconn.fileno()
        os.set_blocking(fd, False)
        while True:
            try:
                chunk = os.read(fd, 1 << 20)
            except BlockingIOError:
                break
            if not chunk:  # pragma: no cover - peer closed
                break
            self._rbuf += chunk
        frames = []
        buf = self._rbuf
        while len(buf) >= 8:
            n = int.from_bytes(buf[:8], "big")
            if len(buf) < 8 + n:
                break  # partial frame: wait for the rest
            frames.append(bytes(buf[8 : 8 + n]))
            del buf[: 8 + n]
        return frames


class _QueueChannel:
    """Portability fallback transport (one ``SimpleQueue`` per PE).

    Used where raw pipe descriptors are unavailable (Windows).  Keeps
    the historical blocking-put behaviour — and with it the documented
    cyclic-write deadlock risk for frames beyond the pipe capacity.
    """

    def __init__(self, mpctx):
        self._q = mpctx.SimpleQueue()

    def send_bytes(self, data: bytes, pump: Callable[[], None]) -> None:
        self._q.put(data)

    def drain(self) -> list[bytes]:
        frames = []
        while not self._q.empty():
            frames.append(self._q.get())
        return frames


def _make_channels(mpctx, num_pes: int):
    cls = _PipeChannel if os.name == "posix" else _QueueChannel
    return [cls(mpctx) for _ in range(num_pes)]


class _QueueBus:
    """Machine shim used by :class:`_WorkerContext` for send delivery.

    With a pool attached, every outgoing payload is offered to
    :meth:`SharedFramePool.encode` first; on success the queue carries
    a :class:`ShmPayload` descriptor instead of the payload.  All
    simulated accounting happened in ``PEContext.send`` before this
    point, so the routing decision is invisible to the cost model.

    Broadcast payloads are deduplicated: when the *same object* is
    sent to several destinations back-to-back (the collectives do
    exactly this), the slot is filled once and every further delivery
    just takes another reference on it — ``p - 1`` receivers share one
    physical copy.  The cache holds its own slot reference (so a hit
    can never race a concurrent recycle) and is evicted whenever a
    different payload is encoded.  Corollary of zero-copy messaging:
    payload objects must not be mutated after being sent.
    """

    def __init__(self, channels, pool: SharedFramePool | None = None):
        self._channels = channels
        self._pool = pool
        #: Sender's PEMetrics and inbox pump, wired in by
        #: _WorkerContext (transport counters only — never simulated
        #: quantities; the pump keeps blocked sends deadlock-free).
        self.metrics: PEMetrics | None = None
        self.pump: Callable[[], None] = lambda: None
        self._cache_ref: weakref.ref | None = None
        self._cache_desc: ShmPayload | None = None

    def _evict_cache(self) -> None:
        if self._cache_desc is not None:
            self._pool.release(self._cache_desc.slot)
        self._cache_ref = None
        self._cache_desc = None

    def _encode(self, payload) -> tuple[ShmPayload | None, int, bool]:
        """Pool-encode ``payload``, deduplicating repeated sends."""
        # The ``payload is not None`` guard is load-bearing: a dead
        # weakref *also* returns None, and control messages carry None
        # payloads — without it, a garbage-collected cache entry would
        # hand its stale descriptor to the next control message.
        if (
            payload is not None
            and self._cache_ref is not None
            and self._cache_ref() is payload
        ):
            descriptor = self._cache_desc
            self._pool.acquire(descriptor.slot)  # this delivery's reference
            return descriptor, 0, False  # no new physical bytes moved
        self._evict_cache()  # before encode: may free the very slot it needs
        descriptor, nbytes, spilled = self._pool.encode(
            payload, min_bytes=MIN_SHM_BYTES
        )
        if descriptor is not None:
            try:
                ref = weakref.ref(payload)
            except TypeError:  # pragma: no cover - non-weakrefable payload
                ref = None
            if ref is not None:
                self._pool.acquire(descriptor.slot)  # the cache's reference
                self._cache_ref, self._cache_desc = ref, descriptor
        return descriptor, nbytes, spilled

    def _deliver(self, msg) -> None:
        # send_bytes returns only once the frame is fully in the
        # destination pipe (the synchronous-put happens-before the
        # barriers need), pumping our own inbox while blocked.
        if self._pool is not None:
            descriptor, nbytes, spilled = self._encode(msg.payload)
            if self.metrics is not None:
                self.metrics.bytes_moved += nbytes
                if descriptor is not None:
                    self.metrics.shm_frames += 1
                elif spilled:
                    self.metrics.shm_spills += 1
            if descriptor is not None:
                msg = dataclasses.replace(msg, payload=descriptor)
        data = pickle.dumps(msg, protocol=5)
        self._channels[msg.dest].send_bytes(data, self.pump)

    def _note_progress(self) -> None:  # pragma: no cover - trivial
        pass


class _WorkerContext(PEContext):
    """PE context whose transport is real queues instead of the scheduler."""

    def __init__(
        self,
        rank: int,
        num_pes: int,
        spec: MachineSpec,
        channels,
        pool: SharedFramePool | None = None,
    ):
        bus = _QueueBus(channels, pool)
        super().__init__(rank, num_pes, spec, bus)
        bus.metrics = self.metrics
        bus.pump = self._pump
        self._pool = pool
        self._own_channel = channels[rank]
        self._idle_polls = 0

    def _pump(self) -> None:
        """Move everything already in the OS pipe into the tag buckets."""
        for data in self._own_channel.drain():
            msg = pickle.loads(data)
            if isinstance(msg.payload, ShmPayload):
                msg = dataclasses.replace(
                    msg, payload=self._pool.decode(msg.payload)
                )
            self._inbox[msg.tag].append(msg)

    def try_recv(self, tag):
        """Non-blocking receive over the OS pipe (see PEContext)."""
        self._pump()
        msg = super().try_recv(tag)
        if msg is not None:
            self._idle_polls = 0
        return msg

    def pending(self, tag) -> int:
        """Queued message count for ``tag`` after pumping the pipe."""
        self._pump()
        return super().pending(tag)

    def backoff(self) -> None:
        """Sleep briefly after repeated empty polls (driver loop hook)."""
        self._idle_polls += 1
        if self._idle_polls > 64:
            time.sleep(0.0005)


def _worker(
    rank: int,
    num_pes: int,
    spec: MachineSpec,
    channels,
    result_queue,
    program: Callable,
    payload: tuple,
    kwargs: dict,
    pool_handle: PoolHandle | None = None,
    pool_lock=None,
    foreign: bool = False,
) -> None:
    """Worker process main: drive the generator to completion.

    ``foreign`` says whether this worker runs its *own* resource
    tracker (spawn start method) rather than inheriting the driver's
    (fork) — attached driver-owned segments must then be untracked.
    """
    pool = (
        SharedFramePool.attach(pool_handle, pool_lock, untrack=foreign)
        if pool_handle is not None
        else None
    )
    ctx = _WorkerContext(rank, num_pes, spec, channels, pool)
    args = tuple(_resolve_arg(a, foreign) for a in payload)
    try:
        gen = program(ctx, *args, **kwargs)
        try:
            while True:
                next(gen)
                ctx.backoff()
        except StopIteration as stop:
            result_queue.put((rank, "ok", stop.value, ctx.metrics))
    except OutOfMemoryError as exc:
        result_queue.put((rank, "oom", str(exc), ctx.metrics))
    except Exception:  # pragma: no cover - surfaced to the driver
        import traceback

        result_queue.put((rank, "error", traceback.format_exc(), ctx.metrics))
    finally:
        if pool is not None:
            pool.close()


class _DistHandle:
    """Pickle-efficient courier for one PE's slice of a DistGraph."""

    def __init__(self, view: LocalGraph, num_vertices: int, num_edges: int, name: str):
        self._state = (view, num_vertices, num_edges, name)

    def __getstate__(self):
        return self._state

    def __setstate__(self, state):
        self._state = state


class _ShmDistHandle:
    """Courier for a graph view published into a shared-memory segment."""

    def __init__(self, handle: ShmObjectHandle):
        self.handle = handle


def _foreign_tracker(start_method: str) -> bool:
    """Whether workers started with ``start_method`` run their own
    resource tracker.

    CPython's POSIX launchers — fork, spawn *and* forkserver — hand the
    driver's resource-tracker fd to the child, so the tracker is shared
    under every POSIX start method and unregistering a driver-owned
    segment from a worker would clobber the driver's registration
    (verified empirically: untracking under POSIX spawn produces
    tracker ``KeyError``s at driver unlink time).  Only non-POSIX
    platforms give workers a tracker of their own.
    """
    del start_method  # POSIX fd inheritance holds for every method
    return os.name != "posix"


def _default_start_method() -> str:
    return "fork" if os.name == "posix" else "spawn"


def _resolve_arg(a, foreign: bool = False):
    """Materialize a worker-side argument from its courier, if any."""
    if isinstance(a, _DistHandle):
        return RemoteDist(*a.__getstate__())
    if isinstance(a, _ShmDistHandle):
        state, seg = attach_object(a.handle, untrack=foreign, pin=True)
        remote = RemoteDist(*state)
        # The view's arrays alias the segment: keep it mapped for the
        # argument's lifetime.
        remote._segment = seg
        return remote
    return a


class ProcessMachine:
    """Run SPMD programs on real processes (one per PE).

    Drop-in alternative to :class:`~repro.net.machine.Machine` for
    programs whose per-PE arguments are a :class:`DistGraph` plus
    picklable configuration::

        result = ProcessMachine(8).run(counting_program, dist, config)

    ``DistGraph`` arguments are sliced so each worker receives only its
    own view.  Results and metrics come back exactly like the
    simulator's :class:`MachineResult`.

    Shared-memory transport knobs (keyword arguments override the
    environment; the environment overrides the defaults):

    ``shm`` / ``REPRO_SHM_FRAMES``
        Route large payloads through the zero-copy pool (default on
        where ``multiprocessing.shared_memory`` works).
    ``shm_slots`` / ``REPRO_SHM_SLOTS``
        Number of pool slots (default 64).  A full pool never blocks —
        senders spill to the pickled path and count a ``shm_spills``.
    ``shm_slot_bytes`` / ``REPRO_SHM_SLOT_BYTES``
        Bytes per slot (default 4 MiB); payloads above this always
        spill.
    ``start_method``
        ``multiprocessing`` start method for the workers: ``"fork"``
        (default on POSIX) or ``"spawn"`` (default — and only option —
        elsewhere; also how CI exercises the Windows/macOS code path
        on Linux).  Spawn workers re-import the package, so anything
        propagated through the environment (``REPRO_KERNEL_BACKEND``,
        the warn-once fallback flag) must survive that round trip —
        pinned by ``tests/test_parallel_backend.py``.
    """

    def __init__(
        self,
        num_pes: int,
        spec: MachineSpec = DEFAULT_SPEC,
        *,
        timeout: float = 300.0,
        shm: bool | None = None,
        shm_slots: int | None = None,
        shm_slot_bytes: int | None = None,
        start_method: str | None = None,
    ):
        if num_pes < 1:
            raise ValueError("need at least one PE")
        if start_method is not None and start_method not in mp.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} not available here "
                f"(have: {mp.get_all_start_methods()})"
            )
        self.num_pes = num_pes
        self.spec = spec
        self.timeout = timeout
        self.start_method = start_method or _default_start_method()
        if shm is None:
            shm = _env_flag(ENV_SHM, True)
        self.shm = bool(shm) and shm_supported()
        self.shm_slots = (
            shm_slots if shm_slots is not None else _env_int(ENV_SHM_SLOTS, DEFAULT_SHM_SLOTS)
        )
        self.shm_slot_bytes = (
            shm_slot_bytes
            if shm_slot_bytes is not None
            else _env_int(ENV_SHM_SLOT_BYTES, DEFAULT_SHM_SLOT_BYTES)
        )

    def run(self, program: Callable, /, *args, **kwargs) -> MachineResult:
        """Execute ``program(ctx, *args, **kwargs)`` on every PE.

        Raises
        ------
        OutOfMemoryError
            If any PE exceeded its memory budget (mirroring the
            simulator's behaviour for the TriC baseline).
        RuntimeError
            If a worker died with an unexpected exception or the run
            timed out.
        """
        # Resolve the kernel backend in the driver before any worker
        # starts: an unavailable selection (e.g. REPRO_KERNEL_BACKEND=
        # native without a compiler) warns exactly once here, and the
        # warn-once flag reaches every worker through the environment,
        # so P workers do not repeat the warning P times.
        from ..core.backends import get_backend

        get_backend()
        ctx_method = mp.get_context(self.start_method)
        foreign = _foreign_tracker(self.start_method)
        channels = _make_channels(ctx_method, self.num_pes)
        result_queue = ctx_method.SimpleQueue()
        pool = pool_handle = pool_lock = None
        graph_segments = []
        if self.shm:
            pool_lock = ctx_method.Lock()
            pool = SharedFramePool(self.shm_slots, self.shm_slot_bytes, pool_lock)
            pool_handle = pool.handle()

        def _dist_courier(a: DistGraph, rank: int):
            state = (a.view(rank), a.num_vertices, a.num_edges, a.name)
            if pool is not None:
                published = publish_object(state)
                if published is not None:
                    handle, seg = published
                    graph_segments.append(seg)
                    return _ShmDistHandle(handle)
            return _DistHandle(*state)

        procs = []
        values: list[Any] = [None] * self.num_pes
        metrics: list[PEMetrics] = [PEMetrics(rank=r) for r in range(self.num_pes)]
        failure: tuple[int, str, str] | None = None
        deadline = time.monotonic() + self.timeout
        try:
            for rank in range(self.num_pes):
                payload = tuple(
                    _dist_courier(a, rank) if isinstance(a, DistGraph) else a
                    for a in args
                )
                proc = ctx_method.Process(
                    target=_worker,
                    args=(rank, self.num_pes, self.spec, channels, result_queue,
                          program, payload, kwargs, pool_handle, pool_lock,
                          foreign),
                )
                proc.start()
                procs.append(proc)

            collected = 0
            while collected < self.num_pes and failure is None:
                while result_queue.empty():
                    if time.monotonic() > deadline:
                        raise RuntimeError("parallel run timed out")
                    time.sleep(0.001)
                rank, status, value, pe_metrics = result_queue.get()
                metrics[rank] = pe_metrics
                collected += 1
                if status == "ok":
                    values[rank] = value
                else:
                    # A failed PE leaves its peers blocked on messages
                    # that will never arrive; tear the world down.
                    failure = (rank, status, value)
        finally:
            for proc in procs:
                if failure is not None and proc.is_alive():
                    proc.terminate()
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                    proc.join()
            # Only the driver ever creates segments, and it tears all
            # of them down here — crashed workers cannot leak /dev/shm
            # entries.
            if pool is not None:
                pool.destroy()
            for seg in graph_segments:
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        if failure is not None:
            rank, status, detail = failure
            if status == "oom":
                raise OutOfMemoryError(detail)
            raise RuntimeError(f"PE {rank} failed:\n{detail}")
        return MachineResult(values=values, metrics=RunMetrics(per_pe=metrics))
