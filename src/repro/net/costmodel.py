"""The alpha-beta communication cost model (paper Section II-B).

The paper analyzes its algorithms on a machine with full-duplex,
single-ported communication where sending a message of ``l`` machine
words costs ``alpha + beta * l`` — ``alpha`` is the startup/latency
term the aggregation and indirection techniques attack, ``beta`` the
per-word bandwidth term the contraction technique attacks.

:class:`MachineSpec` fixes the constants.  Local computation is charged
per *operation* (one merge comparison, one hash probe, ...) at
``flop_time`` seconds, so modelled running times combine computation
and communication on one axis exactly like the paper's measured times.

The spec prices the *endpoints* (sender and receiver each pay
``alpha + beta * l``).  When a message actually *arrives* is decided
by :class:`repro.sim.network.Network`: the default ``"alpha-beta"``
model makes arrival instantaneous at the sender's post-send clock
(the flat, infinitely-capacious wire this module has always assumed),
while ``"contended"`` adds per-link occupancy on top of these same
endpoint charges — see ``docs/SIMULATION.md``.

Presets
-------
``SUPERMUC``
    Approximates the paper's testbed: OmniPath with ~2 microsecond MPI
    latency and 100 Gbit/s links; local compute at an effective
    1 Gops/s per core for the scalar-equivalent merge work.
``CLOUD``
    A high-latency / low-bandwidth setting (the environment where the
    paper *expects* CETRIC to beat DITRIC, Section V-E).
``LAN``
    Commodity cluster: in between.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "SUPERMUC", "CLOUD", "LAN", "DEFAULT_SPEC"]


@dataclass(frozen=True)
class MachineSpec:
    """Constants of the simulated machine.

    Attributes
    ----------
    alpha:
        Message startup cost in seconds (charged per message at both
        endpoints — single-ported model).
    beta:
        Per-machine-word (8 byte) transmission time in seconds.
    flop_time:
        Seconds per charged local operation.
    memory_words:
        Per-PE memory budget in machine words; algorithms with static
        buffering (TriC-like) fail when they exceed it, reproducing the
        out-of-memory behaviour the paper reports.
    name:
        Preset label for reports.
    """

    alpha: float = 2.0e-6
    beta: float = 6.4e-10
    flop_time: float = 1.0e-9
    memory_words: int = 12_000_000_000 // 8  # 96 GB / node / 8 B, as on SuperMUC-NG
    name: str = "custom"

    def message_time(self, words: int) -> float:
        """Cost of one message of ``words`` machine words: ``alpha + beta*l``."""
        return self.alpha + self.beta * float(words)

    def compute_time(self, ops: int) -> float:
        """Cost of ``ops`` charged local operations."""
        return self.flop_time * float(ops)

    def scaled(self, **overrides) -> "MachineSpec":
        """A copy with selected constants replaced (ablation helper)."""
        from dataclasses import replace

        return replace(self, **overrides)


#: The paper's testbed (SuperMUC-NG thin nodes, OmniPath 100 Gbit/s).
SUPERMUC = MachineSpec(
    alpha=2.0e-6, beta=6.4e-10, flop_time=1.0e-9, name="supermuc-ng"
)

#: Commodity cluster with 10 GbE-class latency/bandwidth.
LAN = MachineSpec(alpha=2.0e-5, beta=6.4e-9, flop_time=1.0e-9, name="lan")

#: Cloud environment: high latency, modest bandwidth (Section V-E's
#: "slower network interconnects" where contraction should pay off).
CLOUD = MachineSpec(alpha=1.0e-4, beta=2.0e-8, flop_time=1.0e-9, name="cloud")

#: Default used throughout benchmarks unless stated otherwise.
DEFAULT_SPEC = SUPERMUC
