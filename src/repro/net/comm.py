"""Collective operations on the simulated machine.

Implemented purely in terms of point-to-point messages so their cost
(alpha/beta and message counts) is accounted like any application
traffic:

* :func:`barrier` — dissemination barrier, ``ceil(log2 p)`` rounds;
* :func:`reduce_to_root` / :func:`bcast` / :func:`allreduce` — binomial
  trees, valid for any ``p``;
* :func:`alltoallv_dense` — the dense irregular exchange (every PE
  sends to every other PE, empty or not: ``p - 1`` messages each),
  used by the paper for the ghost-degree exchange;
* :func:`sparse_alltoall` — the asynchronous sparse all-to-all
  ([Hoefler & Traff] style, paper Section IV-D): only real
  communication partners get messages and termination is detected with
  a barrier once all local sends are posted (the simulation equivalent
  of NBX's non-blocking barrier);
* :func:`drain` — consume every pending message of a tag class.

All collectives are generators; call them with ``yield from``.  Every
PE must enter the same collectives in the same order (the usual MPI
contract).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from .machine import PEContext
from .messages import Message, Tag

__all__ = [
    "barrier",
    "reduce_to_root",
    "bcast",
    "allreduce",
    "alltoallv_dense",
    "sparse_alltoall",
    "drain",
]

#: Words charged for a control message with no payload (the envelope).
CONTROL_WORDS = 1


def barrier(ctx: PEContext) -> Generator[None, None, None]:
    """Dissemination barrier: ``ceil(log2 p)`` rounds of shifted messages."""
    p = ctx.num_pes
    if p == 1:
        return
    cid = ctx.enter_collective("barrier")
    k = 1
    rnd = 0
    while k < p:
        tag = ("barrier", cid, rnd)
        ctx.send((ctx.rank + k) % p, tag, None, CONTROL_WORDS)
        yield from ctx.recv(tag)
        k <<= 1
        rnd += 1


def reduce_to_root(
    ctx: PEContext,
    value: Any,
    op: Callable[[Any, Any], Any],
    *,
    words: int = 1,
) -> Generator[None, None, Any]:
    """Binomial-tree reduction to PE 0; returns the result on PE 0.

    ``op`` must be commutative and associative.  ``words`` is the
    payload size of one partial value.
    """
    p = ctx.num_pes
    cid = ctx.enter_collective("reduce")
    tag = ("reduce", cid)
    acc = value
    mask = 1
    while mask < p:
        if ctx.rank & mask:
            ctx.send(ctx.rank - mask, tag, acc, words)
            return None
        src = ctx.rank + mask
        if src < p:
            msg = yield from ctx.recv(tag)
            acc = op(acc, msg.payload)
        mask <<= 1
    return acc


def bcast(
    ctx: PEContext, value: Any, *, words: int = 1
) -> Generator[None, None, Any]:
    """Binomial-tree broadcast from PE 0; returns the value everywhere."""
    p = ctx.num_pes
    cid = ctx.enter_collective("bcast")
    tag = ("bcast", cid)
    rank = ctx.rank
    if rank != 0:
        parent = rank - (1 << (rank.bit_length() - 1))
        msg = yield from ctx.recv(tag)
        assert msg.src == parent, "binomial tree violated"
        value = msg.payload
    k = rank.bit_length()  # children are rank + 2^k for 2^k > rank
    while True:
        child = rank + (1 << k)
        if child >= p:
            break
        ctx.send(child, tag, value, words)
        k += 1
    return value


def allreduce(
    ctx: PEContext,
    value: Any,
    op: Callable[[Any, Any], Any],
    *,
    words: int = 1,
) -> Generator[None, None, Any]:
    """Reduce to root then broadcast — result available on every PE."""
    total = yield from reduce_to_root(ctx, value, op, words=words)
    return (yield from bcast(ctx, total, words=words))


def alltoallv_dense(
    ctx: PEContext,
    payloads: dict[int, tuple[Any, int]],
    *,
    tag_label: str = "a2a",
) -> Generator[None, None, list[Message]]:
    """Dense irregular all-to-all: one message to *every* other PE.

    ``payloads`` maps destination rank to ``(payload, words)``; ranks
    missing from the dict still receive an (empty) control message —
    that p-1-messages-per-PE behaviour is exactly what makes the dense
    exchange expensive at scale and what the sparse variant avoids.
    Data addressed to self is returned locally without a message.

    Returns all ``p - 1`` received messages (plus the self payload, if
    present, as a synthetic message).
    """
    p = ctx.num_pes
    cid = ctx.enter_collective(f"alltoallv:{tag_label}")
    tag = (tag_label, cid)
    received: list[Message] = []
    for dest in range(p):
        if dest == ctx.rank:
            continue
        payload, words = payloads.get(dest, (None, 0))
        ctx.send(dest, tag, payload, max(int(words), CONTROL_WORDS))
    if ctx.rank in payloads:
        payload, words = payloads[ctx.rank]
        received.append(
            Message(
                src=ctx.rank,
                dest=ctx.rank,
                tag=tag,
                payload=payload,
                words=int(words),
                send_time=ctx.clock,
            )
        )
    need = p - 1
    while need > 0:
        msg = yield from ctx.recv(tag)
        received.append(msg)
        need -= 1
    return received


def sparse_alltoall(
    ctx: PEContext,
    payloads: Iterable[tuple[int, Any, int]],
    *,
    tag_label: str = "sparse-a2a",
) -> Generator[None, None, list[Message]]:
    """Asynchronous sparse all-to-all with barrier termination detection.

    ``payloads`` yields ``(dest, payload, words)`` triples; only actual
    communication partners receive messages.  After all local sends are
    posted, a barrier establishes that *every* PE has posted all its
    sends (the simulation analogue of NBX's non-blocking barrier), so
    the inbox can be drained to completion.

    Self-addressed payloads are returned locally without a message.

    Delivery assumptions: the exchange tolerates *reordered* and
    *duplicated-then-deduplicated* delivery (receivers key on the tag,
    not arrival order), but the barrier-then-drain termination requires
    that every posted message is eventually delivered exactly once —
    i.e. the fault-free direct path or the reliable transport of
    :mod:`repro.net.reliable`.  Raw loss or app-visible duplicates (the
    lossy transport) break the message count; see the fault-delivery
    tests in ``tests/test_comm.py``.
    """
    cid = ctx.enter_collective(f"sparse-alltoall:{tag_label}")
    tag = (tag_label, cid)
    received: list[Message] = []
    for dest, payload, words in payloads:
        if dest == ctx.rank:
            received.append(
                Message(
                    src=ctx.rank,
                    dest=ctx.rank,
                    tag=tag,
                    payload=payload,
                    words=int(words),
                    send_time=ctx.clock,
                )
            )
            continue
        ctx.send(dest, tag, payload, int(words))
    # NBX discipline: wait for our own sends to finish delivery before
    # entering the barrier — under the contended network model messages
    # are in flight (queueing on links) after ``send`` returns, and a
    # peer must not pass the barrier and drain before they land.  A
    # no-op (zero yields) under instant delivery.
    yield from ctx.sync_sends()
    yield from barrier(ctx)
    received.extend(drain(ctx, tag))
    return received


def drain(ctx: PEContext, tag: Tag) -> list[Message]:
    """Consume and return every pending message with ``tag``.

    Order-insensitive by construction: callers get whatever is queued,
    in queue order, so injected reordering (``repro.faults``) changes
    the list order but never the multiset of messages.
    """
    out: list[Message] = []
    while True:
        msg = ctx.try_recv(tag)
        if msg is None:
            return out
        out.append(msg)
