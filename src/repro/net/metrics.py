"""Per-PE and aggregated run metrics.

The paper's plots report, besides running time, the *maximum number of
outgoing messages over all PEs* and the *bottleneck communication
volume* (Fig. 5's lower panels).  These counters are maintained by the
simulated network; "bottleneck" aggregations are max-over-PEs as in the
paper.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .trace import SpanRecord

__all__ = ["PEMetrics", "RunMetrics"]


@dataclass
class PEMetrics:
    """Counters for one PE."""

    rank: int
    #: Simulated wall clock (seconds) of this PE.
    clock: float = 0.0
    messages_sent: int = 0
    messages_received: int = 0
    words_sent: int = 0
    words_received: int = 0
    #: Charged local operations (merge comparisons, hash probes, ...).
    local_ops: int = 0
    #: Largest number of words ever held in aggregation buffers.
    peak_buffer_words: int = 0
    #: Resilience counters (``repro.net.reliable``): retransmissions
    #: this PE paid for, retransmission timeouts it sat through, wire
    #: transmissions of its messages that were dropped, and duplicate
    #: deliveries it discarded on receive.  All zero on a fault-free
    #: run over any transport.
    retransmits: int = 0
    timeouts: int = 0
    messages_dropped: int = 0
    duplicates_discarded: int = 0
    #: Simulated seconds attributed to named phases.
    phase_times: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    #: Simulated seconds charged at message endpoints (alpha + beta*l
    #: for sends, receives, and transport acks).
    comm_seconds: float = 0.0
    #: Simulated seconds the clock was fast-forwarded to a message's
    #: causal timestamp — idle time spent waiting for senders.
    wait_seconds: float = 0.0
    #: Simulated seconds charged by the reliable transport for
    #: retransmissions and duplicate discards (fault overhead).
    retransmit_seconds: float = 0.0
    #: Localized-recovery seconds: a crashed PE's whole outage
    #: (detection wait + partner restore + log replay) plus what
    #: survivors paid to ship replicas and re-send logged messages.
    #: Zero on crash-free runs and under global restart.
    recovery_seconds: float = 0.0
    #: Heartbeat probes this PE paid for (localized recovery's
    #: standing failure-detector cost; zero otherwise).
    heartbeats: int = 0
    #: Transport-side counters (``repro.net.shm``): *real* bytes this
    #: PE's outgoing payloads physically occupied under the process
    #: backend (fan-out deliveries sharing one slot count the copy
    #: once), messages routed zero-copy through the shared-memory
    #: frame pool, and messages that spilled to the pickled path
    #: (pool exhausted / payload oversized / no array body).  These
    #: describe the physical transport only — they are all zero on the
    #: simulator and are deliberately excluded from :meth:`RunMetrics.summary`
    #: so summaries stay comparable across transports.
    bytes_moved: int = 0
    shm_frames: int = 0
    shm_spills: int = 0
    #: Closed ``ctx.span`` intervals in completion order (see
    #: :class:`repro.net.trace.SpanRecord`).
    spans: list[SpanRecord] = field(default_factory=list)

    def note_buffer(self, words: int) -> None:
        """Record an aggregation-buffer high-water mark."""
        if words > self.peak_buffer_words:
            self.peak_buffer_words = words


@dataclass
class RunMetrics:
    """Aggregated view over all PEs of one simulated run."""

    per_pe: list[PEMetrics]

    @property
    def num_pes(self) -> int:
        """Number of PEs in the run."""
        return len(self.per_pe)

    @property
    def makespan(self) -> float:
        """Modelled running time: the slowest PE's clock."""
        return max((m.clock for m in self.per_pe), default=0.0)

    @property
    def max_messages_sent(self) -> int:
        """Paper metric: max #outgoing messages over all PEs."""
        return max((m.messages_sent for m in self.per_pe), default=0)

    @property
    def bottleneck_volume(self) -> int:
        """Paper metric: max over PEs of words sent."""
        return max((m.words_sent for m in self.per_pe), default=0)

    @property
    def total_volume(self) -> int:
        """Total words sent across the whole machine."""
        return sum(m.words_sent for m in self.per_pe)

    @property
    def total_messages(self) -> int:
        """Total messages sent across the whole machine."""
        return sum(m.messages_sent for m in self.per_pe)

    @property
    def total_ops(self) -> int:
        """Total charged local operations."""
        return sum(m.local_ops for m in self.per_pe)

    @property
    def max_peak_buffer_words(self) -> int:
        """Max aggregation-buffer high-water mark over PEs (memory claim)."""
        return max((m.peak_buffer_words for m in self.per_pe), default=0)

    # Resilience aggregates (fault-injected runs) ----------------------
    @property
    def total_retransmits(self) -> int:
        """Total reliable-transport retransmissions across the machine."""
        return sum(m.retransmits for m in self.per_pe)

    @property
    def total_timeouts(self) -> int:
        """Total retransmission timeouts across the machine."""
        return sum(m.timeouts for m in self.per_pe)

    @property
    def total_messages_dropped(self) -> int:
        """Total wire transmissions lost to injected drops."""
        return sum(m.messages_dropped for m in self.per_pe)

    @property
    def total_duplicates_discarded(self) -> int:
        """Total duplicate deliveries discarded by receive-side dedup."""
        return sum(m.duplicates_discarded for m in self.per_pe)

    @property
    def max_retransmits(self) -> int:
        """Bottleneck resilience cost: max retransmissions on one PE."""
        return max((m.retransmits for m in self.per_pe), default=0)

    @property
    def max_messages_dropped(self) -> int:
        """Bottleneck fault pressure: max dropped transmissions on one PE."""
        return max((m.messages_dropped for m in self.per_pe), default=0)

    # Observability aggregates (repro.obs) -----------------------------
    @property
    def total_comm_seconds(self) -> float:
        """Total message-endpoint seconds charged across the machine."""
        return sum(m.comm_seconds for m in self.per_pe)

    @property
    def total_wait_seconds(self) -> float:
        """Total causal-timestamp waiting seconds across the machine."""
        return sum(m.wait_seconds for m in self.per_pe)

    @property
    def total_recovery_seconds(self) -> float:
        """Total localized-recovery seconds charged across the machine."""
        return sum(m.recovery_seconds for m in self.per_pe)

    @property
    def max_recovery_seconds(self) -> float:
        """Worst per-PE localized-recovery cost (the crashed rank's outage)."""
        return max((m.recovery_seconds for m in self.per_pe), default=0.0)

    @property
    def total_heartbeats(self) -> int:
        """Total heartbeat probes charged across the machine."""
        return sum(m.heartbeats for m in self.per_pe)

    # Transport aggregates (repro.net.shm; zero on the simulator) ------
    @property
    def total_bytes_moved(self) -> int:
        """Real payload bytes carried by the process transport."""
        return sum(m.bytes_moved for m in self.per_pe)

    @property
    def total_shm_frames(self) -> int:
        """Messages that travelled zero-copy through the shm pool."""
        return sum(m.shm_frames for m in self.per_pe)

    @property
    def total_shm_spills(self) -> int:
        """Messages that fell back to the pickled path."""
        return sum(m.shm_spills for m in self.per_pe)

    @property
    def critical_rank(self) -> int:
        """Rank of the slowest PE (the one defining the makespan)."""
        if not self.per_pe:
            return 0
        return max(range(len(self.per_pe)), key=lambda r: self.per_pe[r].clock)

    def merged_spans(self) -> list[SpanRecord]:
        """All PEs' spans in one machine-wide timeline.

        Sorted by (start, rank, depth) so concurrent spans interleave
        deterministically — the input shape of the exporters in
        :mod:`repro.obs`.
        """
        out: list[SpanRecord] = []
        for m in self.per_pe:
            out.extend(m.spans)
        out.sort(key=lambda s: (s.start, s.rank, s.depth, s.name))
        return out

    def phase_breakdown(self) -> dict[str, float]:
        """Per-phase modelled time: max over PEs of each phase's time.

        Matches Fig. 7's stacked bars, which decompose the *critical
        path* of each run into preprocessing / local / global phases.
        Sub-spans that only ever open *inside* another span (e.g. the
        grid router's hop spans within ``global``) are excluded — their
        time is already part of their enclosing phase, and including
        them would double-count it in any sum over the breakdown.  The
        full nested detail stays available via :meth:`merged_spans`.
        """
        depth0: set[str] = set()
        recorded: set[str] = set()
        for m in self.per_pe:
            for s in m.spans:
                recorded.add(s.name)
                if s.depth == 0:
                    depth0.add(s.name)
        nested_only = recorded - depth0
        phases: dict[str, float] = {}
        for m in self.per_pe:
            for name, t in m.phase_times.items():
                if name in nested_only:
                    continue
                phases[name] = max(phases.get(name, 0.0), t)
        return phases

    def summary(self) -> dict[str, float]:
        """Flat dict for tables / dataframes."""
        out = {
            "num_pes": self.num_pes,
            "time": self.makespan,
            "max_messages": self.max_messages_sent,
            "bottleneck_volume": self.bottleneck_volume,
            "total_volume": self.total_volume,
            "total_messages": self.total_messages,
            "total_ops": self.total_ops,
            "peak_buffer_words": self.max_peak_buffer_words,
            "retransmits": self.total_retransmits,
            "timeouts": self.total_timeouts,
            "messages_dropped": self.total_messages_dropped,
            "duplicates_discarded": self.total_duplicates_discarded,
            "max_retransmits": self.max_retransmits,
            "max_messages_dropped": self.max_messages_dropped,
            "recovery_seconds": self.total_recovery_seconds,
            "heartbeats": self.total_heartbeats,
        }
        for name, t in sorted(self.phase_breakdown().items()):
            out[f"phase_{name}"] = t
        return out
