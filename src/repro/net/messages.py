"""Message envelopes for the simulated network.

A message is point-to-point, tagged, and carries an arbitrary payload
plus its size in machine words.  The *words* field is what the cost
model and the volume metrics consume; payload objects themselves are
never serialized (this is a simulation — what matters is that the
algorithms only read payloads they were sent).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable

__all__ = ["Message", "Tag", "HEADER_WORDS"]

#: Hashable message tag; algorithms use strings or (string, int) pairs.
Tag = Hashable

#: Envelope overhead charged per application-level record inside an
#: aggregated message: the vertex id and the neighborhood length.
HEADER_WORDS = 2

_seq = itertools.count()


@dataclass(frozen=True)
class Message:
    """One in-flight or delivered message.

    Attributes
    ----------
    src, dest:
        PE ranks.  For indirectly routed traffic these are the *hop*
        endpoints; the application payload carries the final
        destination.
    tag:
        Routing key used by receivers to select message classes.
    payload:
        Arbitrary Python object (records, arrays, scalars).
    words:
        Size in machine words charged to the cost model.
    send_time:
        Sender's simulated clock when the send *completed* — the
        earliest moment the receiver can observe the message
        (causal timestamp).
    seq:
        Global monotonically increasing id; keeps delivery order
        deterministic.
    channel_seq:
        Per-(src, dest) channel sequence number stamped by the
        reliable transport (:mod:`repro.net.reliable`) so the receive
        side can deduplicate and preserve FIFO order; ``None`` on the
        fault-free direct path.
    """

    src: int
    dest: int
    tag: Tag
    payload: Any
    words: int
    send_time: float
    seq: int = field(default_factory=lambda: next(_seq))
    channel_seq: int | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message({self.src}->{self.dest}, tag={self.tag!r}, "
            f"words={self.words}, t={self.send_time:.3e})"
        )
