"""Flat packed message frames: the struct-of-arrays wire format.

The counting kernels are batch-vectorized, but a message path that
builds one :class:`Record` dataclass per cut arc pays Python's
per-object overhead on every benchmark.  A :class:`RecordFrame`
represents a whole batch of records as four contiguous NumPy arrays —
the same struct-of-arrays layout the intersection kernels already use
— so the sender builds it with array ops, the wire carries four arrays
instead of N dataclasses (which is also what :class:`ProcessMachine`
pickles), and the receiver feeds it straight into the batched kernels.

The accounting invariant
------------------------
``RecordFrame.words`` charges **exactly** what the equivalent list of
:class:`Record` objects charges: per record, the neighborhood entries
plus :data:`~repro.net.messages.HEADER_WORDS`, plus one extra word when
the record is targeted.  Simulated costs, volume metrics, and the
δ-threshold flush semantics of the aggregation queue are therefore
bit-identical between the two representations (property-tested in
``tests/test_frames.py``; see ``docs/PERFORMANCE.md``).

A broadcast record (the surrogate shape ``(v, A(v))``) stores a
``target`` of −1; a targeted record (the Algorithm 2 shape
``((v, u), A(v))``) stores the owned endpoint ``u``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from .messages import HEADER_WORDS

__all__ = [
    "Record",
    "RecordFrame",
    "ForwardFrame",
    "FrameBuilder",
    "merge_frames",
    "flatten_records",
]

#: Sentinel in ``RecordFrame.targets`` marking a broadcast record.
BROADCAST = -1


@dataclass(frozen=True)
class Record:
    """One application record: a vertex and (some of) its neighborhood.

    ``words`` counts the neighborhood entries plus the
    :data:`~repro.net.messages.HEADER_WORDS` envelope (vertex id +
    length field), matching how the paper measures communication
    volume in machine words.

    ``target`` distinguishes the two message shapes of the paper:
    Algorithm 2 sends ``((v, u), N_v^+)`` — the receiver intersects for
    that single edge ``(v, u)`` — whereas the surrogate-optimized
    algorithms send ``(v, A(v))`` once per destination PE and the
    receiver loops over *all* its local ``u ∈ A(v)``.  ``target=None``
    selects the latter; a vertex id costs one extra word on the wire.
    """

    vertex: int
    neighbors: np.ndarray
    target: int | None = None

    @property
    def words(self) -> int:
        """Charged size of this record in machine words."""
        extra = 0 if self.target is None else 1
        return int(self.neighbors.size) + HEADER_WORDS + extra


def _as_i64(a) -> np.ndarray:
    return np.asarray(a, dtype=np.int64)


@dataclass(frozen=True)
class RecordFrame:
    """A batch of records packed as four contiguous arrays.

    Record ``i`` is ``(vertices[i], targets[i],
    neighbors[xadj[i]:xadj[i+1]])`` with ``targets[i] == -1`` meaning
    broadcast.  Frames are frozen: builders and mergers always allocate
    fresh arrays, so a frame can be shared between PEs of the simulated
    machine without aliasing hazards.

    The sequence protocol (``len``, iteration, indexing) yields
    :class:`Record` views so object-at-a-time consumers (the AMQ
    receiver loop, tests, diagnostics) keep working unchanged — but hot
    paths must use the arrays directly (see ``docs/PERFORMANCE.md``).
    """

    vertices: np.ndarray
    targets: np.ndarray
    xadj: np.ndarray
    neighbors: np.ndarray

    @classmethod
    def empty(cls) -> "RecordFrame":
        """The zero-record frame."""
        z = np.empty(0, dtype=np.int64)
        return cls(z, z.copy(), np.zeros(1, dtype=np.int64), z.copy())

    @classmethod
    def from_records(cls, records: Iterable[Record]) -> "RecordFrame":
        """Pack a list of :class:`Record` objects (legacy adapter)."""
        records = list(records)
        n = len(records)
        if n == 0:
            return cls.empty()
        vertices = np.fromiter((r.vertex for r in records), dtype=np.int64, count=n)
        targets = np.fromiter(
            (r.target if r.target is not None else BROADCAST for r in records),
            dtype=np.int64,
            count=n,
        )
        sizes = np.fromiter((r.neighbors.size for r in records), dtype=np.int64, count=n)
        xadj = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(sizes, out=xadj[1:])
        neighbors = (
            np.concatenate([_as_i64(r.neighbors) for r in records])
            if int(xadj[-1])
            else np.empty(0, dtype=np.int64)
        )
        return cls(vertices, targets, xadj, neighbors)

    @property
    def num_records(self) -> int:
        """Number of records in the frame."""
        return int(self.vertices.size)

    @property
    def words(self) -> int:
        """Charged wire size — identical to the equivalent Record list."""
        return (
            int(self.neighbors.size)
            + HEADER_WORDS * self.num_records
            + int(np.count_nonzero(self.targets >= 0))
        )

    def record_words(self) -> np.ndarray:
        """Per-record charged words (the flush-threshold quantity)."""
        return (
            np.diff(self.xadj)
            + np.int64(HEADER_WORDS)
            + (self.targets >= 0).astype(np.int64)
        )

    def record(self, i: int) -> Record:
        """Record ``i`` as a :class:`Record` view (no copy of neighbors)."""
        t = int(self.targets[i])
        return Record(
            int(self.vertices[i]),
            self.neighbors[int(self.xadj[i]) : int(self.xadj[i + 1])],
            target=None if t == BROADCAST else t,
        )

    def to_records(self) -> list[Record]:
        """Expand into per-record objects (legacy adapter; cold paths only)."""
        return [self.record(i) for i in range(self.num_records)]

    def select(self, idx: np.ndarray) -> "RecordFrame":
        """Sub-frame of the records listed in ``idx`` (in that order)."""
        idx = _as_i64(idx)
        sizes = self.xadj[idx + 1] - self.xadj[idx]
        xadj = np.zeros(idx.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=xadj[1:])
        total = int(xadj[-1])
        if total:
            starts = np.repeat(self.xadj[idx], sizes)
            within = np.arange(total, dtype=np.int64) - np.repeat(xadj[:-1], sizes)
            neighbors = self.neighbors[starts + within]
        else:
            neighbors = np.empty(0, dtype=np.int64)
        return RecordFrame(self.vertices[idx], self.targets[idx], xadj, neighbors)

    def __len__(self) -> int:
        return self.num_records

    def __iter__(self) -> Iterator[Record]:
        for i in range(self.num_records):
            yield self.record(i)

    def __getitem__(self, i: int) -> Record:
        return self.record(int(i))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RecordFrame({self.num_records} records, "
            f"{int(self.neighbors.size)} neighbor words)"
        )


@dataclass(frozen=True)
class ForwardFrame:
    """A frame wrapped with per-record final destinations (grid row hop).

    The vectorized counterpart of wrapping each record in a
    :class:`~repro.net.indirect.ForwardRecord`: one routing word per
    record on the wire, and the proxy regroups by ``final_dests``
    without unpacking a single record object.
    """

    final_dests: np.ndarray
    frame: RecordFrame

    @property
    def words(self) -> int:
        """Wire size: the inner frame plus one routing word per record."""
        return self.frame.words + int(self.final_dests.size)


def merge_frames(parts: Iterable) -> RecordFrame:
    """Concatenate frames and records (in order) into one frame.

    Accepts any mix of :class:`RecordFrame`, :class:`Record`, and
    (nested) lists of either — the payload shapes the aggregation queue
    produces — and returns a single frame covering every record in
    encounter order.
    """
    builder = FrameBuilder()
    for part in _iter_parts(parts):
        if isinstance(part, RecordFrame):
            builder.append_frame(part)
        else:
            builder.append_record(part)
    return builder.build()


def flatten_records(parts: Iterable) -> list:
    """Flatten payloads into a flat list, expanding frames to records.

    The legacy-shaped counterpart of :func:`merge_frames`, used when a
    batch mixes frameable records with opaque payloads (e.g.
    ``AmqRecord``) that must come back as the objects they were posted
    as.
    """
    out: list = []
    for part in _iter_parts(parts):
        if isinstance(part, RecordFrame):
            out.extend(part.to_records())
        else:
            out.append(part)
    return out


def _iter_parts(parts: Iterable):
    for part in parts:
        if isinstance(part, (list, tuple)):
            yield from _iter_parts(part)
        else:
            yield part


class FrameBuilder:
    """Accumulates record chunks and packs them into one frame.

    Chunks are appended as arrays (from ``post_many``) or as individual
    :class:`Record` objects (legacy ``post``); :meth:`build`
    concatenates everything in append order.  With ``final_dests``
    chunks the builder produces a :class:`ForwardFrame` instead (grid
    row hop); the two chunk kinds must not be mixed in one builder.
    """

    def __init__(self) -> None:
        self._vertices: list[np.ndarray] = []
        self._targets: list[np.ndarray] = []
        self._sizes: list[np.ndarray] = []
        self._neighbors: list[np.ndarray] = []
        self._final_dests: list[np.ndarray] | None = None
        self._num_records = 0

    def __bool__(self) -> bool:
        return self._num_records > 0

    @property
    def num_records(self) -> int:
        """Records appended so far."""
        return self._num_records

    def append_chunk(
        self,
        vertices: np.ndarray,
        targets: np.ndarray,
        sizes: np.ndarray,
        neighbors: np.ndarray,
        final_dests: np.ndarray | None = None,
    ) -> None:
        """Append a batch of records given as raw arrays."""
        self._vertices.append(vertices)
        self._targets.append(targets)
        self._sizes.append(sizes)
        self._neighbors.append(neighbors)
        if final_dests is not None:
            if self._final_dests is None:
                if self._num_records:
                    raise ValueError("cannot mix forward and plain chunks")
                self._final_dests = []
            self._final_dests.append(final_dests)
        elif self._final_dests is not None:
            raise ValueError("cannot mix forward and plain chunks")
        self._num_records += int(vertices.size)

    def append_frame(self, frame: RecordFrame) -> None:
        """Append all records of an existing frame."""
        self.append_chunk(
            frame.vertices, frame.targets, np.diff(frame.xadj), frame.neighbors
        )

    def append_record(self, record: Record) -> None:
        """Append one legacy :class:`Record` (packed on build)."""
        self.append_chunk(
            np.array([record.vertex], dtype=np.int64),
            np.array(
                [record.target if record.target is not None else BROADCAST],
                dtype=np.int64,
            ),
            np.array([record.neighbors.size], dtype=np.int64),
            _as_i64(record.neighbors),
        )

    def build(self) -> RecordFrame | ForwardFrame:
        """Pack everything appended so far into one frame (and reset)."""
        if self._num_records == 0:
            frame = RecordFrame.empty()
        else:
            sizes = np.concatenate(self._sizes)
            xadj = np.zeros(sizes.size + 1, dtype=np.int64)
            np.cumsum(sizes, out=xadj[1:])
            frame = RecordFrame(
                np.concatenate(self._vertices),
                np.concatenate(self._targets),
                xadj,
                np.concatenate(self._neighbors)
                if int(xadj[-1])
                else np.empty(0, dtype=np.int64),
            )
        final_dests = self._final_dests
        self.__init__()
        if final_dests is not None:
            return ForwardFrame(np.concatenate(final_dests), frame)
        return frame
