"""Grid-based indirect message delivery (paper Section IV-B, Fig. 3).

PEs are arranged in a logical 2D grid with
``cols = floor(sqrt(p) + 1/2)`` columns (round to nearest integer) and
``ceil(p / cols)`` rows; the last row may be partially filled.  A
message from ``P_{i,j}`` to ``P_{k,l}`` first travels along row ``i``
to the *proxy* ``P_{i,l}``, which forwards it along column ``l``.
Every PE then has only ``O(sqrt(p))`` communication partners, cutting
the startup-dominated cost of many small messages at the price of (at
most) doubling the volume.

When the sender sits in the partial last row and the natural proxy
``P_{i,l}`` does not exist, the paper transposes the last row and
appends it as a column on the right: sender ``P_{i',j'}`` is treated as
occupying virtual position ``(j', cols)``, so its proxy becomes
``P_{j',l}`` — always a valid PE (row ``j'`` is full because only the
last row is partial).

:class:`GridRouter` pairs the scheme with the aggregation queue of
:mod:`repro.net.aggregation`: row-hop messages aggregate per proxy, the
proxy re-aggregates everything bound for the same final destination
(the "all messages from a processor row designated to P_{k,l} get
aggregated at the proxy" effect), and the threshold keeps memory
linear.

Indirect hops ride ordinary machine messages, so under the contended
network model (:class:`repro.sim.network.Network`) *each hop* claims
link capacity separately: funnelling a whole PE row's traffic through
one proxy serializes it on that proxy node's uplink/downlink — the
congestion effect the flat alpha-beta model cannot see, and exactly
what the indirection-vs-direct trade of Section IV-B is about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator

import numpy as np

from .aggregation import BufferedMessageQueue, Record
from .frames import ForwardFrame, RecordFrame
from .machine import PEContext
from .messages import Tag

__all__ = ["Grid", "GridRouter", "ForwardRecord"]


@dataclass(frozen=True)
class Grid:
    """The logical 2D arrangement of ``p`` PEs."""

    num_pes: int
    cols: int

    @classmethod
    def of(cls, num_pes: int) -> "Grid":
        """Grid with ``floor(sqrt(p) + 1/2)`` columns (paper's rounding)."""
        if num_pes < 1:
            raise ValueError("need at least one PE")
        cols = max(1, int(math.floor(math.sqrt(num_pes) + 0.5)))
        return cls(num_pes=num_pes, cols=cols)

    @property
    def rows(self) -> int:
        """Number of grid rows (last one possibly partial)."""
        return -(-self.num_pes // self.cols)

    def position(self, rank: int) -> tuple[int, int]:
        """Grid coordinates ``(row, col)`` of a PE."""
        if not (0 <= rank < self.num_pes):
            raise ValueError(f"invalid rank {rank}")
        return divmod(rank, self.cols)

    def rank_at(self, row: int, col: int) -> int:
        """PE id at grid coordinates (must exist)."""
        rank = row * self.cols + col
        if not (0 <= col < self.cols and 0 <= rank < self.num_pes):
            raise ValueError(f"no PE at ({row}, {col})")
        return rank

    def proxy(self, src: int, dest: int) -> int:
        """The intermediate hop for a ``src -> dest`` message.

        Returns ``dest`` itself when no intermediate hop is needed
        (same row, same column, or the proxy coincides with either
        endpoint).
        """
        si, sj = self.position(src)
        di, dj = self.position(dest)
        if si == di or sj == dj:
            return dest
        candidate = si * self.cols + dj
        if candidate >= self.num_pes:
            # Partial-last-row fix: treat src as sitting at the virtual
            # transposed position (sj, cols); proxy along that row.
            candidate = sj * self.cols + dj
        if candidate in (src, dest):
            return dest
        return candidate


@dataclass(frozen=True)
class ForwardRecord:
    """A record wrapped with its final destination for the row hop.

    The extra destination field costs one machine word on the wire.
    """

    final_dest: int
    record: Record

    @property
    def words(self) -> int:
        """Wire size: the inner record plus the routing word."""
        return self.record.words + 1


class GridRouter:
    """Two-hop aggregated routing over the logical grid.

    Drop-in alternative to a plain :class:`BufferedMessageQueue` for
    one-shot exchanges: ``post`` during the send phase, then a single
    collective :meth:`finalize` flushes, lets proxies forward, and
    returns the records addressed to this PE.
    """

    def __init__(self, ctx: PEContext, tag: Tag, threshold_words: int):
        self.ctx = ctx
        self.grid = Grid.of(ctx.num_pes)
        self._row_tag: Tag = ("grid-row", tag)
        self._col_tag: Tag = ("grid-col", tag)
        self._row_queue = BufferedMessageQueue(ctx, self._row_tag, threshold_words)
        self._col_queue = BufferedMessageQueue(ctx, self._col_tag, threshold_words)
        self._proxy_of = np.fromiter(
            (self.grid.proxy(ctx.rank, d) for d in range(ctx.num_pes)),
            dtype=np.int64,
            count=ctx.num_pes,
        )
        ctx.charge(ctx.num_pes)  # the O(p) proxy table above

    @property
    def records_posted(self) -> int:
        """Application records posted at this PE (not counting forwards)."""
        return self._row_queue.records_posted

    def post(self, dest: int, record: Record) -> None:
        """Route a record towards ``dest`` via its row proxy."""
        hop = self.grid.proxy(self.ctx.rank, dest)
        if hop == dest:
            # Direct: no intermediate hop (same row/col or degenerate);
            # send on the column queue so it is not mistaken for a
            # forwardable row message.
            self._col_queue.post(dest, record)
        else:
            self._row_queue.post(hop, ForwardRecord(final_dest=dest, record=record))

    def post_many(
        self,
        dest_ranks: np.ndarray,
        vertices: np.ndarray,
        targets: np.ndarray,
        xadj: np.ndarray,
        neighbors: np.ndarray,
    ) -> None:
        """Route a whole record batch (struct-of-arrays form) at once.

        Splits the batch by first hop: records whose proxy is their
        destination go straight on the column queue; the rest travel
        the row queue as a :class:`~repro.net.frames.ForwardFrame`
        (one routing word per record, like :class:`ForwardRecord`).
        """
        dest_ranks = np.asarray(dest_ranks, dtype=np.int64)
        if dest_ranks.size == 0:
            return
        frame = RecordFrame(
            np.asarray(vertices, dtype=np.int64),
            np.asarray(targets, dtype=np.int64),
            np.asarray(xadj, dtype=np.int64),
            np.asarray(neighbors, dtype=np.int64),
        )
        hops = self._proxy_of[dest_ranks]
        direct = hops == dest_ranks
        idx = np.flatnonzero(direct)
        if idx.size:
            sub = frame.select(idx)
            self._col_queue.post_many(
                dest_ranks[idx], sub.vertices, sub.targets, sub.xadj, sub.neighbors
            )
        idx = np.flatnonzero(~direct)
        if idx.size:
            sub = frame.select(idx)
            self._row_queue.post_many(
                hops[idx],
                sub.vertices,
                sub.targets,
                sub.xadj,
                sub.neighbors,
                final_dests=dest_ranks[idx],
            )

    def post_items(self, dest_ranks, records) -> None:
        """Route pre-built record objects, one per destination entry."""
        for dest, record in zip(dest_ranks, records):
            self.post(int(dest), record)

    def _repost(self, fwd: ForwardFrame) -> None:
        """Proxy step: re-post a forwarded frame toward final destinations."""
        final = fwd.final_dests
        mine = np.flatnonzero(final == self.ctx.rank)
        if mine.size:
            # Already at the destination: hand back locally at zero
            # wire cost (the frame analogue of appending fwd.record).
            self._col_queue._local.append(fwd.frame.select(mine))
        rest = np.flatnonzero(final != self.ctx.rank)
        if rest.size:
            sub = fwd.frame.select(rest)
            self._col_queue.post_many(
                final[rest], sub.vertices, sub.targets, sub.xadj, sub.neighbors
            )

    def finalize(self) -> Generator[None, None, RecordFrame | list]:
        """Flush, forward at proxies, and return records for this PE.

        Collective.  Two aggregation rounds: row flush + barrier, then
        each PE re-posts the row records it proxied to their final
        destinations, column flush + barrier, and a final drain.
        """
        with self.ctx.span("grid-row-hop"):
            row_records = yield from self._row_queue.finalize()
            for fwd in row_records:
                if isinstance(fwd, ForwardFrame):
                    self._repost(fwd)
                elif isinstance(fwd, ForwardRecord):
                    if fwd.final_dest == self.ctx.rank:
                        self._col_queue._local.append(fwd.record)
                    else:
                        self._col_queue.post(fwd.final_dest, fwd.record)
                else:
                    raise TypeError("row hop must carry ForwardRecord")
        with self.ctx.span("grid-col-hop"):
            records = yield from self._col_queue.finalize()
        return records
