"""Reliable and lossy transports for the simulated machine.

The fault-free :class:`~repro.net.machine.Machine` hands every sent
message straight to the destination inbox.  When a
:class:`~repro.faults.plan.FaultPlan` is attached, delivery instead
goes through one of two transports:

:class:`ReliableTransport`
    Models the protocol a real system would run below MPI on a lossy
    fabric: per-channel **sequence numbers**, **cumulative acks**,
    **timeout + exponential-backoff retransmission**, and **dedup on
    receive**.  The program observes exactly the fault-free message
    stream (same messages, same per-channel FIFO order), so algorithm
    results are bit-identical to the reliable-fabric run — but every
    retransmission, timeout wait, and ack is charged to the alpha-beta
    cost model, so resilience overhead shows up in simulated time and
    in the ``retransmits`` / ``timeouts`` / ``messages_dropped`` /
    ``duplicates_discarded`` counters of
    :class:`~repro.net.metrics.PEMetrics`.

:class:`LossyTransport`
    The raw adversary: drops lose messages for good, duplicates and
    reordered deliveries reach the program.  Used to demonstrate *why*
    the reliable layer exists and to test protocol robustness against
    at-least-once delivery (see the duplicated/reordered-delivery
    tests in ``tests/test_comm.py``).

Programs that require reliable delivery mark themselves with
:func:`fault_tolerant` and route hand-written sends through
:func:`reliable_send`; lint rule R5 (:mod:`repro.lint`) flags direct
``ctx.send`` calls inside marked programs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable

from .messages import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.plan import FaultPlan
    from .machine import Machine, PEContext

__all__ = [
    "ReliableConfig",
    "ReliableTransport",
    "LossyTransport",
    "TransportError",
    "fault_tolerant",
    "reliable_send",
]

#: Words charged for one (cumulative) acknowledgement message.
ACK_WORDS = 1


class TransportError(RuntimeError):
    """The reliable transport gave up on a message (retry budget spent)."""


@dataclass(frozen=True)
class ReliableConfig:
    """Tunables of the modelled reliable protocol.

    Attributes
    ----------
    timeout_factor:
        First retransmission timeout as a multiple of the message's
        own wire time ``alpha + beta * words``.
    backoff:
        Multiplier applied to the timeout after every retransmission
        (exponential backoff).
    ack_every:
        Cumulative-ack cadence: one ack message (both endpoints pay
        ``alpha + beta * ACK_WORDS``) per ``ack_every`` deliveries on
        a channel.  This is what keeps the zero-fault overhead of the
        reliable path small.
    max_attempts:
        Transmission attempts per message before the transport raises
        :class:`TransportError` (a safety net; unreachable under sane
        drop rates).
    """

    timeout_factor: float = 4.0
    backoff: float = 2.0
    ack_every: int = 8
    max_attempts: int = 64

    def __post_init__(self) -> None:
        if self.timeout_factor <= 0 or self.backoff < 1.0:
            raise ValueError("timeout_factor must be > 0 and backoff >= 1")
        if self.ack_every < 1 or self.max_attempts < 1:
            raise ValueError("ack_every and max_attempts must be >= 1")


#: Default protocol constants.
DEFAULT_RELIABLE_CONFIG = ReliableConfig()


class ReliableTransport:
    """Exactly-once, FIFO-per-channel delivery over a faulty wire."""

    #: Programs may assume fault-free message semantics on this transport.
    is_reliable = True

    def __init__(
        self,
        machine: "Machine",
        plan: "FaultPlan | None" = None,
        config: ReliableConfig | None = None,
    ):
        self.machine = machine
        self.plan = plan
        self.config = config or DEFAULT_RELIABLE_CONFIG
        self._next_seq: dict[tuple[int, int], int] = {}
        self._expected: dict[tuple[int, int], int] = {}
        self._acked: dict[tuple[int, int], int] = {}
        #: Selective-repeat receive buffer (contended/event mode only):
        #: out-of-order arrivals parked per channel until the gap fills.
        self._held: dict[tuple[int, int], dict[int, tuple[Message, bool]]] = {}
        #: Wire-level totals (for diagnostics; app-level conservation
        #: is unaffected because this transport repairs every fault).
        self.wire_dropped = 0
        self.wire_duplicates = 0
        #: Sender-based message logging (localized recovery only):
        #: per-channel ``seq -> Message`` of everything sent since the
        #: *receiver*'s last checkpoint.  ``note_checkpoint`` prunes
        #: entries the receiver had already consumed (they are part of
        #: its checkpointed state); ``replay_to`` re-delivers the rest
        #: after a crash.  Disabled (empty) without a recovery manager.
        self._log_enabled = getattr(machine, "_recovery_manager", None) is not None
        self._send_log: dict[tuple[int, int], dict[int, Message]] = {}
        #: Per-channel seqs the receiver consumed since its last
        #: checkpoint (pruned from the log at the next checkpoint).
        self._consumed: dict[tuple[int, int], set[int]] = {}
        #: Per-rank outgoing-seq watermarks at the rank's last
        #: checkpoint: ``rank -> {dest: next_seq}``.  Rewinding to the
        #: watermark makes a respawned rank's re-sends carry the seqs
        #: survivors already saw, so receive-side dedup suppresses them.
        self._send_marks: dict[int, dict[int, int]] = {}

    @property
    def app_delivery_delta(self) -> int:
        """Program-visible (delivered - sent) imbalance: always zero."""
        return 0

    # ------------------------------------------------------------------
    def transmit(self, msg: Message) -> None:
        """Carry one application send across the faulty wire.

        Under instant delivery (alpha-beta model) all fault decisions
        for the message are resolved here, at send time (the machine's
        scheduling is deterministic, so this is equivalent to resolving
        them lazily): the number of dropped attempts determines the
        retransmission costs charged to the sender and the backoff
        delay added to the delivery timestamp.  Under the contended
        network model the protocol instead runs on real engine events
        — retransmission *timers* fire in simulated time, and
        out-of-order arrivals (a retransmit overtaken by a later
        message on an uncongested link) are re-sequenced by a
        selective-repeat receive buffer before they reach the inbox.
        """
        machine = self.machine
        spec = machine.spec
        plan = self.plan
        sender = machine._contexts[msg.src]
        tracer = machine.tracer
        chan = (msg.src, msg.dest)
        seq = self._next_seq.get(chan, 0)
        self._next_seq[chan] = seq + 1
        if self._log_enabled:
            # Keyed by seq so a respawned rank's re-send of the same
            # message overwrites its log entry instead of duplicating it.
            self._send_log.setdefault(chan, {})[seq] = replace(msg, channel_seq=seq)

        if machine._engine is not None and machine.network.model == "contended":
            wire_time = spec.message_time(msg.words)
            timeout = self.config.timeout_factor * wire_time
            out = replace(msg, channel_seq=seq)
            machine._engine.call_at(
                msg.send_time,
                lambda: self._attempt_des(out, 1, msg.send_time, timeout),
            )
            return

        t = msg.send_time
        if plan is not None:
            wire_time = spec.message_time(msg.words)
            timeout = self.config.timeout_factor * wire_time
            attempts = 1
            while plan.should_drop():
                self.wire_dropped += 1
                sender.metrics.messages_dropped += 1
                if tracer is not None:
                    tracer.drop(t, msg.src, msg.dest, msg.tag, msg.words)
                if attempts >= self.config.max_attempts:
                    raise TransportError(
                        f"message {msg.src}->{msg.dest} tag={msg.tag!r} lost "
                        f"{attempts} times; retry budget exhausted"
                    )
                # Wait out the timeout, then pay for the retransmission.
                t += timeout
                timeout *= self.config.backoff
                sender.metrics.timeouts += 1
                sender.metrics.retransmits += 1
                retransmit_dt = sender._slowdown * wire_time
                sender.metrics.clock += retransmit_dt
                sender.metrics.retransmit_seconds += retransmit_dt
                if tracer is not None:
                    tracer.retry(t, msg.src, msg.dest, msg.tag, msg.words)
                attempts += 1
            t += plan.delay_seconds(spec.alpha)

        delivered = replace(msg, send_time=t, channel_seq=seq)
        self._arrive(delivered)
        if plan is not None and plan.should_duplicate():
            # The wire delivers a stale copy one message-time later.
            self.wire_duplicates += 1
            self._arrive(
                replace(delivered, send_time=t + spec.message_time(msg.words))
            )

    # ------------------------------------------------------------------
    # Event-driven protocol (contended network model)
    # ------------------------------------------------------------------
    def _attempt_des(self, msg: Message, attempts: int, t: float, timeout: float) -> None:
        """One transmission attempt at simulated time ``t`` (engine event)."""
        machine = self.machine
        plan = self.plan
        spec = machine.spec
        sender = machine._contexts[msg.src]
        tracer = machine.tracer
        if plan is not None and plan.should_drop():
            self.wire_dropped += 1
            sender.metrics.messages_dropped += 1
            if tracer is not None:
                tracer.drop(t, msg.src, msg.dest, msg.tag, msg.words)
            if attempts >= self.config.max_attempts:
                raise TransportError(
                    f"message {msg.src}->{msg.dest} tag={msg.tag!r} lost "
                    f"{attempts} times; retry budget exhausted"
                )

            def retry() -> None:
                sender.metrics.timeouts += 1
                sender.metrics.retransmits += 1
                retransmit_dt = sender._slowdown * spec.message_time(msg.words)
                sender.metrics.clock += retransmit_dt
                sender.metrics.retransmit_seconds += retransmit_dt
                if tracer is not None:
                    tracer.retry(t + timeout, msg.src, msg.dest, msg.tag, msg.words)
                self._attempt_des(msg, attempts + 1, t + timeout, timeout * self.config.backoff)

            machine._engine.call_at(t + timeout, retry)
            return

        inject_t = t
        if plan is not None:
            inject_t += plan.delay_seconds(spec.alpha)

        def inject() -> None:
            arrival = machine.network.arrival_time(msg.src, msg.dest, msg.words, inject_t)
            machine._engine.post_delivery(
                arrival,
                lambda: self._arrive_des(replace(msg, send_time=arrival), duplicate=False),
            )
            if plan is not None and plan.should_duplicate():
                self.wire_duplicates += 1
                dup_arrival = arrival + spec.message_time(msg.words)
                machine._engine.post_delivery(
                    dup_arrival,
                    lambda: self._arrive_des(
                        replace(msg, send_time=dup_arrival), duplicate=True
                    ),
                )

        if inject_t > t:
            # Fault-plan delay: claim link capacity when the message
            # actually reaches the wire, not now.
            machine._engine.call_at(inject_t, inject)
        else:
            inject()

    def _arrive_des(self, msg: Message, *, duplicate: bool) -> None:
        """Receive-side protocol under the event engine.

        ``duplicate`` marks injected wire copies, which never settle
        the sender's in-flight count (the primary copy does).
        """
        machine = self.machine
        chan = (msg.src, msg.dest)
        receiver = machine._contexts[msg.dest]
        seq = msg.channel_seq or 0
        expected = self._expected.get(chan, 0)
        held = self._held.setdefault(chan, {})
        if seq < expected or seq in held:
            # Stale or redundant copy: the receiver pays for pulling it
            # off the wire, then discards it.
            receiver.metrics.duplicates_discarded += 1
            dup_dt = receiver._slowdown * machine.spec.message_time(msg.words)
            receiver.metrics.clock += dup_dt
            receiver.metrics.retransmit_seconds += dup_dt
            machine._note_progress()
            if not duplicate:
                machine._settle_send(msg.src)
            return
        if seq > expected:
            # Gap: an earlier message on this channel is still being
            # retransmitted.  Hold this one; the sender's in-flight
            # count settles only when it truly reaches the inbox (so
            # ``sync_sends`` cannot conclude an exchange early).
            held[seq] = (msg, duplicate)
            machine._note_progress()
            return
        self._deliver_in_order(msg, settle=not duplicate)
        nxt = self._expected[chan]
        while nxt in held:
            parked, parked_dup = held.pop(nxt)
            self._deliver_in_order(parked, settle=not parked_dup)
            nxt = self._expected[chan]

    def _deliver_in_order(self, msg: Message, *, settle: bool) -> None:
        machine = self.machine
        chan = (msg.src, msg.dest)
        receiver = machine._contexts[msg.dest]
        self._expected[chan] = (msg.channel_seq or 0) + 1
        machine._deliver(msg)
        if settle:
            machine._settle_send(msg.src)
        acked = self._acked.get(chan, 0) + 1
        self._acked[chan] = acked
        if acked % self.config.ack_every == 0:
            ack_time = machine.spec.message_time(ACK_WORDS)
            receiver.metrics.clock += receiver._slowdown * ack_time
            receiver.metrics.comm_seconds += receiver._slowdown * ack_time
            sender = machine._contexts[msg.src]
            sender.metrics.clock += sender._slowdown * ack_time
            sender.metrics.comm_seconds += sender._slowdown * ack_time

    def _arrive(self, msg: Message) -> None:
        """Receive-side protocol: dedup, deliver, ack bookkeeping."""
        machine = self.machine
        chan = (msg.src, msg.dest)
        receiver = machine._contexts[msg.dest]
        expected = self._expected.get(chan, 0)
        if msg.channel_seq is not None and msg.channel_seq < expected:
            # Duplicate: the receiver pays for pulling it off the wire,
            # then discards it before it reaches the program's inbox.
            receiver.metrics.duplicates_discarded += 1
            dup_dt = receiver._slowdown * machine.spec.message_time(msg.words)
            receiver.metrics.clock += dup_dt
            receiver.metrics.retransmit_seconds += dup_dt
            machine._note_progress()
            return
        self._expected[chan] = (msg.channel_seq or 0) + 1
        machine._deliver(msg)
        acked = self._acked.get(chan, 0) + 1
        self._acked[chan] = acked
        if acked % self.config.ack_every == 0:
            # Cumulative ack: one control message, both endpoints pay.
            ack_time = machine.spec.message_time(ACK_WORDS)
            receiver.metrics.clock += receiver._slowdown * ack_time
            receiver.metrics.comm_seconds += receiver._slowdown * ack_time
            sender = machine._contexts[msg.src]
            sender.metrics.clock += sender._slowdown * ack_time
            sender.metrics.comm_seconds += sender._slowdown * ack_time


    # ------------------------------------------------------------------
    # Localized recovery (sender-based logging + replay)
    # ------------------------------------------------------------------
    def note_consumed(self, src: int, dest: int, seq: int) -> None:
        """The program on ``dest`` consumed seq ``seq`` of ``(src, dest)``.

        Consumption — not delivery — is what makes a logged message
        safe to drop at the receiver's next checkpoint: a message
        sitting unconsumed in the inbox is *not* part of any
        checkpointed state and must be replayed after a crash.
        """
        if self._log_enabled:
            self._consumed.setdefault((src, dest), set()).add(seq)

    def note_checkpoint(self, rank: int) -> None:
        """``rank`` took a (partner-replicated) checkpoint just now.

        Messages ``rank`` consumed before this point are folded into
        its checkpointed state, so their log entries are pruned;
        everything else (unconsumed, in flight, or future) stays
        replayable.  The rank's outgoing-seq watermarks are recorded so
        a later respawn can rewind them.
        """
        if not self._log_enabled:
            return
        for chan, consumed in self._consumed.items():
            if chan[1] != rank:
                continue
            log = self._send_log.get(chan)
            if log:
                for seq in consumed:
                    log.pop(seq, None)
            consumed.clear()
        self._send_marks[rank] = {
            chan[1]: nxt for chan, nxt in self._next_seq.items() if chan[0] == rank
        }

    def replay_to(self, rank: int, at_time: float) -> int:
        """Re-deliver every logged message addressed to ``rank``.

        Called by the recovery manager after the partner restore.  For
        each logged message the *sender* pays a full re-send
        (``alpha + beta * words``, charged to its ``recovery_seconds``
        bucket); delivery events land at ``at_time``, before the
        respawned rank's first resume.  Replays bypass the in-order
        receive protocol (the log is already FIFO per channel) and
        never settle in-flight counters — the original wire copies,
        still in the event queue, settle themselves and are
        dedup-discarded because the channel's expected seq is advanced
        past everything replayed.  The rank's own outgoing channels are
        rewound to their checkpoint watermarks so its deterministic
        re-sends are suppressed at the receivers.

        Returns the number of re-delivered messages.
        """
        machine = self.machine
        spec = machine.spec
        replayed = 0
        for chan in sorted(self._send_log):
            if chan[1] != rank or chan[0] == rank:
                continue
            log = self._send_log[chan]
            if not log:
                continue
            sender = machine._contexts[chan[0]]
            for seq in sorted(log):
                out = replace(log[seq], send_time=at_time)
                resend_dt = sender._slowdown * spec.message_time(out.words)
                sender.metrics.clock += resend_dt
                sender.metrics.recovery_seconds += resend_dt
                machine._engine.post_delivery(
                    at_time,
                    lambda m=out: machine._finish_delivery(m, settle=False),
                )
                replayed += 1
            self._expected[chan] = max(
                self._expected.get(chan, 0), max(log) + 1
            )
            held = self._held.pop(chan, None)
            if held:
                # Parked out-of-order copies are superseded by the
                # replay; settle the primaries so their senders'
                # in-flight counts still reach zero.
                for parked, parked_dup in held.values():
                    if not parked_dup:
                        machine._settle_send(parked.src)
            self._consumed.get(chan, set()).clear()
        marks = self._send_marks.get(rank)
        if marks is None:
            # No checkpoint yet: the respawn re-executes from program
            # start and re-sends everything from seq 0.
            marks = {
                chan[1]: 0 for chan in self._next_seq if chan[0] == rank
            }
        for dest, mark in marks.items():
            self._next_seq[(rank, dest)] = mark
            if dest == rank:
                # Self-channel: the re-execution re-sends *and*
                # re-receives these messages, so the receive side
                # rewinds in lockstep (stale copies still in flight
                # reconcile through the ordinary seq dedup).
                self._expected[(rank, rank)] = min(
                    self._expected.get((rank, rank), 0), mark
                )
                self._consumed.get((rank, rank), set()).clear()
        return replayed


class LossyTransport:
    """The raw faulty wire: what the plan says happens, happens."""

    is_reliable = False

    def __init__(self, machine: "Machine", plan: "FaultPlan"):
        self.machine = machine
        self.plan = plan
        self.wire_dropped = 0
        self.wire_duplicates = 0

    @property
    def app_delivery_delta(self) -> int:
        """Program-visible (delivered - sent) imbalance caused by faults."""
        return self.wire_duplicates - self.wire_dropped

    def transmit(self, msg: Message) -> None:
        """Deliver, drop, duplicate, delay, or reorder one message."""
        machine = self.machine
        plan = self.plan
        if plan.should_drop():
            self.wire_dropped += 1
            machine._contexts[msg.src].metrics.messages_dropped += 1
            if machine.tracer is not None:
                machine.tracer.drop(
                    msg.send_time, msg.src, msg.dest, msg.tag, msg.words
                )
            machine._note_progress()
            # A dropped message is gone: it settles immediately (the
            # lossy contract is that sync_sends does not wait for it).
            machine._settle_send(msg.src)
            return
        delay = plan.delay_seconds(machine.spec.alpha)
        out = replace(msg, send_time=msg.send_time + delay) if delay else msg
        # Reorder: the message overtakes everything queued for its tag
        # class at delivery time (the program sees it first).
        machine._inject(out, out.send_time, front=plan.should_reorder())
        if plan.should_duplicate():
            self.wire_duplicates += 1
            dup = replace(
                out, send_time=out.send_time + machine.spec.message_time(msg.words)
            )
            machine._inject(dup, dup.send_time, settle=False)


# ----------------------------------------------------------------------
# Program-level API
# ----------------------------------------------------------------------
def fault_tolerant(program: Callable) -> Callable:
    """Mark an SPMD program (factory) as fault-tolerant.

    A marked program promises that it survives the fault model of
    ``docs/FAULTS.md``: it checkpoints at phase boundaries (via
    ``ctx.checkpoint`` / ``ctx.restore``) and routes every
    hand-written point-to-point send through :func:`reliable_send` so
    the transport can sequence and retransmit it.  Lint rule R5
    enforces the latter statically.
    """
    program.__fault_tolerant__ = True
    return program


def is_fault_tolerant(program: Callable) -> bool:
    """Whether ``program`` carries the :func:`fault_tolerant` marker."""
    return bool(getattr(program, "__fault_tolerant__", False))


def reliable_send(
    ctx: "PEContext", dest: int, tag: Any, payload: Any, words: int
) -> None:
    """Send requiring reliable transport (fault-tolerant programs).

    On a machine without injected faults this is exactly ``ctx.send``.
    On a machine with a fault plan but *without* the reliable
    transport, it raises :class:`~repro.net.machine.ProtocolError`
    instead of silently exposing the program to message loss — the
    runtime counterpart of lint rule R5.
    """
    machine = ctx._machine
    wire = getattr(machine, "_wire", None)
    plan = getattr(machine, "fault_plan", None)
    if (
        plan is not None
        and plan.any_message_faults
        and not getattr(wire, "is_reliable", False)
    ):
        from .machine import ProtocolError

        raise ProtocolError(
            "reliable_send on a machine that injects message faults over "
            "the lossy transport; construct the Machine with "
            "transport='reliable' to run fault-tolerant programs"
        )
    ctx.send(dest, tag, payload, words)
