"""Simulated distributed-memory machine with the paper's cost model.

* :class:`~repro.net.machine.Machine` — SPMD generator programs
  scheduled by the event engine of :mod:`repro.sim` (legacy
  round-robin scheduler available as ``scheduler="round-robin"``);
* :class:`~repro.sim.network.Network` — message arrival model
  (``"alpha-beta"`` flat compatibility model or ``"contended"``
  link-level hierarchy), re-exported here for convenience;
* :class:`~repro.net.costmodel.MachineSpec` — alpha-beta constants
  (presets: SUPERMUC, LAN, CLOUD);
* :mod:`~repro.net.comm` — collectives built from point-to-point
  messages (barrier, allreduce, dense & sparse all-to-all);
* :class:`~repro.net.aggregation.BufferedMessageQueue` — DITRIC's
  dynamic aggregation with linear memory;
* :class:`~repro.net.indirect.GridRouter` — 2D-grid indirect delivery;
* :mod:`~repro.net.reliable` — reliable/lossy transports under the
  :mod:`repro.faults` fault model (sequence numbers, acks, retransmit,
  dedup), costs charged to the alpha-beta model;
* :mod:`~repro.net.shm` — the zero-copy shared-memory frame pool the
  process backend uses to move payloads between workers without
  pickling (``REPRO_SHM_FRAMES``, see ``docs/PERFORMANCE.md``).
"""

from .aggregation import BufferedMessageQueue, unpack_records
from .frames import (
    ForwardFrame,
    FrameBuilder,
    Record,
    RecordFrame,
    flatten_records,
    merge_frames,
)
from .comm import (
    allreduce,
    alltoallv_dense,
    barrier,
    bcast,
    drain,
    reduce_to_root,
    sparse_alltoall,
)
from .costmodel import CLOUD, DEFAULT_SPEC, LAN, SUPERMUC, MachineSpec
from .indirect import ForwardRecord, Grid, GridRouter
from .machine import (
    DeadlockError,
    Machine,
    MachineResult,
    OutOfMemoryError,
    PEContext,
    PECrashError,
    ProtocolError,
)
from .messages import HEADER_WORDS, Message
from .metrics import PEMetrics, RunMetrics
from .parallel import ProcessMachine, RemoteDist
from .shm import (
    PoolHandle,
    SharedFramePool,
    ShmObjectHandle,
    ShmPayload,
    attach_object,
    publish_object,
    shm_supported,
)
from .reliable import (
    LossyTransport,
    ReliableConfig,
    ReliableTransport,
    TransportError,
    fault_tolerant,
    reliable_send,
)
from .trace import SpanRecord, TraceEvent, Tracer, render_timeline
from ..sim.engine import EngineStats
from ..sim.network import Link, Network, NetworkStats

__all__ = [
    "EngineStats",
    "Link",
    "Network",
    "NetworkStats",
    "BufferedMessageQueue",
    "Record",
    "RecordFrame",
    "ForwardFrame",
    "FrameBuilder",
    "merge_frames",
    "flatten_records",
    "unpack_records",
    "allreduce",
    "alltoallv_dense",
    "barrier",
    "bcast",
    "drain",
    "reduce_to_root",
    "sparse_alltoall",
    "CLOUD",
    "DEFAULT_SPEC",
    "LAN",
    "SUPERMUC",
    "MachineSpec",
    "ForwardRecord",
    "Grid",
    "GridRouter",
    "DeadlockError",
    "Machine",
    "MachineResult",
    "OutOfMemoryError",
    "PEContext",
    "PECrashError",
    "ProtocolError",
    "LossyTransport",
    "ReliableConfig",
    "ReliableTransport",
    "TransportError",
    "fault_tolerant",
    "reliable_send",
    "HEADER_WORDS",
    "Message",
    "PEMetrics",
    "RunMetrics",
    "ProcessMachine",
    "RemoteDist",
    "PoolHandle",
    "SharedFramePool",
    "ShmObjectHandle",
    "ShmPayload",
    "attach_object",
    "publish_object",
    "shm_supported",
    "SpanRecord",
    "TraceEvent",
    "Tracer",
    "render_timeline",
]
