"""Zero-copy shared-memory frame pool for the process backend.

:class:`~repro.net.parallel.ProcessMachine` historically shipped every
flushed :class:`~repro.net.frames.RecordFrame` through a
``multiprocessing.SimpleQueue`` — a full pickle of the payload on the
sender, a trip through an OS pipe in 64 KiB chunks, and an unpickle on
the receiver.  For paper-scale instances the frame payloads dominate
that traffic, and serialization sits squarely on the critical path.

This module removes the serialization: frame payloads are *placed* into
``multiprocessing.shared_memory`` segments and the pipe carries only a
tiny ``(slot, offsets)`` descriptor.  Concretely:

* A :class:`SharedFramePool` is one shared-memory segment cut into
  fixed-size slots, fronted by a refcount table (also in shared
  memory) guarded by a cross-process lock.  Allocation finds a slot
  with refcount 0 and takes a reference; release drops the reference
  and a slot whose count returns to 0 becomes reusable.
* :meth:`SharedFramePool.encode` uses pickle **protocol 5 with
  out-of-band buffers**: the payload's array bodies never enter the
  pickle stream — they are copied once into a pool slot — and the
  remaining metadata pickle is a few hundred bytes.  Any payload shape
  works (frames, :class:`~repro.net.frames.ForwardFrame`, mixed lists
  with opaque records); payloads without array buffers simply are not
  worth a slot and travel the legacy path.
* :meth:`SharedFramePool.decode` reconstructs the payload with
  ``pickle.loads(meta, buffers=...)`` over **read-only views straight
  into the slot** — the receive side copies nothing.  The delivery's
  slot reference is dropped by a finalizer when the last view is
  garbage-collected, so the slot recycles exactly when the receiver
  drops the payload.
* When the pool is exhausted — or a payload exceeds the slot size —
  the sender **spills**: the message falls back to the ordinary
  pickled path, observably identical, just slower.  Spills are counted
  (:attr:`~repro.net.metrics.PEMetrics.shm_spills`) so the bench suite
  and the metrics layer can surface an undersized pool.

The same machinery publishes one-shot read-only objects — each
worker's local graph view — via :func:`publish_object` /
:func:`attach_object`.  There the receive side does *not* copy: the
reconstructed arrays are views straight into the segment, so ``p``
workers share one physical copy of the graph metadata instead of
unpickling ``p`` private ones.

Simulated accounting is computed *before* any of this runs (words,
message counts, clocks are charged at ``ctx.send``), so the transport
choice is invisible to the simulation — the equivalence suite in
``tests/test_equivalence.py`` pins that, and ``docs/PERFORMANCE.md``
documents the contract.
"""

from __future__ import annotations

import os
import pickle
# Aliased: the name-resolved call graph of the flow linter would
# otherwise conflate ``weakref.finalize`` with the message-queue
# collective of the same name.
from weakref import finalize as _gc_finalize
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "SharedFramePool",
    "PoolHandle",
    "ShmPayload",
    "ShmObjectHandle",
    "publish_object",
    "attach_object",
    "shm_supported",
]


def shm_supported() -> bool:
    """Whether ``multiprocessing.shared_memory`` works on this platform."""
    try:
        seg = shared_memory.SharedMemory(create=True, size=16)
    except Exception:
        return False
    seg.close()
    seg.unlink()
    return True


def _untrack(seg: shared_memory.SharedMemory) -> None:
    """Detach ``seg`` from this process's resource tracker.

    Needed only when the attaching process runs its *own* tracker (the
    ``spawn`` start method): attaching registers the segment there, and
    at worker exit that tracker would unlink a segment the driver still
    owns.  Under ``fork`` (and for same-process attaches) the tracker
    is shared with the creator, and unregistering here would instead
    clobber the creator's registration — callers must skip it.
    Best-effort: tracker internals are not public API.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - defensive
        pass


def _pin(seg: shared_memory.SharedMemory) -> None:
    """Keep ``seg``'s mapping alive until process exit, silently.

    Worker processes hand out zero-copy views into a segment for the
    rest of their (short) life; ``SharedMemory.__del__`` would try to
    close the mapping under those exported views at interpreter
    shutdown and spam ``BufferError`` tracebacks.  Disarm the
    destructor instead: the OS reclaims the mapping at process exit.
    """
    if seg._fd >= 0:  # the mapping outlives the descriptor
        os.close(seg._fd)
        seg._fd = -1
    seg._buf = None
    seg._mmap = None


def _extract_buffers(payload) -> tuple[bytes, list[memoryview], int] | None:
    """Protocol-5 split of ``payload`` into (meta, raw buffers, bytes).

    Returns ``None`` when a buffer is non-contiguous (cannot be copied
    as raw bytes) — callers then fall back to the in-band path.
    """
    buffers: list[pickle.PickleBuffer] = []
    meta = pickle.dumps(payload, protocol=5, buffer_callback=buffers.append)
    raws: list[memoryview] = []
    total = 0
    try:
        for buf in buffers:
            raw = buf.raw()
            raws.append(raw)
            total += raw.nbytes
    except BufferError:
        return None
    return meta, raws, total


@dataclass(frozen=True)
class ShmPayload:
    """Wire descriptor for a payload parked in a pool slot.

    This is what actually crosses the OS pipe: the slot index, the
    per-buffer byte lengths, and the (small) metadata pickle.  The
    receiving worker resolves it against its attached pool view.
    """

    slot: int
    lengths: tuple[int, ...]
    meta: bytes
    #: Total payload bytes in the slot (metrics; not needed to decode).
    nbytes: int


@dataclass(frozen=True)
class PoolHandle:
    """Everything a worker needs to attach to an existing pool."""

    name: str
    slots: int
    slot_bytes: int


class SharedFramePool:
    """A refcounted slab of shared-memory slots for message payloads.

    Layout of the single segment: ``slots`` int64 refcounts (the
    header), then ``slots`` payload regions of ``slot_bytes`` each.
    The refcount table is the allocator's only state, so any process
    attached to the segment can allocate, acquire, and release under
    the shared ``lock``.

    The driver constructs the pool (``create=True``) and owns the
    segment's lifetime (:meth:`destroy` unlinks it — crashed workers
    cannot leak ``/dev/shm`` entries because they never own one).
    Workers attach via :meth:`attach` with the :class:`PoolHandle` and
    the same lock.
    """

    def __init__(
        self,
        slots: int,
        slot_bytes: int,
        lock,
        *,
        _attach_name: str | None = None,
        _untrack_on_attach: bool = False,
    ):
        if slots < 1:
            raise ValueError("need at least one slot")
        if slot_bytes < 64:
            raise ValueError("slot_bytes must be at least 64")
        self.slots = int(slots)
        self.slot_bytes = int(slot_bytes)
        self.lock = lock
        self._header_bytes = self.slots * 8
        size = self._header_bytes + self.slots * self.slot_bytes
        if _attach_name is None:
            self._shm = shared_memory.SharedMemory(create=True, size=size)
            self._owner = True
        else:
            self._shm = shared_memory.SharedMemory(name=_attach_name)
            self._owner = False
            if _untrack_on_attach:
                _untrack(self._shm)
        self._refcounts = np.frombuffer(
            self._shm.buf, dtype=np.int64, count=self.slots
        )
        if self._owner:
            self._refcounts[:] = 0
        self._data = np.frombuffer(
            self._shm.buf, dtype=np.uint8, offset=self._header_bytes
        )

    # -- lifecycle ------------------------------------------------------
    @property
    def name(self) -> str:
        """OS name of the backing segment (a ``/dev/shm`` entry on Linux)."""
        return self._shm.name

    def handle(self) -> PoolHandle:
        """Attachment descriptor for worker processes."""
        return PoolHandle(self.name, self.slots, self.slot_bytes)

    @classmethod
    def attach(cls, handle: PoolHandle, lock, *, untrack: bool = False) -> "SharedFramePool":
        """Worker-side view of an existing pool.

        Pass ``untrack=True`` only from a process with its own resource
        tracker (the ``spawn`` start method) — see :func:`_untrack`.
        """
        return cls(
            handle.slots,
            handle.slot_bytes,
            lock,
            _attach_name=handle.name,
            _untrack_on_attach=untrack,
        )

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self._refcounts = None
        self._data = None
        try:
            self._shm.close()
        except BufferError:
            # Decoded payloads still alias the mapping.  Disarm the
            # destructor and leave the unmap to process exit instead of
            # letting ``__del__`` retry and spam the same error.
            _pin(self._shm)

    def destroy(self) -> None:
        """Owner-side teardown: unmap and unlink the segment."""
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    # -- slot management ------------------------------------------------
    def allocate(self) -> int | None:
        """Take a reference on a free slot; ``None`` when exhausted."""
        with self.lock:
            free = np.flatnonzero(self._refcounts == 0)
            if free.size == 0:
                return None
            slot = int(free[0])
            self._refcounts[slot] = 1
            return slot

    def acquire(self, slot: int) -> None:
        """Add a reference (e.g. fan-out of one payload to many readers)."""
        with self.lock:
            if self._refcounts[slot] <= 0:
                raise ValueError(f"slot {slot} is not live")
            self._refcounts[slot] += 1

    def release(self, slot: int) -> None:
        """Drop a reference; at zero the slot becomes allocatable again."""
        with self.lock:
            if self._refcounts[slot] <= 0:
                raise ValueError(f"slot {slot} released more often than acquired")
            self._refcounts[slot] -= 1

    def _release_quiet(self, slot: int) -> None:
        """Finalizer hook: drop a reference, tolerating teardown.

        Decoded payloads release their slot from a GC finalizer, which
        may fire after :meth:`close` (mapping gone) or during
        interpreter shutdown (lock half-dead) — both mean the pool no
        longer needs the reference back, so failures are swallowed.
        """
        if self._refcounts is None:
            return
        try:
            self.release(slot)
        except Exception:  # pragma: no cover - shutdown-order dependent
            pass

    def live_slots(self) -> int:
        """Number of slots currently holding a referenced payload."""
        with self.lock:
            return int(np.count_nonzero(self._refcounts > 0))

    # -- payload transport ----------------------------------------------
    def encode(
        self, payload, *, min_bytes: int = 0
    ) -> tuple[ShmPayload | None, int, bool]:
        """Try to park ``payload``'s array buffers in a slot.

        Returns ``(descriptor, payload_bytes, spilled)``.
        ``descriptor`` is ``None`` — the caller must send ``payload``
        through the ordinary pickled path — when the payload carries
        fewer than ``min_bytes`` of array data (not worth a slot), does
        not fit in one slot, has non-contiguous buffers, or the pool is
        exhausted.  ``spilled`` is True only for the last two cases:
        the payload *wanted* a slot and could not get one (the signal
        behind the ``shm_spills`` metric).  ``payload_bytes`` is the
        measured size either way, for the bytes-moved metric.
        """
        split = _extract_buffers(payload)
        if split is None:
            return None, 0, True
        meta, raws, total = split
        nbytes = total + len(meta)
        if total < min_bytes or total == 0:
            return None, nbytes, False
        if total > self.slot_bytes:
            return None, nbytes, True
        slot = self.allocate()
        if slot is None:
            return None, nbytes, True
        base = slot * self.slot_bytes
        offset = base
        lengths = []
        for raw in raws:
            n = raw.nbytes
            self._data[offset : offset + n] = np.frombuffer(raw, dtype=np.uint8)
            lengths.append(n)
            offset += n
        return ShmPayload(slot, tuple(lengths), meta, nbytes), nbytes, False

    def decode(self, descriptor: ShmPayload):
        """Rebuild the payload parked by :meth:`encode`, aliasing the slot.

        The reconstructed arrays are **read-only views** straight into
        the pool slot — decode copies nothing.  The delivery's slot
        reference is dropped by a finalizer once the last such view is
        garbage-collected, so the slot stays live exactly as long as
        the receiver holds (any part of) the payload.  Read-only
        matters because fan-out deliveries of one broadcast payload
        share a single physical slot.
        """
        base = descriptor.slot * self.slot_bytes
        holder = self._data[base : base + sum(descriptor.lengths)]
        _gc_finalize(holder, self._release_quiet, descriptor.slot)
        view = memoryview(holder).toreadonly()
        buffers = []
        offset = 0
        for n in descriptor.lengths:
            buffers.append(view[offset : offset + n])
            offset += n
        return pickle.loads(descriptor.meta, buffers=buffers)


# ---------------------------------------------------------------------------
# One-shot published objects (the local graph views)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShmObjectHandle:
    """Descriptor of an object published once into its own segment."""

    name: str
    lengths: tuple[int, ...]
    meta: bytes


def publish_object(obj) -> tuple[ShmObjectHandle, shared_memory.SharedMemory] | None:
    """Write ``obj`` into a dedicated exactly-sized shm segment.

    Returns ``(handle, segment)`` — the caller owns the segment and
    must ``unlink`` it when every consumer is done — or ``None`` when
    the object has no contiguous array payload worth publishing.
    """
    split = _extract_buffers(obj)
    if split is None:
        return None
    meta, raws, total = split
    if total == 0:
        return None
    seg = shared_memory.SharedMemory(create=True, size=total)
    data = np.frombuffer(seg.buf, dtype=np.uint8)
    offset = 0
    lengths = []
    for raw in raws:
        n = raw.nbytes
        data[offset : offset + n] = np.frombuffer(raw, dtype=np.uint8)
        lengths.append(n)
        offset += n
    del data
    return ShmObjectHandle(seg.name, tuple(lengths), meta), seg


def attach_object(handle: ShmObjectHandle, *, untrack: bool = False, pin: bool = False):
    """Reconstruct a published object as zero-copy views into its segment.

    Returns ``(obj, segment)``.  The arrays inside ``obj`` alias the
    segment, so the caller must keep ``segment`` referenced for the
    object's lifetime.  Worker processes pass ``pin=True`` to keep the
    mapping alive until process exit without destructor noise, and
    ``untrack=True`` when they run their own resource tracker (spawn).
    """
    seg = shared_memory.SharedMemory(name=handle.name)
    if untrack:
        _untrack(seg)
    buffers = []
    offset = 0
    view = seg.buf.toreadonly()  # shared graph data must stay immutable
    for n in handle.lengths:
        buffers.append(view[offset : offset + n])
        offset += n
    obj = pickle.loads(handle.meta, buffers=buffers)
    if pin:
        _pin(seg)
    return obj, seg
