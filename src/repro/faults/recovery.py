"""Online localized recovery: detect, restore, replay — no global restart.

The original recovery model (:func:`repro.core.checkpoint.run_with_recovery`)
is *global restart*: a PE crash aborts the whole machine out of band
(:class:`~repro.net.machine.PECrashError`), and the driver re-executes
the program on every PE, replaying completed phases from coordinated
checkpoints.  At the paper-scale p the event engine unlocked
(2^9..2^15 PEs), that model throws away the work of thousands of
healthy survivors to repair one rank.

``Machine(recovery="localized")`` keeps failures *inside* the running
simulation instead.  Three mechanisms cooperate, all priced in the
alpha-beta cost model:

1. **Failure detection** — the :class:`RecoveryManager` runs a periodic
   heartbeat timer on the event engine (DES discipline, contended
   network).  Every tick charges each live PE one probe round trip
   (``2 * (alpha + beta * HEARTBEAT_WORDS)``), and a crashed rank is
   *discovered* at the first tick past its timeout — a simulated-time
   detection latency, not an out-of-band Python exception.

2. **Partner-replicated checkpoints** — with a
   :class:`~repro.core.checkpoint.BuddyCheckpointStore`, every
   ``ctx.checkpoint`` also ships the snapshot to a partner rank
   (both endpoints pay ``alpha + beta * words``).  Recovery restores
   the crashed rank from its partner's replica — one point-to-point
   transfer, no global stable-storage round and no
   ``prune_to_stable`` barrier on the survivor side.

3. **Sender-based message logging + replay** — the reliable transport
   logs every message since the receiver's last checkpoint.  On
   recovery the crashed rank's generator is respawned *inside the
   running engine* (:meth:`repro.sim.engine.SimEngine.respawn_pe`);
   survivors re-send their logged messages (priced, charged to the new
   ``recovery_seconds`` bucket), and the respawned rank's re-sends are
   suppressed by the existing per-channel sequence numbers — survivors
   dedup-discard them and never re-execute a completed phase.

The crashed rank's outage is decomposed into ``recover:detect`` /
``recover:restore`` / ``recover:replay`` spans (visible to every
exporter in :mod:`repro.obs`) and the whole outage is accumulated in
:attr:`repro.net.metrics.PEMetrics.recovery_seconds`.

See ``docs/FAULTS.md`` for the worked example and the migration note
from global restart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net.trace import SpanRecord

__all__ = [
    "HEARTBEAT_WORDS",
    "DEFAULT_RECOVERY_CONFIG",
    "MembershipEvent",
    "RecoveryConfig",
    "RecoveryManager",
    "RecoveryReport",
]

#: Words carried by one heartbeat probe (a cache line of liveness state).
HEARTBEAT_WORDS = 1


@dataclass(frozen=True)
class RecoveryConfig:
    """Tunables of the localized-recovery protocol.

    Attributes
    ----------
    heartbeat_period_alphas:
        Heartbeat probe cadence in multiples of the machine's
        ``alpha``.  Every period, every live PE pays one probe round
        trip (``2 * (alpha + beta * HEARTBEAT_WORDS)``) — the standing
        cost of running a failure detector at all.
    heartbeat_timeout_alphas:
        Detection timeout in multiples of ``alpha``: a rank is declared
        failed at the first heartbeat tick at least this long past its
        crash.  Worst-case detection latency is therefore about
        ``timeout + period``.
    replay_alpha_per_message:
        Per-message handling cost (in multiples of ``alpha``) the
        respawned rank pays to re-sequence each replayed message into
        its receive state.
    """

    heartbeat_period_alphas: float = 64.0
    heartbeat_timeout_alphas: float = 192.0
    replay_alpha_per_message: float = 1.0

    def __post_init__(self) -> None:
        if self.heartbeat_period_alphas <= 0:
            raise ValueError("heartbeat_period_alphas must be positive")
        if self.heartbeat_timeout_alphas < self.heartbeat_period_alphas:
            raise ValueError(
                "heartbeat_timeout_alphas must be at least the period "
                "(a timeout shorter than one probe interval detects nothing)"
            )
        if self.replay_alpha_per_message < 0:
            raise ValueError("replay_alpha_per_message must be non-negative")


#: Default detector constants.
DEFAULT_RECOVERY_CONFIG = RecoveryConfig()


@dataclass(frozen=True)
class MembershipEvent:
    """One membership change observed by the recovery manager.

    ``kind`` is ``"crash"`` (the rank stopped, at its fault-plan
    coordinate), ``"detect"`` (the heartbeat detector declared it
    failed), or ``"respawn"`` (its re-executed generator rejoined the
    machine).  ``time`` is simulated seconds.
    """

    kind: str
    rank: int
    time: float


@dataclass
class RecoveryReport:
    """What localized recovery did during one run."""

    #: Crash / detect / respawn events in simulated-time order.
    events: list[MembershipEvent] = field(default_factory=list)
    #: Messages re-delivered from survivors' send logs, summed over
    #: all recoveries.
    replayed_messages: int = 0
    #: Words shipped from partner replicas during restores.
    restored_words: int = 0

    @property
    def crashes(self) -> int:
        """Number of crash-stops handled in place."""
        return sum(1 for e in self.events if e.kind == "crash")

    @property
    def recovered_ranks(self) -> tuple[int, ...]:
        """Ranks respawned inside the running engine, in order."""
        return tuple(e.rank for e in self.events if e.kind == "respawn")


class RecoveryManager:
    """Per-run driver of detection, restore, and replay.

    Constructed by ``Machine.run`` when ``recovery="localized"``; the
    engine calls :meth:`start` when the DES loop begins, crash events
    are routed to :meth:`on_crash` instead of raising
    :class:`~repro.net.machine.PECrashError`, and the heartbeat tick
    does the rest.
    """

    def __init__(self, machine, config: RecoveryConfig | None = None):
        self.machine = machine
        self.config = config or DEFAULT_RECOVERY_CONFIG
        self.report = RecoveryReport()
        self._engine = None
        #: rank -> simulated crash time, while down and undetected.
        self._down: dict[int, float] = {}
        #: rank -> (collective_seq, collective_entries) at its last
        #: checkpoint; ranks missing here recover from program start.
        self._marks: dict[int, tuple[int, int]] = {}
        spec = machine.spec
        self._period = self.config.heartbeat_period_alphas * spec.alpha
        self._timeout = self.config.heartbeat_timeout_alphas * spec.alpha
        self._probe_dt = 2.0 * spec.message_time(HEARTBEAT_WORDS)

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def start(self, engine) -> None:
        """Begin heartbeating on ``engine`` (called by ``_run_des``)."""
        self._engine = engine
        engine.call_at(self._period, self._tick)

    def on_crash(self, rank: int) -> None:
        """A fault-plan crash fired for ``rank``: contain it in place.

        The rank's generator is closed (unwinding its open phase spans
        at the crash-time clock), it leaves the live set, and the
        heartbeat detector takes over — survivors keep running and only
        *discover* the failure at a later simulated time.
        """
        engine = self._engine
        now = engine.queue.now
        engine.kill_pe(rank)
        self._down[rank] = now
        self.report.events.append(MembershipEvent("crash", rank, now))
        self.machine._note_progress()

    def note_checkpoint(self, rank: int, collective_seq: int, collective_entries: int) -> None:
        """Record ``rank``'s machine-level state at its latest checkpoint."""
        self._marks[rank] = (collective_seq, collective_entries)

    # ------------------------------------------------------------------
    # Heartbeat
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        from ..net.machine import DeadlockError

        engine = self._engine
        machine = self.machine
        now = engine.queue.now
        live = engine._live
        for rank in sorted(live):
            pe = machine._contexts[rank]
            dt = pe._slowdown * self._probe_dt
            pe.metrics.clock += dt
            pe.metrics.comm_seconds += dt
            pe.metrics.heartbeats += 1
        if live:
            machine._note_progress()
        for rank in sorted(self._down):
            if now >= self._down[rank] + self._timeout:
                self._recover(rank, now)
        if live and not self._down and engine.queue.peek_time() is None:
            # The tick itself keeps the queue alive, so the engine's
            # generic exhaustion check never fires under localized
            # recovery; this is its exact replacement: live PEs exist,
            # no recovery is pending, and the only future events are
            # our own heartbeats — nothing can ever wake anyone.
            raise DeadlockError(
                machine._deadlock_diagnostic(
                    live,
                    "exact deadlock: all live PEs are blocked and only "
                    "heartbeat timers remain in the event queue",
                )
            )
        if live or self._down:
            engine.call_at(now + self._period, self._tick)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self, rank: int, t_detect: float) -> None:
        machine = self.machine
        engine = self._engine
        spec = machine.spec
        store = machine.checkpoint_store
        pe = machine._contexts[rank]
        metrics = pe.metrics
        self._down.pop(rank)
        self.report.events.append(MembershipEvent("detect", rank, t_detect))

        # Detection window: the rank sat dead from its crash-time clock
        # until the heartbeat tick that declared it failed.
        crash_clock = metrics.clock
        if t_detect > metrics.clock:
            metrics.clock = t_detect
        detect_end = metrics.clock
        metrics.spans.append(
            SpanRecord(
                rank=rank,
                name="recover:detect",
                start=min(crash_clock, detect_end),
                end=detect_end,
                depth=0,
            )
        )

        # Restore: the partner ships its replica of every snapshot the
        # rank had taken — one priced point-to-point transfer each way.
        mate = store.partner_of(rank)
        words = store.replica_words(rank)
        if words and mate != rank:
            ship = spec.message_time(words)
            mate_pe = machine._contexts[mate]
            mdt = mate_pe._slowdown * ship
            mate_pe.metrics.clock += mdt
            mate_pe.metrics.recovery_seconds += mdt
            rdt = pe._slowdown * ship
            metrics.clock += rdt
            self.report.restored_words += words
        restore_end = metrics.clock
        metrics.spans.append(
            SpanRecord(
                rank=rank,
                name="recover:restore",
                start=detect_end,
                end=restore_end,
                depth=0,
            )
        )
        store.respawn_rank(rank)

        # Rewind the rank's machine-level state to its last checkpoint
        # and re-deliver everything survivors logged for it since then.
        cseq, centries = self._marks.get(rank, (0, 0))
        machine._reset_pe_for_respawn(rank, cseq, centries)
        replayed = 0
        wire = machine._wire
        if wire is not None:
            replayed = wire.replay_to(rank, restore_end)
        self.report.replayed_messages += replayed
        metrics.clock += (
            pe._slowdown * replayed * self.config.replay_alpha_per_message * spec.alpha
        )
        replay_end = metrics.clock
        metrics.spans.append(
            SpanRecord(
                rank=rank,
                name="recover:replay",
                start=restore_end,
                end=replay_end,
                depth=0,
            )
        )
        metrics.recovery_seconds += replay_end - min(crash_clock, detect_end)

        # Respawn a fresh generator inside the running engine; its
        # first resume fires after the replayed deliveries land.
        self.report.events.append(MembershipEvent("respawn", rank, replay_end))
        engine.respawn_pe(rank, machine._spawn(rank), replay_end)
        machine._note_progress()
