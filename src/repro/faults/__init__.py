"""Deterministic fault injection for the simulated machine.

The paper's evaluation assumes a perfectly reliable MPI fabric; this
package provides the adversary that the runtime protocol verifier
(PR 1) was built for, plus the machinery that lets every algorithm
finish with *exact* triangle counts anyway:

* :class:`~repro.faults.plan.FaultPlan` — a seeded, declarative plan
  of message drops / duplicates / delays / reorderings, scheduled
  PE crash-stops (event-indexed or timed), and per-rank straggler
  slowdowns.  The :class:`~repro.net.machine.Machine` consults it at
  every send, delivery, and scheduling step.
* :mod:`repro.net.reliable` — the reliable-transport layer (sequence
  numbers, acks, timeout + exponential-backoff retransmit, dedup on
  receive) whose costs are charged to the alpha-beta model.  Under
  localized recovery it doubles as the sender-based message log.
* :mod:`repro.core.checkpoint` — checkpoint stores: phase-boundary
  snapshots plus :func:`run_with_recovery` (global restart from the
  last stable checkpoint) and :class:`BuddyCheckpointStore`
  (partner-replicated snapshots for localized recovery).
* :mod:`repro.faults.recovery` — online localized recovery: heartbeat
  failure detection, partner-checkpoint restore, and message-log
  replay, all in-run and charged to the alpha-beta model
  (``Machine(recovery="localized")``).
* :mod:`repro.faults.chaos` — the chaos harness: sweeps seeds x fault
  rates x crashes and asserts count-exactness against the sequential
  baseline (``repro-tc chaos`` on the command line).

See ``docs/FAULTS.md`` for the fault model, recovery semantics, and
determinism guarantees.
"""

from ..core.checkpoint import (
    BuddyCheckpointStore,
    CheckpointStore,
    RecoveryResult,
    run_with_recovery,
)
from ..net.reliable import (
    ReliableConfig,
    TransportError,
    fault_tolerant,
    reliable_send,
)
from .chaos import (
    CHAOS_ALGORITHMS,
    ChaosOutcome,
    format_campaign,
    run_campaign,
    run_chaos_case,
)
from .plan import CrashEvent, FaultPlan, TimedCrash
from .recovery import (
    DEFAULT_RECOVERY_CONFIG,
    MembershipEvent,
    RecoveryConfig,
    RecoveryManager,
    RecoveryReport,
)

__all__ = [
    "CrashEvent",
    "FaultPlan",
    "TimedCrash",
    "BuddyCheckpointStore",
    "CheckpointStore",
    "RecoveryResult",
    "run_with_recovery",
    "ReliableConfig",
    "TransportError",
    "fault_tolerant",
    "reliable_send",
    "DEFAULT_RECOVERY_CONFIG",
    "MembershipEvent",
    "RecoveryConfig",
    "RecoveryManager",
    "RecoveryReport",
    "CHAOS_ALGORITHMS",
    "ChaosOutcome",
    "format_campaign",
    "run_campaign",
    "run_chaos_case",
]
