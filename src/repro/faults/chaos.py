"""The chaos harness: fault campaigns asserting exact counts.

A *chaos case* runs one algorithm on one graph under one
:class:`~repro.faults.plan.FaultPlan` — reliable transport, optional
scheduled PE crash with checkpoint/restart — and compares the result
against the sequential COMPACT-FORWARD baseline.  A *campaign* sweeps
seeds × drop rates × algorithms; every case must return the **exact**
triangle count (resilience must never trade correctness).

Crash scheduling: a crash is declared as a *fraction* of the run, not
an absolute event index (nobody knows a run's length up front).  The
harness first executes a fault-free dry run to measure the machine's
total event count, then plants the crash at the requested fraction of
it — reproducible across hosts because event counts, unlike wall
times, are deterministic.

Entry points: :func:`run_chaos_case`, :func:`run_campaign`,
:func:`format_campaign`; ``repro-tc chaos`` on the command line; the
acceptance campaign lives in ``tests/test_faults.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.cetric import CETRIC2_CONFIG, CETRIC_CONFIG
from ..core.checkpoint import CheckpointStore, run_with_recovery
from ..core.ditric import DITRIC2_CONFIG, DITRIC_CONFIG
from ..core.edge_iterator import edge_iterator
from ..core.engine import EngineConfig, counting_program
from ..graphs.csr import CSRGraph
from ..graphs.distributed import DistGraph, distribute
from ..graphs.generators import gnm
from ..net.costmodel import DEFAULT_SPEC, MachineSpec
from ..net.machine import Machine
from .plan import CrashEvent, FaultPlan

__all__ = [
    "CHAOS_ALGORITHMS",
    "ChaosOutcome",
    "default_chaos_graph",
    "run_chaos_case",
    "run_campaign",
    "format_campaign",
]

#: Fault-tolerant algorithm configurations the harness can exercise.
CHAOS_ALGORITHMS: dict[str, EngineConfig] = {
    "ditric": DITRIC_CONFIG,
    "ditric2": DITRIC2_CONFIG,
    "cetric": CETRIC_CONFIG,
    "cetric2": CETRIC2_CONFIG,
}


@dataclass(frozen=True)
class ChaosOutcome:
    """One chaos case: configuration, result, and resilience costs."""

    algorithm: str
    graph: str
    num_pes: int
    seed: int
    drop_rate: float
    duplicate_rate: float
    crashed_rank: int | None
    #: Distributed count under faults vs. the sequential ground truth.
    triangles: int
    expected: int
    #: Restarts the recovery driver needed (0 = no crash).
    restarts: int
    #: Modelled running time of the surviving run.
    time: float
    retransmits: int
    messages_dropped: int
    duplicates_discarded: int

    @property
    def exact(self) -> bool:
        """Whether the faulty run still counted exactly."""
        return self.triangles == self.expected


def default_chaos_graph(seed: int = 7) -> CSRGraph:
    """The campaign's default input: a small triangle-rich GNM graph."""
    return gnm(48, 240, seed=seed, name=f"gnm48-{seed}")


def run_chaos_case(
    graph: CSRGraph,
    algorithm: str,
    num_pes: int = 4,
    *,
    seed: int = 0,
    drop_rate: float = 0.0,
    duplicate_rate: float = 0.0,
    delay_rate: float = 0.0,
    crash_fraction: float | None = None,
    crash_rank: int | None = None,
    stragglers: dict[int, float] | None = None,
    spec: MachineSpec = DEFAULT_SPEC,
    expected: int | None = None,
) -> ChaosOutcome:
    """Run one algorithm under one fault plan and check exactness.

    ``crash_fraction`` (in ``(0, 1)``) schedules one crash-stop of
    ``crash_rank`` (default: the middle rank) at that fraction of the
    fault-free run's event count; ``None`` disables crashes.
    ``expected`` short-circuits the sequential baseline when the
    caller already knows the ground truth (campaigns reuse it).
    """
    if algorithm not in CHAOS_ALGORITHMS:
        raise ValueError(
            f"unknown chaos algorithm {algorithm!r}; "
            f"choose from {sorted(CHAOS_ALGORITHMS)}"
        )
    config = CHAOS_ALGORITHMS[algorithm]
    if expected is None:
        expected = int(edge_iterator(graph).triangles)
    dist: DistGraph = distribute(graph, num_pes=num_pes)
    p = dist.num_pes

    crashes: tuple[CrashEvent, ...] = ()
    crashed_rank: int | None = None
    if crash_fraction is not None:
        if not (0.0 < crash_fraction < 1.0):
            raise ValueError("crash_fraction must be in (0, 1)")
        dry = Machine(p, spec).run(counting_program, dist, config)
        crashed_rank = p // 2 if crash_rank is None else crash_rank
        crashes = (
            CrashEvent(rank=crashed_rank, at_event=int(dry.events * crash_fraction)),
        )

    plan = FaultPlan(
        seed,
        drop_rate=drop_rate,
        duplicate_rate=duplicate_rate,
        delay_rate=delay_rate,
        crashes=crashes,
        stragglers=stragglers,
    )
    machine = Machine(
        p,
        spec,
        fault_plan=plan,
        transport="reliable",
        checkpoint_store=CheckpointStore(p),
    )
    recovery = run_with_recovery(machine, counting_program, dist, config)
    metrics = recovery.result.metrics
    return ChaosOutcome(
        algorithm=algorithm,
        graph=dist.name,
        num_pes=p,
        seed=seed,
        drop_rate=drop_rate,
        duplicate_rate=duplicate_rate,
        crashed_rank=crashed_rank,
        triangles=int(recovery.values[0].triangles_total),
        expected=expected,
        restarts=recovery.restarts,
        time=metrics.makespan,
        retransmits=metrics.total_retransmits,
        messages_dropped=metrics.total_messages_dropped,
        duplicates_discarded=metrics.total_duplicates_discarded,
    )


def run_campaign(
    *,
    algorithms: Sequence[str] = ("ditric", "cetric"),
    seeds: Iterable[int] = range(10),
    drop_rates: Sequence[float] = (0.0, 0.01, 0.05),
    duplicate_rate: float = 0.0,
    crash_fraction: float | None = 0.5,
    graph: CSRGraph | None = None,
    num_pes: int = 4,
    spec: MachineSpec = DEFAULT_SPEC,
) -> list[ChaosOutcome]:
    """Sweep seeds × drop rates × algorithms; return all outcomes.

    The defaults are the acceptance campaign of ISSUE 2: 10 seeds ×
    drop rates {0, 0.01, 0.05} × one scheduled PE crash for DITRIC and
    CETRIC, on a small triangle-rich GNM graph.
    """
    if graph is None:
        graph = default_chaos_graph()
    expected = int(edge_iterator(graph).triangles)
    outcomes: list[ChaosOutcome] = []
    for algorithm in algorithms:
        for drop_rate in drop_rates:
            for seed in seeds:
                outcomes.append(
                    run_chaos_case(
                        graph,
                        algorithm,
                        num_pes,
                        seed=seed,
                        drop_rate=drop_rate,
                        duplicate_rate=duplicate_rate,
                        crash_fraction=crash_fraction,
                        spec=spec,
                        expected=expected,
                    )
                )
    return outcomes


def format_campaign(outcomes: Sequence[ChaosOutcome]) -> str:
    """Human-readable campaign summary (one line per cell + verdict)."""
    if not outcomes:
        return "chaos campaign: no cases run"
    lines = [
        f"{'algorithm':<10s} {'drop':>6s} {'cases':>6s} {'exact':>6s} "
        f"{'restarts':>8s} {'retrans':>8s} {'dropped':>8s} {'dedup':>6s}"
    ]
    cells: dict[tuple[str, float], list[ChaosOutcome]] = {}
    for o in outcomes:
        cells.setdefault((o.algorithm, o.drop_rate), []).append(o)
    for (algorithm, drop_rate), cases in sorted(cells.items()):
        lines.append(
            f"{algorithm:<10s} {drop_rate:>6.2%} {len(cases):>6d} "
            f"{sum(c.exact for c in cases):>6d} "
            f"{sum(c.restarts for c in cases):>8d} "
            f"{sum(c.retransmits for c in cases):>8d} "
            f"{sum(c.messages_dropped for c in cases):>8d} "
            f"{sum(c.duplicates_discarded for c in cases):>6d}"
        )
    failures = [o for o in outcomes if not o.exact]
    if failures:
        lines.append(f"FAILED: {len(failures)}/{len(outcomes)} cases inexact")
        for o in failures[:10]:
            lines.append(
                f"  {o.algorithm} seed={o.seed} drop={o.drop_rate}: "
                f"got {o.triangles}, expected {o.expected}"
            )
    else:
        lines.append(
            f"OK: {len(outcomes)}/{len(outcomes)} cases returned the exact "
            f"sequential count"
        )
    return "\n".join(lines)
