"""The chaos harness: fault campaigns asserting exact counts.

A *chaos case* runs one algorithm on one graph under one
:class:`~repro.faults.plan.FaultPlan` — reliable transport, optional
scheduled PE crash with checkpoint/restart — and compares the result
against the sequential COMPACT-FORWARD baseline.  A *campaign* sweeps
seeds × drop rates × algorithms; every case must return the **exact**
triangle count (resilience must never trade correctness).

Crash scheduling: a crash is declared as a *fraction* of the run, not
an absolute event index (nobody knows a run's length up front).  The
harness first executes a fault-free dry run to measure the machine's
total event count, then plants the crash at the requested fraction of
it — reproducible across hosts because event counts, unlike wall
times, are deterministic.

Entry points: :func:`run_chaos_case`, :func:`run_campaign`,
:func:`format_campaign`; ``repro-tc chaos`` on the command line; the
acceptance campaign lives in ``tests/test_faults.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.cetric import CETRIC2_CONFIG, CETRIC_CONFIG
from ..core.checkpoint import CheckpointStore, run_with_recovery
from ..core.ditric import DITRIC2_CONFIG, DITRIC_CONFIG
from ..core.edge_iterator import edge_iterator
from ..core.engine import EngineConfig, counting_program
from ..graphs.csr import CSRGraph
from ..graphs.distributed import DistGraph, distribute
from ..graphs.generators import gnm
from ..net.costmodel import DEFAULT_SPEC, MachineSpec
from ..net.machine import Machine
from ..sim.network import Network
from .plan import CrashEvent, FaultPlan, TimedCrash

__all__ = [
    "CHAOS_ALGORITHMS",
    "ChaosOutcome",
    "default_chaos_graph",
    "run_chaos_case",
    "run_campaign",
    "format_campaign",
]

#: Fault-tolerant algorithm configurations the harness can exercise.
CHAOS_ALGORITHMS: dict[str, EngineConfig] = {
    "ditric": DITRIC_CONFIG,
    "ditric2": DITRIC2_CONFIG,
    "cetric": CETRIC_CONFIG,
    "cetric2": CETRIC2_CONFIG,
}


@dataclass(frozen=True)
class ChaosOutcome:
    """One chaos case: configuration, result, and resilience costs."""

    algorithm: str
    graph: str
    num_pes: int
    seed: int
    drop_rate: float
    duplicate_rate: float
    crashed_rank: int | None
    #: Distributed count under faults vs. the sequential ground truth.
    triangles: int
    expected: int
    #: Restarts the recovery driver needed (0 = no crash).
    restarts: int
    #: Modelled running time of the surviving run.
    time: float
    retransmits: int
    messages_dropped: int
    duplicates_discarded: int
    #: Recovery mode the case ran under (``"global"`` or ``"localized"``).
    recovery: str = "global"
    #: Ranks respawned in place (localized mode; empty under global).
    recovered_ranks: tuple[int, ...] = ()
    #: Duplicate top-level phase executions across *surviving* ranks.
    #: Localized recovery promises zero: survivors keep running while
    #: the crashed rank is rebuilt, so no phase is ever entered twice.
    survivor_phase_reexecutions: int = 0
    #: Simulated seconds charged to detection/restore/replay.
    recovery_seconds: float = 0.0

    @property
    def exact(self) -> bool:
        """Whether the faulty run still counted exactly."""
        return self.triangles == self.expected


def default_chaos_graph(seed: int = 7) -> CSRGraph:
    """The campaign's default input: a small triangle-rich GNM graph."""
    return gnm(48, 240, seed=seed, name=f"gnm48-{seed}")


def run_chaos_case(
    graph: CSRGraph,
    algorithm: str,
    num_pes: int = 4,
    *,
    seed: int = 0,
    drop_rate: float = 0.0,
    duplicate_rate: float = 0.0,
    delay_rate: float = 0.0,
    crash_fraction: float | None = None,
    crash_rank: int | None = None,
    stragglers: dict[int, float] | None = None,
    spec: MachineSpec = DEFAULT_SPEC,
    expected: int | None = None,
    recovery: str = "global",
) -> ChaosOutcome:
    """Run one algorithm under one fault plan and check exactness.

    ``crash_fraction`` (in ``(0, 1)``) schedules one crash-stop of
    ``crash_rank`` (default: the middle rank) at that fraction of the
    fault-free run; ``None`` disables crashes.  ``expected``
    short-circuits the sequential baseline when the caller already
    knows the ground truth (campaigns reuse it).

    ``recovery`` selects the resilience strategy:

    * ``"global"`` (default) — event-indexed crash, coordinated
      checkpoint/restart via :func:`run_with_recovery`;
    * ``"localized"`` — timed crash on the contended network, online
      detection + partner restore + log replay inside a *single*
      :meth:`~repro.net.machine.Machine.run` (no restart).  The dry
      run uses the same localized settings so heartbeat charges shift
      the crash coordinate consistently.
    """
    if algorithm not in CHAOS_ALGORITHMS:
        raise ValueError(
            f"unknown chaos algorithm {algorithm!r}; "
            f"choose from {sorted(CHAOS_ALGORITHMS)}"
        )
    if recovery not in ("global", "localized"):
        raise ValueError(
            f"unknown recovery mode {recovery!r}; expected 'global' or 'localized'"
        )
    config = CHAOS_ALGORITHMS[algorithm]
    if expected is None:
        expected = int(edge_iterator(graph).triangles)
    dist: DistGraph = distribute(graph, num_pes=num_pes)
    p = dist.num_pes
    if crash_fraction is not None and not (0.0 < crash_fraction < 1.0):
        raise ValueError("crash_fraction must be in (0, 1)")

    if recovery == "localized":
        return _run_localized_case(
            dist,
            algorithm,
            config,
            seed=seed,
            drop_rate=drop_rate,
            duplicate_rate=duplicate_rate,
            delay_rate=delay_rate,
            crash_fraction=crash_fraction,
            crash_rank=crash_rank,
            stragglers=stragglers,
            spec=spec,
            expected=expected,
        )

    crashes: tuple[CrashEvent, ...] = ()
    crashed_rank: int | None = None
    if crash_fraction is not None:
        dry = Machine(p, spec).run(counting_program, dist, config)
        crashed_rank = p // 2 if crash_rank is None else crash_rank
        crashes = (
            CrashEvent(rank=crashed_rank, at_event=int(dry.events * crash_fraction)),
        )

    plan = FaultPlan(
        seed,
        drop_rate=drop_rate,
        duplicate_rate=duplicate_rate,
        delay_rate=delay_rate,
        crashes=crashes,
        stragglers=stragglers,
    )
    machine = Machine(
        p,
        spec,
        fault_plan=plan,
        transport="reliable",
        checkpoint_store=CheckpointStore(p),
    )
    recovered = run_with_recovery(machine, counting_program, dist, config)
    metrics = recovered.result.metrics
    return ChaosOutcome(
        algorithm=algorithm,
        graph=dist.name,
        num_pes=p,
        seed=seed,
        drop_rate=drop_rate,
        duplicate_rate=duplicate_rate,
        crashed_rank=crashed_rank,
        triangles=int(recovered.values[0].triangles_total),
        expected=expected,
        restarts=recovered.restarts,
        time=metrics.makespan,
        retransmits=metrics.total_retransmits,
        messages_dropped=metrics.total_messages_dropped,
        duplicates_discarded=metrics.total_duplicates_discarded,
    )


def _survivor_phase_reexecutions(metrics, crashed_rank: int | None) -> int:
    """Duplicate top-level phase executions across surviving ranks.

    Counts, over every rank except ``crashed_rank``, how many depth-0
    non-recovery spans repeat a name already closed on that rank.
    Localized recovery's contract is that this is zero.
    """
    reexecutions = 0
    for rank, pe in enumerate(metrics.per_pe):
        if rank == crashed_rank:
            continue
        names = [
            s.name
            for s in pe.spans
            if s.depth == 0 and not s.name.startswith("recover:")
        ]
        reexecutions += len(names) - len(set(names))
    return reexecutions


def _run_localized_case(
    dist: DistGraph,
    algorithm: str,
    config: EngineConfig,
    *,
    seed: int,
    drop_rate: float,
    duplicate_rate: float,
    delay_rate: float,
    crash_fraction: float | None,
    crash_rank: int | None,
    stragglers: dict[int, float] | None,
    spec: MachineSpec,
    expected: int,
) -> ChaosOutcome:
    """One chaos case under online localized recovery (single run)."""
    p = dist.num_pes

    timed: tuple[TimedCrash, ...] = ()
    crashed_rank: int | None = None
    if crash_fraction is not None:
        dry = Machine(
            p,
            spec,
            network=Network(model="contended"),
            recovery="localized",
        ).run(counting_program, dist, config)
        crashed_rank = p // 2 if crash_rank is None else crash_rank
        timed = (
            TimedCrash(rank=crashed_rank, at_time=dry.time * crash_fraction),
        )

    plan = FaultPlan(
        seed,
        drop_rate=drop_rate,
        duplicate_rate=duplicate_rate,
        delay_rate=delay_rate,
        crash_at_time=timed,
        stragglers=stragglers,
    )
    machine = Machine(
        p,
        spec,
        network=Network(model="contended"),
        fault_plan=plan,
        recovery="localized",
    )
    result = machine.run(counting_program, dist, config)
    metrics = result.metrics
    report = result.recovery
    return ChaosOutcome(
        algorithm=algorithm,
        graph=dist.name,
        num_pes=p,
        seed=seed,
        drop_rate=drop_rate,
        duplicate_rate=duplicate_rate,
        crashed_rank=crashed_rank,
        triangles=int(result.values[0].triangles_total),
        expected=expected,
        restarts=0,
        time=metrics.makespan,
        retransmits=metrics.total_retransmits,
        messages_dropped=metrics.total_messages_dropped,
        duplicates_discarded=metrics.total_duplicates_discarded,
        recovery="localized",
        recovered_ranks=report.recovered_ranks if report is not None else (),
        survivor_phase_reexecutions=_survivor_phase_reexecutions(
            metrics, crashed_rank
        ),
        recovery_seconds=metrics.total_recovery_seconds,
    )


def run_campaign(
    *,
    algorithms: Sequence[str] = ("ditric", "cetric"),
    seeds: Iterable[int] = range(10),
    drop_rates: Sequence[float] = (0.0, 0.01, 0.05),
    duplicate_rate: float = 0.0,
    crash_fraction: float | None = 0.5,
    graph: CSRGraph | None = None,
    num_pes: int = 4,
    spec: MachineSpec = DEFAULT_SPEC,
    recovery: str = "global",
) -> list[ChaosOutcome]:
    """Sweep seeds × drop rates × algorithms; return all outcomes.

    The defaults are the acceptance campaign of ISSUE 2: 10 seeds ×
    drop rates {0, 0.01, 0.05} × one scheduled PE crash for DITRIC and
    CETRIC, on a small triangle-rich GNM graph.  ``recovery`` switches
    every case between global restart and online localized recovery.
    """
    if graph is None:
        graph = default_chaos_graph()
    expected = int(edge_iterator(graph).triangles)
    outcomes: list[ChaosOutcome] = []
    for algorithm in algorithms:
        for drop_rate in drop_rates:
            for seed in seeds:
                outcomes.append(
                    run_chaos_case(
                        graph,
                        algorithm,
                        num_pes,
                        seed=seed,
                        drop_rate=drop_rate,
                        duplicate_rate=duplicate_rate,
                        crash_fraction=crash_fraction,
                        spec=spec,
                        expected=expected,
                        recovery=recovery,
                    )
                )
    return outcomes


def format_campaign(outcomes: Sequence[ChaosOutcome]) -> str:
    """Human-readable campaign summary (one line per cell + verdict)."""
    if not outcomes:
        return "chaos campaign: no cases run"
    lines = [
        f"{'algorithm':<10s} {'drop':>6s} {'cases':>6s} {'exact':>6s} "
        f"{'restarts':>8s} {'retrans':>8s} {'dropped':>8s} {'dedup':>6s}"
    ]
    cells: dict[tuple[str, float], list[ChaosOutcome]] = {}
    for o in outcomes:
        cells.setdefault((o.algorithm, o.drop_rate), []).append(o)
    for (algorithm, drop_rate), cases in sorted(cells.items()):
        lines.append(
            f"{algorithm:<10s} {drop_rate:>6.2%} {len(cases):>6d} "
            f"{sum(c.exact for c in cases):>6d} "
            f"{sum(c.restarts for c in cases):>8d} "
            f"{sum(c.retransmits for c in cases):>8d} "
            f"{sum(c.messages_dropped for c in cases):>8d} "
            f"{sum(c.duplicates_discarded for c in cases):>6d}"
        )
    localized = [o for o in outcomes if o.recovery == "localized"]
    if localized:
        recovered = sum(len(o.recovered_ranks) for o in localized)
        reexecutions = sum(o.survivor_phase_reexecutions for o in localized)
        lines.append(
            f"localized: {len(localized)} cases, {recovered} ranks respawned "
            f"in place, {reexecutions} survivor phase re-executions"
        )
    failures = [o for o in outcomes if not o.exact]
    if failures:
        lines.append(f"FAILED: {len(failures)}/{len(outcomes)} cases inexact")
        for o in failures[:10]:
            lines.append(
                f"  {o.algorithm} seed={o.seed} drop={o.drop_rate}: "
                f"got {o.triangles}, expected {o.expected}"
            )
    else:
        lines.append(
            f"OK: {len(outcomes)}/{len(outcomes)} cases returned the exact "
            f"sequential count"
        )
    return "\n".join(lines)
