"""The declarative, seeded fault plan.

A :class:`FaultPlan` describes *what the network and the machines do
wrong* during one simulated run: per-transmission message faults
(drop, duplicate, delay, reorder), scheduled PE crash-stops, and
per-rank straggler slowdowns.

Determinism
-----------
All probabilistic decisions are drawn from one ``numpy`` generator
seeded at construction.  The event engine of :mod:`repro.sim` executes
deterministically and consults the plan in a deterministic event order
(on the alpha-beta network, the *same* order as the legacy round-robin
scheduler — drops, delays, and crash coordinates are bit-identical
between schedulers, pinned by ``tests/test_faults.py``), so a run is a
pure function of ``(program, inputs, spec, FaultPlan seed)`` — the
same guarantee the fault-free machine gives, extended to faulty runs.
Under the contended model, delays defer the message's injection event
and retransmit timeouts fire as engine timer events.
Decision draws only happen for fault classes with a non-zero rate, so
enabling one fault class does not perturb the decision stream of
another run that never used it.

A plan is *stateful*: crash events fire at most once per plan
instance (a crash-stopped PE does not crash again after the
checkpoint/restart driver replaces it), and the RNG stream continues
across restart attempts of :func:`repro.core.checkpoint.run_with_recovery`.
Call :meth:`FaultPlan.reset` (or build a fresh plan from the same
seed) to replay a run bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

__all__ = ["CrashEvent", "FaultPlan", "TimedCrash"]


@dataclass(frozen=True)
class TimedCrash:
    """Crash-stop of one PE, scheduled by *simulated time*.

    Event-indexed :class:`CrashEvent` schedules land a crash at a
    reproducible point of the protocol, but heartbeat-based failure
    detection (``Machine(recovery="localized")``) reasons in simulated
    seconds — a detection timeout is meaningless against an event
    counter.  A ``TimedCrash`` fires as a timer event of the
    :class:`~repro.sim.engine.SimEngine` at ``at_time`` simulated
    seconds, so it requires the contended network model (the DES
    discipline); the machine rejects timed crashes on instant
    alpha-beta networks, whose engine runs no time loop.

    Like event-indexed crashes, each timed crash fires at most once
    per plan instance and is re-armed by :meth:`FaultPlan.reset`.
    """

    rank: int
    at_time: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("crash rank must be non-negative")
        if self.at_time < 0:
            raise ValueError("crash time must be non-negative")


@dataclass(frozen=True)
class CrashEvent:
    """Crash-stop of one PE, scheduled by machine event index.

    The machine maintains a global monotone event counter (every send,
    delivery, and charge increments it); the PE crash-stops the first
    time it is scheduled with the counter at or past ``at_event``.
    Event indices — not simulated times — key the schedule so that a
    crash lands at a reproducible point of the protocol regardless of
    cost-model constants.
    """

    rank: int
    at_event: int

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("crash rank must be non-negative")
        if self.at_event < 0:
            raise ValueError("crash event index must be non-negative")


class FaultPlan:
    """Seeded, declarative fault-injection plan for one simulated run.

    Parameters
    ----------
    seed:
        Seed of the decision RNG; identical seeds replay identical
        fault sequences (given the same program and machine spec).
    drop_rate:
        Probability that one wire transmission is lost.  Under
        reliable transport the sender retransmits with exponential
        backoff; under the lossy transport the message just vanishes.
    duplicate_rate:
        Probability that a delivered message arrives twice.  Reliable
        transport discards the copy on receive (``duplicates_discarded``);
        the lossy transport hands both copies to the program.
    delay_rate / delay_alphas:
        Probability that a delivered message is delayed, and the mean
        extra latency in multiples of the machine's ``alpha``.
    reorder_rate:
        (Lossy transport only.)  Probability that a delivered message
        jumps ahead of messages already queued for its tag class.
    crashes:
        :class:`CrashEvent` schedule; each event fires at most once
        per plan instance.
    crash_at_time:
        :class:`TimedCrash` schedule keyed by simulated seconds
        instead of event index; requires the contended network model.
        Each timed crash also fires at most once per plan instance.
    stragglers:
        ``rank -> slowdown`` factors (>= 1): every charged compute and
        message cost of that PE is multiplied by the factor.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_alphas: float = 16.0,
        reorder_rate: float = 0.0,
        crashes: tuple[CrashEvent, ...] = (),
        crash_at_time: tuple[TimedCrash, ...] = (),
        stragglers: Mapping[int, float] | None = None,
    ):
        for name, rate in (
            ("drop_rate", drop_rate),
            ("duplicate_rate", duplicate_rate),
            ("delay_rate", delay_rate),
            ("reorder_rate", reorder_rate),
        ):
            if not (0.0 <= rate < 1.0):
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        if delay_alphas < 0:
            raise ValueError("delay_alphas must be non-negative")
        stragglers = dict(stragglers or {})
        if any(f < 1.0 for f in stragglers.values()):
            raise ValueError("straggler slowdown factors must be >= 1")
        self.seed = int(seed)
        self.drop_rate = float(drop_rate)
        self.duplicate_rate = float(duplicate_rate)
        self.delay_rate = float(delay_rate)
        self.delay_alphas = float(delay_alphas)
        self.reorder_rate = float(reorder_rate)
        self.crashes = tuple(crashes)
        self.crash_at_time = tuple(crash_at_time)
        self.stragglers = stragglers
        self.reset()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Rewind the decision RNG and re-arm all crash events."""
        self._rng = np.random.default_rng(self.seed)
        self._fired: set[int] = set()
        self._fired_timed: set[int] = set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def any_crashes(self) -> bool:
        """Whether the plan schedules any crash (event- or time-keyed)."""
        return bool(self.crashes) or bool(self.crash_at_time)

    @property
    def any_message_faults(self) -> bool:
        """Whether any wire-level fault class has a non-zero rate."""
        return (
            self.drop_rate > 0
            or self.duplicate_rate > 0
            or self.delay_rate > 0
            or self.reorder_rate > 0
        )

    def to_dict(self) -> dict[str, Any]:
        """Declarative form (JSON-ready) for CLIs and reports."""
        return {
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
            "delay_rate": self.delay_rate,
            "delay_alphas": self.delay_alphas,
            "reorder_rate": self.reorder_rate,
            "crashes": [(c.rank, c.at_event) for c in self.crashes],
            "crash_at_time": [(c.rank, c.at_time) for c in self.crash_at_time],
            "stragglers": dict(self.stragglers),
        }

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        spec = dict(spec)
        crashes = tuple(
            CrashEvent(rank=int(r), at_event=int(e))
            for r, e in spec.pop("crashes", ())
        )
        timed = tuple(
            TimedCrash(rank=int(r), at_time=float(t))
            for r, t in spec.pop("crash_at_time", ())
        )
        seed = int(spec.pop("seed", 0))
        return cls(seed, crashes=crashes, crash_at_time=timed, **spec)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultPlan(seed={self.seed}, drop={self.drop_rate}, "
            f"dup={self.duplicate_rate}, delay={self.delay_rate}, "
            f"reorder={self.reorder_rate}, crashes={len(self.crashes)}, "
            f"timed_crashes={len(self.crash_at_time)}, "
            f"stragglers={len(self.stragglers)})"
        )

    # ------------------------------------------------------------------
    # Decisions (consumed by the machine in deterministic event order)
    # ------------------------------------------------------------------
    def should_drop(self) -> bool:
        """Decide whether the next wire transmission is lost."""
        return self.drop_rate > 0 and self._rng.random() < self.drop_rate

    def should_duplicate(self) -> bool:
        """Decide whether the next delivery arrives twice."""
        return self.duplicate_rate > 0 and self._rng.random() < self.duplicate_rate

    def should_reorder(self) -> bool:
        """Decide whether the next delivery jumps its tag queue."""
        return self.reorder_rate > 0 and self._rng.random() < self.reorder_rate

    def delay_seconds(self, alpha: float) -> float:
        """Extra wire latency for the next delivery (0.0 if undelayed)."""
        if self.delay_rate <= 0 or self._rng.random() >= self.delay_rate:
            return 0.0
        # Mean ``delay_alphas * alpha``, spread uniformly over [0.5x, 1.5x].
        return self.delay_alphas * alpha * (0.5 + self._rng.random())

    def slowdown(self, rank: int) -> float:
        """Straggler factor of ``rank`` (1.0 for healthy PEs)."""
        return self.stragglers.get(rank, 1.0)

    def crash_due(self, rank: int, event_index: int) -> bool:
        """Fire (at most once) any crash scheduled for ``rank`` by now."""
        for i, crash in enumerate(self.crashes):
            if i in self._fired or crash.rank != rank:
                continue
            if event_index >= crash.at_event:
                self._fired.add(i)
                return True
        return False

    def claim_timed(self, index: int) -> bool:
        """Fire (at most once) the timed crash at ``index``.

        The engine schedules one timer event per entry of
        ``crash_at_time``; the first claim wins and later claims (from
        restart attempts that re-register timers) are rejected, so a
        crash-stopped PE does not crash again after recovery.
        """
        if index in self._fired_timed:
            return False
        self._fired_timed.add(index)
        return True
