"""Standard Bloom filter (the paper's footnoted AMQ default).

Section IV-E approximates the global phase by replacing each shipped
neighborhood ``A(v)`` with an approximate-membership-query structure
``A'(v)``; "a typical implementation would be a Bloom filter".  Adds
and queries are fully vectorized; the filter serializes to a compact
bit array whose size in machine words is what the approximate global
phase charges to the wire.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .hashing import hash_to_range

__all__ = ["BloomFilter", "optimal_num_hashes", "false_positive_rate"]


def optimal_num_hashes(bits_per_element: float) -> int:
    """``k = round(m/n * ln 2)``, at least 1."""
    return max(1, int(round(bits_per_element * math.log(2.0))))


def false_positive_rate(num_bits: int, num_hashes: int, num_elements: int) -> float:
    """Expected FPR ``(1 - e^{-kn/m})^k`` of a standard Bloom filter."""
    if num_elements == 0 or num_bits == 0:
        return 0.0 if num_elements == 0 else 1.0
    return float(
        (1.0 - math.exp(-num_hashes * num_elements / num_bits)) ** num_hashes
    )


@dataclass
class BloomFilter:
    """A fixed-size Bloom filter over int64 keys.

    Parameters
    ----------
    num_bits:
        Filter size in bits (rounded up to a multiple of 64 words
        internally).
    num_hashes:
        Number of hash functions ``k``.
    seed:
        Hash seed — senders and receivers must agree on it (in the
        algorithm both sides derive it from the record vertex).
    """

    num_bits: int
    num_hashes: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_bits < 1:
            raise ValueError("num_bits must be positive")
        if self.num_hashes < 1:
            raise ValueError("num_hashes must be positive")
        self._words = np.zeros((self.num_bits + 63) // 64, dtype=np.uint64)
        self._count = 0

    @classmethod
    def for_elements(
        cls, num_elements: int, bits_per_element: float = 8.0, seed: int = 0
    ) -> "BloomFilter":
        """Size a filter for ``num_elements`` keys at a bits/element budget."""
        bits = max(64, int(math.ceil(max(num_elements, 1) * bits_per_element)))
        return cls(bits, optimal_num_hashes(bits_per_element), seed=seed)

    @property
    def num_elements(self) -> int:
        """Number of keys added so far."""
        return self._count

    @property
    def storage_words(self) -> int:
        """Wire size in 64-bit machine words."""
        return int(self._words.size)

    def add(self, keys: np.ndarray) -> None:
        """Insert an array of keys (vectorized)."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        pos = hash_to_range(keys, self.num_hashes, self.num_bits, self.seed).ravel()
        np.bitwise_or.at(self._words, pos // 64, np.uint64(1) << (pos % 64).astype(np.uint64))
        self._count += int(keys.size)

    def query(self, keys: np.ndarray) -> np.ndarray:
        """Membership test per key; true for all inserted keys."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        pos = hash_to_range(keys, self.num_hashes, self.num_bits, self.seed)
        bits = (self._words[pos // 64] >> (pos % 64).astype(np.uint64)) & np.uint64(1)
        return np.all(bits.astype(bool), axis=0)

    def expected_fpr(self) -> float:
        """Analytic FPR at the current fill."""
        return false_positive_rate(self.num_bits, self.num_hashes, self._count)

    def fill_fraction(self) -> float:
        """Fraction of set bits (diagnostic)."""
        if self.num_bits == 0:
            return 0.0
        set_bits = int(np.bitwise_count(self._words).sum()) if hasattr(np, "bitwise_count") else int(
            sum(bin(int(w)).count("1") for w in self._words)
        )
        return set_bits / float(self.num_bits)
