"""Vectorized splittable hash families for the AMQ structures.

Multiply-shift / SplitMix64-style mixing over int64 NumPy arrays: fast,
deterministic per seed, and good enough avalanche behaviour for Bloom
filters (the false-positive-rate tests in the suite check this
empirically).
"""

from __future__ import annotations

import numpy as np

__all__ = ["mix64", "hash_family", "hash_to_range"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def mix64(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """SplitMix64 finalizer over an int64/uint64 array (vectorized).

    All arithmetic wraps modulo 2^64 by design (hash mixing).
    """
    x = values.astype(np.uint64, copy=True)
    stream = np.uint64((0x9E3779B97F4A7C15 * (seed + 1)) & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        x += stream
        x ^= x >> np.uint64(30)
        x *= _MIX1
        x ^= x >> np.uint64(27)
        x *= _MIX2
        x ^= x >> np.uint64(31)
    return x


def hash_family(values: np.ndarray, k: int, seed: int = 0) -> np.ndarray:
    """``k`` independent 64-bit hashes per value, shape ``(k, len)``.

    Uses double hashing (Kirsch–Mitzenmacher): ``h_i = h1 + i * h2``,
    which preserves Bloom-filter FPR guarantees with two base hashes.
    """
    values = np.asarray(values)
    h1 = mix64(values, seed=seed)
    h2 = mix64(values, seed=seed + 0x5151) | np.uint64(1)  # odd => full period
    i = np.arange(k, dtype=np.uint64)[:, None]
    with np.errstate(over="ignore"):  # modulo-2^64 arithmetic by design
        return h1[None, :] + i * h2[None, :]


def hash_to_range(values: np.ndarray, k: int, size: int, seed: int = 0) -> np.ndarray:
    """``k`` hashes per value reduced to ``[0, size)``."""
    if size <= 0:
        raise ValueError("size must be positive")
    return (hash_family(values, k, seed) % np.uint64(size)).astype(np.int64)
