"""Approximate-membership-query structures for the approximate global phase.

* :class:`~repro.amq.bloom.BloomFilter` — the "typical implementation"
  the paper names;
* :class:`~repro.amq.ssbf.SingleShotBloomFilter` — the compressed
  single-shot variant of footnote 2, with Rice-coded wire size;
* :mod:`~repro.amq.hashing` — vectorized hash families.
"""

from .bloom import BloomFilter, false_positive_rate, optimal_num_hashes
from .hashing import hash_family, hash_to_range, mix64
from .ssbf import SingleShotBloomFilter, optimal_rice_parameter, rice_encoded_bits

__all__ = [
    "BloomFilter",
    "false_positive_rate",
    "optimal_num_hashes",
    "hash_family",
    "hash_to_range",
    "mix64",
    "SingleShotBloomFilter",
    "optimal_rice_parameter",
    "rice_encoded_bits",
]
