"""Compressed single-shot Bloom filter (Putze, Sanders & Singler 2009).

The paper's footnote 2 remarks that a *compressed single-shot Bloom
filter* would be the more appropriate AMQ for the approximate global
phase because it needs less communication volume.  A single-shot
filter uses ``k = 1`` hash function over a large sparse bit range and
ships the *Golomb/Rice-coded gaps* between set positions instead of
the raw bit array — near the information-theoretic minimum of
``n log2(m/n)`` bits for ``n`` keys in ``m`` cells.

For the simulation the set positions are kept as a sorted array
(queries are a ``searchsorted``); what goes on the wire — and what the
cost model charges — is the exact Rice-coded size computed by
:func:`rice_encoded_bits`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .hashing import hash_to_range

__all__ = ["SingleShotBloomFilter", "rice_encoded_bits", "optimal_rice_parameter"]


def optimal_rice_parameter(num_cells: int, num_set: int) -> int:
    """Rice parameter ``k`` minimizing the code length for geometric gaps.

    For set density ``p = num_set / num_cells`` the gaps are
    ~geometric; the classic choice is ``k = round(log2(ln 2 / p))``,
    clamped to ``>= 0``.
    """
    if num_set <= 0 or num_cells <= 0:
        return 0
    p = num_set / num_cells
    if p >= 1.0:
        return 0
    return max(0, int(round(math.log2(math.log(2.0) / p))))


def rice_encoded_bits(positions: np.ndarray, rice_k: int) -> int:
    """Exact bit count of Rice-coding the gaps of sorted positions.

    Each gap ``g`` costs ``(g >> k)`` unary bits plus ``k + 1`` bits
    (terminator + remainder).
    """
    positions = np.asarray(positions, dtype=np.int64)
    if positions.size == 0:
        return 0
    gaps = np.diff(np.concatenate([[0], positions]))
    return int((gaps >> rice_k).sum()) + positions.size * (rice_k + 1)


@dataclass
class SingleShotBloomFilter:
    """One-hash Bloom filter with Rice-compressed wire representation.

    Parameters
    ----------
    num_cells:
        Size of the (virtual) bit range; choose ``~ c * n`` cells for
        ``n`` keys to get FPR ``~ 1 - e^{-1/c} ~= 1/c``.
    seed:
        Hash seed shared between sender and receiver.
    """

    num_cells: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_cells < 1:
            raise ValueError("num_cells must be positive")
        self._positions = np.empty(0, dtype=np.int64)
        self._count = 0

    @classmethod
    def for_elements(
        cls, num_elements: int, cells_per_element: float = 16.0, seed: int = 0
    ) -> "SingleShotBloomFilter":
        """Size for a target FPR of roughly ``1 / cells_per_element``."""
        cells = max(2, int(math.ceil(max(num_elements, 1) * cells_per_element)))
        return cls(cells, seed=seed)

    @property
    def num_elements(self) -> int:
        """Number of keys added."""
        return self._count

    def add(self, keys: np.ndarray) -> None:
        """Insert keys (vectorized; duplicate cells collapse)."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        pos = hash_to_range(keys, 1, self.num_cells, self.seed)[0]
        self._positions = np.unique(np.concatenate([self._positions, pos]))
        self._count += int(keys.size)

    def query(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized membership test (no false negatives)."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        pos = hash_to_range(keys, 1, self.num_cells, self.seed)[0]
        idx = np.searchsorted(self._positions, pos)
        idx_c = np.minimum(idx, max(self._positions.size - 1, 0))
        if self._positions.size == 0:
            return np.zeros(keys.size, dtype=bool)
        return (idx < self._positions.size) & (self._positions[idx_c] == pos)

    @property
    def storage_words(self) -> int:
        """Wire size in 64-bit words: Rice-coded gaps plus a 1-word header."""
        k = optimal_rice_parameter(self.num_cells, self._positions.size)
        bits = rice_encoded_bits(self._positions, k)
        return 1 + (bits + 63) // 64

    def expected_fpr(self) -> float:
        """FPR for a key not in the set: fraction of occupied cells."""
        return self._positions.size / float(self.num_cells)
