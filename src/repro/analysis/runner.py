"""Uniform driver: run any algorithm on a simulated machine.

Wraps the SPMD programs behind a single name-based entry point and
normalizes their outcomes into :class:`RunResult` rows (the unit every
benchmark table/figure in this repo is built from).  Failures the paper
reports for competitors — TriC's out-of-memory crashes — are captured
as failed rows instead of exceptions, mirroring how the paper plots
missing points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..baselines.havoqgt import havoqgt_program
from ..baselines.tric import tric_program
from ..core.cetric import CETRIC2_CONFIG, CETRIC_CONFIG
from ..core.ditric import DITRIC2_CONFIG, DITRIC_CONFIG
from ..core.edge_iterator import edge_iterator
from ..core.engine import EngineConfig, counting_program
from ..core.naive_distributed import NAIVE_AGGREGATED_CONFIG, NAIVE_CONFIG
from ..graphs.csr import CSRGraph
from ..graphs.distributed import DistGraph, distribute
from ..net.costmodel import DEFAULT_SPEC, MachineSpec
from ..net.machine import Machine, OutOfMemoryError
from ..net.metrics import RunMetrics
from ..net.trace import Tracer

__all__ = [
    "RunResult",
    "ALGORITHMS",
    "run_algorithm",
    "memory_limited_spec",
]

#: Engine-based algorithm configurations by public name.
_ENGINE_CONFIGS: dict[str, EngineConfig] = {
    "naive": NAIVE_CONFIG,
    "naive-aggregated": NAIVE_AGGREGATED_CONFIG,
    "ditric": DITRIC_CONFIG,
    "ditric2": DITRIC2_CONFIG,
    "cetric": CETRIC_CONFIG,
    "cetric2": CETRIC2_CONFIG,
}

#: All runnable algorithm names (plus "sequential").
ALGORITHMS: tuple[str, ...] = (
    "sequential",
    *_ENGINE_CONFIGS,
    "tric",
    "havoqgt",
)


@dataclass
class RunResult:
    """One (algorithm, graph, p) measurement row."""

    algorithm: str
    graph: str
    num_pes: int
    triangles: int | None
    #: Modelled running time in seconds (None if the run failed).
    time: float | None
    max_messages: int = 0
    bottleneck_volume: int = 0
    total_volume: int = 0
    total_messages: int = 0
    total_ops: int = 0
    peak_buffer_words: int = 0
    #: Resilience counters (nonzero only under injected faults).
    retransmits: int = 0
    messages_dropped: int = 0
    duplicates_discarded: int = 0
    phases: dict[str, float] = field(default_factory=dict)
    #: Failure label ("out-of-memory") when the run did not complete.
    failed: str | None = None
    #: Full per-PE metrics (spans included) for the observability
    #: exporters of :mod:`repro.obs`; not part of :meth:`as_dict`.
    metrics: RunMetrics | None = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        """Whether the run completed."""
        return self.failed is None

    def as_dict(self) -> dict[str, Any]:
        """Flat dict for table rendering."""
        row: dict[str, Any] = {
            "algorithm": self.algorithm,
            "graph": self.graph,
            "p": self.num_pes,
            "triangles": self.triangles,
            "time": self.time,
            "max_messages": self.max_messages,
            "bottleneck_volume": self.bottleneck_volume,
            "total_volume": self.total_volume,
            "total_ops": self.total_ops,
            "failed": self.failed or "",
        }
        for name, t in sorted(self.phases.items()):
            row[f"phase_{name}"] = t
        return row


def memory_limited_spec(
    dist: DistGraph, *, spec: MachineSpec = DEFAULT_SPEC, words_per_local_arc: float = 8.0
) -> MachineSpec:
    """A spec whose per-PE memory budget scales with the local input.

    The paper's machines have a *fixed* 96 GB per node, which for its
    billion-edge inputs is a small multiple of the local graph size —
    that proportionality is what makes TriC's superlinear buffering
    fatal.  Scaling the budget with ``|E_i|`` reproduces the same
    failure boundary on our scaled-down instances.
    """
    max_arcs = max((v.num_local_arcs for v in dist.views), default=1)
    budget = max(1024, int(words_per_local_arc * max(max_arcs, 1)))
    return spec.scaled(memory_words=budget)


def _run_sequential(graph: CSRGraph) -> RunResult:
    import time as _time

    t0 = _time.perf_counter()
    res = edge_iterator(graph)
    elapsed = _time.perf_counter() - t0
    return RunResult(
        algorithm="sequential",
        graph=graph.name,
        num_pes=1,
        triangles=res.triangles,
        time=elapsed,
        total_ops=res.intersection_ops,
    )


def run_algorithm(
    graph: CSRGraph | DistGraph,
    algorithm: str,
    num_pes: int | None = None,
    *,
    spec: MachineSpec = DEFAULT_SPEC,
    config_overrides: dict[str, Any] | None = None,
    program_kwargs: dict[str, Any] | None = None,
    tracer: Tracer | None = None,
) -> RunResult:
    """Run one algorithm and return a normalized result row.

    Parameters
    ----------
    graph:
        A global :class:`CSRGraph` (distributed on the fly) or an
        already-distributed :class:`DistGraph`.
    algorithm:
        One of :data:`ALGORITHMS`.
    num_pes:
        Required when ``graph`` is a global graph and the algorithm is
        distributed.
    spec:
        Machine cost-model constants (see
        :func:`memory_limited_spec` for OOM-faithful budgets).
    config_overrides:
        For engine-based algorithms: replace
        :class:`~repro.core.engine.EngineConfig` fields, e.g.
        ``{"threshold_factor": 0.25}``.
    program_kwargs:
        Extra keyword arguments for baseline programs (e.g. HavoqGT's
        ``batch_pairs``).
    tracer:
        Optional :class:`~repro.net.trace.Tracer` receiving every
        message/phase event of the run (Chrome-trace export).
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")
    if algorithm == "sequential":
        if not isinstance(graph, CSRGraph):
            raise ValueError("sequential counting needs the global graph")
        return _run_sequential(graph)

    if isinstance(graph, DistGraph):
        dist = graph
    else:
        if num_pes is None:
            raise ValueError("num_pes required when passing a global graph")
        dist = distribute(graph, num_pes=num_pes)
    p = dist.num_pes
    kwargs = dict(program_kwargs or {})

    program: Callable
    args: tuple
    if algorithm in _ENGINE_CONFIGS:
        cfg = _ENGINE_CONFIGS[algorithm]
        if config_overrides:
            from dataclasses import replace

            cfg = replace(cfg, **config_overrides)
        program, args = counting_program, (dist, cfg)
    elif algorithm == "tric":
        program, args = tric_program, (dist,)
    else:
        program, args = havoqgt_program, (dist,)

    machine = Machine(p, spec, tracer=tracer)
    try:
        result = machine.run(program, *args, **kwargs)
    except OutOfMemoryError:
        return RunResult(
            algorithm=algorithm,
            graph=dist.name,
            num_pes=p,
            triangles=None,
            time=None,
            failed="out-of-memory",
        )
    metrics = result.metrics
    return RunResult(
        algorithm=algorithm,
        graph=dist.name,
        num_pes=p,
        triangles=int(result.values[0].triangles_total),
        time=metrics.makespan,
        max_messages=metrics.max_messages_sent,
        bottleneck_volume=metrics.bottleneck_volume,
        total_volume=metrics.total_volume,
        total_messages=metrics.total_messages,
        total_ops=metrics.total_ops,
        peak_buffer_words=metrics.max_peak_buffer_words,
        retransmits=metrics.total_retransmits,
        messages_dropped=metrics.total_messages_dropped,
        duplicates_discarded=metrics.total_duplicates_discarded,
        phases=metrics.phase_breakdown(),
        metrics=metrics,
    )
