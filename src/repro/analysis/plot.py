"""Terminal (ASCII) log-log plots of scaling series.

The paper's figures are log-log scaling plots; this renderer draws the
same series as text so benchmark output and the CLI can show the
*shape* directly, without any plotting dependency.

>>> print(ascii_plot({"ditric": [(1, 1.0), (2, 0.6), (4, 0.4)]}))
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from .runner import RunResult
from .tables import scaling_series

__all__ = ["ascii_plot", "plot_results"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float | None]]],
    *,
    width: int = 64,
    height: int = 18,
    title: str = "",
    xlabel: str = "p",
    ylabel: str = "",
) -> str:
    """Render named ``[(x, y), ...]`` series on a log-log text canvas.

    ``None`` y-values (failed runs) are skipped, leaving visible gaps
    like the paper's missing competitor points.  Series markers are
    assigned in name order and listed in the legend.
    """
    points = {
        name: [(x, y) for x, y in pts if y is not None and y > 0 and x > 0]
        for name, pts in series.items()
    }
    all_pts = [p for pts in points.values() for p in pts]
    if not all_pts:
        return (title + "\n" if title else "") + "(no data)"
    xs = [x for x, _ in all_pts]
    ys = [y for _, y in all_pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_lo == x_hi:
        x_hi = x_lo * 2
    if y_lo == y_hi:
        y_hi = y_lo * 2

    def col(x: float) -> int:
        f = (math.log10(x) - math.log10(x_lo)) / (math.log10(x_hi) - math.log10(x_lo))
        return min(width - 1, max(0, round(f * (width - 1))))

    def row(y: float) -> int:
        f = (math.log10(y) - math.log10(y_lo)) / (math.log10(y_hi) - math.log10(y_lo))
        return min(height - 1, max(0, round((1.0 - f) * (height - 1))))

    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for idx, name in enumerate(sorted(points)):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in points[name]:
            r, c = row(y), col(x)
            canvas[r][c] = marker if canvas[r][c] == " " else "*"

    lines = []
    if title:
        lines.append(title)
    y_top = f"{y_hi:.2e}"
    y_bot = f"{y_lo:.2e}"
    margin = max(len(y_top), len(y_bot))
    for i, rowchars in enumerate(canvas):
        if i == 0:
            label = y_top.rjust(margin)
        elif i == height - 1:
            label = y_bot.rjust(margin)
        else:
            label = " " * margin
        lines.append(f"{label} |{''.join(rowchars)}")
    lines.append(" " * margin + " +" + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width - len(f"{x_hi:g}")) + f"{x_hi:g}"
    lines.append(" " * margin + "  " + x_axis + f"   ({xlabel}, log-log"
                 + (f", {ylabel}" if ylabel else "") + ")")
    lines.append("   legend: " + "   ".join(legend))
    return "\n".join(lines)


def plot_results(
    results: Iterable[RunResult], metric: str = "time", *, title: str = "", **kwargs
) -> str:
    """ASCII log-log plot of a sweep's per-algorithm ``metric`` vs p."""
    series = scaling_series(results, metric)
    return ascii_plot(
        {k: [(float(p), v) for p, v in pts] for k, pts in series.items()},
        title=title or f"{metric} vs p",
        ylabel=metric,
        **kwargs,
    )
