"""Classifying triangles by locality type (paper Fig. 4).

Given a partition, every triangle is

* **type 1** — all three vertices on one PE (found locally by any
  variant),
* **type 2** — exactly two vertices share a PE (found locally by
  CETRIC's expanded graph, remotely by DITRIC),
* **type 3** — three distinct PEs (always needs communication;
  Lemma 1: exactly the triangles of the cut graph).

The breakdown explains, for a given input + partition, how much work
CETRIC's local phase can absorb — the single most predictive statistic
for whether contraction pays off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.edge_iterator import triangle_edges
from ..graphs.csr import CSRGraph
from ..graphs.partition import Partition, partition_by_vertices

__all__ = ["TriangleTypeCounts", "classify_triangles"]


@dataclass(frozen=True)
class TriangleTypeCounts:
    """Triangle counts by locality type for one (graph, partition)."""

    type1: int
    type2: int
    type3: int

    @property
    def total(self) -> int:
        """All triangles."""
        return self.type1 + self.type2 + self.type3

    @property
    def local_fraction(self) -> float:
        """Fraction CETRIC's local phase finds (types 1 + 2)."""
        return (self.type1 + self.type2) / self.total if self.total else 1.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"type1={self.type1} type2={self.type2} type3={self.type3} "
            f"(local fraction {self.local_fraction:.1%})"
        )


def classify_triangles(
    graph: CSRGraph,
    num_pes: int | None = None,
    partition: Partition | None = None,
) -> TriangleTypeCounts:
    """Count type-1/2/3 triangles under a 1D partition.

    Enumerates the triangles sequentially (oracle path) and buckets
    them by the number of distinct owning PEs.
    """
    if (num_pes is None) == (partition is None):
        raise ValueError("give exactly one of num_pes / partition")
    if partition is None:
        partition = partition_by_vertices(graph.num_vertices, int(num_pes))
    tri = triangle_edges(graph)
    if tri.size == 0:
        return TriangleTypeCounts(0, 0, 0)
    ranks = partition.rank_of(tri.ravel()).reshape(-1, 3)
    ab = ranks[:, 0] == ranks[:, 1]
    bc = ranks[:, 1] == ranks[:, 2]
    ac = ranks[:, 0] == ranks[:, 2]
    same = ab.astype(np.int64) + bc.astype(np.int64) + ac.astype(np.int64)
    # same == 3 -> one PE; same == 1 -> two PEs; same == 0 -> three PEs.
    type1 = int(np.count_nonzero(same == 3))
    type3 = int(np.count_nonzero(same == 0))
    type2 = tri.shape[0] - type1 - type3
    return TriangleTypeCounts(type1=type1, type2=type2, type3=type3)
