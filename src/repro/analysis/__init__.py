"""Experiment harness: run, sweep, tabulate, plot, verify."""

from .plot import ascii_plot, plot_results
from .projection import (
    PowerLaw,
    ScalingModel,
    fit_power_law,
    fit_scaling_model,
    project_time,
)
from .runner import ALGORITHMS, RunResult, memory_limited_spec, run_algorithm
from .sweep import pe_counts_powers_of_two, strong_scaling, weak_scaling
from .triangle_types import TriangleTypeCounts, classify_triangles
from .tables import (
    format_phase_breakdown,
    format_scaling_table,
    format_table,
    scaling_series,
    speedup_over,
)
from .verify import GraphStats, graph_stats, ground_truth_triangles

__all__ = [
    "ascii_plot",
    "plot_results",
    "PowerLaw",
    "ScalingModel",
    "fit_power_law",
    "fit_scaling_model",
    "project_time",
    "ALGORITHMS",
    "RunResult",
    "memory_limited_spec",
    "run_algorithm",
    "pe_counts_powers_of_two",
    "strong_scaling",
    "weak_scaling",
    "format_phase_breakdown",
    "format_scaling_table",
    "format_table",
    "scaling_series",
    "speedup_over",
    "GraphStats",
    "graph_stats",
    "ground_truth_triangles",
    "TriangleTypeCounts",
    "classify_triangles",
]
