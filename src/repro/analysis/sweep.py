"""Strong- and weak-scaling sweeps (the paper's experimental method).

Section V-B: *strong scaling* fixes one input and grows ``p``; *weak
scaling* fixes the problem size **per PE** (``n/p`` vertices) and grows
the machine.  Both return lists of
:class:`~repro.analysis.runner.RunResult` rows ready for the table
renderers, with competitor failures kept as failed rows (the paper's
missing data points).
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..graphs.csr import CSRGraph
from ..graphs.distributed import distribute
from ..net.costmodel import DEFAULT_SPEC, MachineSpec
from .runner import RunResult, memory_limited_spec, run_algorithm

__all__ = ["strong_scaling", "weak_scaling", "pe_counts_powers_of_two"]


def pe_counts_powers_of_two(max_pes: int, *, start: int = 1) -> list[int]:
    """``[start, 2 start, ...] <= max_pes`` — the paper uses powers of two."""
    if start < 1 or max_pes < start:
        raise ValueError("need 1 <= start <= max_pes")
    out = []
    p = start
    while p <= max_pes:
        out.append(p)
        p *= 2
    return out


def strong_scaling(
    graph: CSRGraph,
    algorithms: Iterable[str],
    pe_counts: Iterable[int],
    *,
    spec: MachineSpec = DEFAULT_SPEC,
    scale_memory: bool = True,
    words_per_local_arc: float = 8.0,
) -> list[RunResult]:
    """Run every algorithm at every PE count on one fixed input.

    ``scale_memory=True`` applies the proportional per-PE memory
    budget (see :func:`~repro.analysis.runner.memory_limited_spec`),
    which is what lets the statically-buffered baseline fail the way
    the paper reports.
    """
    rows: list[RunResult] = []
    for p in pe_counts:
        dist = distribute(graph, num_pes=p)
        run_spec = (
            memory_limited_spec(dist, spec=spec, words_per_local_arc=words_per_local_arc)
            if scale_memory
            else spec
        )
        for algo in algorithms:
            rows.append(run_algorithm(dist, algo, spec=run_spec))
    return rows


def weak_scaling(
    family: Callable[[int, int], CSRGraph],
    algorithms: Iterable[str],
    pe_counts: Iterable[int],
    *,
    vertices_per_pe: int,
    spec: MachineSpec = DEFAULT_SPEC,
    scale_memory: bool = True,
    words_per_local_arc: float = 8.0,
    base_seed: int = 1,
) -> list[RunResult]:
    """Grow the input with the machine: ``n = vertices_per_pe * p``.

    ``family(n, seed)`` generates the instance for a given total size
    (e.g. ``lambda n, s: rgg2d(n, expected_edges=16 * n, seed=s)``).
    Each PE count gets a fresh deterministic seed so instances are
    independent draws of the same model, as with KaGen.
    """
    rows: list[RunResult] = []
    for i, p in enumerate(pe_counts):
        graph = family(vertices_per_pe * p, base_seed + i)
        dist = distribute(graph, num_pes=p)
        run_spec = (
            memory_limited_spec(dist, spec=spec, words_per_local_arc=words_per_local_arc)
            if scale_memory
            else spec
        )
        for algo in algorithms:
            rows.append(run_algorithm(dist, algo, spec=run_spec))
    return rows
