"""Ground-truth oracles and dataset statistics (Table I columns).

Cross-checking strategy: the matrix-algebra counter and the
edge-iterator counter are independent code paths; tests require them to
agree with each other and (on small graphs) with networkx, and every
distributed run is compared against them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.edge_iterator import edge_iterator, matrix_count
from ..core.wedges import wedge_count
from ..graphs.csr import CSRGraph

__all__ = ["GraphStats", "graph_stats", "ground_truth_triangles"]


@dataclass(frozen=True)
class GraphStats:
    """The statistics Table I reports per instance."""

    name: str
    n: int
    m: int
    wedges: int
    triangles: int

    @property
    def avg_degree(self) -> float:
        """``2 m / n``."""
        return 2.0 * self.m / self.n if self.n else 0.0

    @property
    def transitivity(self) -> float:
        """Global clustering coefficient ``3 T / W``."""
        return 3.0 * self.triangles / self.wedges if self.wedges else 0.0


def ground_truth_triangles(graph: CSRGraph, *, cross_check: bool = True) -> int:
    """Triangle count via the sparse-matrix oracle.

    ``cross_check=True`` also runs the edge iterator and insists the
    two independent implementations agree.
    """
    t = matrix_count(graph)
    if cross_check:
        t2 = edge_iterator(graph).triangles
        if t != t2:
            raise AssertionError(
                f"oracle disagreement on {graph.name!r}: matrix={t}, iterator={t2}"
            )
    return t


def graph_stats(graph: CSRGraph, *, cross_check: bool = False) -> GraphStats:
    """Compute the Table-I row of a graph."""
    return GraphStats(
        name=graph.name,
        n=graph.num_vertices,
        m=graph.num_edges,
        wedges=wedge_count(graph),
        triangles=ground_truth_triangles(graph, cross_check=cross_check),
    )
