"""Extrapolating modelled cost to the paper's machine sizes.

The simulation runs at p ≤ ~64; the paper runs at p ≤ 2¹⁵.  Several of
its headline effects (indirection dominating beyond ~2¹², TriC's α·p
wall, the 2¹⁵ degree-exchange spike) live in the gap.  This module
closes it *analytically*: from a weak-scaling sweep it fits per-PE
power laws

    messages(p) ~ a · p^b        volume(p) ~ a · p^b       work(p) ~ a · p^b

for each algorithm (log-log least squares over the measured points)
and projects modelled time at any target ``p`` with the same α-β model
the simulation charges:

    time(p) = work(p)·flop + alpha·messages(p) + beta·volume(p)

The projection is exact when the underlying laws are exact power laws
and is validated in-range against held-out simulated points; see
``benchmarks/bench_projection.py`` for the at-scale reproduction of
the paper's crossovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..net.costmodel import DEFAULT_SPEC, MachineSpec
from .runner import RunResult

__all__ = ["PowerLaw", "ScalingModel", "fit_power_law", "fit_scaling_model", "project_time"]


@dataclass(frozen=True)
class PowerLaw:
    """``f(p) = coefficient * p ** exponent`` fitted in log-log space."""

    coefficient: float
    exponent: float

    def __call__(self, p) -> np.ndarray:
        return self.coefficient * np.asarray(p, dtype=np.float64) ** self.exponent


def fit_power_law(ps: np.ndarray, values: np.ndarray) -> PowerLaw:
    """Least-squares power-law fit through the *positive* points.

    Zero points (e.g. "0 messages at p = 1" — communication simply
    does not exist on one PE) are structural, not samples of the law,
    so they are excluded rather than clamped; an all-zero series
    yields the zero law.
    """
    ps = np.asarray(ps, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if ps.size == 0:
        raise ValueError("need at least one point")
    pos = values > 0
    if not np.any(pos):
        return PowerLaw(coefficient=0.0, exponent=0.0)
    ps, values = ps[pos], values[pos]
    if ps.size == 1 or np.allclose(ps, ps[0]):
        return PowerLaw(coefficient=float(values.mean()), exponent=0.0)
    slope, intercept = np.polyfit(np.log(ps), np.log(values), 1)
    return PowerLaw(coefficient=float(np.exp(intercept)), exponent=float(slope))


@dataclass(frozen=True)
class ScalingModel:
    """Fitted per-PE laws for one algorithm on one workload family.

    All laws describe the *bottleneck PE* (max over PEs), matching the
    paper's metrics: messages per PE, words per PE, charged operations
    per PE, each as a function of the machine size under weak scaling.
    """

    algorithm: str
    messages: PowerLaw
    volume: PowerLaw
    work: PowerLaw

    def time(self, p, spec: MachineSpec = DEFAULT_SPEC) -> np.ndarray:
        """Projected modelled time at machine size ``p``."""
        p = np.asarray(p, dtype=np.float64)
        return (
            self.work(p) * spec.flop_time
            + self.messages(p) * spec.alpha
            + self.volume(p) * spec.beta
        )


def fit_scaling_model(results: Iterable[RunResult], algorithm: str) -> ScalingModel:
    """Fit the three laws from a weak-scaling sweep's result rows.

    Only successful rows of ``algorithm`` are used; per-PE work is the
    total divided by p (weak scaling keeps it near-constant; the fit
    captures any residual growth, e.g. CETRIC's ghost work).
    """
    rows = [r for r in results if r.algorithm == algorithm and r.ok]
    if not rows:
        raise ValueError(f"no successful rows for {algorithm!r}")
    ps = np.array([r.num_pes for r in rows], dtype=np.float64)
    msgs = np.array([r.max_messages for r in rows], dtype=np.float64)
    vol = np.array([r.bottleneck_volume for r in rows], dtype=np.float64)
    work = np.array([r.total_ops / max(r.num_pes, 1) for r in rows], dtype=np.float64)
    return ScalingModel(
        algorithm=algorithm,
        messages=fit_power_law(ps, msgs),
        volume=fit_power_law(ps, vol),
        work=fit_power_law(ps, work),
    )


def project_time(
    results: Iterable[RunResult],
    algorithms: Iterable[str],
    target_ps: Iterable[int],
    *,
    spec: MachineSpec = DEFAULT_SPEC,
) -> dict[str, list[tuple[int, float]]]:
    """Projected time series per algorithm at the target machine sizes."""
    results = list(results)
    out: dict[str, list[tuple[int, float]]] = {}
    for algo in algorithms:
        model = fit_scaling_model(results, algo)
        out[algo] = [(int(p), float(model.time(p, spec))) for p in target_ps]
    return out
