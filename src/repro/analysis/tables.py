"""Rendering result rows as the paper's tables and figure series.

Benchmarks print through these helpers so every experiment produces
the same row/series layout as the corresponding paper artifact — the
"same rows/series the paper reports" requirement of the reproduction.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from .runner import RunResult

__all__ = [
    "format_table",
    "scaling_series",
    "format_scaling_table",
    "format_phase_breakdown",
    "speedup_over",
]


def _fmt(value) -> str:
    if value is None:
        return "--"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e6:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Iterable[dict], columns: Sequence[str], *, title: str = ""
) -> str:
    """Plain-text aligned table from dict rows."""
    rows = list(rows)
    widths = {c: len(c) for c in columns}
    rendered = []
    for row in rows:
        r = {c: _fmt(row.get(c)) for c in columns}
        rendered.append(r)
        for c in columns:
            widths[c] = max(widths[c], len(r[c]))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(r[c].rjust(widths[c]) for c in columns))
    return "\n".join(lines)


def scaling_series(
    results: Iterable[RunResult], metric: str = "time"
) -> dict[str, list[tuple[int, float | None]]]:
    """Per-algorithm ``[(p, metric), ...]`` series, sorted by ``p``.

    Failed runs yield ``None`` values — plotted as gaps, like the
    paper's missing TriC/HavoqGT points.
    """
    series: dict[str, list[tuple[int, float | None]]] = defaultdict(list)
    for r in results:
        value = getattr(r, metric) if r.ok else None
        series[r.algorithm].append((r.num_pes, value))
    for algo in series:
        series[algo].sort()
    return dict(series)


def format_scaling_table(
    results: Iterable[RunResult],
    metric: str = "time",
    *,
    title: str = "",
) -> str:
    """One row per PE count, one column per algorithm (a figure panel)."""
    series = scaling_series(results, metric)
    pes = sorted({p for pts in series.values() for p, _ in pts})
    algos = sorted(series)
    rows = []
    for p in pes:
        row: dict[str, object] = {"p": p}
        for algo in algos:
            vals = dict(series[algo])
            row[algo] = vals.get(p)
        rows.append(row)
    return format_table(rows, ["p", *algos], title=title or f"{metric} vs p")


def format_phase_breakdown(results: Iterable[RunResult], *, title: str = "") -> str:
    """Fig.-7-style stacked-phase rows (one per algorithm/PE count)."""
    rows = []
    phase_names: list[str] = []
    results = list(results)
    for r in results:
        for name in r.phases:
            if name not in phase_names:
                phase_names.append(name)
    for r in results:
        row: dict[str, object] = {
            "algorithm": r.algorithm,
            "p": r.num_pes,
            "total": r.time,
        }
        for name in phase_names:
            row[name] = r.phases.get(name, 0.0)
        rows.append(row)
    return format_table(rows, ["algorithm", "p", "total", *phase_names], title=title)


def speedup_over(
    results: Iterable[RunResult], baseline: str, contender: str
) -> dict[int, float]:
    """``time(baseline) / time(contender)`` per PE count (both must be ok)."""
    base = {r.num_pes: r.time for r in results if r.algorithm == baseline and r.ok}
    cont = {r.num_pes: r.time for r in results if r.algorithm == contender and r.ok}
    return {
        p: base[p] / cont[p]
        for p in sorted(set(base) & set(cont))
        if cont[p] and base[p]
    }
