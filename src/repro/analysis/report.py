"""One-command evaluation report.

``generate_report`` runs a configurable-size version of every
experiment class (dataset statistics, aggregation, weak scaling,
strong scaling, phase breakdown, approximation, fault resilience) and renders a single
markdown document — the quick-look counterpart of the full benchmark
suite, suitable for CI artifacts or a README refresh.

The full-fidelity artifacts remain the benchmarks under
``benchmarks/``; the report trades sweep breadth for a <2-minute
runtime at the default settings.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..core.approx import doulion
from ..core.edge_iterator import edge_iterator
from ..graphs.datasets import DATASET_NAMES, dataset
from ..graphs.distributed import distribute
from ..net.costmodel import DEFAULT_SPEC, MachineSpec
from .runner import run_algorithm
from .tables import format_phase_breakdown, format_scaling_table, format_table
from .triangle_types import classify_triangles
from .verify import graph_stats

__all__ = ["generate_report"]


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def generate_report(
    *,
    scale: float = 0.25,
    pe_counts: Sequence[int] = (2, 4, 8),
    algorithms: Sequence[str] = ("ditric", "ditric2", "cetric", "cetric2"),
    datasets: Sequence[str] = ("friendster", "webbase-2001", "europe"),
    spec: MachineSpec = DEFAULT_SPEC,
) -> str:
    """Render the quick evaluation report as a markdown string."""
    started = time.perf_counter()
    parts = [
        "# repro quick evaluation report",
        "",
        f"- stand-in scale: {scale}",
        f"- PE counts: {list(pe_counts)}",
        f"- machine: {spec.name} (alpha={spec.alpha:.1e}s, beta={spec.beta:.1e}s/word)",
        "",
    ]

    # 1. Dataset statistics (Table I flavour).
    stat_rows = []
    for name in datasets:
        if name not in DATASET_NAMES:
            raise KeyError(f"unknown dataset {name!r}")
        s = graph_stats(dataset(name, scale=scale))
        stat_rows.append(
            {
                "instance": name,
                "n": s.n,
                "m": s.m,
                "wedges": s.wedges,
                "triangles": s.triangles,
                "transitivity": s.transitivity,
            }
        )
    parts.append(
        _section(
            "Dataset stand-ins (Table I)",
            format_table(
                stat_rows,
                ["instance", "n", "m", "wedges", "triangles", "transitivity"],
            ),
        )
    )

    # 2. Strong scaling + phases on each dataset.
    for name in datasets:
        g = dataset(name, scale=scale)
        truth = edge_iterator(g).triangles
        rows = []
        for p in pe_counts:
            dist = distribute(g, num_pes=p)
            for algo in algorithms:
                res = run_algorithm(dist, algo, spec=spec)
                if res.ok and res.triangles != truth:
                    raise AssertionError(f"{algo} miscounted on {name}")
                rows.append(res)
        parts.append(
            _section(
                f"Strong scaling on {name}",
                format_scaling_table(rows, "time")
                + "\n\n"
                + format_scaling_table(rows, "bottleneck_volume"),
            )
        )
        types = classify_triangles(g, num_pes=max(pe_counts))
        parts.append(
            f"*Triangle types at p={max(pe_counts)}*: "
            f"type1={types.type1}, type2={types.type2}, type3={types.type3} "
            f"(local fraction {types.local_fraction:.1%})\n"
        )

    # 3. Phase breakdown on the first dataset.
    g = dataset(datasets[0], scale=scale)
    dist = distribute(g, num_pes=max(pe_counts))
    breakdown = [run_algorithm(dist, a, spec=spec) for a in ("ditric", "cetric")]
    parts.append(
        _section(
            f"Phase breakdown on {datasets[0]} (p={max(pe_counts)})",
            format_phase_breakdown(breakdown),
        )
    )

    # 3b. Full critical-path decomposition from the span recorder: the
    # compute buckets above plus communication/wait time, summing to
    # 100% of the makespan (docs/OBSERVABILITY.md).
    from ..obs import profile_metrics

    cet = breakdown[1]
    if cet.metrics is not None:
        parts.append(
            _section(
                f"Observability: critical-path profile of cetric on "
                f"{datasets[0]} (p={max(pe_counts)})",
                profile_metrics(cet.metrics).format(),
            )
        )

    # 4. Approximation teaser.
    truth = edge_iterator(g).triangles
    d = doulion(g, 0.5, seed=1)
    parts.append(
        f"*Approximation sanity*: exact={truth}, doulion(q=0.5)={d.estimate:.0f} "
        f"({abs(d.estimate - truth) / max(truth, 1):.2%} error)\n"
    )

    # 5. Resilience under injected faults (docs/FAULTS.md).
    from ..faults import format_campaign, run_campaign

    outcomes = run_campaign(
        algorithms=("ditric", "cetric"),
        seeds=range(2),
        drop_rates=(0.0, 0.05),
        crash_fraction=0.5,
        spec=spec,
    )
    parts.append(
        _section(
            "Resilience under injected faults (chaos campaign)",
            format_campaign(outcomes),
        )
    )

    parts.append(f"---\ngenerated in {time.perf_counter() - started:.1f}s wall time\n")
    return "\n".join(parts)
