"""1D (ID-range) vertex partitioning.

The machine model (paper Section II-B) assigns each PE a *contiguous
range* of vertex ids: vertices are globally ordered among processors,
so ``rank(v) < rank(w)`` implies ``v < w``.  A partition is therefore
fully described by ``p + 1`` boundary ids.

Two strategies are provided:

* :func:`partition_by_vertices` — equal vertex counts (the plain ID
  partitioning of the paper);
* :func:`partition_by_edges` — boundaries chosen on the degree prefix
  sum so PEs own roughly equal numbers of *edges*, the simple
  degree-based balancing the paper discusses (Section IV-D, Load
  Balancing) as a preprocessing-time alternative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["Partition", "partition_by_vertices", "partition_by_edges"]


@dataclass(frozen=True)
class Partition:
    """A contiguous 1D partition of vertices ``0..n-1`` over ``p`` PEs.

    PE ``i`` owns the half-open id range
    ``[bounds[i], bounds[i + 1])``.  Boundaries are non-decreasing with
    ``bounds[0] == 0`` and ``bounds[p] == n``; empty ranges are legal
    (e.g. ``p > n``).
    """

    bounds: np.ndarray

    def __post_init__(self) -> None:
        b = np.ascontiguousarray(self.bounds, dtype=np.int64)
        if b.ndim != 1 or b.size < 2:
            raise ValueError("bounds must be a 1-D array of length p + 1 >= 2")
        if b[0] != 0 or np.any(np.diff(b) < 0):
            raise ValueError("bounds must start at 0 and be non-decreasing")
        object.__setattr__(self, "bounds", b)

    @property
    def num_pes(self) -> int:
        """Number of processing elements ``p``."""
        return self.bounds.size - 1

    @property
    def num_vertices(self) -> int:
        """Total number of vertices ``n``."""
        return int(self.bounds[-1])

    def owner_range(self, rank: int) -> tuple[int, int]:
        """The ``[lo, hi)`` vertex-id range owned by PE ``rank``."""
        return int(self.bounds[rank]), int(self.bounds[rank + 1])

    def owned_count(self, rank: int) -> int:
        """``|V_i|`` for PE ``rank``."""
        lo, hi = self.owner_range(rank)
        return hi - lo

    def rank_of(self, vertices) -> np.ndarray:
        """Vectorized ``rank(v)`` for an array of vertex ids.

        Because ownership ranges are sorted, ownership lookup is a
        single :func:`numpy.searchsorted` — the same O(log p) lookup
        the paper's ID partitioning affords each PE.
        """
        v = np.asarray(vertices, dtype=np.int64)
        if v.size and (v.min() < 0 or v.max() >= self.num_vertices):
            raise ValueError("vertex id out of range")
        return np.searchsorted(self.bounds, v, side="right") - 1

    def rank_of_one(self, v: int) -> int:
        """Scalar convenience wrapper around :meth:`rank_of`."""
        return int(self.rank_of(np.array([v]))[0])

    def is_local(self, rank: int, vertices) -> np.ndarray:
        """Vectorized membership test ``v in V_rank``."""
        v = np.asarray(vertices, dtype=np.int64)
        lo, hi = self.owner_range(rank)
        return (v >= lo) & (v < hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Partition(p={self.num_pes}, n={self.num_vertices})"


def partition_by_vertices(num_vertices: int, num_pes: int) -> Partition:
    """Split ``0..n-1`` into ``p`` ranges of (almost) equal size.

    The first ``n mod p`` PEs receive one extra vertex, matching the
    usual block distribution.
    """
    if num_pes < 1:
        raise ValueError("need at least one PE")
    if num_vertices < 0:
        raise ValueError("num_vertices must be non-negative")
    base, extra = divmod(num_vertices, num_pes)
    sizes = np.full(num_pes, base, dtype=np.int64)
    sizes[:extra] += 1
    bounds = np.zeros(num_pes + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return Partition(bounds)


def partition_by_edges(graph: CSRGraph, num_pes: int) -> Partition:
    """Choose boundaries so PEs own roughly equal numbers of arcs.

    Boundaries are placed at the ``k/p`` quantiles of the degree prefix
    sum (``xadj``) — the prefix-sum redistribution of Arifuzzaman et
    al. that the paper evaluates in its load-balancing discussion.
    """
    if num_pes < 1:
        raise ValueError("need at least one PE")
    n = graph.num_vertices
    total = graph.num_arcs
    targets = (np.arange(1, num_pes, dtype=np.float64) * total) / num_pes
    cut_points = np.searchsorted(graph.xadj[1:], targets, side="left") + 1
    bounds = np.concatenate([[0], np.minimum(cut_points, n), [n]]).astype(np.int64)
    # Enforce monotonicity in degenerate cases (e.g. one huge vertex).
    np.maximum.accumulate(bounds, out=bounds)
    return Partition(bounds)
