"""Structural graph statistics: degrees, components, cores, degeneracy.

Supporting analysis for the ordering theory behind COMPACT-FORWARD:
the degree ordering bounds out-degrees by ``O(sqrt m)``; the *optimal*
acyclic orientation uses the **degeneracy order** (Matula & Beck),
whose out-degrees are bounded by the graph's degeneracy ``d`` — for
many real networks far below ``sqrt m``.  :func:`degeneracy_order`
plugs straight into :func:`repro.core.orientation.orient` as an
alternative total order.

Also: vectorized degree summaries and connected components (via
``scipy.sparse.csgraph``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = [
    "DegreeSummary",
    "degree_summary",
    "connected_components",
    "core_numbers",
    "degeneracy",
    "degeneracy_order",
]


@dataclass(frozen=True)
class DegreeSummary:
    """Compact description of a degree distribution."""

    min: int
    max: int
    mean: float
    median: float
    #: Ratio max/mean — the skew indicator the experiments care about.
    skew: float

    @classmethod
    def of(cls, degrees: np.ndarray) -> "DegreeSummary":
        """Summary of a degree array (zeros allowed)."""
        if degrees.size == 0:
            return cls(0, 0, 0.0, 0.0, 1.0)
        mean = float(degrees.mean())
        return cls(
            min=int(degrees.min()),
            max=int(degrees.max()),
            mean=mean,
            median=float(np.median(degrees)),
            skew=float(degrees.max() / mean) if mean > 0 else 1.0,
        )


def degree_summary(graph: CSRGraph) -> DegreeSummary:
    """Degree-distribution summary of a graph."""
    return DegreeSummary.of(graph.degrees)


def connected_components(graph: CSRGraph) -> tuple[int, np.ndarray]:
    """``(count, labels)`` via scipy's sparse BFS."""
    from scipy.sparse.csgraph import connected_components as _cc

    if graph.num_vertices == 0:
        return 0, np.empty(0, dtype=np.int64)
    count, labels = _cc(graph.to_scipy(), directed=False)
    return int(count), labels.astype(np.int64)


def core_numbers(graph: CSRGraph) -> np.ndarray:
    """Core number of every vertex (Batagelj–Zaveršnik peeling).

    The classic ``O(n + m)`` bucket algorithm: repeatedly remove a
    minimum-degree vertex; its degree at removal time (monotonized)
    is its core number.
    """
    if graph.oriented:
        raise ValueError("core numbers are defined on the undirected graph")
    n = graph.num_vertices
    deg = graph.degrees.copy()
    core = np.zeros(n, dtype=np.int64)
    if n == 0:
        return core
    # Bucket sort vertices by degree.
    max_deg = int(deg.max(initial=0))
    bucket_pos = np.zeros(max_deg + 2, dtype=np.int64)
    np.cumsum(np.bincount(deg, minlength=max_deg + 1), out=bucket_pos[1:])
    order = np.argsort(deg, kind="stable").astype(np.int64)
    pos_of = np.empty(n, dtype=np.int64)
    pos_of[order] = np.arange(n)
    bucket_start = bucket_pos[:-1].copy()

    removed = np.zeros(n, dtype=bool)
    current = 0
    for i in range(n):
        v = int(order[i])
        dv = int(deg[v])
        current = max(current, dv)
        core[v] = current
        removed[v] = True
        for u in graph.neighbors(v):
            u = int(u)
            if removed[u] or deg[u] <= deg[v]:
                continue
            # Move u one bucket down: swap it with the first vertex of
            # its current bucket, then shrink the bucket boundary.
            du = int(deg[u])
            pu = int(pos_of[u])
            first = int(bucket_start[du])
            w = int(order[first])
            if w != u:
                order[first], order[pu] = u, w
                pos_of[u], pos_of[w] = first, pu
            bucket_start[du] += 1
            deg[u] -= 1
    return core


def degeneracy(graph: CSRGraph) -> int:
    """The graph's degeneracy ``max_v core(v)``."""
    if graph.num_vertices == 0:
        return 0
    return int(core_numbers(graph).max(initial=0))


def degeneracy_order(graph: CSRGraph):
    """A :class:`~repro.core.ordering.DegreeOrder`-style total order
    following the peeling sequence.

    Orienting along this order bounds every out-degree by the
    degeneracy — the theoretical optimum over acyclic orientations.
    Returns an object usable with :func:`repro.core.orientation.orient`.
    """
    from ..core.ordering import DegreeOrder

    n = graph.num_vertices
    # Re-run the peeling, recording removal positions.
    deg = graph.degrees.copy()
    removed = np.zeros(n, dtype=bool)
    position = np.zeros(n, dtype=np.int64)
    # Simple heap-free peeling with lazily updated buckets (clear at
    # this scale; the bucket variant above is the hot-path version).
    import heapq

    heap = [(int(d), v) for v, d in enumerate(deg)]
    heapq.heapify(heap)
    next_pos = 0
    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != deg[v]:
            continue  # stale entry
        removed[v] = True
        position[v] = next_pos
        next_pos += 1
        for u in graph.neighbors(v):
            u = int(u)
            if not removed[u]:
                deg[u] -= 1
                heapq.heappush(heap, (int(deg[u]), u))
    # keys = removal position: earlier-peeled precede later-peeled.
    return DegreeOrder(keys=position)
