"""Degree-based load balancing (paper Section IV-D, "Load Balancing").

Arifuzzaman et al. evaluate several degree-based *cost functions*
estimating the triangle-counting work of each vertex and redistribute
vertices with a prefix-sum so every PE receives an equal share of
estimated cost.  The paper reimplemented this with message passing and
found "the overhead of rebalancing does not pay off" — a finding the
ablation benchmark reproduces with these utilities.

Cost functions (all vectorized over the degree array):

=============== =========================================
``degree``       ``d_v`` — balances edges
``degree_sq``    ``d_v^2`` — wedge-proportional upper bound
``dlogd``        ``d_v log2(d_v + 1)`` — sort-dominated model
``outdeg_sum``   sum of oriented-neighborhood merge costs,
                 the most faithful estimate (needs the
                 oriented graph)
=============== =========================================

:func:`rebalance` additionally *measures* the redistribution traffic
(every vertex that changes owner ships its neighborhood once), so the
trade-off the paper reports is quantifiable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .csr import CSRGraph
from .partition import Partition

__all__ = ["COST_FUNCTIONS", "cost_balanced_partition", "rebalance", "RebalanceResult"]


def _cost_degree(g: CSRGraph) -> np.ndarray:
    return g.degrees.astype(np.float64)


def _cost_degree_sq(g: CSRGraph) -> np.ndarray:
    d = g.degrees.astype(np.float64)
    return d * d


def _cost_dlogd(g: CSRGraph) -> np.ndarray:
    d = g.degrees.astype(np.float64)
    return d * np.log2(d + 1.0)


def _cost_outdeg_sum(g: CSRGraph) -> np.ndarray:
    """Merge-cost estimate ``sum_{u in A(v)} (d^+_v + d^+_u)`` per vertex."""
    from ..core.orientation import orient_by_degree

    og = g if g.oriented else orient_by_degree(g)
    dplus = np.diff(og.xadj).astype(np.float64)
    src = np.repeat(np.arange(og.num_vertices, dtype=np.int64), np.diff(og.xadj))
    per_arc = dplus[src] + dplus[og.adjncy]
    cost = np.zeros(og.num_vertices, dtype=np.float64)
    np.add.at(cost, src, per_arc)
    return cost


#: Registry of the evaluated cost functions.
COST_FUNCTIONS: dict[str, Callable[[CSRGraph], np.ndarray]] = {
    "degree": _cost_degree,
    "degree_sq": _cost_degree_sq,
    "dlogd": _cost_dlogd,
    "outdeg_sum": _cost_outdeg_sum,
}


def cost_balanced_partition(
    graph: CSRGraph, num_pes: int, cost: str = "outdeg_sum"
) -> Partition:
    """Contiguous partition equalizing a per-vertex cost estimate.

    Boundaries are the ``k/p`` quantiles of the cost prefix sum —
    the prefix-sum redistribution of Arifuzzaman et al., expressed as
    a new ID range assignment (vertex ids keep their global order, as
    the machine model requires).
    """
    if cost not in COST_FUNCTIONS:
        raise KeyError(f"unknown cost function {cost!r}; choose from {sorted(COST_FUNCTIONS)}")
    if num_pes < 1:
        raise ValueError("need at least one PE")
    weights = COST_FUNCTIONS[cost](graph)
    prefix = np.concatenate([[0.0], np.cumsum(weights)])
    total = prefix[-1]
    if total == 0:
        from .partition import partition_by_vertices

        return partition_by_vertices(graph.num_vertices, num_pes)
    targets = np.arange(1, num_pes, dtype=np.float64) * total / num_pes
    cuts = np.searchsorted(prefix[1:], targets, side="left") + 1
    bounds = np.concatenate([[0], np.minimum(cuts, graph.num_vertices), [graph.num_vertices]])
    bounds = bounds.astype(np.int64)
    np.maximum.accumulate(bounds, out=bounds)
    return Partition(bounds)


@dataclass(frozen=True)
class RebalanceResult:
    """Outcome of a redistribution from one partition to another."""

    partition: Partition
    #: Vertices whose owner changed.
    moved_vertices: int
    #: Adjacency words that must cross the network to realize the move.
    migration_words: int
    #: max/mean of the estimated cost per PE, before and after.
    imbalance_before: float
    imbalance_after: float


def _imbalance(weights: np.ndarray, part: Partition) -> float:
    sums = np.array(
        [weights[slice(*part.owner_range(i))].sum() for i in range(part.num_pes)]
    )
    mean = sums.mean()
    return float(sums.max() / mean) if mean > 0 else 1.0


def rebalance(
    graph: CSRGraph, old: Partition, cost: str = "outdeg_sum"
) -> RebalanceResult:
    """Compute the cost-balanced partition and the migration bill.

    The paper's finding — rebalancing "does not pay off" — comes from
    exactly this bill: every reassigned vertex ships its neighborhood
    (``d_v + 2`` words) once, which on large inputs rivals the whole
    counting phase.
    """
    new = cost_balanced_partition(graph, old.num_pes, cost)
    weights = COST_FUNCTIONS[cost](graph)
    v = np.arange(graph.num_vertices, dtype=np.int64)
    moved = old.rank_of(v) != new.rank_of(v)
    migration = int((graph.degrees[moved] + 2).sum())
    return RebalanceResult(
        partition=new,
        moved_vertices=int(np.count_nonzero(moved)),
        migration_words=migration,
        imbalance_before=_imbalance(weights, old),
        imbalance_after=_imbalance(weights, new),
    )
