"""Graph file IO: edge lists, METIS, and a fast binary format.

The paper reads its real-world inputs from the file system (and notes
that supercomputer IO is expensive enough that synthetic inputs are
generated in situ).  These loaders let a user run the reproduction on
the actual Table-I datasets if they have them on disk; the scaled
stand-ins in :mod:`repro.graphs.datasets` are used otherwise.

Formats
-------
* **edge list** (``.txt`` / ``.el``): one ``u v`` pair per line,
  ``#``/``%`` comments allowed, duplicates and self-loops cleaned on
  load (SNAP/KONECT convention).
* **METIS** (``.metis`` / ``.graph``): header ``n m`` then one
  1-indexed neighbor line per vertex.
* **binary** (``.npz``): the CSR arrays verbatim — round-trips exactly
  and loads orders of magnitude faster than text.
"""

from __future__ import annotations

import io
import os
from pathlib import Path

import numpy as np

from .builders import from_edges
from .csr import CSRGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_metis",
    "write_metis",
    "read_binary",
    "write_binary",
    "load",
]


def read_edge_list(path: str | os.PathLike | io.IOBase, *, name: str = "") -> CSRGraph:
    """Read a whitespace-separated edge list (SNAP/KONECT style)."""
    if isinstance(path, io.IOBase):
        text = path.read()
    else:
        text = Path(path).read_text()
        name = name or Path(path).stem
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line[0] in "#%":
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"malformed edge-list line: {line!r}")
        rows.append((int(parts[0]), int(parts[1])))
    edges = np.array(rows, dtype=np.int64).reshape(-1, 2)
    return from_edges(edges, name=name)


def write_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write one ``u v`` line per undirected edge."""
    e = graph.undirected_edges()
    with open(path, "w") as fh:
        fh.write(f"# {graph.name or 'graph'}: n={graph.num_vertices} m={graph.num_edges}\n")
        for u, v in e:
            fh.write(f"{u} {v}\n")


def read_metis(path: str | os.PathLike, *, name: str = "") -> CSRGraph:
    """Read a METIS graph file (1-indexed adjacency lines)."""
    lines = Path(path).read_text().splitlines()
    name = name or Path(path).stem
    body = [ln for ln in lines if ln.strip() and not ln.lstrip().startswith("%")]
    if not body:
        raise ValueError("empty METIS file")
    header = body[0].split()
    n, m = int(header[0]), int(header[1])
    if len(header) > 2 and header[2] not in ("0", "00", "000"):
        raise ValueError("weighted METIS graphs are not supported")
    if len(body) - 1 != n:
        raise ValueError(f"expected {n} adjacency lines, got {len(body) - 1}")
    src, dst = [], []
    for v, ln in enumerate(body[1:]):
        for tok in ln.split():
            src.append(v)
            dst.append(int(tok) - 1)
    edges = np.column_stack(
        [np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)]
    ) if src else np.empty((0, 2), dtype=np.int64)
    g = from_edges(edges, num_vertices=n, name=name)
    if g.num_edges != m:
        raise ValueError(f"METIS header says m={m}, file contains {g.num_edges}")
    return g


def write_metis(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the METIS format (1-indexed, symmetric)."""
    with open(path, "w") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for _, nbrs in graph.iter_neighborhoods():
            fh.write(" ".join(str(int(x) + 1) for x in nbrs) + "\n")


def read_binary(path: str | os.PathLike, *, name: str = "") -> CSRGraph:
    """Read the ``.npz`` binary CSR format written by :func:`write_binary`."""
    with np.load(path) as data:
        return CSRGraph(
            data["xadj"],
            data["adjncy"],
            oriented=bool(data["oriented"]),
            sorted_neighborhoods=bool(data["sorted"]),
            name=name or str(data.get("name", "")),
        )


def write_binary(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the CSR arrays to a compressed ``.npz`` file."""
    np.savez_compressed(
        path,
        xadj=graph.xadj,
        adjncy=graph.adjncy,
        oriented=np.asarray(graph.oriented),
        sorted=np.asarray(graph.sorted_neighborhoods),
        name=np.asarray(graph.name),
    )


def load(path: str | os.PathLike) -> CSRGraph:
    """Dispatch on file extension: ``.npz``, ``.metis``/``.graph``, else edge list."""
    p = Path(path)
    suffix = p.suffix.lower()
    if suffix == ".npz":
        return read_binary(p)
    if suffix in (".metis", ".graph"):
        return read_metis(p)
    return read_edge_list(p)
