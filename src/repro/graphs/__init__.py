"""Graph substrate: CSR storage, builders, IO, generators, partitioning.

Everything the distributed triangle-counting algorithms sit on top of:

* :class:`~repro.graphs.csr.CSRGraph` — adjacency-array storage;
* :mod:`~repro.graphs.builders` — vectorized construction/cleaning;
* :mod:`~repro.graphs.generators` — KaGen-equivalent synthetic models;
* :mod:`~repro.graphs.datasets` — Table-I stand-ins;
* :class:`~repro.graphs.partition.Partition` — 1D ID partitioning;
* :class:`~repro.graphs.distributed.LocalGraph` /
  :func:`~repro.graphs.distributed.distribute` — per-PE views with
  ghosts, interface vertices and cut edges.
"""

from .balance import (
    COST_FUNCTIONS,
    RebalanceResult,
    cost_balanced_partition,
    rebalance,
)
from .builders import (
    canonical_edges,
    empty_graph,
    from_edges,
    from_neighborhoods,
    from_networkx,
    from_scipy,
    induced_subgraph,
    relabel,
    remove_isolated_vertices,
)
from .csr import INVALID_VERTEX, CSRGraph
from .datasets import DATASET_NAMES, PAPER_STATS, dataset
from .distributed import DistGraph, LocalGraph, distribute
from .partition import Partition, partition_by_edges, partition_by_vertices
from .reorder import bfs_order, cut_fraction, degree_order, random_order
from .stats import (
    DegreeSummary,
    connected_components,
    core_numbers,
    degeneracy,
    degeneracy_order,
    degree_summary,
)

__all__ = [
    "COST_FUNCTIONS",
    "RebalanceResult",
    "cost_balanced_partition",
    "rebalance",
    "CSRGraph",
    "INVALID_VERTEX",
    "canonical_edges",
    "empty_graph",
    "from_edges",
    "from_neighborhoods",
    "from_networkx",
    "from_scipy",
    "induced_subgraph",
    "relabel",
    "remove_isolated_vertices",
    "DATASET_NAMES",
    "PAPER_STATS",
    "dataset",
    "DistGraph",
    "LocalGraph",
    "distribute",
    "Partition",
    "partition_by_edges",
    "partition_by_vertices",
    "bfs_order",
    "cut_fraction",
    "degree_order",
    "random_order",
    "DegreeSummary",
    "connected_components",
    "core_numbers",
    "degeneracy",
    "degeneracy_order",
    "degree_summary",
]
