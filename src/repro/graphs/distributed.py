"""Per-PE local graph views: ghosts, interface vertices, cut edges.

This module realizes the distributed input format of Section II-B:
PE ``i`` stores the adjacency arrays of its owned contiguous vertex
range ``V_i`` only.  Everything a PE can derive *without
communication* lives here:

* **ghost vertices** ``\\partial V_i`` — neighbors of owned vertices
  that live on other PEs;
* **interface vertices** — owned vertices adjacent to at least one
  ghost;
* **cut edges** — edges with endpoints on two different PEs;
* the **expanded local graph** used by CETRIC's local phase: owned
  vertices plus ghosts, with ghost neighborhoods restricted to local
  vertices (obtained by "rewiring incoming cut edges", no
  communication needed).

The simulation-only escape hatch :func:`distribute` slices a global
:class:`~repro.graphs.csr.CSRGraph` into per-PE views — standing in
for the parallel file/generator input path of the real system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .csr import CSRGraph
from .partition import Partition, partition_by_vertices

__all__ = ["LocalGraph", "DistGraph", "distribute"]


@dataclass
class LocalGraph:
    """The part of the input graph visible to one PE.

    Attributes
    ----------
    rank:
        This PE's index ``i``.
    partition:
        The global 1D partition (every PE knows the ``p + 1`` range
        boundaries; this is ``O(p)`` replicated metadata, exactly as in
        the paper's code).
    xadj, adjncy:
        Adjacency array of the owned vertices.  ``xadj`` has
        ``|V_i| + 1`` entries; vertex ``v`` (global id) maps to local
        slot ``v - vlo``.  ``adjncy`` holds *global* neighbor ids,
        sorted ascending within each neighborhood.
    """

    rank: int
    partition: Partition
    xadj: np.ndarray
    adjncy: np.ndarray
    #: Degrees of ghost vertices, aligned with :attr:`ghost_vertices`.
    #: ``None`` until the ghost-degree exchange has run.
    ghost_degrees: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.xadj = np.ascontiguousarray(self.xadj, dtype=np.int64)
        self.adjncy = np.ascontiguousarray(self.adjncy, dtype=np.int64)
        lo, hi = self.partition.owner_range(self.rank)
        if self.xadj.size != hi - lo + 1:
            raise ValueError("xadj length must be |V_i| + 1")
        self._vlo, self._vhi = lo, hi
        self._ghosts: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def vlo(self) -> int:
        """First owned global vertex id."""
        return self._vlo

    @property
    def vhi(self) -> int:
        """One past the last owned global vertex id."""
        return self._vhi

    @property
    def num_local_vertices(self) -> int:
        """``|V_i|``."""
        return self._vhi - self._vlo

    @property
    def num_local_arcs(self) -> int:
        """Stored arcs (each owned vertex's full neighborhood)."""
        return self.adjncy.size

    @property
    def degrees(self) -> np.ndarray:
        """Degrees of owned vertices (global degrees — the full ``N_v``)."""
        return np.diff(self.xadj)

    def owned_vertices(self) -> np.ndarray:
        """Global ids of owned vertices."""
        return np.arange(self._vlo, self._vhi, dtype=np.int64)

    def is_local(self, vertices) -> np.ndarray:
        """Vectorized ``v in V_i`` test."""
        v = np.asarray(vertices, dtype=np.int64)
        return (v >= self._vlo) & (v < self._vhi)

    def neighbors(self, v: int) -> np.ndarray:
        """``N_v`` for an owned vertex ``v`` (global ids, sorted)."""
        if not (self._vlo <= v < self._vhi):
            raise KeyError(f"vertex {v} is not local to PE {self.rank}")
        s = v - self._vlo
        return self.adjncy[self.xadj[s] : self.xadj[s + 1]]

    def degree_of(self, v: int) -> int:
        """Degree of an owned vertex."""
        s = v - self._vlo
        return int(self.xadj[s + 1] - self.xadj[s])

    # ------------------------------------------------------------------
    # Ghost / interface / cut structure
    # ------------------------------------------------------------------
    @property
    def ghost_vertices(self) -> np.ndarray:
        """Sorted global ids of ghost vertices ``\\partial V_i`` (cached)."""
        if self._ghosts is None:
            nonlocal_mask = ~self.is_local(self.adjncy)
            self._ghosts = np.unique(self.adjncy[nonlocal_mask])
        return self._ghosts

    @property
    def num_ghosts(self) -> int:
        """``|\\partial V_i|``."""
        return self.ghost_vertices.size

    def ghost_slot(self, vertices) -> np.ndarray:
        """Index of each ghost id within :attr:`ghost_vertices`.

        Raises if any input is not a ghost of this PE.
        """
        v = np.asarray(vertices, dtype=np.int64)
        slots = np.searchsorted(self.ghost_vertices, v)
        ok = (slots < self.ghost_vertices.size) & (
            self.ghost_vertices[np.minimum(slots, self.ghost_vertices.size - 1)] == v
        )
        if v.size and not np.all(ok):
            raise KeyError("vertex is not a ghost of this PE")
        return slots

    def interface_vertices(self) -> np.ndarray:
        """Global ids of owned vertices adjacent to at least one ghost."""
        nonlocal_mask = ~self.is_local(self.adjncy)
        src = np.repeat(self.owned_vertices(), self.degrees)
        return np.unique(src[nonlocal_mask])

    def cut_edges(self) -> np.ndarray:
        """All cut edges with the local endpoint first, one row per arc.

        Rows are ``[v_local, u_ghost]``.  Each undirected cut edge
        appears exactly once per PE (the remote endpoint's PE sees the
        mirrored row).
        """
        nonlocal_mask = ~self.is_local(self.adjncy)
        src = np.repeat(self.owned_vertices(), self.degrees)
        return np.column_stack([src[nonlocal_mask], self.adjncy[nonlocal_mask]])

    @property
    def num_cut_edges(self) -> int:
        """Number of cut arcs seen from this PE."""
        return int(np.count_nonzero(~self.is_local(self.adjncy)))

    def ghost_ranks(self) -> np.ndarray:
        """Owning rank of every ghost vertex (aligned with ghost_vertices)."""
        return self.partition.rank_of(self.ghost_vertices)

    def neighbor_pes(self) -> np.ndarray:
        """Sorted ranks of PEs owning at least one ghost of this PE."""
        return np.unique(self.ghost_ranks())

    # ------------------------------------------------------------------
    # CETRIC support: the expanded local graph
    # ------------------------------------------------------------------
    def ghost_local_neighborhoods(self) -> tuple[np.ndarray, np.ndarray]:
        """Local neighborhoods of ghosts: ``N_g \\cap V_i`` for each ghost.

        Built purely from local data by inverting cut edges ("rewiring
        incoming cut edges" in Section IV-D): every cut arc
        ``(v, g)`` contributes ``v`` to ghost ``g``'s local
        neighborhood.

        Returns
        -------
        (gxadj, gadjncy):
            CSR arrays over ghost *slots* (positions in
            :attr:`ghost_vertices`); neighborhoods sorted ascending.
        """
        cut = self.cut_edges()
        ghosts = self.ghost_vertices
        if cut.size == 0:
            return np.zeros(ghosts.size + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
        slots = np.searchsorted(ghosts, cut[:, 1])
        order = np.lexsort((cut[:, 0], slots))
        slots_sorted = slots[order]
        locals_sorted = cut[:, 0][order]
        counts = np.bincount(slots_sorted, minlength=ghosts.size)
        gxadj = np.zeros(ghosts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=gxadj[1:])
        return gxadj, locals_sorted

    def memory_words(self) -> int:
        """Local storage footprint in machine words."""
        return int(self.xadj.size + self.adjncy.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LocalGraph(rank={self.rank}, V_i=[{self._vlo},{self._vhi}), "
            f"arcs={self.num_local_arcs})"
        )


@dataclass
class DistGraph:
    """A graph distributed over ``p`` PEs (the simulation's world view).

    Holds one :class:`LocalGraph` per PE.  Only the simulation driver
    touches this object; algorithm code receives a single
    :class:`LocalGraph` plus a communicator and must not peek at other
    PEs' views.
    """

    views: list[LocalGraph]
    partition: Partition
    num_vertices: int
    num_edges: int
    name: str = ""

    @property
    def num_pes(self) -> int:
        """Number of PEs ``p``."""
        return len(self.views)

    def view(self, rank: int) -> LocalGraph:
        """The local view of PE ``rank``."""
        return self.views[rank]

    def total_cut_edges(self) -> int:
        """Number of undirected cut edges in the whole graph."""
        return sum(v.num_cut_edges for v in self.views) // 2

    def max_ghosts(self) -> int:
        """``max_i |\\partial V_i|`` — replication pressure indicator."""
        return max((v.num_ghosts for v in self.views), default=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistGraph(p={self.num_pes}, n={self.num_vertices}, "
            f"m={self.num_edges}, cut={self.total_cut_edges()})"
        )


def distribute(
    graph: CSRGraph,
    num_pes: int | None = None,
    partition: Partition | None = None,
) -> DistGraph:
    """Slice a global graph into per-PE local views.

    Exactly one of ``num_pes`` / ``partition`` must be given.  This is
    the simulation stand-in for distributed input loading (parallel
    file readers or KaGen's communication-free in-situ generation):
    each PE ends up with precisely the data the paper's input format
    prescribes, and nothing else.
    """
    if graph.oriented:
        raise ValueError("distribute expects the undirected input graph")
    if (num_pes is None) == (partition is None):
        raise ValueError("give exactly one of num_pes / partition")
    if partition is None:
        partition = partition_by_vertices(graph.num_vertices, int(num_pes))
    if partition.num_vertices != graph.num_vertices:
        raise ValueError("partition size does not match graph")
    views = []
    for rank in range(partition.num_pes):
        lo, hi = partition.owner_range(rank)
        xadj = graph.xadj[lo : hi + 1] - graph.xadj[lo]
        adjncy = graph.adjncy[graph.xadj[lo] : graph.xadj[hi]]
        views.append(
            LocalGraph(rank=rank, partition=partition, xadj=xadj.copy(), adjncy=adjncy.copy())
        )
    return DistGraph(
        views=views,
        partition=partition,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        name=graph.name,
    )
