"""Compressed sparse row (adjacency array) graph representation.

The paper (Section II-B) assumes the input graph is stored in the
*adjacency array* format: the neighborhoods ``N_v`` of all vertices are
stored consecutively in one big array (``adjncy``) and a second offset
array (``xadj``) of length ``n + 1`` records where each neighborhood
starts.  This is exactly the CSR layout used by METIS, KaGen, and the
authors' C++ code.

Two flavours share the representation:

* an **undirected** graph stores every edge ``{u, v}`` twice, once in
  ``N_u`` and once in ``N_v`` (``adjncy`` has ``2 m`` entries);
* an **oriented** graph (the result of degree orientation,
  :mod:`repro.core.orientation`) stores each edge once, in the
  out-neighborhood of its smaller endpoint w.r.t. the total order
  (``adjncy`` has ``m`` entries).

Both are instances of :class:`CSRGraph`; the :attr:`CSRGraph.oriented`
flag records which interpretation applies.  All arrays are NumPy
``int64`` so kernels can operate on them without copies, per the
HPC-Python guidance of keeping hot paths vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["CSRGraph", "VertexId", "INVALID_VERTEX"]

#: Type alias used in signatures for readability; vertices are plain ints.
VertexId = int

#: Sentinel used by algorithms that need an "undefined vertex" marker.
INVALID_VERTEX: int = -1


def _as_int64(a) -> np.ndarray:
    """Return ``a`` as a contiguous int64 array (no copy if possible)."""
    return np.ascontiguousarray(a, dtype=np.int64)


@dataclass
class CSRGraph:
    """A graph in adjacency-array (CSR) form.

    Parameters
    ----------
    xadj:
        Offsets, shape ``(n + 1,)``.  Neighborhood of vertex ``v`` is
        ``adjncy[xadj[v]:xadj[v + 1]]``.
    adjncy:
        Concatenated neighborhoods.
    oriented:
        ``False`` for a symmetric (undirected) graph where every edge
        appears in both endpoint neighborhoods; ``True`` when each edge
        is stored only in the out-neighborhood of its source.
    sorted_neighborhoods:
        Whether every neighborhood is sorted ascending.  The
        merge-based intersection kernels require this; builders sort by
        default.

    Notes
    -----
    The class is deliberately *dumb*: it owns storage and cheap
    accessors only.  Construction, cleaning, and orientation live in
    :mod:`repro.graphs.builders` and :mod:`repro.core.orientation`.
    """

    xadj: np.ndarray
    adjncy: np.ndarray
    oriented: bool = False
    sorted_neighborhoods: bool = True
    #: Optional display name (dataset id); purely informational.
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        self.xadj = _as_int64(self.xadj)
        self.adjncy = _as_int64(self.adjncy)
        if self.xadj.ndim != 1 or self.xadj.size == 0:
            raise ValueError("xadj must be a 1-D array of length n + 1 >= 1")
        if self.xadj[0] != 0:
            raise ValueError("xadj[0] must be 0")
        if self.xadj[-1] != self.adjncy.size:
            raise ValueError(
                f"xadj[-1] ({int(self.xadj[-1])}) must equal len(adjncy) "
                f"({self.adjncy.size})"
            )
        if np.any(np.diff(self.xadj) < 0):
            raise ValueError("xadj must be non-decreasing")
        if self.adjncy.size and (
            self.adjncy.min() < 0 or self.adjncy.max() >= self.num_vertices
        ):
            raise ValueError("adjncy contains out-of-range vertex ids")

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.xadj.size - 1

    @property
    def num_arcs(self) -> int:
        """Number of stored (directed) arcs, i.e. ``len(adjncy)``."""
        return self.adjncy.size

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``.

        For a symmetric graph every edge is stored twice; for an
        oriented graph once.
        """
        if self.oriented:
            return self.num_arcs
        if self.num_arcs % 2 != 0:
            raise ValueError("symmetric graph has odd number of arcs")
        return self.num_arcs // 2

    def __len__(self) -> int:
        return self.num_vertices

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Neighborhood ``N_v`` (out-neighborhood if oriented) as a view."""
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def degree(self, v: int) -> int:
        """Degree (out-degree if oriented) of ``v``."""
        return int(self.xadj[v + 1] - self.xadj[v])

    @property
    def degrees(self) -> np.ndarray:
        """All degrees as an ``(n,)`` int64 array (no Python loop)."""
        return np.diff(self.xadj)

    def max_degree(self) -> int:
        """Maximum degree, 0 for an empty graph."""
        if self.num_vertices == 0:
            return 0
        return int(self.degrees.max(initial=0))

    def vertices(self) -> np.ndarray:
        """``arange(n)`` — handy for vectorized per-vertex expressions."""
        return np.arange(self.num_vertices, dtype=np.int64)

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test ``v in N_u`` (binary search if sorted)."""
        nbrs = self.neighbors(u)
        if self.sorted_neighborhoods:
            i = int(np.searchsorted(nbrs, v))
            return i < nbrs.size and int(nbrs[i]) == v
        return bool(np.any(nbrs == v))

    def edges(self) -> np.ndarray:
        """All stored arcs as an ``(num_arcs, 2)`` array ``[src, dst]``.

        For a symmetric graph this yields both ``(u, v)`` and
        ``(v, u)``; use :meth:`undirected_edges` for one row per edge.
        """
        src = np.repeat(self.vertices(), self.degrees)
        return np.column_stack([src, self.adjncy])

    def undirected_edges(self) -> np.ndarray:
        """One row ``[u, v]`` with ``u < v`` per undirected edge."""
        e = self.edges()
        if self.oriented:
            # An oriented graph stores each edge once already, but not
            # necessarily with the numerically smaller endpoint first.
            lo = np.minimum(e[:, 0], e[:, 1])
            hi = np.maximum(e[:, 0], e[:, 1])
            return np.column_stack([lo, hi])
        keep = e[:, 0] < e[:, 1]
        return e[keep]

    def iter_neighborhoods(self) -> Iterator[tuple[int, np.ndarray]]:
        """Iterate ``(v, N_v)`` pairs.  For tests/examples, not hot paths."""
        for v in range(self.num_vertices):
            yield v, self.neighbors(v)

    # ------------------------------------------------------------------
    # Validation / conversion
    # ------------------------------------------------------------------
    def check_symmetric(self) -> bool:
        """Return ``True`` iff for every arc (u, v) the arc (v, u) exists."""
        e = self.edges()
        fwd = {(int(u), int(v)) for u, v in e}
        return all((v, u) in fwd for (u, v) in fwd)

    def check_sorted(self) -> bool:
        """Return ``True`` iff every neighborhood is sorted ascending."""
        if self.num_arcs == 0:
            return True
        d = np.diff(self.adjncy)
        ok = d >= 0
        # Positions where a new neighborhood starts may legitimately
        # decrease; mask them out (only interior boundaries index into
        # the diff array — empty neighborhoods at either end do not).
        starts = self.xadj[1:-1]
        starts = starts[(starts >= 1) & (starts <= self.num_arcs - 1)]
        ok[starts - 1] = True
        return bool(np.all(ok))

    def check_no_self_loops(self) -> bool:
        """Return ``True`` iff no vertex lists itself as a neighbor."""
        src = np.repeat(self.vertices(), self.degrees)
        return not bool(np.any(src == self.adjncy))

    def to_scipy(self):
        """The graph as a ``scipy.sparse.csr_matrix`` of 0/1 weights."""
        from scipy.sparse import csr_matrix

        data = np.ones(self.num_arcs, dtype=np.int64)
        return csr_matrix(
            (data, self.adjncy.copy(), self.xadj.copy()),
            shape=(self.num_vertices, self.num_vertices),
        )

    def to_networkx(self):
        """The graph as a :class:`networkx.Graph` (tests / examples)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_vertices))
        g.add_edges_from(map(tuple, self.undirected_edges()))
        return g

    def copy(self) -> "CSRGraph":
        """Deep copy (arrays owned by the new instance)."""
        return CSRGraph(
            self.xadj.copy(),
            self.adjncy.copy(),
            oriented=self.oriented,
            sorted_neighborhoods=self.sorted_neighborhoods,
            name=self.name,
        )

    def memory_words(self) -> int:
        """Storage footprint in 8-byte machine words (xadj + adjncy)."""
        return int(self.xadj.size + self.adjncy.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "oriented" if self.oriented else "undirected"
        label = f" {self.name!r}" if self.name else ""
        return (
            f"CSRGraph({kind}{label}, n={self.num_vertices}, "
            f"arcs={self.num_arcs})"
        )
