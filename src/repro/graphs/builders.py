"""Constructing and cleaning :class:`~repro.graphs.csr.CSRGraph` instances.

The paper's preprocessing (Section V-B/V-C) interprets directed inputs
as undirected, removes isolated vertices, and requires sorted
neighborhoods.  These builders implement that pipeline fully
vectorized: duplicate removal, self-loop removal, symmetrization and
sorting are all ``O(m log m)`` NumPy operations with no per-edge Python
loops.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "from_edges",
    "from_neighborhoods",
    "from_scipy",
    "from_networkx",
    "empty_graph",
    "remove_isolated_vertices",
    "relabel",
    "induced_subgraph",
    "canonical_edges",
]


def canonical_edges(edges: np.ndarray, *, drop_self_loops: bool = True) -> np.ndarray:
    """Normalize an edge list to unique rows ``[u, v]`` with ``u < v``.

    Parameters
    ----------
    edges:
        ``(k, 2)`` integer array; rows may appear in either orientation
        and multiple times (multi-edges collapse to simple edges, as
        the paper does for its directed web crawls).
    drop_self_loops:
        Remove rows with ``u == v`` (triangle counting is defined on
        simple graphs).
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must have shape (k, 2)")
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    if drop_self_loops:
        keep = lo != hi
        lo, hi = lo[keep], hi[keep]
    if lo.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    return np.unique(np.column_stack([lo, hi]), axis=0)


def from_edges(
    edges: np.ndarray,
    num_vertices: int | None = None,
    *,
    name: str = "",
) -> CSRGraph:
    """Build an undirected, simple, sorted CSR graph from an edge list.

    ``edges`` may contain duplicates, self-loops and both orientations;
    they are canonicalized first.  ``num_vertices`` defaults to
    ``max(edges) + 1`` (0 for an empty list).
    """
    canon = canonical_edges(edges)
    if num_vertices is None:
        num_vertices = int(canon.max()) + 1 if canon.size else 0
    elif canon.size and int(canon.max()) >= num_vertices:
        raise ValueError("edge endpoint exceeds num_vertices")
    # Symmetrize: every undirected edge becomes two arcs.
    src = np.concatenate([canon[:, 0], canon[:, 1]])
    dst = np.concatenate([canon[:, 1], canon[:, 0]])
    # Sort by (src, dst) so neighborhoods come out sorted.
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=num_vertices)
    xadj = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=xadj[1:])
    return CSRGraph(xadj, dst, oriented=False, sorted_neighborhoods=True, name=name)


def from_neighborhoods(neighborhoods, *, name: str = "") -> CSRGraph:
    """Build a graph from an explicit ``{v: iterable}`` -like sequence.

    ``neighborhoods`` is a sequence where entry ``v`` lists ``N_v``.
    The input must already be symmetric; this is checked.  Intended for
    small hand-written graphs in tests and examples.
    """
    adj = [np.asarray(sorted(set(int(x) for x in nb)), dtype=np.int64) for nb in neighborhoods]
    n = len(adj)
    xadj = np.zeros(n + 1, dtype=np.int64)
    xadj[1:] = np.cumsum([a.size for a in adj])
    adjncy = np.concatenate(adj) if n else np.empty(0, dtype=np.int64)
    g = CSRGraph(xadj, adjncy, oriented=False, sorted_neighborhoods=True, name=name)
    if not g.check_symmetric():
        raise ValueError("neighborhoods are not symmetric")
    if not g.check_no_self_loops():
        raise ValueError("self-loops are not allowed")
    return g


def from_scipy(mat, *, name: str = "") -> CSRGraph:
    """Build from a scipy sparse matrix (interpreted as undirected)."""
    from scipy.sparse import coo_matrix

    coo = coo_matrix(mat)
    edges = np.column_stack([coo.row.astype(np.int64), coo.col.astype(np.int64)])
    return from_edges(edges, num_vertices=max(coo.shape), name=name)


def from_networkx(g, *, name: str = "") -> CSRGraph:
    """Build from a networkx graph whose nodes are ``0..n-1``."""
    n = g.number_of_nodes()
    if n and set(g.nodes) != set(range(n)):
        raise ValueError("networkx nodes must be exactly 0..n-1; relabel first")
    edges = np.array([(u, v) for u, v in g.edges], dtype=np.int64).reshape(-1, 2)
    return from_edges(edges, num_vertices=n, name=name)


def empty_graph(num_vertices: int, *, name: str = "") -> CSRGraph:
    """A graph with ``num_vertices`` vertices and no edges."""
    return CSRGraph(
        np.zeros(num_vertices + 1, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        name=name,
    )


def remove_isolated_vertices(g: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """Drop degree-0 vertices, compacting ids (paper Section V-C).

    Returns
    -------
    (graph, old_ids):
        ``old_ids[new_v]`` gives the original id of the surviving
        vertex ``new_v``.
    """
    keep = g.degrees > 0
    old_ids = np.flatnonzero(keep).astype(np.int64)
    new_of_old = np.full(g.num_vertices, -1, dtype=np.int64)
    new_of_old[old_ids] = np.arange(old_ids.size, dtype=np.int64)
    e = g.undirected_edges()
    remapped = new_of_old[e]
    return from_edges(remapped, num_vertices=old_ids.size, name=g.name), old_ids


def relabel(g: CSRGraph, perm: np.ndarray) -> CSRGraph:
    """Relabel vertices: new id of vertex ``v`` is ``perm[v]``.

    ``perm`` must be a permutation of ``0..n-1``.  Used to realize the
    globally-sorted-by-rank vertex numbering the machine model assumes
    and for locality experiments (e.g. random shuffles destroy
    locality; BFS orders restore it).
    """
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (g.num_vertices,) or not np.array_equal(
        np.sort(perm), np.arange(g.num_vertices)
    ):
        raise ValueError("perm must be a permutation of 0..n-1")
    e = g.undirected_edges()
    return from_edges(perm[e], num_vertices=g.num_vertices, name=g.name)


def induced_subgraph(g: CSRGraph, vertices: np.ndarray) -> tuple[CSRGraph, np.ndarray]:
    """Induced subgraph ``G(V')`` with compacted ids.

    Returns the subgraph and the sorted original ids (new id ``i``
    corresponds to original ``ids[i]``).
    """
    ids = np.unique(np.asarray(vertices, dtype=np.int64))
    if ids.size and (ids[0] < 0 or ids[-1] >= g.num_vertices):
        raise ValueError("vertex id out of range")
    new_of_old = np.full(g.num_vertices, -1, dtype=np.int64)
    new_of_old[ids] = np.arange(ids.size, dtype=np.int64)
    e = g.undirected_edges()
    keep = (new_of_old[e[:, 0]] >= 0) & (new_of_old[e[:, 1]] >= 0)
    sub = from_edges(new_of_old[e[keep]], num_vertices=ids.size, name=g.name)
    return sub, ids
