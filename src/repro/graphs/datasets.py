"""Scaled stand-ins for the real-world instances of Table I.

The paper evaluates on eight real-world graphs (SNAP / KONECT / LAW /
DIMACS) of up to 3.3 billion edges.  Those inputs are far beyond what
this pure-Python reproduction can hold, so each gets a **synthetic
stand-in** matched on the structural axes the experiments actually
discriminate on:

========== ======================= ==========================================
family      paper instances         stand-in recipe
========== ======================= ==========================================
social      live-journal, orkut,    RHG (power-law degrees + clustering) with
            twitter, friendster     a random id shuffle (social ids carry *no*
                                    locality — the paper observes exactly this
                                    on friendster); twitter uses R-MAT for its
                                    extreme skew and low clustering.
web         uk-2007-05,             RHG *without* shuffling: crawl-ordered web
            webbase-2001            graphs have strong id locality, giving
                                    small cuts that CETRIC exploits.
road        europe, usa             sparse 2D lattices with a sprinkling of
                                    diagonals: uniform low degree, tiny cuts,
                                    few triangles.
========== ======================= ==========================================

Every stand-in is deterministic per (name, scale, seed).  ``scale``
multiplies the default vertex count (~2**13) so strong-scaling sweeps
can grow inputs without touching the recipes.

:data:`PAPER_STATS` records the actual Table-I numbers so benchmark
output can print paper-vs-measured rows (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .builders import from_edges, relabel
from .csr import CSRGraph
from .generators import grid2d, rhg, rmat

__all__ = ["PAPER_STATS", "DATASET_NAMES", "dataset", "load_real", "PaperStats"]


@dataclass(frozen=True)
class PaperStats:
    """A row of Table I (counts in millions unless noted)."""

    family: str
    n: float
    m: float
    wedges: float
    triangles: float

    @property
    def avg_degree(self) -> float:
        """Average degree ``2 m / n`` of the original instance."""
        return 2.0 * self.m / self.n


#: Table I of the paper, verbatim (n, m, wedges, triangles in millions).
PAPER_STATS: dict[str, PaperStats] = {
    "live-journal": PaperStats("social", 5, 43, 681, 286),
    "orkut": PaperStats("social", 3, 117, 4040, 628),
    "twitter": PaperStats("social", 42, 1203, 150508, 34825),
    "friendster": PaperStats("social", 68, 1812, 82286, 4177),
    "uk-2007-05": PaperStats("web", 106, 3302, 389061, 286701),
    "webbase-2001": PaperStats("web", 118, 855, 15393, 12262),
    "europe": PaperStats("road", 18, 22, 8, 0.697519),
    "usa": PaperStats("road", 24, 29, 11, 0.438804),
}

DATASET_NAMES: tuple[str, ...] = tuple(PAPER_STATS)

#: Default stand-in vertex count at scale=1.0.
_BASE_N = 1 << 13


def _shuffled(g: CSRGraph, seed: int) -> CSRGraph:
    """Random id relabel — destroys id locality like social-network ids."""
    rng = np.random.default_rng(seed)
    return relabel(g, rng.permutation(g.num_vertices))


def _road(n_target: int, seed: int, diag_fraction: float, name: str) -> CSRGraph:
    """Sparse lattice road-network stand-in with a few triangle-making diagonals."""
    side = max(2, int(np.sqrt(n_target)))
    base = grid2d(side, side)
    idx = np.arange(side * side, dtype=np.int64).reshape(side, side)
    diag = np.column_stack([idx[:-1, :-1].ravel(), idx[1:, 1:].ravel()])
    rng = np.random.default_rng(seed)
    keep = rng.random(diag.shape[0]) < diag_fraction
    edges = np.concatenate([base.undirected_edges(), diag[keep]])
    return from_edges(edges, num_vertices=side * side, name=name)


def _social_rhg(n: int, avg_degree: float, gamma: float, seed: int, name: str) -> CSRGraph:
    g = rhg(n, avg_degree=avg_degree, gamma=gamma, seed=seed)
    g = _shuffled(g, seed + 1)
    g.name = name
    return g


def _web_rhg(n: int, avg_degree: float, gamma: float, seed: int, name: str) -> CSRGraph:
    g = rhg(n, avg_degree=avg_degree, gamma=gamma, seed=seed)
    g.name = name
    return g


def _twitter(n: int, seed: int, name: str) -> CSRGraph:
    scale = max(1, int(np.round(np.log2(max(2, n)))))
    g = rmat(scale, edge_factor=28, seed=seed)
    g.name = name
    return g


_RECIPES: dict[str, Callable[[int, int], CSRGraph]] = {
    # Social: power-law + clustering, ids shuffled (no locality).
    "live-journal": lambda n, s: _social_rhg(n, 17.0, 2.8, s, "live-journal"),
    "orkut": lambda n, s: _social_rhg(n, 48.0, 3.0, s, "orkut"),
    # Twitter: extreme skew, relatively low clustering -> R-MAT.
    "twitter": lambda n, s: _twitter(n, s, "twitter"),
    # Friendster: big, moderate clustering, no locality.
    "friendster": lambda n, s: _social_rhg(n, 32.0, 3.2, s, "friendster"),
    # Web: locality-preserving ids, dense triangles.
    "uk-2007-05": lambda n, s: _web_rhg(n, 56.0, 2.4, s, "uk-2007-05"),
    "webbase-2001": lambda n, s: _web_rhg(n, 14.0, 2.6, s, "webbase-2001"),
    # Road: sparse lattices.
    "europe": lambda n, s: _road(n, s, 0.08, "europe"),
    "usa": lambda n, s: _road(n, s, 0.05, "usa"),
}


def load_real(name: str, path) -> CSRGraph:
    """Load an actual Table-I dataset from disk (if you have it).

    Applies the paper's preprocessing — undirect, simplify, drop
    isolated vertices — and warns when the loaded sizes are far from
    Table I's (a likely sign of loading the wrong file).  Accepts any
    format :func:`repro.graphs.io.load` understands.
    """
    import warnings

    from .builders import remove_isolated_vertices
    from .io import load as _load

    if name not in PAPER_STATS:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    g = _load(path)
    g, _ = remove_isolated_vertices(g)
    g.name = name
    expected = PAPER_STATS[name]
    if not (0.5 * expected.m * 1e6 <= g.num_edges <= 2.0 * expected.m * 1e6):
        warnings.warn(
            f"{name}: loaded m={g.num_edges:,} but Table I says "
            f"~{expected.m:g}M edges — check the input file",
            stacklevel=2,
        )
    return g


def dataset(name: str, *, scale: float = 1.0, seed: int = 42) -> CSRGraph:
    """Instantiate the stand-in for a Table-I dataset.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    scale:
        Multiplies the default stand-in size (``~2**13`` vertices).
        Strong-scaling benchmarks typically use 1.0; quick tests 0.1.
    seed:
        Base RNG seed; the default matches the benchmark harness.
    """
    if name not in _RECIPES:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    n = max(16, int(_BASE_N * scale))
    return _RECIPES[name](n, seed)
