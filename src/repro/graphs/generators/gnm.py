"""Erdős–Rényi ``G(n, m)`` generator (KaGen's GNM model).

The paper's weak-scaling experiments (Fig. 5) use ``G(n, m)`` graphs
chosen uniformly at random from all graphs with ``n`` vertices and
``m`` edges, with ``m = 16 n`` as in the Graph 500 default.  GNM
graphs have no locality at all, which is why contraction (CETRIC)
does not pay off on them — an effect this reproduction must preserve,
so the generator is exact: simple graphs, no duplicate edges.
"""

from __future__ import annotations

import numpy as np

from ..builders import from_edges
from ..csr import CSRGraph

__all__ = ["gnm", "random_edge_sample"]


def _max_edges(n: int) -> int:
    return n * (n - 1) // 2


def _decode_pairs(codes: np.ndarray, n: int) -> np.ndarray:
    """Map linear codes in ``[0, C(n,2))`` to distinct pairs ``u < v``.

    Uses the row-major enumeration of the strict upper triangle:
    code = u*n - u*(u+1)/2 + (v - u - 1).  Inverted vectorized via the
    quadratic formula.
    """
    codes = codes.astype(np.float64)
    # Solve u from the cumulative row sizes: rows 0..u-1 cover
    # sum_{i<u} (n-1-i) = u*n - u*(u+1)/2 codes.
    # u = floor(((2n-1) - sqrt((2n-1)^2 - 8*code)) / 2)
    b = 2.0 * n - 1.0
    u = np.floor((b - np.sqrt(b * b - 8.0 * codes)) / 2.0).astype(np.int64)
    # Guard against floating point rounding at row boundaries.
    row_start = u * n - u * (u + 1) // 2
    too_big = row_start > codes
    u[too_big] -= 1
    row_start = u * n - u * (u + 1) // 2
    too_small = codes.astype(np.int64) - row_start >= (n - 1 - u)
    u[too_small] += 1
    row_start = u * n - u * (u + 1) // 2
    v = codes.astype(np.int64) - row_start + u + 1
    return np.column_stack([u, v])


def random_edge_sample(
    n: int, m: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``m`` distinct undirected edges on ``n`` vertices.

    Vectorized rejection sampling on linear edge codes; expected
    ``O(m)`` draws as long as ``m`` is at most half the possible
    edges, falling back to a full permutation otherwise.
    """
    total = _max_edges(n)
    if m > total:
        raise ValueError(f"m={m} exceeds C({n},2)={total}")
    if m == 0:
        return np.empty((0, 2), dtype=np.int64)
    if m > total // 2:
        # Dense regime: choose without replacement over all codes.
        codes = rng.choice(total, size=m, replace=False)
        return _decode_pairs(np.sort(codes), n)
    chosen = np.empty(0, dtype=np.int64)
    need = m
    while need > 0:
        draw = rng.integers(0, total, size=int(need * 1.2) + 8)
        chosen = np.unique(np.concatenate([chosen, draw]))
        need = m - chosen.size
    if chosen.size > m:
        chosen = rng.choice(chosen, size=m, replace=False)
    return _decode_pairs(np.sort(chosen), n)


def gnm(n: int, m: int, *, seed: int = 0, name: str | None = None) -> CSRGraph:
    """Generate a uniform random simple graph with ``n`` vertices, ``m`` edges.

    Parameters
    ----------
    n, m:
        Vertex and edge counts.  ``m`` must not exceed ``C(n, 2)``.
    seed:
        Seeds a :class:`numpy.random.PCG64`; identical seeds give
        identical graphs on every platform.
    """
    rng = np.random.default_rng(seed)
    edges = random_edge_sample(n, m, rng)
    label = name if name is not None else f"gnm(n={n},m={m},seed={seed})"
    return from_edges(edges, num_vertices=n, name=label)
