"""Random geometric graphs in 2D and 3D (KaGen's RGG2D / RGG3D models).

``n`` points are placed uniformly at random in the unit square; two
vertices are adjacent iff their Euclidean distance is below a radius
``r``.  The paper chooses ``r`` such that the expected number of edges
is ``16 n`` (Section V-C).  RGG2D graphs are the *most local* family in
the evaluation: after spatially-coherent ID assignment, 1D partitions
have tiny cuts, which is the regime where CETRIC's contraction shines.

The implementation uses a uniform grid of cell width ``r`` so candidate
pairs are only generated between neighboring cells — ``O(n + m)``
expected work, fully vectorized per cell-pair batch.

Vertex ids are assigned by sorting points along a space-filling-ish
order (cell-major) so that, as with KaGen's output, nearby vertices get
nearby ids and ID-based 1D partitioning inherits spatial locality.
"""

from __future__ import annotations

import numpy as np

from ..builders import from_edges
from ..csr import CSRGraph

__all__ = ["rgg2d", "rgg3d", "radius_for_expected_edges", "radius_for_expected_edges_3d"]


def radius_for_expected_edges(n: int, m: int) -> float:
    """Radius ``r`` giving ``E[edges] ~= m`` in the unit square.

    Ignoring boundary effects, a pair is adjacent with probability
    ``pi r^2``, so ``E[m] = C(n,2) * pi r^2``.
    """
    if n < 2:
        return 0.0
    pairs = n * (n - 1) / 2.0
    return float(np.sqrt(m / (np.pi * pairs)))


def radius_for_expected_edges_3d(n: int, m: int) -> float:
    """Radius giving ``E[edges] ~= m`` in the unit cube.

    A pair is adjacent with probability ``(4/3) pi r^3`` (ignoring
    boundary effects).
    """
    if n < 2:
        return 0.0
    pairs = n * (n - 1) / 2.0
    return float((m / (pairs * 4.0 / 3.0 * np.pi)) ** (1.0 / 3.0))


def _cell_edges(
    pts: np.ndarray,
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    r2: float,
    *,
    same_cell: bool,
) -> np.ndarray:
    """All pairs (a, b) with ``|pts[a] - pts[b]|^2 <= r2`` between two cells."""
    if idx_a.size == 0 or idx_b.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    a = np.repeat(idx_a, idx_b.size)
    b = np.tile(idx_b, idx_a.size)
    if same_cell:
        keep = a < b
        a, b = a[keep], b[keep]
    d = pts[a] - pts[b]
    close = (d * d).sum(axis=1) <= r2
    return np.column_stack([a[close], b[close]])


def rgg2d(
    n: int,
    radius: float | None = None,
    *,
    expected_edges: int | None = None,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Generate a 2D random geometric graph in the unit square.

    Exactly one of ``radius`` and ``expected_edges`` must be given;
    ``expected_edges`` computes the radius via
    :func:`radius_for_expected_edges` (paper default:
    ``expected_edges = 16 * n``).
    """
    if (radius is None) == (expected_edges is None):
        raise ValueError("give exactly one of radius / expected_edges")
    if radius is None:
        radius = radius_for_expected_edges(n, int(expected_edges))
    if radius < 0:
        raise ValueError("radius must be non-negative")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))

    label = name if name is not None else f"rgg2d(n={n},r={radius:.4g},seed={seed})"
    if n == 0 or radius == 0.0:
        return from_edges(np.empty((0, 2), dtype=np.int64), num_vertices=n, name=label)

    # Grid of cells of side >= radius; only 8-neighborhood interactions.
    cells_per_side = max(1, int(1.0 / radius))
    cell_xy = np.minimum((pts * cells_per_side).astype(np.int64), cells_per_side - 1)
    cell_id = cell_xy[:, 0] * cells_per_side + cell_xy[:, 1]

    # Relabel vertices cell-major so ids have spatial locality (KaGen-like).
    order = np.argsort(cell_id, kind="stable")
    pts = pts[order]
    cell_id = cell_id[order]

    # Bucket boundaries per cell (cells are contiguous after the sort).
    num_cells = cells_per_side * cells_per_side
    counts = np.bincount(cell_id, minlength=num_cells)
    starts = np.zeros(num_cells + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])

    r2 = radius * radius
    chunks: list[np.ndarray] = []
    # Iterate over non-empty cells only; each iteration does vectorized work
    # proportional to the candidate pairs of that cell neighborhood.
    nonempty = np.flatnonzero(counts)
    for c in nonempty:
        cx, cy = divmod(int(c), cells_per_side)
        idx_a = np.arange(starts[c], starts[c + 1], dtype=np.int64)
        # Same-cell pairs.
        chunks.append(_cell_edges(pts, idx_a, idx_a, r2, same_cell=True))
        # Half of the 8-neighborhood to avoid double generation:
        # (cx, cy+1), (cx+1, cy-1), (cx+1, cy), (cx+1, cy+1).
        for dx, dy in ((0, 1), (1, -1), (1, 0), (1, 1)):
            nx, ny = cx + dx, cy + dy
            if not (0 <= nx < cells_per_side and 0 <= ny < cells_per_side):
                continue
            nc = nx * cells_per_side + ny
            if counts[nc] == 0:
                continue
            idx_b = np.arange(starts[nc], starts[nc + 1], dtype=np.int64)
            chunks.append(_cell_edges(pts, idx_a, idx_b, r2, same_cell=False))
    edges = (
        np.concatenate(chunks, axis=0)
        if chunks
        else np.empty((0, 2), dtype=np.int64)
    )
    return from_edges(edges, num_vertices=n, name=label)


def rgg3d(
    n: int,
    radius: float | None = None,
    *,
    expected_edges: int | None = None,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Generate a 3D random geometric graph in the unit cube (RGG3D).

    Same contract as :func:`rgg2d`; the cell grid generalizes to a
    half-of-26-neighborhood sweep so each unordered cell pair is
    visited once.  Ids are cell-major, giving KaGen-like spatial
    locality in 3D as well.
    """
    if (radius is None) == (expected_edges is None):
        raise ValueError("give exactly one of radius / expected_edges")
    if radius is None:
        radius = radius_for_expected_edges_3d(n, int(expected_edges))
    if radius < 0:
        raise ValueError("radius must be non-negative")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 3))

    label = name if name is not None else f"rgg3d(n={n},r={radius:.4g},seed={seed})"
    if n == 0 or radius == 0.0:
        return from_edges(np.empty((0, 2), dtype=np.int64), num_vertices=n, name=label)

    cells = max(1, int(1.0 / radius))
    cell_xyz = np.minimum((pts * cells).astype(np.int64), cells - 1)
    cell_id = (cell_xyz[:, 0] * cells + cell_xyz[:, 1]) * cells + cell_xyz[:, 2]

    order = np.argsort(cell_id, kind="stable")
    pts = pts[order]
    cell_id = cell_id[order]

    num_cells = cells**3
    counts = np.bincount(cell_id, minlength=num_cells)
    starts = np.zeros(num_cells + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])

    # Half of the 26-neighborhood: the 13 lexicographically positive
    # offsets, so each unordered cell pair is visited exactly once.
    offsets = [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
        if (dx, dy, dz) > (0, 0, 0)
    ]

    r2 = radius * radius
    chunks: list[np.ndarray] = []
    nonempty = np.flatnonzero(counts)
    for c in nonempty:
        cz = int(c) % cells
        cy = (int(c) // cells) % cells
        cx = int(c) // (cells * cells)
        idx_a = np.arange(starts[c], starts[c + 1], dtype=np.int64)
        chunks.append(_cell_edges(pts, idx_a, idx_a, r2, same_cell=True))
        for dx, dy, dz in offsets:
            nx, ny, nz = cx + dx, cy + dy, cz + dz
            if not (0 <= nx < cells and 0 <= ny < cells and 0 <= nz < cells):
                continue
            nc = (nx * cells + ny) * cells + nz
            if counts[nc] == 0:
                continue
            idx_b = np.arange(starts[nc], starts[nc + 1], dtype=np.int64)
            chunks.append(_cell_edges(pts, idx_a, idx_b, r2, same_cell=False))
    edges = (
        np.concatenate(chunks, axis=0)
        if chunks
        else np.empty((0, 2), dtype=np.int64)
    )
    return from_edges(edges, num_vertices=n, name=label)
