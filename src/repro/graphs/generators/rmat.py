"""R-MAT recursive-matrix graph generator (Graph 500 / KaGen model).

The recursive matrix model subdivides the adjacency matrix into four
quadrants with probabilities ``(a, b, c, d)`` and recursively descends
into one of them per edge.  The paper uses the Graph 500 defaults
``a=0.57, b=0.19, c=0.19, d=0.05`` with ``m = 16 n`` edges, which
yields the heavily skewed degree distributions that stress distributed
triangle counters (many small messages to owners of hub vertices).

All ``m`` edges are drawn at once: for each of the ``log2 n`` levels a
vectorized categorical draw picks the quadrant for every edge, so
generation is ``O(m log n)`` NumPy work.  As in Graph 500, the
resulting multigraph is simplified (duplicate edges and self-loops
dropped) and, as in the paper's preprocessing, isolated vertices can be
removed by the caller.
"""

from __future__ import annotations

import numpy as np

from ..builders import from_edges
from ..csr import CSRGraph

__all__ = ["rmat", "GRAPH500_PROBS"]

#: Graph 500 default quadrant probabilities (a, b, c, d).
GRAPH500_PROBS: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05)


def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    probs: tuple[float, float, float, float] = GRAPH500_PROBS,
    noise: float = 0.1,
    scramble: bool = True,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Generate an R-MAT graph with ``n = 2**scale`` vertices.

    Parameters
    ----------
    scale:
        ``log2`` of the vertex count.
    edge_factor:
        ``m = edge_factor * n`` edge draws (before simplification);
        Graph 500 and the paper use 16.
    probs:
        Quadrant probabilities ``(a, b, c, d)``; must sum to 1.
    noise:
        Per-level multiplicative jitter on the probabilities (as in the
        Graph 500 reference code) to avoid exact self-similar artifacts.
        Set 0 to disable.
    scramble:
        Apply a random vertex-id permutation, as Graph 500 requires, so
        id-based partitions don't accidentally align with the recursion
        structure.
    seed:
        RNG seed.
    """
    a, b, c, d = probs
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError("probs must sum to 1")
    if scale < 0:
        raise ValueError("scale must be >= 0")
    n = 1 << scale
    m_draws = edge_factor * n
    rng = np.random.default_rng(seed)

    src = np.zeros(m_draws, dtype=np.int64)
    dst = np.zeros(m_draws, dtype=np.int64)
    for level in range(scale):
        if noise > 0.0:
            jitter = 1.0 + noise * (rng.random(4) * 2.0 - 1.0)
            pa, pb, pc, pd = np.array([a, b, c, d]) * jitter
            total = pa + pb + pc + pd
            pa, pb, pc, pd = pa / total, pb / total, pc / total, pd / total
        else:
            pa, pb, pc, pd = a, b, c, d
        u = rng.random(m_draws)
        # Quadrants: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1)
        right = ((u >= pa) & (u < pa + pb)) | (u >= pa + pb + pc)
        down = u >= pa + pb
        bit = np.int64(1) << (scale - 1 - level)
        src += down * bit
        dst += right * bit

    if scramble and n > 1:
        perm = rng.permutation(n).astype(np.int64)
        src, dst = perm[src], perm[dst]

    label = name if name is not None else f"rmat(scale={scale},ef={edge_factor},seed={seed})"
    return from_edges(np.column_stack([src, dst]), num_vertices=n, name=label)
