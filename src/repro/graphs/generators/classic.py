"""Deterministic graph families for tests, examples and road-network stand-ins.

Road networks (europe / usa in Table I) have near-uniform low degrees,
very small cuts under contiguous 1D partitions, and few triangles —
properties matched here by 2D grid lattices with diagonal shortcuts.
Complete graphs, rings, stars and trees provide analytically known
triangle counts for unit tests.
"""

from __future__ import annotations

import numpy as np

from ..builders import from_edges
from ..csr import CSRGraph

__all__ = [
    "complete_graph",
    "ring",
    "star",
    "path",
    "grid2d",
    "triangular_lattice",
    "barbell",
    "disjoint_cliques",
    "wheel",
]


def complete_graph(n: int, *, name: str | None = None) -> CSRGraph:
    """``K_n`` — has exactly ``C(n, 3)`` triangles."""
    u, v = np.triu_indices(n, k=1)
    label = name if name is not None else f"K{n}"
    return from_edges(np.column_stack([u, v]).astype(np.int64), num_vertices=n, name=label)


def ring(n: int, *, name: str | None = None) -> CSRGraph:
    """Cycle ``C_n`` — zero triangles for ``n >= 4``; one for ``n == 3``."""
    if n < 3:
        raise ValueError("ring needs n >= 3")
    v = np.arange(n, dtype=np.int64)
    edges = np.column_stack([v, (v + 1) % n])
    return from_edges(edges, num_vertices=n, name=name or f"C{n}")


def star(n: int, *, name: str | None = None) -> CSRGraph:
    """Star ``S_{n-1}``: hub 0 connected to all others; zero triangles."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    leaves = np.arange(1, n, dtype=np.int64)
    edges = np.column_stack([np.zeros(n - 1, dtype=np.int64), leaves])
    return from_edges(edges, num_vertices=n, name=name or f"S{n - 1}")


def path(n: int, *, name: str | None = None) -> CSRGraph:
    """Path ``P_n``; zero triangles."""
    if n < 1:
        raise ValueError("path needs n >= 1")
    v = np.arange(n - 1, dtype=np.int64)
    edges = np.column_stack([v, v + 1])
    return from_edges(edges, num_vertices=n, name=name or f"P{n}")


def grid2d(rows: int, cols: int, *, name: str | None = None) -> CSRGraph:
    """``rows x cols`` 4-neighbor lattice; zero triangles.

    Vertex id of cell ``(i, j)`` is ``i * cols + j`` — row-major ids
    give contiguous 1D partitions small cuts, like road networks.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid needs positive dimensions")
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz = np.column_stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()])
    vert = np.column_stack([idx[:-1, :].ravel(), idx[1:, :].ravel()])
    edges = np.concatenate([horiz, vert])
    return from_edges(edges, num_vertices=rows * cols, name=name or f"grid{rows}x{cols}")


def triangular_lattice(rows: int, cols: int, *, name: str | None = None) -> CSRGraph:
    """Grid lattice plus one diagonal per cell: ``2 (rows-1)(cols-1)`` triangles.

    Each unit square gains the ``(i, j) - (i+1, j+1)`` diagonal, which
    splits it into two triangles.  A good stand-in for road networks
    that still exercises the triangle-counting pipeline end to end.
    """
    base = grid2d(rows, cols)
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    diag = np.column_stack([idx[:-1, :-1].ravel(), idx[1:, 1:].ravel()])
    edges = np.concatenate([base.undirected_edges(), diag])
    return from_edges(edges, num_vertices=rows * cols, name=name or f"trigrid{rows}x{cols}")


def barbell(k: int, bridge: int = 0, *, name: str | None = None) -> CSRGraph:
    """Two ``K_k`` cliques joined by a path of ``bridge`` extra vertices.

    Exactly ``2 * C(k, 3)`` triangles; with ids laid out clique-first
    this graph makes cut structure obvious in partition tests.
    """
    if k < 1:
        raise ValueError("barbell needs k >= 1")
    left = complete_graph(k).undirected_edges()
    right = complete_graph(k).undirected_edges() + k + bridge
    chain_ids = np.concatenate(
        [[k - 1], np.arange(k, k + bridge, dtype=np.int64), [k + bridge]]
    )
    chain = np.column_stack([chain_ids[:-1], chain_ids[1:]])
    edges = np.concatenate([left, right, chain])
    n = 2 * k + bridge
    return from_edges(edges, num_vertices=n, name=name or f"barbell{k}+{bridge}")


def disjoint_cliques(count: int, k: int, *, name: str | None = None) -> CSRGraph:
    """``count`` disjoint copies of ``K_k``; ``count * C(k, 3)`` triangles.

    With contiguous ids per clique, a 1D partition into ``count`` parts
    has an *empty* cut — the pure-local extreme for CETRIC.
    """
    if count < 1 or k < 1:
        raise ValueError("need positive count and k")
    base = complete_graph(k).undirected_edges()
    parts = [base + i * k for i in range(count)]
    edges = np.concatenate(parts) if parts else np.empty((0, 2), dtype=np.int64)
    return from_edges(edges, num_vertices=count * k, name=name or f"{count}xK{k}")


def wheel(n: int, *, name: str | None = None) -> CSRGraph:
    """Wheel ``W_n``: hub 0 plus cycle of ``n - 1`` rim vertices.

    Exactly ``n - 1`` triangles for ``n >= 5`` (each rim edge forms one
    with the hub); ``W_4 = K_4`` has 4.
    """
    if n < 4:
        raise ValueError("wheel needs n >= 4")
    rim = np.arange(1, n, dtype=np.int64)
    spokes = np.column_stack([np.zeros(n - 1, dtype=np.int64), rim])
    cyc = np.column_stack([rim, np.roll(rim, -1)])
    return from_edges(np.concatenate([spokes, cyc]), num_vertices=n, name=name or f"W{n}")
