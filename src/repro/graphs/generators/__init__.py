"""Graph generators — KaGen-equivalent synthetic families plus classics.

The paper generates its weak-scaling inputs with KaGen (RGG2D, RHG,
GNM, R-MAT); this package provides deterministic NumPy implementations
of the same models with the same default parameterizations
(``m = 16 n``, RHG ``gamma = 2.8``, Graph 500 R-MAT probabilities).
"""

from .classic import (
    barbell,
    complete_graph,
    disjoint_cliques,
    grid2d,
    path,
    ring,
    star,
    triangular_lattice,
    wheel,
)
from .gnm import gnm
from .rgg import (
    radius_for_expected_edges,
    radius_for_expected_edges_3d,
    rgg2d,
    rgg3d,
)
from .rhg import disk_radius_for_avg_degree, rhg
from .rmat import GRAPH500_PROBS, rmat

__all__ = [
    "barbell",
    "complete_graph",
    "disjoint_cliques",
    "grid2d",
    "path",
    "ring",
    "star",
    "triangular_lattice",
    "wheel",
    "gnm",
    "rgg2d",
    "rgg3d",
    "radius_for_expected_edges",
    "radius_for_expected_edges_3d",
    "rhg",
    "disk_radius_for_avg_degree",
    "rmat",
    "GRAPH500_PROBS",
]
