"""Random hyperbolic graphs (KaGen's RHG model).

``n`` points are placed in a hyperbolic disk of radius ``R``; the
radial coordinate has density ``alpha * sinh(alpha r) / (cosh(alpha R) - 1)``
and the angle is uniform.  Two vertices are adjacent iff their
hyperbolic distance is at most ``R`` (threshold model).  The degree
distribution follows a power law with exponent ``gamma = 2 alpha + 1``;
the paper uses ``gamma = 2.8`` (so ``alpha = 0.9``) and an average
degree of 32 (``m ~= 16 n``).

RHG graphs combine heavy-tailed degrees with geometric locality —
exactly the regime where the paper observes a "spike" in degree
exchange and where DITRIC² (indirection) starts paying off.

The generator is output-sensitive: points are sorted by angle (which
also gives KaGen-style spatially local vertex ids); for each vertex an
angular candidate window is derived from the most permissive possible
partner radius and only candidates inside the window get the exact
hyperbolic-distance test.  A small set of "inner" points near the disk
center (which can connect at any angle) is handled densely.
"""

from __future__ import annotations

import numpy as np

from ..builders import from_edges
from ..csr import CSRGraph

__all__ = ["rhg", "disk_radius_for_avg_degree", "hyperbolic_distance"]


def disk_radius_for_avg_degree(n: int, avg_degree: float, alpha: float) -> float:
    """Disk radius ``R`` targeting a given average degree.

    Uses the large-``n`` expectation from Krioukov et al. (2010):
    ``k_bar = (2/pi) n alpha^2 e^{-R/2} / (alpha - 1/2)^2`` for
    ``alpha > 1/2``.
    """
    if alpha <= 0.5:
        raise ValueError("alpha must exceed 1/2 (gamma > 2)")
    if avg_degree <= 0 or n < 2:
        raise ValueError("need avg_degree > 0 and n >= 2")
    c = (2.0 / np.pi) * n * alpha**2 / (alpha - 0.5) ** 2
    return float(2.0 * np.log(c / avg_degree))


def hyperbolic_distance(
    r1: np.ndarray, t1: np.ndarray, r2: np.ndarray, t2: np.ndarray
) -> np.ndarray:
    """Pairwise hyperbolic distance for broadcastable polar coordinates."""
    dt = np.pi - np.abs(np.pi - np.abs(t1 - t2) % (2 * np.pi))
    arg = np.cosh(r1) * np.cosh(r2) - np.sinh(r1) * np.sinh(r2) * np.cos(dt)
    return np.arccosh(np.maximum(arg, 1.0))


def _sample_radii(n: int, alpha: float, R: float, rng: np.random.Generator) -> np.ndarray:
    """Inverse-CDF sampling of the radial density on ``[0, R]``."""
    u = rng.random(n)
    # CDF(r) = (cosh(alpha r) - 1) / (cosh(alpha R) - 1)
    return np.arccosh(1.0 + u * (np.cosh(alpha * R) - 1.0)) / alpha


def _max_angle(r_u: np.ndarray, r_partner: float, R: float) -> np.ndarray:
    """Largest angular difference at which (r_u, r_partner) can connect."""
    denom = np.sinh(r_u) * np.sinh(r_partner)
    with np.errstate(divide="ignore", invalid="ignore"):
        cos_t = (np.cosh(r_u) * np.cosh(r_partner) - np.cosh(R)) / denom
    cos_t = np.where(denom <= 0, -1.0, cos_t)
    return np.arccos(np.clip(cos_t, -1.0, 1.0))


def rhg(
    n: int,
    *,
    avg_degree: float = 32.0,
    gamma: float = 2.8,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Generate a threshold random hyperbolic graph.

    Parameters
    ----------
    n:
        Number of vertices.
    avg_degree:
        Target expected average degree (paper default 32, i.e.
        ``m ~= 16 n``).
    gamma:
        Power-law exponent of the degree distribution
        (``gamma = 2 alpha + 1 > 2``); paper uses 2.8.
    seed:
        RNG seed; identical seeds give identical graphs.
    """
    label = name if name is not None else f"rhg(n={n},deg={avg_degree},gamma={gamma},seed={seed})"
    if n < 2:
        return from_edges(np.empty((0, 2), dtype=np.int64), num_vertices=n, name=label)
    alpha = (gamma - 1.0) / 2.0
    R = disk_radius_for_avg_degree(n, avg_degree, alpha)
    rng = np.random.default_rng(seed)
    radii = _sample_radii(n, alpha, R, rng)
    theta = rng.random(n) * 2.0 * np.pi

    # Angular sort: ids get KaGen-like angular locality.
    order = np.argsort(theta, kind="stable")
    radii, theta = radii[order], theta[order]

    # Points with r <= R/2 can connect to boundary points at any angle;
    # treat them densely against everyone (their count is tiny because
    # the radial density concentrates exponentially near r = R).
    inner_mask = radii <= R / 2.0
    inner = np.flatnonzero(inner_mask)
    outer = np.flatnonzero(~inner_mask)

    chunks: list[np.ndarray] = []

    if inner.size:
        # inner x all (dedup with index comparison)
        d = hyperbolic_distance(
            radii[inner][:, None], theta[inner][:, None], radii[None, :], theta[None, :]
        )
        a, b = np.nonzero(d <= R)
        ia = inner[a]
        keep = ia < b  # strict order also removes self pairs
        pairs = np.column_stack([ia[keep], b[keep]])
        # Drop pairs where both endpoints are inner and counted twice.
        both_inner = inner_mask[pairs[:, 0]] & inner_mask[pairs[:, 1]]
        dup = np.column_stack([pairs[both_inner][:, 0], pairs[both_inner][:, 1]])
        pairs = np.unique(pairs, axis=0) if dup.size else pairs
        chunks.append(pairs)

    if outer.size > 1:
        r_o = radii[outer]
        t_o = theta[outer]
        # Most permissive outer partner sits at radius R/2.
        tmax = _max_angle(r_o, R / 2.0, R)
        # Candidate windows in the angle-sorted order, looking only
        # forward (each unordered pair generated once).  Wraparound is
        # handled by an extended copy shifted by 2*pi.
        t_ext = np.concatenate([t_o, t_o + 2.0 * np.pi])
        k = outer.size
        hi = np.searchsorted(t_ext, t_o + tmax + 1e-12, side="right")
        lo = np.arange(1, k + 1)  # strictly after self
        win = np.maximum(hi - lo, 0)
        src = np.repeat(np.arange(k), win)
        # Column index within each window.
        offsets = np.concatenate([[0], np.cumsum(win)])
        col = np.arange(offsets[-1]) - np.repeat(offsets[:-1], win)
        dst_ext = np.repeat(lo, win) + col
        dst = dst_ext % k
        keep = src != dst
        src, dst = src[keep], dst[keep]
        d = hyperbolic_distance(r_o[src], t_o[src], r_o[dst], t_o[dst])
        close = d <= R
        u = outer[src[close]]
        v = outer[dst[close]]
        # Exclude pairs involving inner points (already covered above) —
        # by construction src/dst are outer, so nothing to exclude.
        chunks.append(np.column_stack([u, v]))

    edges = (
        np.concatenate(chunks, axis=0) if chunks else np.empty((0, 2), dtype=np.int64)
    )
    return from_edges(edges, num_vertices=n, name=label)
