"""Vertex reordering: creating and destroying ID locality.

The paper's evaluation hinges on how much locality the vertex
numbering exposes to the 1D partition: web crawls (BFS-like orders)
have small cuts, social networks (essentially random ids) do not.
These utilities produce the canonical orders for locality studies:

* :func:`bfs_order` — breadth-first numbering from a seed vertex per
  component; restores crawl-like locality;
* :func:`random_order` — random shuffle; destroys locality (the
  social-network null model);
* :func:`degree_order` — ascending-degree numbering; aligns the ID
  partition with the degree orientation (hubs all land on the last
  PEs — a pathological case worth testing against).

All return a permutation array ``perm`` with ``perm[v] = new id of
v``, suitable for :func:`repro.graphs.builders.relabel`.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .csr import CSRGraph

__all__ = ["bfs_order", "random_order", "degree_order", "cut_fraction"]


def bfs_order(graph: CSRGraph, *, start: int = 0) -> np.ndarray:
    """BFS numbering (component by component, queue-order levels).

    Unvisited components are entered in ascending id order after the
    start vertex's component is exhausted.
    """
    n = graph.num_vertices
    perm = np.full(n, -1, dtype=np.int64)
    next_id = 0
    visited = np.zeros(n, dtype=bool)
    seeds = [start] if 0 <= start < n else []
    seeds.extend(v for v in range(n))
    for seed in seeds:
        if next_id == n:
            break
        if visited[seed]:
            continue
        q: deque[int] = deque([seed])
        visited[seed] = True
        while q:
            v = q.popleft()
            perm[v] = next_id
            next_id += 1
            for u in graph.neighbors(v):
                if not visited[u]:
                    visited[u] = True
                    q.append(int(u))
    return perm


def random_order(graph: CSRGraph, *, seed: int = 0) -> np.ndarray:
    """Uniformly random permutation (locality null model)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(graph.num_vertices).astype(np.int64)


def degree_order(graph: CSRGraph) -> np.ndarray:
    """Number vertices by ascending ``(degree, id)``.

    After this relabeling the ID order *is* the paper's degree-based
    total order.
    """
    keys = np.lexsort((np.arange(graph.num_vertices), graph.degrees))
    perm = np.empty(graph.num_vertices, dtype=np.int64)
    perm[keys] = np.arange(graph.num_vertices, dtype=np.int64)
    return perm


def cut_fraction(graph: CSRGraph, num_pes: int) -> float:
    """Fraction of edges cut by the ``num_pes``-way ID partition.

    The single scalar that predicts whether contraction pays off.
    """
    if graph.num_edges == 0:
        return 0.0
    from .distributed import distribute

    dist = distribute(graph, num_pes=num_pes)
    return dist.total_cut_edges() / graph.num_edges
