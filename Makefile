# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test lint lint-flow bench bench-smoke chaos chaos-localized examples report clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Short fixed-seed fault-injection campaign (see docs/FAULTS.md):
# drops + one scheduled PE crash must not change any triangle count.
chaos:
	PYTHONPATH=src $(PYTHON) -m repro chaos --seeds 3 --drop-rates 0,0.05 \
		--algorithms ditric,cetric

# Same campaign under online localized recovery: one timed PE crash
# per case is heartbeat-detected, partner-restored, and log-replayed
# inside a single run — counts stay exact and survivors never
# re-execute a phase (docs/FAULTS.md).
chaos-localized:
	PYTHONPATH=src $(PYTHON) -m repro chaos --seeds 5 --drop-rates 0,0.02 \
		--algorithms ditric,cetric --recovery localized

# ruff (style) + repro.lint (SPMD protocol rules R1-R12, see
# docs/SPMD_CONTRACT.md).  ruff is optional locally; CI installs it.
lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping style checks"; \
	fi
	PYTHONPATH=src $(PYTHON) -m repro.lint src

# The whole-program dataflow rules (R8-R12) in strict mode against the
# committed baseline: fails on new findings AND on stale baseline
# entries (docs/STATIC_ANALYSIS.md).
lint-flow:
	PYTHONPATH=src $(PYTHON) -m repro.lint --strict --baseline lint-baseline.json src

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Deterministic smoke suite -> BENCH_<date>.json, diffed against the
# committed baseline; fails on a >15% simulated-cost regression
# (docs/BENCHMARKS.md).  Regenerate the baseline after an intentional
# cost change with:
#   PYTHONPATH=src REPRO_BENCH_DATE=baseline $(PYTHON) -m repro bench \
#       --suite smoke --out benchmarks/baseline
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro bench --suite smoke --out . \
		--baseline benchmarks/baseline/BENCH_baseline.json

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

report:
	$(PYTHON) -m repro report -o evaluation_report.md

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
