# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench examples report clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

report:
	$(PYTHON) -m repro report -o evaluation_report.md

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
