"""Tests for the vectorized intersection kernels."""

import numpy as np
import pytest

from repro.core.intersect import (
    batch_intersect_count,
    batch_intersect_elements,
    concat_xadj,
    gather_blocks,
    intersect_count,
    intersect_sorted,
    merge_cost,
)


def _arr(*xs):
    return np.array(xs, dtype=np.int64)


def test_intersect_count_basic():
    assert intersect_count(_arr(1, 3, 5), _arr(3, 4, 5, 6)) == 2
    assert intersect_count(_arr(), _arr(1)) == 0
    assert intersect_count(_arr(1), _arr()) == 0
    assert intersect_count(_arr(1, 2), _arr(3, 4)) == 0


def test_intersect_count_swaps_for_smaller_needle():
    big = np.arange(100, dtype=np.int64)
    small = _arr(5, 50, 150)
    assert intersect_count(big, small) == intersect_count(small, big) == 2


def test_intersect_sorted_elements():
    out = intersect_sorted(_arr(1, 3, 5, 9), _arr(0, 3, 9, 12))
    assert out.tolist() == [3, 9]
    assert intersect_sorted(_arr(), _arr(1)).size == 0


def test_merge_cost():
    assert merge_cost(3, 4) == 7


def test_concat_xadj():
    assert concat_xadj(_arr(2, 0, 3)).tolist() == [0, 2, 2, 5]
    assert concat_xadj(np.array([], dtype=np.int64)).tolist() == [0]


def test_gather_blocks():
    xadj = _arr(0, 2, 2, 5)
    adj = _arr(10, 11, 20, 21, 22)
    cat, out_xadj = gather_blocks(xadj, adj, _arr(2, 0, 1, 2))
    assert cat.tolist() == [20, 21, 22, 10, 11, 20, 21, 22]
    assert out_xadj.tolist() == [0, 3, 5, 5, 8]


def test_gather_blocks_empty_selection():
    cat, out_xadj = gather_blocks(_arr(0, 2), _arr(1, 2), np.array([], dtype=np.int64))
    assert cat.size == 0
    assert out_xadj.tolist() == [0]


def test_batch_count_matches_scalar(rng):
    # random pairs of sorted unique arrays
    k = 40
    a_blocks = [np.unique(rng.integers(0, 60, size=rng.integers(0, 15))) for _ in range(k)]
    b_blocks = [np.unique(rng.integers(0, 60, size=rng.integers(0, 15))) for _ in range(k)]
    a_cat = np.concatenate(a_blocks) if k else np.empty(0)
    b_cat = np.concatenate(b_blocks)
    a_x = concat_xadj(np.array([b.size for b in a_blocks]))
    b_x = concat_xadj(np.array([b.size for b in b_blocks]))
    res = batch_intersect_count(a_cat, a_x, b_cat, b_x, 60)
    expected = [intersect_count(a, b) for a, b in zip(a_blocks, b_blocks)]
    assert res.counts.tolist() == expected
    assert res.ops == a_cat.size + b_cat.size
    assert res.total == sum(expected)


def test_batch_count_empty_batch():
    e = np.empty(0, dtype=np.int64)
    res = batch_intersect_count(e, _arr(0), e, _arr(0), 10)
    assert res.counts.size == 0
    assert res.total == 0


def test_batch_count_mismatched_pairs_rejected():
    e = np.empty(0, dtype=np.int64)
    with pytest.raises(ValueError):
        batch_intersect_count(e, _arr(0, 0), e, _arr(0), 10)


def test_batch_elements_returns_hits():
    a_cat = _arr(1, 3, 5, 2, 4)
    a_x = _arr(0, 3, 5)
    b_cat = _arr(3, 5, 7, 4)
    b_x = _arr(0, 3, 4)
    pair_idx, elements, ops = batch_intersect_elements(a_cat, a_x, b_cat, b_x, 10)
    assert pair_idx.tolist() == [0, 0, 1]
    assert elements.tolist() == [3, 5, 4]
    assert ops == 9


def test_batch_elements_empty():
    e = np.empty(0, dtype=np.int64)
    pair_idx, elements, _ = batch_intersect_elements(e, _arr(0), e, _arr(0), 10)
    assert pair_idx.size == 0 and elements.size == 0


def test_batch_no_cross_pair_contamination():
    """Same values in different pairs must not match across pairs."""
    a_cat = _arr(7, 7)
    a_x = _arr(0, 1, 2)
    b_cat = _arr(8, 7)
    b_x = _arr(0, 1, 2)
    res = batch_intersect_count(a_cat, a_x, b_cat, b_x, 10)
    assert res.counts.tolist() == [0, 1]
