"""Tests for the TriC-like, HavoqGT-like and shared-memory baselines."""

import pytest

from repro.baselines import (
    edge_parallel_count,
    havoqgt_program,
    tric_program,
    vertex_parallel_count,
)
from repro.core.edge_iterator import edge_iterator
from repro.core.engine import EngineConfig, counting_program
from repro.graphs import distribute
from repro.graphs import generators as gen
from repro.net import Machine, MachineSpec, OutOfMemoryError


# ---------------------------------------------------------------- tric
@pytest.mark.parametrize("p", [1, 2, 4, 7])
def test_tric_correct(p, random_graph):
    truth = edge_iterator(random_graph).triangles
    dist = distribute(random_graph, num_pes=p)
    res = Machine(p).run(tric_program, dist)
    assert res.values[0].triangles_total == truth


@pytest.mark.parametrize("p", [2, 5])
def test_tric_correct_on_known(p, known_graph):
    label, g, expected = known_graph
    dist = distribute(g, num_pes=p)
    assert Machine(p).run(tric_program, dist).values[0].triangles_total == expected


def test_tric_single_exchange_message_count():
    """TriC's signature: exactly p-1 data messages per PE."""
    g = gen.gnm(400, 4000, seed=3)
    p = 8
    dist = distribute(g, num_pes=p)
    res = Machine(p).run(tric_program, dist)
    import math

    # reduce+bcast tree adds O(log p); the data exchange is p-1 each.
    for m in res.metrics.per_pe:
        assert m.messages_sent <= (p - 1) + 2 * math.ceil(math.log2(p)) + 2


def test_tric_out_of_memory_on_tight_budget():
    g = gen.rmat(9, 16, seed=4)
    p = 8
    dist = distribute(g, num_pes=p)
    tight = MachineSpec(memory_words=100)
    with pytest.raises(OutOfMemoryError):
        Machine(p, tight).run(tric_program, dist)


def test_tric_more_work_than_ditric_on_skewed():
    """No degree orientation => hub out-degrees explode the work."""
    g = gen.rhg(3000, avg_degree=16, gamma=2.6, seed=5)
    p = 8
    dist = distribute(g, num_pes=p)
    ops_tric = Machine(p).run(tric_program, dist).metrics.total_ops
    ops_ditric = Machine(p).run(
        counting_program, dist, EngineConfig()
    ).metrics.total_ops
    assert ops_tric > 2 * ops_ditric


def test_tric_static_buffer_recorded():
    g = gen.gnm(300, 3000, seed=6)
    dist = distribute(g, num_pes=4)
    res = Machine(4).run(tric_program, dist)
    assert res.metrics.max_peak_buffer_words > 0
    for v in res.values:
        assert v.staged_words >= 0


# ---------------------------------------------------------------- havoqgt
@pytest.mark.parametrize("p", [1, 2, 4, 7])
def test_havoqgt_correct(p, random_graph):
    truth = edge_iterator(random_graph).triangles
    dist = distribute(random_graph, num_pes=p)
    res = Machine(p).run(havoqgt_program, dist)
    assert res.values[0].triangles_total == truth


@pytest.mark.parametrize("p", [3, 6])
def test_havoqgt_correct_on_known(p, known_graph):
    label, g, expected = known_graph
    dist = distribute(g, num_pes=p)
    assert Machine(p).run(havoqgt_program, dist).values[0].triangles_total == expected


def test_havoqgt_traffic_scales_with_wedges():
    """Visitor volume ~ 2 words x remote wedges, far above DITRIC volume."""
    g = gen.rhg(3000, avg_degree=24, gamma=2.8, seed=7)
    p = 8
    dist = distribute(g, num_pes=p)
    hv = Machine(p).run(havoqgt_program, dist).metrics.total_volume
    dv = Machine(p).run(counting_program, dist, EngineConfig()).metrics.total_volume
    assert hv > dv


def test_havoqgt_preprocessing_phase_heavier_than_ditric():
    g = gen.gnm(800, 8000, seed=8)
    p = 4
    dist = distribute(g, num_pes=p)
    h = Machine(p).run(havoqgt_program, dist).metrics.phase_breakdown()
    d = Machine(p).run(counting_program, dist, EngineConfig()).metrics.phase_breakdown()
    assert h["preprocessing"] > d["preprocessing"]


def test_havoqgt_batch_size_controls_messages():
    g = gen.gnm(500, 5000, seed=9)
    p = 4
    dist = distribute(g, num_pes=p)
    small = Machine(p).run(havoqgt_program, dist, batch_pairs=64).metrics.total_messages
    large = Machine(p).run(havoqgt_program, dist, batch_pairs=65536).metrics.total_messages
    assert small > large


# ---------------------------------------------------------------- shared memory
@pytest.mark.parametrize("workers", [1, 2, 4, 8])
def test_vertex_parallel_correct(workers, random_graph):
    truth = edge_iterator(random_graph).triangles
    res = vertex_parallel_count(random_graph, workers)
    assert res.triangles == truth
    assert len(res.work_per_worker) == workers


@pytest.mark.parametrize("workers", [1, 2, 4, 8])
def test_edge_parallel_correct(workers, random_graph):
    truth = edge_iterator(random_graph).triangles
    res = edge_parallel_count(random_graph, workers)
    assert res.triangles == truth


def test_serial_mode_matches_parallel(random_graph):
    a = edge_parallel_count(random_graph, 4, parallel=True)
    b = edge_parallel_count(random_graph, 4, parallel=False)
    assert a.triangles == b.triangles
    assert a.work_per_worker == b.work_per_worker


def test_edge_centric_better_balanced_on_skewed():
    """Green et al.'s result: work-based splitting beats vertex blocks."""
    g = gen.rmat(11, 16, seed=10)
    workers = 8
    v = vertex_parallel_count(g, workers, parallel=False)
    e = edge_parallel_count(g, workers, parallel=False)
    assert e.load_imbalance < v.load_imbalance
    assert e.load_imbalance < 1.5


def test_workers_validation(random_graph):
    with pytest.raises(ValueError):
        vertex_parallel_count(random_graph, 0)
    with pytest.raises(ValueError):
        edge_parallel_count(random_graph, 0)


def test_load_imbalance_of_empty_graph():
    from repro.graphs import empty_graph

    res = vertex_parallel_count(empty_graph(10), 4)
    assert res.triangles == 0
    assert res.load_imbalance == 1.0
