"""Shared fixtures: a zoo of small graphs with known properties."""

from __future__ import annotations

import os

import numpy as np
import pytest

# Every simulated run in the test suite verifies the SPMD protocol
# contract (collective-order fingerprinting + message conservation at
# teardown); Machine reads this at construction time.  Tests that need
# it off pass protocol_check=False explicitly.
os.environ.setdefault("REPRO_PROTOCOL_CHECK", "1")

from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph


def graph_zoo() -> list[tuple[str, CSRGraph, int]]:
    """(label, graph, expected triangle count) triples.

    Expected counts are analytic where possible and networkx-verified
    otherwise (pinned — the generators are deterministic per seed).
    """
    return [
        ("K5", gen.complete_graph(5), 10),
        ("K8", gen.complete_graph(8), 56),
        ("C12", gen.ring(12), 0),
        ("triangle", gen.ring(3), 1),
        ("W9", gen.wheel(9), 8),
        ("W4=K4", gen.wheel(4), 4),
        ("star", gen.star(12), 0),
        ("path", gen.path(9), 0),
        ("grid", gen.grid2d(5, 6), 0),
        ("trigrid", gen.triangular_lattice(5, 5), 2 * 4 * 4),
        ("barbell", gen.barbell(5, 2), 20),
        ("cliques", gen.disjoint_cliques(4, 4), 16),
    ]


def random_graph_zoo() -> list[CSRGraph]:
    """Deterministic random instances of every generator family."""
    return [
        gen.gnm(400, 2500, seed=11),
        gen.rmat(9, 8, seed=12),
        gen.rgg2d(500, expected_edges=4000, seed=13),
        gen.rhg(600, avg_degree=10, seed=14),
    ]


@pytest.fixture(params=graph_zoo(), ids=lambda t: t[0])
def known_graph(request):
    """Parametrized (label, graph, triangles) fixture."""
    return request.param


@pytest.fixture(params=range(len(random_graph_zoo())), ids=["gnm", "rmat", "rgg2d", "rhg"])
def random_graph(request):
    """Parametrized random-family graph fixture."""
    return random_graph_zoo()[request.param]


@pytest.fixture
def rng():
    """A fixed-seed default RNG for test-local sampling."""
    return np.random.default_rng(20230704)
