"""The fault-injection subsystem: plans, transports, recovery, chaos.

Covers the ISSUE-2 acceptance criteria: the chaos campaign (seeds x
drop rates x one scheduled PE crash) returns exact sequential counts
for DITRIC and CETRIC, fault injection is deterministic (identical
plans replay identical runs, metrics, and traces), the reliable
transport's zero-fault overhead stays within budget, and crash
recovery re-runs only the lost phase.
"""

import dataclasses

import pytest

from repro.core.checkpoint import CheckpointStore, run_with_recovery, state_words
from repro.core.ditric import DITRIC_CONFIG
from repro.core.edge_iterator import edge_iterator
from repro.core.engine import counting_program
from repro.faults import (
    CrashEvent,
    FaultPlan,
    ReliableConfig,
    TransportError,
    format_campaign,
    run_campaign,
    run_chaos_case,
)
from repro.faults.chaos import default_chaos_graph
from repro.graphs.distributed import distribute
from repro.net import (
    Machine,
    PECrashError,
    ProtocolError,
    Tracer,
    barrier,
    reliable_send,
    render_timeline,
)
from repro.net.reliable import fault_tolerant


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
def test_plan_validates_rates_and_factors():
    with pytest.raises(ValueError):
        FaultPlan(drop_rate=1.0)
    with pytest.raises(ValueError):
        FaultPlan(duplicate_rate=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(stragglers={0: 0.5})
    with pytest.raises(ValueError):
        CrashEvent(rank=-1, at_event=0)
    with pytest.raises(ValueError):
        CrashEvent(rank=0, at_event=-1)


def test_plan_roundtrips_through_dict():
    plan = FaultPlan(
        4,
        drop_rate=0.1,
        duplicate_rate=0.2,
        delay_rate=0.05,
        reorder_rate=0.01,
        crashes=(CrashEvent(1, 100),),
        stragglers={2: 3.0},
    )
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone.to_dict() == plan.to_dict()


def test_plan_decisions_replay_after_reset():
    plan = FaultPlan(7, drop_rate=0.5, duplicate_rate=0.3)
    first = [(plan.should_drop(), plan.should_duplicate()) for _ in range(64)]
    plan.reset()
    again = [(plan.should_drop(), plan.should_duplicate()) for _ in range(64)]
    assert first == again
    assert any(d for d, _ in first) and any(not d for d, _ in first)


def test_plan_zero_rates_never_draw():
    """Disabled fault classes must not perturb the decision stream."""
    a = FaultPlan(1, drop_rate=0.5)
    drops_a = [a.should_drop() for _ in range(32)]
    b = FaultPlan(1, drop_rate=0.5, duplicate_rate=0.0, reorder_rate=0.0)
    # should_duplicate()/should_reorder() at rate 0 consume no randomness.
    drops_b = []
    for _ in range(32):
        assert not b.should_duplicate()
        assert not b.should_reorder()
        drops_b.append(b.should_drop())
    assert drops_a == drops_b


def test_crash_events_fire_at_most_once():
    plan = FaultPlan(crashes=(CrashEvent(1, 10),))
    assert not plan.crash_due(1, 9)
    assert not plan.crash_due(0, 50)
    assert plan.crash_due(1, 10)
    assert not plan.crash_due(1, 11), "a crash-stop fires once per plan"
    plan.reset()
    assert plan.crash_due(1, 99), "reset re-arms the schedule"


def test_straggler_lookup():
    plan = FaultPlan(stragglers={2: 4.0})
    assert plan.slowdown(2) == 4.0
    assert plan.slowdown(0) == 1.0


# ----------------------------------------------------------------------
# Machine integration: crashes, stragglers, transports
# ----------------------------------------------------------------------
def _chatty(ctx):
    for _ in range(4):
        ctx.send((ctx.rank + 1) % ctx.num_pes, "t", None, 2)
        yield from barrier(ctx)
        while ctx.try_recv("t") is not None:
            pass
    return ctx.clock


def test_scheduled_crash_raises_pecrasherror():
    plan = FaultPlan(crashes=(CrashEvent(rank=1, at_event=5),))
    machine = Machine(3, fault_plan=plan, transport="direct")
    with pytest.raises(PECrashError) as err:
        machine.run(_chatty)
    assert err.value.rank == 1
    assert err.value.event >= 5


def test_straggler_slows_exactly_its_pe():
    clean = Machine(3).run(_chatty)
    slow = Machine(
        3, fault_plan=FaultPlan(stragglers={1: 10.0}), transport="direct"
    ).run(_chatty)
    assert slow.metrics.per_pe[1].clock > clean.metrics.per_pe[1].clock * 5
    assert slow.metrics.makespan > clean.metrics.makespan


def test_machine_rejects_bad_transport_combinations():
    with pytest.raises(ValueError):
        Machine(2, transport="carrier-pigeon")
    with pytest.raises(ValueError):
        Machine(2, transport="lossy")  # lossy needs a plan
    with pytest.raises(ValueError):
        Machine(2, fault_plan=FaultPlan(drop_rate=0.5), transport="direct")


def test_reliable_transport_gives_up_after_max_attempts():
    plan = FaultPlan(seed=0, drop_rate=0.9)
    machine = Machine(
        2,
        fault_plan=plan,
        transport="reliable",
        reliable_config=ReliableConfig(max_attempts=1),
        protocol_check=False,
    )

    def prog(ctx):
        if ctx.rank == 0:
            for _ in range(50):
                ctx.send(1, "t", None, 1)
        yield

    with pytest.raises(TransportError):
        machine.run(prog)


def test_reliable_config_validation():
    with pytest.raises(ValueError):
        ReliableConfig(timeout_factor=0.0)
    with pytest.raises(ValueError):
        ReliableConfig(backoff=0.5)
    with pytest.raises(ValueError):
        ReliableConfig(ack_every=0)


def test_reliable_send_guards_against_lossy_transport():
    plan = FaultPlan(seed=1, duplicate_rate=0.5)

    @fault_tolerant
    def prog(ctx):
        if ctx.rank == 0:
            reliable_send(ctx, 1, "t", "x", 1)
        yield from barrier(ctx)
        while ctx.try_recv("t") is not None:
            pass
        return True

    # Over the reliable transport (and fault-free direct), it is a send.
    assert Machine(2, fault_plan=plan).run(prog).values == [True, True]
    assert Machine(2).run(prog).values == [True, True]
    # Over the lossy transport it refuses to expose the program.
    with pytest.raises(ProtocolError):
        Machine(2, fault_plan=plan, transport="lossy").run(prog)


def test_drop_and_retry_events_render_distinctly():
    tracer = Tracer()
    plan = FaultPlan(seed=9, drop_rate=0.4)
    machine = Machine(2, fault_plan=plan, transport="reliable", tracer=tracer)

    def prog(ctx):
        if ctx.rank == 0:
            for _ in range(12):
                ctx.send(1, "t", None, 1)
        yield from barrier(ctx)
        while ctx.try_recv("t") is not None:
            pass
        return None

    machine.run(prog)
    kinds = {e.kind for e in tracer.events}
    assert {"drop", "retry"} <= kinds
    text = render_timeline(tracer, max_events=10_000)
    assert "DROPPED" in text and "-x" in text
    assert "RETRY" in text and "~>" in text


# ----------------------------------------------------------------------
# Checkpoint store + recovery driver
# ----------------------------------------------------------------------
def test_state_words_estimates():
    import numpy as np

    assert state_words(np.zeros(10)) == 10
    assert state_words({"a": np.zeros(4), "b": 1}) == (1 + 4) + (1 + 1)
    assert state_words([1, 2, 3]) == 3
    assert state_words(None) == 1


def test_store_save_load_cursor_semantics():
    store = CheckpointStore(2)
    store.begin_run()
    store.save(0, "local", {"x": 1})
    store.save(0, "contraction", {"y": 2})
    store.begin_run()
    state, words = store.load(0, "local")
    assert state == {"x": 1} and words >= 1
    assert store.load(0, "nope") is None, "name mismatch means recompute"
    # Saving after a miss truncates the abandoned tail.
    store.save(0, "other", {"z": 3})
    assert store.names(0) == ["local", "other"]


def test_store_snapshots_are_isolated_copies():
    import numpy as np

    store = CheckpointStore(1)
    arr = np.arange(4)
    store.save(0, "phase", {"arr": arr})
    arr[:] = -1
    store.begin_run()
    state, _ = store.load(0, "phase")
    assert list(state["arr"]) == [0, 1, 2, 3]
    state["arr"][:] = 7  # mutating the restored copy is also safe
    store.begin_run()
    fresh, _ = store.load(0, "phase")
    assert list(fresh["arr"]) == [0, 1, 2, 3]


def test_prune_to_stable_keeps_common_prefix_only():
    store = CheckpointStore(3)
    for rank in range(3):
        store.save(rank, "local", {"r": rank})
    store.save(0, "contraction", {"r": 0})  # ranks 1, 2 crashed before it
    assert store.prune_to_stable() == 1
    assert all(store.names(r) == ["local"] for r in range(3))


def test_load_name_mismatch_leaves_cursor_for_the_right_name():
    """A mismatch must not consume the snapshot it rejected."""
    store = CheckpointStore(1)
    store.save(0, "local", {"x": 1})
    store.begin_run()
    assert store.load(0, "contraction") is None
    state, _ = store.load(0, "local")
    assert state == {"x": 1}, "the rejected snapshot is still replayable"


def test_prune_to_stable_cuts_at_mid_prefix_name_divergence():
    """Equal-length histories still prune where the *names* diverge."""
    store = CheckpointStore(2)
    for rank in range(2):
        store.save(rank, "local", {"r": rank})
    # Same depth, different second phase: an inconsistent cut.
    store.save(0, "contraction", {"r": 0})
    store.save(1, "global", {"r": 1})
    assert store.prune_to_stable() == 1
    assert store.names(0) == ["local"] and store.names(1) == ["local"]


def test_repeated_crashes_of_the_same_rank_recover():
    """The same PE failing in two attempts needs two restarts."""
    graph = default_chaos_graph()
    dist = distribute(graph, num_pes=4)
    expected = edge_iterator(graph).triangles
    dry = Machine(4).run(counting_program, dist, DITRIC_CONFIG)
    plan = FaultPlan(
        crashes=(
            CrashEvent(rank=2, at_event=int(dry.events * 0.5)),
            CrashEvent(rank=2, at_event=int(dry.events * 0.9)),
        )
    )
    machine = Machine(
        4, fault_plan=plan, transport="reliable", checkpoint_store=CheckpointStore(4)
    )
    recovery = run_with_recovery(machine, counting_program, dist, DITRIC_CONFIG)
    assert recovery.restarts == 2
    assert [r for r, _ in recovery.crashes] == [2, 2]
    assert recovery.values[0].triangles_total == expected


def test_recovery_result_prices_lost_attempts():
    """``total_time`` bills every aborted attempt, not just the survivor."""
    graph = default_chaos_graph()
    dist = distribute(graph, num_pes=4)
    dry = Machine(4).run(counting_program, dist, DITRIC_CONFIG)
    plan = FaultPlan(crashes=(CrashEvent(rank=1, at_event=int(dry.events * 0.6)),))
    machine = Machine(
        4, fault_plan=plan, transport="reliable", checkpoint_store=CheckpointStore(4)
    )
    recovery = run_with_recovery(machine, counting_program, dist, DITRIC_CONFIG)
    assert recovery.restarts == 1
    assert len(recovery.attempt_times) == 1
    assert recovery.attempt_times[0] > 0.0
    assert recovery.lost_time == pytest.approx(sum(recovery.attempt_times))
    assert recovery.total_time == pytest.approx(
        recovery.lost_time + recovery.time
    )
    assert recovery.total_time > recovery.time

    clean = run_with_recovery(
        Machine(4, transport="reliable", checkpoint_store=CheckpointStore(4)),
        counting_program,
        dist,
        DITRIC_CONFIG,
    )
    assert clean.restarts == 0 and clean.lost_time == 0.0
    assert clean.total_time == clean.time


def test_recovery_reruns_only_the_lost_phase():
    graph = default_chaos_graph()
    dist = distribute(graph, num_pes=4)
    expected = edge_iterator(graph).triangles

    dry = Machine(4).run(counting_program, dist, DITRIC_CONFIG)
    # Crash late: well inside the global phase, after checkpoints.
    plan = FaultPlan(crashes=(CrashEvent(rank=2, at_event=int(dry.events * 0.9)),))
    machine = Machine(
        4, fault_plan=plan, transport="reliable", checkpoint_store=CheckpointStore(4)
    )
    recovery = run_with_recovery(machine, counting_program, dist, DITRIC_CONFIG)
    assert recovery.restarts == 1
    assert [r for r, _ in recovery.crashes] == [2]
    assert recovery.values[0].triangles_total == expected
    # The surviving attempt restored the local checkpoint: it spent no
    # time in preprocessing/local, only in the re-run global phase.
    phases = recovery.result.metrics.phase_breakdown()
    assert "global" in phases
    assert "preprocessing" not in phases and "local" not in phases


def test_recovery_without_store_still_finishes():
    graph = default_chaos_graph()
    dist = distribute(graph, num_pes=2)
    expected = edge_iterator(graph).triangles
    dry = Machine(2).run(counting_program, dist, DITRIC_CONFIG)
    plan = FaultPlan(crashes=(CrashEvent(rank=0, at_event=dry.events // 2),))
    machine = Machine(2, fault_plan=plan, transport="reliable")
    recovery = run_with_recovery(machine, counting_program, dist, DITRIC_CONFIG)
    assert recovery.restarts == 1
    assert recovery.values[0].triangles_total == expected


def test_recovery_gives_up_past_max_restarts():
    plan = FaultPlan(crashes=tuple(CrashEvent(rank=0, at_event=0) for _ in range(3)))
    machine = Machine(2, fault_plan=plan, transport="direct")

    def prog(ctx):
        yield
        return 1

    with pytest.raises(PECrashError):
        run_with_recovery(machine, prog, max_restarts=1)


# ----------------------------------------------------------------------
# Acceptance: the chaos campaign + determinism + overhead
# ----------------------------------------------------------------------
def test_chaos_campaign_counts_are_exact():
    """10 seeds x drop rates {0, 0.01, 0.05} x 1 PE crash, both algorithms."""
    outcomes = run_campaign(
        algorithms=("ditric", "cetric"),
        seeds=range(10),
        drop_rates=(0.0, 0.01, 0.05),
        crash_fraction=0.5,
    )
    assert len(outcomes) == 2 * 3 * 10
    report = format_campaign(outcomes)
    assert all(o.exact for o in outcomes), report
    assert all(o.restarts == 1 for o in outcomes), "every case crashed once"
    assert "OK: 60/60" in report
    # Nonzero drop rates actually exercised the reliable transport.
    faulted = [o for o in outcomes if o.drop_rate > 0]
    assert sum(o.retransmits for o in faulted) > 0


def test_chaos_case_is_deterministic():
    """Identical (program, inputs, spec, plan seed) => identical runs."""
    graph = default_chaos_graph()
    a = run_chaos_case(graph, "cetric", 4, seed=6, drop_rate=0.05, crash_fraction=0.5)
    b = run_chaos_case(graph, "cetric", 4, seed=6, drop_rate=0.05, crash_fraction=0.5)
    assert dataclasses.asdict(a) == dataclasses.asdict(b)


def test_faulty_run_repeats_bit_identically_with_trace():
    graph = default_chaos_graph()
    dist = distribute(graph, num_pes=3)

    def one_run():
        tracer = Tracer()
        plan = FaultPlan(13, drop_rate=0.05, duplicate_rate=0.03)
        machine = Machine(3, fault_plan=plan, transport="reliable", tracer=tracer)
        result = machine.run(counting_program, dist, DITRIC_CONFIG)
        return result, tracer

    r1, t1 = one_run()
    r2, t2 = one_run()
    assert r1.values[0].triangles_total == r2.values[0].triangles_total
    assert r1.metrics.summary() == r2.metrics.summary()
    assert t1.events == t2.events
    assert r1.events == r2.events


def test_zero_fault_reliable_overhead_within_budget():
    """Reliable transport with no faults costs <= 10% simulated time."""
    graph = default_chaos_graph()
    dist = distribute(graph, num_pes=4)
    for config in (DITRIC_CONFIG,):
        direct = Machine(4).run(counting_program, dist, config)
        reliable = Machine(4, transport="reliable").run(counting_program, dist, config)
        assert reliable.values[0].triangles_total == direct.values[0].triangles_total
        assert reliable.time <= 1.10 * direct.time


def test_event_engine_fault_traces_byte_identical_including_lossy():
    """Satellite: same seed + fault plan => byte-identical Chrome traces
    and identical simulated_time across reruns, on the event engine,
    over both the reliable and the lossy transport."""
    from repro.obs import chrome_trace_json

    graph = default_chaos_graph()
    dist = distribute(graph, num_pes=3)

    def one_run(transport):
        tracer = Tracer()
        plan = FaultPlan(
            29, drop_rate=0.05, duplicate_rate=0.03, delay_rate=0.02, reorder_rate=0.02
        )
        machine = Machine(3, fault_plan=plan, transport=transport, tracer=tracer)
        if transport == "reliable":
            result = machine.run(counting_program, dist, DITRIC_CONFIG)
        else:
            # Lossy delivery breaks collectives; use a loss-tolerant toy.
            def prog(ctx):
                for i in range(20):
                    ctx.send((ctx.rank + 1) % ctx.num_pes, ("t", i), i, 2)
                got = 0
                for i in range(20):
                    while ctx.pending(("t", i)):
                        ctx.try_recv(("t", i))
                        got += 1
                    yield
                return got

            result = machine.run(prog)
        return result, chrome_trace_json(result.metrics, tracer, run_name="faulty")

    for transport in ("reliable", "lossy"):
        r1, j1 = one_run(transport)
        r2, j2 = one_run(transport)
        assert j1 == j2, transport
        assert r1.time == r2.time, transport
        assert r1.events == r2.events, transport


def test_fault_injection_bit_identical_between_schedulers():
    """Compat guarantee extends to faulty runs: the event engine and the
    round-robin scheduler draw the same fault decisions and charge the
    same repair costs."""
    graph = default_chaos_graph()
    dist = distribute(graph, num_pes=3)

    def one_run(scheduler):
        plan = FaultPlan(31, drop_rate=0.08, duplicate_rate=0.04, delay_rate=0.03)
        machine = Machine(3, fault_plan=plan, transport="reliable", scheduler=scheduler)
        return machine.run(counting_program, dist, DITRIC_CONFIG)

    ev = one_run("event")
    rr = one_run("round-robin")
    assert ev.values[0].triangles_total == rr.values[0].triangles_total
    assert ev.time == rr.time
    assert ev.events == rr.events
    assert ev.metrics.total_retransmits == rr.metrics.total_retransmits
    assert ev.metrics.summary() == rr.metrics.summary()


def test_crash_coordinates_bit_identical_between_schedulers():
    """The full-poll compat discipline replays crash-stop coordinates."""
    graph = default_chaos_graph()
    dist = distribute(graph, num_pes=3)
    dry = Machine(3).run(counting_program, dist, DITRIC_CONFIG)
    at_event = dry.events // 2

    def crash_run(scheduler):
        plan = FaultPlan(5, crashes=[CrashEvent(rank=1, at_event=at_event)])
        machine = Machine(3, fault_plan=plan, scheduler=scheduler)
        with pytest.raises(PECrashError) as err:
            machine.run(counting_program, dist, DITRIC_CONFIG)
        return err.value.rank, err.value.event

    assert crash_run("event") == crash_run("round-robin") == (1, at_event)
