"""Tests for the collective operations.

The final section exercises ``drain`` and ``sparse_alltoall`` under
*faulty* delivery (duplicated / reordered, via :mod:`repro.faults`):
over the lossy transport the faults are program-visible and the tests
pin down exactly how the collectives degrade; over the reliable
transport the same plans must be invisible.
"""

import math

import pytest

from repro.faults import FaultPlan
from repro.net import (
    Machine,
    allreduce,
    alltoallv_dense,
    barrier,
    bcast,
    drain,
    reduce_to_root,
    sparse_alltoall,
)

PS = [1, 2, 3, 4, 5, 7, 8, 16]


@pytest.mark.parametrize("p", PS)
def test_barrier_completes(p):
    def prog(ctx):
        yield from barrier(ctx)
        yield from barrier(ctx)  # twice: sequence numbers must not mix
        return True

    assert Machine(p).run(prog).values == [True] * p


@pytest.mark.parametrize("p", PS)
def test_reduce_to_root(p):
    def prog(ctx):
        return (yield from reduce_to_root(ctx, ctx.rank + 1, lambda a, b: a + b))

    res = Machine(p).run(prog)
    assert res.values[0] == p * (p + 1) // 2
    assert all(v is None for v in res.values[1:])


@pytest.mark.parametrize("p", PS)
def test_bcast(p):
    def prog(ctx):
        value = "payload" if ctx.rank == 0 else None
        return (yield from bcast(ctx, value))

    assert Machine(p).run(prog).values == ["payload"] * p


@pytest.mark.parametrize("p", PS)
def test_allreduce_everyone_gets_result(p):
    def prog(ctx):
        return (yield from allreduce(ctx, 2**ctx.rank, lambda a, b: a + b))

    assert Machine(p).run(prog).values == [(2**p) - 1] * p


def test_allreduce_with_max():
    def prog(ctx):
        return (yield from allreduce(ctx, ctx.rank * 7 % 5, max))

    p = 6
    expected = max(r * 7 % 5 for r in range(p))
    assert Machine(p).run(prog).values == [expected] * p


@pytest.mark.parametrize("p", [2, 3, 5, 8])
def test_dense_alltoall_delivers_everything(p):
    def prog(ctx):
        payloads = {d: (f"{ctx.rank}->{d}", 2) for d in range(p)}
        msgs = yield from alltoallv_dense(ctx, payloads)
        return sorted(m.payload for m in msgs)

    res = Machine(p).run(prog)
    for rank, got in enumerate(res.values):
        assert got == sorted(f"{s}->{rank}" for s in range(p))


def test_dense_alltoall_message_count_is_p_minus_1():
    p = 6

    def prog(ctx):
        yield from alltoallv_dense(ctx, {})
        return None

    res = Machine(p).run(prog)
    for m in res.metrics.per_pe:
        assert m.messages_sent == p - 1  # even with no payloads


@pytest.mark.parametrize("p", [1, 2, 4, 9])
def test_sparse_alltoall_only_contacts_partners(p):
    def prog(ctx):
        dest = (ctx.rank + 1) % p
        msgs = yield from sparse_alltoall(ctx, [(dest, ctx.rank, 3)])
        return [m.payload for m in msgs]

    res = Machine(p).run(prog)
    for rank, got in enumerate(res.values):
        assert got == [(rank - 1) % p]


def test_sparse_alltoall_message_count():
    """Sparse: data messages + barrier control traffic only."""
    p = 8

    def prog(ctx):
        yield from sparse_alltoall(ctx, [((ctx.rank + 1) % p, None, 1)])
        return None

    res = Machine(p).run(prog)
    import math

    barrier_msgs = math.ceil(math.log2(p))
    for m in res.metrics.per_pe:
        assert m.messages_sent == 1 + barrier_msgs


def test_sparse_alltoall_self_delivery_free():
    def prog(ctx):
        msgs = yield from sparse_alltoall(ctx, [(ctx.rank, "self", 5)])
        return [m.payload for m in msgs]

    res = Machine(3).run(prog)
    assert res.values == [["self"]] * 3
    # Self messages cost nothing beyond the termination barrier.
    for m in res.metrics.per_pe:
        assert m.words_sent <= 2 * 3  # barrier words only


def test_sparse_alltoall_multiple_to_same_dest():
    def prog(ctx):
        if ctx.rank == 0:
            msgs = yield from sparse_alltoall(ctx, [])
        else:
            msgs = yield from sparse_alltoall(ctx, [(0, i, 1) for i in range(3)])
        return sorted(m.payload for m in msgs if m.payload is not None)

    res = Machine(3).run(prog)
    assert res.values[0] == [0, 0, 1, 1, 2, 2]


@pytest.mark.parametrize("p", [1, 2, 3, 8])
def test_sparse_alltoall_terminates_with_no_partners(p):
    """Empty partner set everywhere: only barrier traffic, empty result."""

    def prog(ctx):
        msgs = yield from sparse_alltoall(ctx, [])
        return msgs

    res = Machine(p).run(prog)
    assert res.values == [[]] * p
    barrier_msgs = 0 if p == 1 else math.ceil(math.log2(p))
    for m in res.metrics.per_pe:
        assert m.messages_sent == barrier_msgs  # termination barrier only
        assert m.messages_received == barrier_msgs


def test_sparse_alltoall_p1_self_sends_only():
    """p=1: no network exists; self payloads are still delivered."""

    def prog(ctx):
        msgs = yield from sparse_alltoall(ctx, [(0, "a", 2), (0, "b", 2)])
        return [m.payload for m in msgs]

    res = Machine(1).run(prog)
    assert res.values == [["a", "b"]]
    assert res.metrics.per_pe[0].messages_sent == 0
    assert res.metrics.per_pe[0].words_sent == 0


def test_sparse_alltoall_asymmetric_partner_sets_terminate():
    """Termination must not require symmetric communication patterns."""
    p = 5

    def prog(ctx):
        if ctx.rank == 0:
            triples = [(d, f"to-{d}", 1) for d in range(1, p)]
        else:
            triples = []  # only rank 0 talks; everyone still terminates
        msgs = yield from sparse_alltoall(ctx, triples)
        return [m.payload for m in msgs]

    res = Machine(p).run(prog)
    assert res.values[0] == []
    for rank in range(1, p):
        assert res.values[rank] == [f"to-{rank}"]


@pytest.mark.parametrize("p", [2, 4])
def test_sparse_alltoall_back_to_back_rounds_do_not_mix(p):
    """Sequence numbers keep consecutive sparse exchanges separate."""

    def prog(ctx):
        first = yield from sparse_alltoall(ctx, [((ctx.rank + 1) % p, "one", 1)])
        second = yield from sparse_alltoall(ctx, [((ctx.rank + 1) % p, "two", 1)])
        return ([m.payload for m in first], [m.payload for m in second])

    for got in Machine(p).run(prog).values:
        assert got == (["one"], ["two"])


def test_drain_empty_tag_returns_nothing():
    def prog(ctx):
        return drain(ctx, "never-used")
        yield  # pragma: no cover

    assert Machine(2).run(prog).values == [[], []]


def test_drain_consumes_exactly_its_tag():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.send(1, "a", "keep", 1)
            ctx.send(1, "b", "other", 1)
            yield from barrier(ctx)
            return None
        yield from barrier(ctx)
        got = [m.payload for m in drain(ctx, "a")]
        rest = [m.payload for m in drain(ctx, "b")]
        return (got, rest)

    res = Machine(2).run(prog)
    assert res.values[1] == (["keep"], ["other"])


def test_drain():
    def prog(ctx):
        if ctx.rank == 0:
            for i in range(4):
                ctx.send(1, "d", i, 1)
            yield from barrier(ctx)
            return []
        yield from barrier(ctx)
        return [m.payload for m in drain(ctx, "d")]

    res = Machine(2).run(prog)
    assert res.values[1] == [0, 1, 2, 3]


def test_collectives_interleave_safely():
    """Back-to-back different collectives must not cross-talk."""

    def prog(ctx):
        s = yield from allreduce(ctx, 1, lambda a, b: a + b)
        yield from barrier(ctx)
        m = yield from allreduce(ctx, ctx.rank, max)
        b = yield from bcast(ctx, s * 100 + m if ctx.rank == 0 else None)
        return b

    p = 5
    assert Machine(p).run(prog).values == [5 * 100 + 4] * p


# ----------------------------------------------------------------------
# Faulty delivery (duplicated / reordered) — see docs/FAULTS.md
# ----------------------------------------------------------------------
def _drain_prog(ctx):
    if ctx.rank == 0:
        for i in range(8):
            ctx.send(1, "d", i, 1)
        yield from barrier(ctx)
        return []
    yield from barrier(ctx)
    return [m.payload for m in drain(ctx, "d")]


def test_drain_under_reordered_delivery_keeps_the_multiset():
    """Lossy reordering permutes drain's order but never its contents."""
    plan = FaultPlan(seed=5, reorder_rate=0.6)
    res = Machine(2, fault_plan=plan, transport="lossy").run(_drain_prog)
    got = res.values[1]
    assert sorted(got) == list(range(8))
    assert got != list(range(8)), "plan injected no reordering; pick a new seed"


def test_drain_under_duplicated_delivery_sees_the_copies():
    """Over the raw lossy transport, duplicates reach the program."""
    plan = FaultPlan(seed=3, duplicate_rate=0.5)
    machine = Machine(2, fault_plan=plan, transport="lossy")
    res = machine.run(_drain_prog)
    got = res.values[1]
    dups = machine._wire.wire_duplicates
    assert dups > 0, "plan injected no duplicates; pick a new seed"
    # Every original arrives; duplicated copies arrive once more (the
    # wire counter also covers duplicated barrier traffic, hence <=).
    assert set(got) == set(range(8))
    assert 8 < len(got) <= 8 + dups
    assert all(got.count(i) in (1, 2) for i in range(8))


def test_drain_under_reliable_transport_is_fault_free():
    """The reliable layer makes the same plans invisible to drain."""
    clean = Machine(2).run(_drain_prog)
    plan = FaultPlan(seed=3, duplicate_rate=0.5, reorder_rate=0.0)
    faulty = Machine(2, fault_plan=plan, transport="reliable").run(_drain_prog)
    assert faulty.values[1] == clean.values[1] == list(range(8))
    assert faulty.metrics.total_duplicates_discarded > 0


def _sparse_prog(p):
    def prog(ctx):
        triples = [((ctx.rank + 1) % p, f"{ctx.rank}a", 1), ((ctx.rank + 1) % p, f"{ctx.rank}b", 1)]
        msgs = yield from sparse_alltoall(ctx, triples)
        return sorted(m.payload for m in msgs)

    return prog


@pytest.mark.parametrize("p", [2, 4])
def test_sparse_alltoall_under_reordered_delivery(p):
    """Reordering never changes what a sparse exchange returns."""
    plan = FaultPlan(seed=11, reorder_rate=0.7)
    res = Machine(p, fault_plan=plan, transport="lossy").run(_sparse_prog(p))
    for rank, got in enumerate(res.values):
        src = (rank - 1) % p
        assert got == sorted([f"{src}a", f"{src}b"])


@pytest.mark.parametrize("p", [2, 4])
def test_sparse_alltoall_reliable_dedup_is_transparent(p):
    """Duplicates under the reliable transport: same result, dedup counted."""
    clean = Machine(p).run(_sparse_prog(p))
    plan = FaultPlan(seed=2, duplicate_rate=0.4, reorder_rate=0.0)
    machine = Machine(p, fault_plan=plan, transport="reliable")
    faulty = machine.run(_sparse_prog(p))
    assert faulty.values == clean.values
    assert faulty.metrics.total_duplicates_discarded > 0
    # App-level conservation is exact: dedup happens below the program.
    sent = faulty.metrics.total_messages
    received = sum(m.messages_received for m in faulty.metrics.per_pe)
    assert sent == received


def test_sparse_alltoall_reliable_drops_are_repaired():
    """Dropped wire transmissions are retransmitted, result unchanged."""
    p = 4
    clean = Machine(p).run(_sparse_prog(p))
    plan = FaultPlan(seed=9, drop_rate=0.3)
    machine = Machine(p, fault_plan=plan, transport="reliable")
    faulty = machine.run(_sparse_prog(p))
    assert faulty.values == clean.values
    assert faulty.metrics.total_retransmits > 0
    assert faulty.metrics.total_messages_dropped == faulty.metrics.total_retransmits
    # Repairs cost simulated time.
    assert faulty.metrics.makespan > clean.metrics.makespan
