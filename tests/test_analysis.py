"""Tests for the runner / sweep / tables / verify harness."""

import pytest

from repro.analysis import (
    ALGORITHMS,
    format_phase_breakdown,
    format_scaling_table,
    format_table,
    graph_stats,
    ground_truth_triangles,
    memory_limited_spec,
    pe_counts_powers_of_two,
    run_algorithm,
    scaling_series,
    speedup_over,
    strong_scaling,
    weak_scaling,
)
from repro.analysis.runner import RunResult
from repro.core.edge_iterator import edge_iterator
from repro.graphs import distribute
from repro.graphs import generators as gen


@pytest.fixture(scope="module")
def small_graph():
    return gen.gnm(300, 2400, seed=20)


def test_algorithm_registry_complete():
    assert "sequential" in ALGORITHMS
    for name in ("ditric", "ditric2", "cetric", "cetric2", "tric", "havoqgt"):
        assert name in ALGORITHMS


def test_run_algorithm_all_names(small_graph):
    truth = edge_iterator(small_graph).triangles
    for name in ALGORITHMS:
        res = run_algorithm(small_graph, name, num_pes=4)
        assert res.ok, name
        assert res.triangles == truth, name
        assert res.algorithm == name


def test_run_algorithm_rejects_unknown(small_graph):
    with pytest.raises(ValueError):
        run_algorithm(small_graph, "quantum", num_pes=2)


def test_run_algorithm_requires_pes_for_distributed(small_graph):
    with pytest.raises(ValueError):
        run_algorithm(small_graph, "ditric")


def test_run_algorithm_accepts_distgraph(small_graph):
    dist = distribute(small_graph, num_pes=3)
    res = run_algorithm(dist, "cetric")
    assert res.num_pes == 3
    assert res.ok


def test_run_algorithm_config_overrides(small_graph):
    res = run_algorithm(
        small_graph, "ditric", num_pes=4, config_overrides={"threshold_factor": 0.1}
    )
    assert res.ok
    assert res.triangles == edge_iterator(small_graph).triangles


def test_sequential_row(small_graph):
    res = run_algorithm(small_graph, "sequential")
    assert res.num_pes == 1
    assert res.total_ops > 0
    with pytest.raises(ValueError):
        run_algorithm(distribute(small_graph, num_pes=2), "sequential")


def test_oom_becomes_failed_row():
    g = gen.rmat(9, 16, seed=21)
    dist = distribute(g, num_pes=8)
    spec = memory_limited_spec(dist, words_per_local_arc=0.01)
    res = run_algorithm(dist, "tric", spec=spec)
    assert not res.ok
    assert res.failed == "out-of-memory"
    assert res.time is None
    assert res.as_dict()["failed"] == "out-of-memory"


def test_memory_limited_spec_scales_with_input():
    small = distribute(gen.gnm(100, 500, seed=1), num_pes=2)
    large = distribute(gen.gnm(1000, 8000, seed=1), num_pes=2)
    assert (
        memory_limited_spec(large).memory_words > memory_limited_spec(small).memory_words
    )


def test_pe_counts_powers_of_two():
    assert pe_counts_powers_of_two(16) == [1, 2, 4, 8, 16]
    assert pe_counts_powers_of_two(20, start=4) == [4, 8, 16]
    with pytest.raises(ValueError):
        pe_counts_powers_of_two(0)


def test_strong_scaling_rows(small_graph):
    rows = strong_scaling(small_graph, ["ditric", "cetric"], [1, 2, 4])
    assert len(rows) == 6
    truth = edge_iterator(small_graph).triangles
    assert all(r.triangles == truth for r in rows if r.ok)


def test_weak_scaling_grows_input():
    rows = weak_scaling(
        lambda n, s: gen.gnm(n, 8 * n, seed=s),
        ["ditric"],
        [1, 2, 4],
        vertices_per_pe=128,
    )
    graphs = [r.graph for r in rows]
    assert len(set(graphs)) == 3  # three distinct instances


def test_scaling_series_and_tables(small_graph):
    rows = strong_scaling(small_graph, ["ditric", "cetric"], [1, 2])
    series = scaling_series(rows, "time")
    assert set(series) == {"ditric", "cetric"}
    assert [p for p, _ in series["ditric"]] == [1, 2]
    text = format_scaling_table(rows, "time", title="demo")
    assert "demo" in text and "ditric" in text
    text2 = format_phase_breakdown(rows)
    assert "preprocessing" in text2


def test_series_keeps_failures_as_none():
    rows = [
        RunResult("tric", "g", 2, None, None, failed="out-of-memory"),
        RunResult("tric", "g", 4, 10, 1.0),
    ]
    series = scaling_series(rows)
    assert series["tric"] == [(2, None), (4, 1.0)]


def test_format_table_alignment():
    text = format_table(
        [{"a": 1, "b": None}, {"a": 123456, "b": 0.5}], ["a", "b"], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "--" in text  # None rendering


def test_speedup_over(small_graph):
    rows = strong_scaling(small_graph, ["havoqgt", "ditric"], [2, 4])
    sp = speedup_over(rows, "havoqgt", "ditric")
    assert set(sp) == {2, 4}
    assert all(v > 0 for v in sp.values())


# ---------------------------------------------------------------- verify
def test_ground_truth_cross_check(small_graph):
    t = ground_truth_triangles(small_graph, cross_check=True)
    assert t == edge_iterator(small_graph).triangles


def test_graph_stats_fields(small_graph):
    s = graph_stats(small_graph)
    assert s.n == 300
    assert s.m == 2400
    assert s.avg_degree == pytest.approx(16.0)
    assert 0 <= s.transitivity <= 1
