"""Tests for degree-based load balancing (Section IV-D)."""

import numpy as np
import pytest

from repro.graphs import distribute, partition_by_vertices
from repro.graphs import generators as gen
from repro.graphs.balance import (
    COST_FUNCTIONS,
    cost_balanced_partition,
    rebalance,
)


@pytest.fixture(scope="module")
def skewed():
    return gen.rmat(11, 16, seed=13)


def test_all_cost_functions_positive(skewed):
    for name, fn in COST_FUNCTIONS.items():
        c = fn(skewed)
        assert c.shape == (skewed.num_vertices,)
        assert np.all(c >= 0), name


def test_outdeg_sum_tracks_actual_merge_work(skewed):
    """The estimate must sum to the edge iterator's charged ops."""
    from repro.core.edge_iterator import edge_iterator

    est = COST_FUNCTIONS["outdeg_sum"](skewed).sum()
    actual = edge_iterator(skewed).intersection_ops
    assert est == pytest.approx(actual)


@pytest.mark.parametrize("cost", ["degree", "dlogd", "outdeg_sum"])
def test_balanced_partition_reduces_imbalance(cost, skewed):
    p = 8
    naive = partition_by_vertices(skewed.num_vertices, p)
    res = rebalance(skewed, naive, cost=cost)
    assert res.partition.num_pes == p
    assert res.partition.num_vertices == skewed.num_vertices
    assert res.imbalance_after <= res.imbalance_before
    assert res.imbalance_after < 1.1


def test_degree_sq_defeated_by_indivisible_hubs(skewed):
    """d^2 cost concentrates on hubs; a contiguous cut cannot split a
    hub, so the quantile partition may not improve (one reason the
    paper's future-work asks for balancers with provable guarantees)."""
    naive = partition_by_vertices(skewed.num_vertices, 8)
    res = rebalance(skewed, naive, cost="degree_sq")
    # Still a valid partition, even if the estimate got worse.
    assert res.partition.num_vertices == skewed.num_vertices


def test_balanced_partition_keeps_global_order(skewed):
    part = cost_balanced_partition(skewed, 8)
    assert np.all(np.diff(part.bounds) >= 0)


def test_rebalance_counts_migration(skewed):
    naive = partition_by_vertices(skewed.num_vertices, 8)
    res = rebalance(skewed, naive)
    if res.moved_vertices:
        assert res.migration_words >= res.moved_vertices * 2
    # Migration is bounded by shipping the whole graph once.
    assert res.migration_words <= skewed.num_arcs + 2 * skewed.num_vertices


def test_rebalance_noop_when_already_balanced():
    g = gen.gnm(400, 3200, seed=4)  # uniform degrees
    naive = partition_by_vertices(g.num_vertices, 4)
    res = rebalance(g, naive, cost="degree")
    # Uniform graph: the naive partition is already near-balanced, so
    # few vertices move.
    assert res.moved_vertices < g.num_vertices // 4


def test_unknown_cost_rejected(skewed):
    with pytest.raises(KeyError):
        cost_balanced_partition(skewed, 4, cost="voodoo")
    with pytest.raises(ValueError):
        cost_balanced_partition(skewed, 0)


def test_empty_graph_partition():
    from repro.graphs import empty_graph

    part = cost_balanced_partition(empty_graph(10), 3)
    assert part.num_pes == 3
    assert part.num_vertices == 10


def test_balanced_partition_correct_counts(skewed):
    """Counting on the rebalanced partition is still exact."""
    from repro.analysis.runner import run_algorithm
    from repro.core.edge_iterator import edge_iterator

    part = cost_balanced_partition(skewed, 6)
    dist = distribute(skewed, partition=part)
    res = run_algorithm(dist, "cetric")
    assert res.triangles == edge_iterator(skewed).triangles


def test_rebalancing_does_not_pay_off(skewed):
    """The paper's Section IV-D finding, end to end.

    The estimated imbalance improves, but the realized makespan gain is
    marginal while the migration ships a volume comparable to the whole
    counting phase's traffic — so rebalancing "does not pay off".
    """
    from repro.core.engine import EngineConfig, counting_program
    from repro.net import Machine

    p = 8
    naive = partition_by_vertices(skewed.num_vertices, p)
    res = rebalance(skewed, naive, cost="outdeg_sum")
    assert res.imbalance_after <= res.imbalance_before

    def makespan(partition):
        dist = distribute(skewed, partition=partition)
        return Machine(p).run(counting_program, dist, EngineConfig()).metrics

    before = makespan(naive)
    after = makespan(res.partition)
    # The counting-time gain is marginal (a few percent at most), while
    # realizing the new partition costs a real migration (words below)
    # plus, in the paper's setting, a full graph reload — hence their
    # conclusion that the overhead is not recouped.
    gain = before.makespan - after.makespan
    assert gain < 0.10 * before.makespan
    assert res.migration_words > 0  # the move is not free
