"""Tests for the opt-in event tracer."""


from repro.core.engine import EngineConfig, counting_program
from repro.graphs import distribute
from repro.graphs import generators as gen
from repro.net import Machine
from repro.net.trace import Tracer, render_timeline


def _traced_run(p=3):
    g = gen.gnm(120, 700, seed=4)
    dist = distribute(g, num_pes=p)
    tracer = Tracer()
    res = Machine(p, tracer=tracer).run(
        counting_program, dist, EngineConfig(contraction=True)
    )
    return tracer, res


def test_trace_counts_match_metrics():
    tracer, res = _traced_run()
    sends = [e for e in tracer.events if e.kind == "send"]
    recvs = [e for e in tracer.events if e.kind == "recv"]
    assert len(sends) == res.metrics.total_messages
    assert len(recvs) == sum(m.messages_received for m in res.metrics.per_pe)
    assert sum(e.words for e in sends) == res.metrics.total_volume


def test_trace_phase_spans_match_phase_times():
    tracer, res = _traced_run()
    for rank, m in enumerate(res.metrics.per_pe):
        spans = tracer.phase_spans(rank)
        by_name = {}
        for name, start, end in spans:
            by_name[name] = by_name.get(name, 0.0) + (end - start)
        for name, t in m.phase_times.items():
            assert by_name[name] == (
                __import__("pytest").approx(t, abs=1e-8)
            ), (rank, name)


def test_messages_between_endpoints():
    tracer, _ = _traced_run(p=2)
    forward = tracer.messages_between(0, 1)
    backward = tracer.messages_between(1, 0)
    assert forward and backward
    assert all(e.rank == 0 and e.peer == 1 for e in forward)


def test_words_by_tag_includes_protocol_classes():
    tracer, _ = _traced_run()
    by_tag = tracer.words_by_tag()
    tags = {t if isinstance(t, str) else t[0] for t in by_tag}
    assert any("deg-xchg" in str(t) for t in by_tag)
    assert "nbh" in tags or any("nbh" in str(t) for t in by_tag)


def test_render_timeline_truncates():
    tracer, _ = _traced_run()
    text = render_timeline(tracer, max_events=10)
    assert "time [us]" in text
    assert "more events" in text
    assert "PE0" in text


def test_tracing_off_by_default_and_costless():
    g = gen.ring(12)
    dist = distribute(g, num_pes=2)
    machine = Machine(2)
    assert machine.tracer is None
    res = machine.run(counting_program, dist, EngineConfig())
    assert res.values[0].triangles_total == 0


def test_tracing_does_not_change_results():
    g = gen.rmat(8, 8, seed=7)
    dist = distribute(g, num_pes=4)
    plain = Machine(4).run(counting_program, dist, EngineConfig())
    traced = Machine(4, tracer=Tracer()).run(counting_program, dist, EngineConfig())
    assert plain.values[0].triangles_total == traced.values[0].triangles_total
    assert plain.metrics.makespan == traced.metrics.makespan
