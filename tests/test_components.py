"""Tests for distributed connected components."""

import numpy as np
import pytest

from repro.core.components import components_program
from repro.graphs import distribute
from repro.graphs import generators as gen
from repro.graphs.stats import connected_components
from repro.net import Machine


@pytest.mark.parametrize("p", [1, 2, 4, 7])
def test_components_match_scipy(p, random_graph):
    count, labels = connected_components(random_graph)
    dist = distribute(random_graph, num_pes=p)
    res = Machine(p).run(components_program, dist)
    got = np.concatenate([v.labels for v in res.values])
    assert res.values[0].num_components == count
    # Same partition into components (labels may differ from scipy's).
    for comp in range(count):
        members = np.flatnonzero(labels == comp)
        assert np.unique(got[members]).size == 1


def test_components_disjoint_cliques():
    g = gen.disjoint_cliques(4, 5)
    dist = distribute(g, num_pes=4)
    res = Machine(4).run(components_program, dist)
    assert res.values[0].num_components == 4
    got = np.concatenate([v.labels for v in res.values])
    # Label is the minimum id of each clique.
    assert np.array_equal(np.unique(got), np.array([0, 5, 10, 15]))


def test_components_path_is_worst_case():
    """A path needs ~n label-propagation rounds — the adversarial shape."""
    g = gen.path(24)
    dist = distribute(g, num_pes=3)
    res = Machine(3).run(components_program, dist)
    assert res.values[0].num_components == 1
    assert res.values[0].rounds >= 8  # diameter-bound behaviour visible


def test_components_with_isolated_vertices():
    from repro.graphs import from_edges

    g = from_edges(np.array([[0, 1]]), num_vertices=5)
    dist = distribute(g, num_pes=2)
    res = Machine(2).run(components_program, dist)
    assert res.values[0].num_components == 4  # {0,1} plus 3 singletons


def test_components_empty_graph():
    from repro.graphs import empty_graph

    dist = distribute(empty_graph(6), num_pes=3)
    res = Machine(3).run(components_program, dist)
    assert res.values[0].num_components == 6


def test_components_parallel_backend():
    from repro.net import ProcessMachine

    g = gen.rgg2d(300, expected_edges=1200, seed=3)
    count, _ = connected_components(g)
    dist = distribute(g, num_pes=3)
    res = ProcessMachine(3).run(components_program, dist)
    assert res.values[0].num_components == count
