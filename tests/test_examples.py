"""Sanity checks for the example scripts.

Every example is compiled and its module-level contract (a ``main``
callable and a module docstring with run instructions) verified; the
cheapest example is executed end to end.  The heavier examples are
exercised indirectly: every API they use is covered by the unit and
benchmark suites, and they are run as part of the release checklist.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable floor; we ship six


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_has_main_and_docs(path):
    source = path.read_text()
    assert '"""' in source.splitlines()[0], "examples start with a docstring"
    assert "def main(" in source
    assert '__name__ == "__main__"' in source
    assert "python examples/" in source, "docstring shows how to run it"


def test_quickstart_runs_end_to_end():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert "all algorithms agree" in proc.stdout
