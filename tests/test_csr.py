"""Unit tests for the CSR graph container."""

import numpy as np
import pytest

from repro.graphs import from_edges
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import complete_graph, ring, star


def test_empty_graph_has_no_vertices_or_edges():
    g = CSRGraph(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64))
    assert g.num_vertices == 0
    assert g.num_arcs == 0
    assert g.max_degree() == 0


def test_single_vertex_no_edges():
    g = CSRGraph(np.zeros(2, dtype=np.int64), np.empty(0, dtype=np.int64))
    assert g.num_vertices == 1
    assert g.degree(0) == 0
    assert g.neighbors(0).size == 0


def test_triangle_structure():
    g = from_edges(np.array([[0, 1], [1, 2], [0, 2]]))
    assert g.num_vertices == 3
    assert g.num_edges == 3
    assert g.num_arcs == 6
    assert list(g.neighbors(0)) == [1, 2]
    assert list(g.neighbors(1)) == [0, 2]
    assert g.degree(2) == 2


def test_degrees_vectorized_matches_scalar():
    g = complete_graph(7)
    assert np.array_equal(g.degrees, [g.degree(v) for v in range(7)])


def test_has_edge():
    g = star(6)
    assert g.has_edge(0, 3)
    assert g.has_edge(3, 0)
    assert not g.has_edge(1, 2)


def test_has_edge_unsorted_fallback():
    g = star(6)
    g.sorted_neighborhoods = False
    assert g.has_edge(0, 3)
    assert not g.has_edge(1, 2)


def test_edges_and_undirected_edges():
    g = ring(5)
    assert g.edges().shape == (10, 2)
    ue = g.undirected_edges()
    assert ue.shape == (5, 2)
    assert np.all(ue[:, 0] < ue[:, 1])


def test_undirected_edges_on_oriented_graph():
    from repro.core.orientation import orient_by_degree

    og = orient_by_degree(ring(5))
    ue = og.undirected_edges()
    assert ue.shape == (5, 2)
    assert np.all(ue[:, 0] < ue[:, 1])


def test_check_symmetric_true_and_false():
    g = ring(4)
    assert g.check_symmetric()
    asym = CSRGraph(np.array([0, 1, 1]), np.array([1]))  # arc 0->1 only
    assert not asym.check_symmetric()


def test_check_sorted():
    g = complete_graph(5)
    assert g.check_sorted()
    bad = CSRGraph(np.array([0, 2, 2]), np.array([1, 0]), oriented=True)
    assert not bad.check_sorted()


def test_check_no_self_loops():
    g = ring(4)
    assert g.check_no_self_loops()
    loop = CSRGraph(np.array([0, 1]), np.array([0]), oriented=True)
    assert not loop.check_no_self_loops()


def test_to_scipy_roundtrip():
    g = complete_graph(6)
    m = g.to_scipy()
    assert m.shape == (6, 6)
    assert m.nnz == g.num_arcs
    assert (m != m.T).nnz == 0  # symmetric


def test_to_networkx():
    g = ring(7)
    nxg = g.to_networkx()
    assert nxg.number_of_nodes() == 7
    assert nxg.number_of_edges() == 7


def test_copy_is_deep():
    g = ring(4)
    h = g.copy()
    h.adjncy[0] = 3
    assert g.adjncy[0] != 3 or g.adjncy[0] == h.adjncy[0] - 0  # original unchanged
    assert not np.shares_memory(g.adjncy, h.adjncy)


def test_memory_words():
    g = ring(4)
    assert g.memory_words() == g.xadj.size + g.adjncy.size


def test_invalid_xadj_rejected():
    with pytest.raises(ValueError):
        CSRGraph(np.array([1, 2]), np.array([0]))  # xadj[0] != 0
    with pytest.raises(ValueError):
        CSRGraph(np.array([0, 2]), np.array([0]))  # xadj[-1] mismatch
    with pytest.raises(ValueError):
        CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 0, 0]))  # decreasing


def test_out_of_range_neighbor_rejected():
    with pytest.raises(ValueError):
        CSRGraph(np.array([0, 1]), np.array([5]))
    with pytest.raises(ValueError):
        CSRGraph(np.array([0, 1]), np.array([-1]))


def test_iter_neighborhoods():
    g = star(4)
    pairs = dict((v, list(nb)) for v, nb in g.iter_neighborhoods())
    assert pairs[0] == [1, 2, 3]
    assert pairs[2] == [0]
