"""Online localized recovery: detection, partner restore, log replay.

Covers the ISSUE-8 acceptance criteria: the chaos campaign under
``recovery="localized"`` (2 algorithms x 5 seeds x one timed PE crash
on the DES engine) returns exact counts with survivors provably never
re-executing a phase; recovery is deterministic (byte-identical traces
across reruns); membership events and the ``recovery_seconds`` /
``recover:*`` accounting are populated; and the configuration surface
rejects unsupported combinations up front.
"""

import pytest

from repro.core.checkpoint import BuddyCheckpointStore, CheckpointStore
from repro.core.edge_iterator import edge_iterator
from repro.core.engine import counting_program
from repro.faults import (
    FaultPlan,
    RecoveryConfig,
    TimedCrash,
    run_campaign,
    run_chaos_case,
)
from repro.faults.chaos import CHAOS_ALGORITHMS, default_chaos_graph
from repro.graphs.distributed import distribute
from repro.net import DeadlockError, Machine
from repro.obs import chrome_trace_json
from repro.sim.network import Network


def _localized(p, plan=None, **kwargs):
    return Machine(
        p,
        network=Network(model="contended"),
        fault_plan=plan,
        recovery="localized",
        **kwargs,
    )


@pytest.fixture(scope="module")
def crash_run():
    """One localized crash run on the chaos graph, shared across tests."""
    graph = default_chaos_graph()
    dist = distribute(graph, num_pes=4)
    config = CHAOS_ALGORITHMS["ditric"]
    base = _localized(4).run(counting_program, dist, config)
    crash_time = base.time * 0.5

    def rerun():
        plan = FaultPlan(0, crash_at_time=(TimedCrash(rank=2, at_time=crash_time),))
        return _localized(4, plan).run(counting_program, dist, config)

    expected = int(edge_iterator(graph).triangles)
    return base, rerun(), rerun, expected


# ----------------------------------------------------------------------
# Configuration surface
# ----------------------------------------------------------------------
def test_timed_crash_validation():
    with pytest.raises(ValueError):
        TimedCrash(rank=-1, at_time=0.0)
    with pytest.raises(ValueError):
        TimedCrash(rank=0, at_time=-1e-9)


def test_timed_crash_roundtrips_and_rearms():
    plan = FaultPlan(3, crash_at_time=(TimedCrash(1, 0.5), TimedCrash(2, 0.75)))
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone.to_dict() == plan.to_dict()
    assert plan.any_crashes
    assert plan.claim_timed(0)
    assert not plan.claim_timed(0), "a timed crash fires once per plan"
    plan.reset()
    assert plan.claim_timed(0), "reset re-arms the schedule"


def test_recovery_config_validation():
    with pytest.raises(ValueError):
        RecoveryConfig(heartbeat_period_alphas=0.0)
    with pytest.raises(ValueError):
        RecoveryConfig(heartbeat_period_alphas=64.0, heartbeat_timeout_alphas=32.0)
    with pytest.raises(ValueError):
        RecoveryConfig(replay_alpha_per_message=-1.0)


def test_localized_requires_contended_network():
    with pytest.raises(ValueError, match="contended"):
        Machine(4, recovery="localized")


def test_localized_rejects_plain_checkpoint_store():
    with pytest.raises(ValueError, match="partner"):
        Machine(
            4,
            network=Network(model="contended"),
            recovery="localized",
            checkpoint_store=CheckpointStore(4),
        )


def test_localized_rejects_non_reliable_transport():
    with pytest.raises(ValueError, match="reliable"):
        Machine(
            4,
            network=Network(model="contended"),
            recovery="localized",
            transport="direct",
        )


def test_timed_crashes_need_the_event_engine():
    plan = FaultPlan(0, crash_at_time=(TimedCrash(1, 0.5),))
    with pytest.raises(ValueError, match="contended"):
        Machine(4, fault_plan=plan)


def test_unknown_recovery_mode_rejected():
    with pytest.raises(ValueError, match="recovery"):
        Machine(4, recovery="optimistic")


def test_buddy_store_partner_mapping():
    store = BuddyCheckpointStore(4)
    assert [store.partner_of(r) for r in range(4)] == [1, 2, 3, 0]
    offset = BuddyCheckpointStore(4, partner_offset=3)
    assert offset.partner_of(1) == 0
    with pytest.raises(ValueError):
        BuddyCheckpointStore(4, partner_offset=4)
    with pytest.raises(ValueError):
        BuddyCheckpointStore(4, partner_offset=0)


def test_buddy_store_respawn_rewinds_one_cursor():
    store = BuddyCheckpointStore(2)
    store.save(0, "local", [1, 2, 3])
    store.save(1, "local", [4, 5])
    assert store.replica_words(0) == 3
    store.respawn_rank(0)
    assert store.load(0, "local") == ([1, 2, 3], 3)
    # the survivor's cursor is untouched: its next load is exhausted
    assert store.load(1, "contraction") is None


# ----------------------------------------------------------------------
# End-to-end localized recovery
# ----------------------------------------------------------------------
def test_fault_free_localized_run_is_exact_and_quiet(crash_run):
    base, _, _, expected = crash_run
    assert int(base.values[0].triangles_total) == expected
    report = base.recovery
    assert report is not None
    assert report.crashes == 0 and report.recovered_ranks == ()
    assert base.metrics.summary()["recovery_seconds"] == 0.0


def test_heartbeats_accrue_without_faults():
    """A tight detector period makes the standing probe cost visible."""
    graph = default_chaos_graph()
    dist = distribute(graph, num_pes=4)
    config = CHAOS_ALGORITHMS["ditric"]
    loose = _localized(4).run(counting_program, dist, config)
    tight = _localized(
        4,
        recovery_config=RecoveryConfig(
            heartbeat_period_alphas=4.0, heartbeat_timeout_alphas=16.0
        ),
    ).run(counting_program, dist, config)
    assert tight.metrics.summary()["heartbeats"] > 0
    assert int(tight.values[0].triangles_total) == int(
        loose.values[0].triangles_total
    )
    assert tight.time > loose.time, "probing is charged to the cost model"


def test_crash_recovers_in_place_with_exact_count(crash_run):
    base, res, _, expected = crash_run
    assert int(res.values[0].triangles_total) == expected
    report = res.recovery
    assert report.crashes == 1
    assert report.recovered_ranks == (2,)
    assert report.replayed_messages > 0
    assert report.restored_words > 0
    assert res.time > base.time, "the outage must cost simulated time"
    assert res.metrics.summary()["recovery_seconds"] > 0.0


def test_membership_events_are_ordered(crash_run):
    _, res, _, _ = crash_run
    events = res.recovery.events
    assert [e.kind for e in events] == ["crash", "detect", "respawn"]
    assert all(e.rank == 2 for e in events)
    crash, detect, respawn = events
    assert crash.time < detect.time <= respawn.time


def test_survivors_never_reexecute_a_phase(crash_run):
    _, res, _, _ = crash_run
    for rank in (0, 1, 3):
        names = [
            s.name
            for s in res.metrics.per_pe[rank].spans
            if s.depth == 0 and not s.name.startswith("recover:")
        ]
        assert len(names) == len(set(names)), (rank, names)
        assert not any(n.startswith("recover:") for n in names)


def test_crashed_rank_records_recovery_spans(crash_run):
    _, res, _, _ = crash_run
    names = [
        s.name for s in res.metrics.per_pe[2].spans if s.name.startswith("recover:")
    ]
    assert names == ["recover:detect", "recover:restore", "recover:replay"]


def test_localized_recovery_is_deterministic(crash_run):
    _, res, rerun, _ = crash_run
    again = rerun()
    assert chrome_trace_json(res.metrics) == chrome_trace_json(again.metrics)
    assert res.metrics.summary() == again.metrics.summary()


def test_profiler_partitions_recovery_time(crash_run):
    from repro.obs import profile_metrics

    _, res, _, _ = crash_run
    profile = profile_metrics(res.metrics)
    assert profile.categories.get("recovery", 0.0) >= 0.0
    assert abs(sum(profile.percentages().values()) - 100.0) < 1e-6


def test_localized_detector_reports_real_deadlocks():
    def stuck(ctx):
        if ctx.rank == 0:
            yield from ctx.recv("never")
        return None

    with pytest.raises(DeadlockError):
        _localized(2).run(stuck)


def test_localized_campaign_is_exact_for_two_algorithms():
    """ISSUE-8 acceptance: >=2 algorithms x >=5 seeds x 1 timed crash."""
    outcomes = run_campaign(
        algorithms=("ditric", "cetric"),
        seeds=range(5),
        drop_rates=(0.0,),
        crash_fraction=0.5,
        recovery="localized",
    )
    assert len(outcomes) == 10
    for o in outcomes:
        assert o.exact, (o.algorithm, o.seed)
        assert o.recovery == "localized"
        assert o.restarts == 0
        assert o.recovered_ranks == (2,)
        assert o.survivor_phase_reexecutions == 0
        assert o.recovery_seconds > 0.0


def test_localized_case_composes_with_message_faults():
    graph = default_chaos_graph()
    o = run_chaos_case(
        graph,
        "cetric2",
        4,
        seed=1,
        drop_rate=0.10,
        crash_fraction=0.4,
        recovery="localized",
    )
    assert o.exact
    assert o.recovered_ranks == (2,)
    assert o.survivor_phase_reexecutions == 0
    assert o.messages_dropped > 0 and o.retransmits > 0


def test_chaos_case_rejects_unknown_recovery():
    with pytest.raises(ValueError, match="recovery"):
        run_chaos_case(default_chaos_graph(), "ditric", 4, recovery="magic")
