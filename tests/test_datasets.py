"""Tests for the Table-I stand-in datasets."""

import numpy as np
import pytest

from repro.graphs import DATASET_NAMES, PAPER_STATS, dataset, distribute
from repro.analysis.verify import graph_stats


def test_all_names_instantiate():
    for name in DATASET_NAMES:
        g = dataset(name, scale=0.1)
        assert g.num_vertices > 0
        assert g.name == name


def test_unknown_name_rejected():
    with pytest.raises(KeyError):
        dataset("nope")


def test_bad_scale_rejected():
    with pytest.raises(ValueError):
        dataset("orkut", scale=0.0)


def test_deterministic_per_seed():
    a = dataset("live-journal", scale=0.2, seed=7)
    b = dataset("live-journal", scale=0.2, seed=7)
    c = dataset("live-journal", scale=0.2, seed=8)
    assert np.array_equal(a.adjncy, b.adjncy)
    assert not np.array_equal(a.adjncy, c.adjncy)


def test_scale_grows_instances():
    small = dataset("usa", scale=0.2)
    large = dataset("usa", scale=0.8)
    assert large.num_vertices > small.num_vertices


def test_paper_stats_table_complete():
    assert set(PAPER_STATS) == set(DATASET_NAMES)
    for stats in PAPER_STATS.values():
        assert stats.n > 0 and stats.m > 0
        assert stats.avg_degree > 1


def test_road_networks_are_sparse_and_triangle_poor():
    for name in ("europe", "usa"):
        g = dataset(name, scale=0.3)
        s = graph_stats(g)
        assert s.avg_degree < 6
        # Few triangles relative to edges, like real road networks.
        assert s.triangles < s.m


def test_web_stand_ins_have_id_locality():
    g = dataset("uk-2007-05", scale=0.3)
    e = g.undirected_edges()
    med = np.median(np.abs(e[:, 0] - e[:, 1]))
    assert med < g.num_vertices / 8


def test_social_stand_ins_have_no_id_locality():
    g = dataset("friendster", scale=0.3)
    e = g.undirected_edges()
    med = np.median(np.abs(e[:, 0] - e[:, 1]))
    assert med > g.num_vertices / 8


def test_web_cut_smaller_than_social_cut():
    """The property Fig. 6/7 hinge on: web partitions cut fewer edges."""
    web = dataset("webbase-2001", scale=0.4)
    social = dataset("friendster", scale=0.4)
    web_cut = distribute(web, num_pes=8).total_cut_edges() / web.num_edges
    social_cut = distribute(social, num_pes=8).total_cut_edges() / social.num_edges
    assert web_cut < social_cut


def test_twitter_is_most_skewed_social():
    g = dataset("twitter", scale=0.4)
    avg = 2 * g.num_edges / g.num_vertices
    assert g.max_degree() > 10 * avg


def test_load_real_roundtrip(tmp_path):
    """Loading a 'real' dataset file applies the paper's preprocessing."""
    import warnings

    from repro.graphs.datasets import load_real
    from repro.graphs.io import write_edge_list
    from repro.graphs.generators import wheel

    path = tmp_path / "europe.el"
    write_edge_list(wheel(64), path)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with pytest.raises(Warning):
            load_real("europe", path)  # way smaller than Table I -> warns
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        g = load_real("europe", path)
    assert g.name == "europe"
    assert g.num_edges == wheel(64).num_edges


def test_load_real_unknown_name(tmp_path):
    from repro.graphs.datasets import load_real

    with pytest.raises(KeyError):
        load_real("not-a-dataset", tmp_path / "x.el")


def test_load_real_drops_isolated(tmp_path):
    import warnings

    import numpy as np

    from repro.graphs import from_edges
    from repro.graphs.datasets import load_real
    from repro.graphs.io import write_edge_list

    g = from_edges(np.array([[0, 5], [5, 9]]), num_vertices=12)
    path = tmp_path / "usa.el"
    write_edge_list(g, path)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        loaded = load_real("usa", path)
    assert loaded.num_vertices == 3  # only the three touched vertices remain
