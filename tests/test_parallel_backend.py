"""Tests for the process-parallel backend (real OS processes + pipes)."""

import numpy as np
import pytest

from repro.core.edge_iterator import edge_iterator
from repro.core.engine import EngineConfig, counting_program
from repro.core.lcc import lcc_program, lcc_sequential
from repro.graphs import distribute
from repro.graphs import generators as gen
from repro.net import Machine, MachineSpec, OutOfMemoryError
from repro.net.parallel import ProcessMachine, RemoteDist


@pytest.fixture(scope="module")
def graph():
    return gen.rgg2d(600, expected_edges=5000, seed=21)


@pytest.fixture(scope="module")
def truth(graph):
    return edge_iterator(graph).triangles


@pytest.mark.parametrize("p", [1, 2, 4])
@pytest.mark.parametrize(
    "cfg",
    [EngineConfig(), EngineConfig(contraction=True), EngineConfig(indirect=True)],
    ids=["ditric", "cetric", "ditric2"],
)
def test_parallel_counts_match_truth(p, cfg, graph, truth):
    dist = distribute(graph, num_pes=p)
    res = ProcessMachine(p).run(counting_program, dist, cfg)
    assert res.values[0].triangles_total == truth
    assert all(v.triangles_total == truth for v in res.values)


def test_parallel_matches_simulator_metrics(graph):
    """Counts, volumes and message counts are backend-independent."""
    p = 4
    dist = distribute(graph, num_pes=p)
    cfg = EngineConfig(contraction=True)
    par = ProcessMachine(p).run(counting_program, dist, cfg)
    sim = Machine(p).run(counting_program, dist, cfg)
    assert par.values[0].triangles_total == sim.values[0].triangles_total
    assert par.metrics.total_volume == sim.metrics.total_volume
    assert par.metrics.total_messages == sim.metrics.total_messages
    for pm, sm in zip(par.metrics.per_pe, sim.metrics.per_pe):
        assert pm.words_sent == sm.words_sent
        assert pm.local_ops == sm.local_ops


def test_parallel_lcc(graph):
    p = 3
    dist = distribute(graph, num_pes=p)
    res = ProcessMachine(p).run(lcc_program, dist, EngineConfig(contraction=True))
    got = np.concatenate([v.lcc for v in res.values])
    assert np.allclose(got, lcc_sequential(graph))


def test_parallel_baselines(graph, truth):
    from repro.baselines.havoqgt import havoqgt_program
    from repro.baselines.tric import tric_program

    dist = distribute(graph, num_pes=3)
    assert ProcessMachine(3).run(tric_program, dist).values[0].triangles_total == truth
    assert (
        ProcessMachine(3).run(havoqgt_program, dist).values[0].triangles_total == truth
    )


def test_parallel_oom_propagates():
    g = gen.rmat(8, 16, seed=2)
    dist = distribute(g, num_pes=4)
    from repro.baselines.tric import tric_program

    tight = MachineSpec(memory_words=50)
    with pytest.raises(OutOfMemoryError):
        ProcessMachine(4, tight).run(tric_program, dist)


def test_parallel_worker_exception_surfaces():
    def bad_program(ctx, dist, cfg):
        if ctx.rank == 1:
            raise ValueError("boom")
        yield
        return 0

    g = gen.ring(8)
    dist = distribute(g, num_pes=2)
    with pytest.raises(RuntimeError, match="boom"):
        ProcessMachine(2, timeout=30).run(bad_program, dist, EngineConfig())


def test_remote_dist_isolation(graph):
    """A worker physically cannot read another PE's view."""
    dist = distribute(graph, num_pes=3)
    view = dist.view(1)
    remote = RemoteDist(view, dist.num_vertices, dist.num_edges, dist.name)
    assert remote.view(1) is view
    with pytest.raises(KeyError):
        remote.view(0)
    assert remote.num_pes == 3


def test_parallel_requires_positive_pes():
    with pytest.raises(ValueError):
        ProcessMachine(0)


def test_parallel_rejects_unavailable_start_method():
    with pytest.raises(ValueError, match="start method"):
        ProcessMachine(2, start_method="no-such-method")


# ---------------------------------------------------------------------------
# Kernel-backend propagation into workers (fork AND spawn)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_kernel_backend_env_propagates_to_workers(start_method, monkeypatch):
    """REPRO_KERNEL_BACKEND must reach every worker under both start
    methods.  spawn is the stricter case: the worker re-imports the
    package in a fresh interpreter, so only the environment (not the
    driver's in-process set_backend state) can carry the selection."""
    import multiprocessing as mp

    from backend_utils import backend_probe_program, register_pymerge

    if start_method not in mp.get_all_start_methods():
        pytest.skip(f"{start_method} not available on this platform")
    register_pymerge()  # driver side, for the eager resolve in run()
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "pymerge")
    g = gen.ring(12)
    dist = distribute(g, num_pes=2)
    res = ProcessMachine(2, start_method=start_method).run(
        backend_probe_program, dist
    )
    assert [name for _, name in res.values] == ["pymerge", "pymerge"]


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_start_methods_agree_on_counts(start_method, graph, truth):
    import multiprocessing as mp

    if start_method not in mp.get_all_start_methods():
        pytest.skip(f"{start_method} not available on this platform")
    dist = distribute(graph, num_pes=2)
    res = ProcessMachine(2, start_method=start_method).run(
        counting_program, dist, EngineConfig()
    )
    assert all(v.triangles_total == truth for v in res.values)


def test_unavailable_backend_warns_once_across_workers(monkeypatch, capfd):
    """P workers must not repeat the driver's fallback warning P times.

    The driver resolves the backend eagerly in ``run()`` (warning once)
    and records it in REPRO_KERNEL_FALLBACK_WARNED, which both fork and
    spawn workers inherit; worker-side resolution then stays silent.
    """
    import logging

    from repro.core import backends

    monkeypatch.delenv(backends.ENV_FALLBACK_WARNED, raising=False)
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba-definitely-missing")
    # an unloadable registered backend, mimicking numba-without-wheel
    backends.register_backend(
        "numba-definitely-missing",
        lambda: (_ for _ in ()).throw(ImportError("wheel not installed")),
    )
    backends._FAILED.pop("numba-definitely-missing", None)
    # warnings from worker processes land on stderr, not in caplog;
    # make the driver's logger emit there too so one capture sees both
    handler = logging.StreamHandler()
    logging.getLogger("repro.kernels").addHandler(handler)
    try:
        g = gen.ring(12)
        dist = distribute(g, num_pes=3)
        res = ProcessMachine(3).run(counting_program, dist, EngineConfig())
        assert all(v.triangles_total == 0 for v in res.values)
        err = capfd.readouterr().err
        assert err.count("falling back to numpy") == 1
    finally:
        logging.getLogger("repro.kernels").removeHandler(handler)
        backends._LOADERS.pop("numba-definitely-missing", None)
        backends._FAILED.pop("numba-definitely-missing", None)
