"""Tests for the process-parallel backend (real OS processes + pipes)."""

import numpy as np
import pytest

from repro.core.edge_iterator import edge_iterator
from repro.core.engine import EngineConfig, counting_program
from repro.core.lcc import lcc_program, lcc_sequential
from repro.graphs import distribute
from repro.graphs import generators as gen
from repro.net import Machine, MachineSpec, OutOfMemoryError
from repro.net.parallel import ProcessMachine, RemoteDist


@pytest.fixture(scope="module")
def graph():
    return gen.rgg2d(600, expected_edges=5000, seed=21)


@pytest.fixture(scope="module")
def truth(graph):
    return edge_iterator(graph).triangles


@pytest.mark.parametrize("p", [1, 2, 4])
@pytest.mark.parametrize(
    "cfg",
    [EngineConfig(), EngineConfig(contraction=True), EngineConfig(indirect=True)],
    ids=["ditric", "cetric", "ditric2"],
)
def test_parallel_counts_match_truth(p, cfg, graph, truth):
    dist = distribute(graph, num_pes=p)
    res = ProcessMachine(p).run(counting_program, dist, cfg)
    assert res.values[0].triangles_total == truth
    assert all(v.triangles_total == truth for v in res.values)


def test_parallel_matches_simulator_metrics(graph):
    """Counts, volumes and message counts are backend-independent."""
    p = 4
    dist = distribute(graph, num_pes=p)
    cfg = EngineConfig(contraction=True)
    par = ProcessMachine(p).run(counting_program, dist, cfg)
    sim = Machine(p).run(counting_program, dist, cfg)
    assert par.values[0].triangles_total == sim.values[0].triangles_total
    assert par.metrics.total_volume == sim.metrics.total_volume
    assert par.metrics.total_messages == sim.metrics.total_messages
    for pm, sm in zip(par.metrics.per_pe, sim.metrics.per_pe):
        assert pm.words_sent == sm.words_sent
        assert pm.local_ops == sm.local_ops


def test_parallel_lcc(graph):
    p = 3
    dist = distribute(graph, num_pes=p)
    res = ProcessMachine(p).run(lcc_program, dist, EngineConfig(contraction=True))
    got = np.concatenate([v.lcc for v in res.values])
    assert np.allclose(got, lcc_sequential(graph))


def test_parallel_baselines(graph, truth):
    from repro.baselines.havoqgt import havoqgt_program
    from repro.baselines.tric import tric_program

    dist = distribute(graph, num_pes=3)
    assert ProcessMachine(3).run(tric_program, dist).values[0].triangles_total == truth
    assert (
        ProcessMachine(3).run(havoqgt_program, dist).values[0].triangles_total == truth
    )


def test_parallel_oom_propagates():
    g = gen.rmat(8, 16, seed=2)
    dist = distribute(g, num_pes=4)
    from repro.baselines.tric import tric_program

    tight = MachineSpec(memory_words=50)
    with pytest.raises(OutOfMemoryError):
        ProcessMachine(4, tight).run(tric_program, dist)


def test_parallel_worker_exception_surfaces():
    def bad_program(ctx, dist, cfg):
        if ctx.rank == 1:
            raise ValueError("boom")
        yield
        return 0

    g = gen.ring(8)
    dist = distribute(g, num_pes=2)
    with pytest.raises(RuntimeError, match="boom"):
        ProcessMachine(2, timeout=30).run(bad_program, dist, EngineConfig())


def test_remote_dist_isolation(graph):
    """A worker physically cannot read another PE's view."""
    dist = distribute(graph, num_pes=3)
    view = dist.view(1)
    remote = RemoteDist(view, dist.num_vertices, dist.num_edges, dist.name)
    assert remote.view(1) is view
    with pytest.raises(KeyError):
        remote.view(0)
    assert remote.num_pes == 3


def test_parallel_requires_positive_pes():
    with pytest.raises(ValueError):
        ProcessMachine(0)
