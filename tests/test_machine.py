"""Tests for the simulated machine: scheduling, clocks, causality."""

import pytest

from repro.net import (
    CLOUD,
    DEFAULT_SPEC,
    DeadlockError,
    Machine,
    MachineSpec,
    OutOfMemoryError,
    SUPERMUC,
)


def test_single_pe_returns_value():
    def prog(ctx):
        ctx.charge(10)
        return ctx.rank * 100
        yield  # pragma: no cover

    res = Machine(1).run(prog)
    assert res.values == [0]
    assert res.time == pytest.approx(10 * DEFAULT_SPEC.flop_time)


def test_all_pes_run(
):
    def prog(ctx):
        yield
        return ctx.rank

    res = Machine(5).run(prog)
    assert res.values == list(range(5))


def test_charge_advances_clock():
    def prog(ctx):
        ctx.charge(1000)
        return ctx.clock
        yield  # pragma: no cover

    res = Machine(2, SUPERMUC).run(prog)
    assert res.values[0] == pytest.approx(1000 * SUPERMUC.flop_time)


def test_charge_rejects_negative():
    def prog(ctx):
        with pytest.raises(ValueError):
            ctx.charge(-1)
        with pytest.raises(ValueError):
            ctx.charge_time(-1.0)
        return None
        yield  # pragma: no cover

    Machine(1).run(prog)


def test_send_costs_alpha_beta():
    spec = MachineSpec(alpha=1.0, beta=0.1, flop_time=0.0)

    def prog(ctx):
        if ctx.rank == 0:
            ctx.send(1, "t", "hi", 10)
            return ctx.clock
        msg = yield from ctx.recv("t")
        return (msg.payload, ctx.clock)

    res = Machine(2, spec).run(prog)
    assert res.values[0] == pytest.approx(1.0 + 0.1 * 10)  # sender pays
    payload, recv_clock = res.values[1]
    assert payload == "hi"
    # receiver: fast-forward to send completion + its own endpoint cost
    assert recv_clock == pytest.approx(2 * (1.0 + 1.0))


def test_send_rejects_bad_dest_and_words():
    def prog(ctx):
        with pytest.raises(ValueError):
            ctx.send(9, "t", None, 1)
        with pytest.raises(ValueError):
            ctx.send(0, "t", None, -1)
        return None
        yield  # pragma: no cover

    Machine(2).run(prog)


def test_causal_timestamp_fast_forwards_receiver():
    spec = MachineSpec(alpha=0.0, beta=0.0, flop_time=1.0)

    def prog(ctx):
        if ctx.rank == 0:
            ctx.charge(100)  # sender is at t=100
            ctx.send(1, "x", None, 0)
            return ctx.clock
        msg = yield from ctx.recv("x")
        return ctx.clock

    res = Machine(2, spec).run(prog)
    assert res.values[1] >= 100.0  # receiver cannot see the message earlier


def test_try_recv_returns_none_when_empty():
    def prog(ctx):
        assert ctx.try_recv("nothing") is None
        assert ctx.pending("nothing") == 0
        return True
        yield  # pragma: no cover

    assert Machine(1).run(prog).values == [True]


def test_fifo_order_per_tag():
    def prog(ctx):
        if ctx.rank == 0:
            for i in range(5):
                ctx.send(1, "seq", i, 1)
            return None
        got = []
        for _ in range(5):
            msg = yield from ctx.recv("seq")
            got.append(msg.payload)
        return got

    res = Machine(2).run(prog)
    assert res.values[1] == [0, 1, 2, 3, 4]


def test_deadlock_detected():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.recv("never")  # nobody sends
        return None

    with pytest.raises(DeadlockError):
        Machine(2).run(prog)


def test_courtesy_yields_are_not_deadlock():
    def prog(ctx):
        for _ in range(3):
            yield  # no progress, but terminates
        return 1

    assert Machine(2).run(prog).values == [1, 1]


def test_memory_check():
    spec = MachineSpec(memory_words=100)

    def prog(ctx):
        ctx.check_memory(50)
        with pytest.raises(OutOfMemoryError):
            ctx.check_memory(101, what="test buffer")
        return None
        yield  # pragma: no cover

    Machine(1, spec).run(prog)


def test_phase_attribution():
    spec = MachineSpec(alpha=0, beta=0, flop_time=1.0)

    def prog(ctx):
        with ctx.phase("a"):
            ctx.charge(10)
        with ctx.phase("b"):
            ctx.charge(5)
        return None
        yield  # pragma: no cover

    res = Machine(1, spec).run(prog)
    phases = res.metrics.per_pe[0].phase_times
    assert phases["a"] == pytest.approx(10.0)
    assert phases["b"] == pytest.approx(5.0)


def test_metrics_counters():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.send(1, "m", None, 7)
        else:
            yield from ctx.recv("m")
        return None

    res = Machine(2).run(prog)
    m0, m1 = res.metrics.per_pe
    assert m0.messages_sent == 1 and m0.words_sent == 7
    assert m1.messages_received == 1 and m1.words_received == 7
    assert res.metrics.total_messages == 1
    assert res.metrics.bottleneck_volume == 7


def test_machine_requires_positive_pes():
    with pytest.raises(ValueError):
        Machine(0)


def test_determinism():
    def prog(ctx):
        total = 0
        if ctx.rank > 0:
            ctx.send(0, "v", ctx.rank, 1)
        else:
            for _ in range(ctx.num_pes - 1):
                msg = yield from ctx.recv("v")
                total = total * 10 + msg.payload
        return total

    a = Machine(4).run(prog)
    b = Machine(4).run(prog)
    assert a.values == b.values
    assert a.time == b.time


def test_spec_presets_ordering():
    assert SUPERMUC.alpha < CLOUD.alpha
    assert SUPERMUC.beta < CLOUD.beta
    assert SUPERMUC.message_time(100) < CLOUD.message_time(100)


def test_spec_scaled():
    s = SUPERMUC.scaled(alpha=1.0)
    assert s.alpha == 1.0
    assert s.beta == SUPERMUC.beta


def test_event_engine_traces_are_byte_identical_across_reruns():
    """Same program, same seed-free inputs => byte-identical Chrome trace."""
    from repro.net.trace import Tracer
    from repro.obs import chrome_trace_json

    def prog(ctx):
        with ctx.span("exchange"):
            peer = (ctx.rank + 1) % ctx.num_pes
            ctx.send(peer, "t", ctx.rank, 3)
            msg = yield from ctx.recv("t")
        return msg.payload

    def one_run():
        tracer = Tracer()
        res = Machine(4, tracer=tracer).run(prog)
        return res, chrome_trace_json(res.metrics, tracer, run_name="det")

    r1, j1 = one_run()
    r2, j2 = one_run()
    assert j1 == j2
    assert r1.time == r2.time
    assert r1.events == r2.events
    assert r1.engine.steps == r2.engine.steps


def test_contended_engine_traces_are_byte_identical_across_reruns():
    from repro.net import Network
    from repro.net.trace import Tracer
    from repro.obs import chrome_trace_json

    def prog(ctx):
        dest = ctx.num_pes - 1 - ctx.rank
        if dest != ctx.rank:
            ctx.send(dest, "t", None, 20)
            yield from ctx.recv("t")
        return ctx.clock

    def one_run():
        tracer = Tracer()
        res = Machine(
            6, network=Network(model="contended", node_size=2), tracer=tracer
        ).run(prog)
        return res, chrome_trace_json(res.metrics, tracer, run_name="det")

    r1, j1 = one_run()
    r2, j2 = one_run()
    assert j1 == j2
    assert r1.time == r2.time and r1.events == r2.events
