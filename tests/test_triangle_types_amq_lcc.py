"""Tests for triangle-type classification and approximate LCC."""

import numpy as np
import pytest

from repro.analysis.triangle_types import TriangleTypeCounts, classify_triangles
from repro.core.approx import amq_lcc_program
from repro.core.edge_iterator import edge_iterator
from repro.core.engine import EngineConfig, counting_program
from repro.core.lcc import lcc_sequential
from repro.graphs import distribute, from_edges, partition_by_vertices
from repro.graphs import generators as gen
from repro.net import Machine


# ------------------------------------------------------- triangle types
def test_types_sum_to_total(random_graph):
    counts = classify_triangles(random_graph, num_pes=4)
    assert counts.total == edge_iterator(random_graph).triangles


def test_single_pe_all_type1(random_graph):
    counts = classify_triangles(random_graph, num_pes=1)
    assert counts.type2 == counts.type3 == 0
    assert counts.local_fraction == 1.0


def test_disjoint_cliques_all_type1():
    g = gen.disjoint_cliques(4, 5)
    counts = classify_triangles(g, num_pes=4)
    assert counts.type1 == counts.total == 40


def test_hand_built_types():
    # Triangle A: vertices 0,1,2 (all PE0 of 3 PEs over 9 vertices).
    # Triangle B: 0,1,3 (two on PE0, one on PE1) -> type 2.
    # Triangle C: 2,5,8 (PEs 0,1,2) -> type 3.
    edges = np.array(
        [[0, 1], [1, 2], [0, 2], [0, 3], [1, 3], [2, 5], [5, 8], [2, 8]]
    )
    g = from_edges(edges, num_vertices=9)
    counts = classify_triangles(g, num_pes=3)
    assert (counts.type1, counts.type2, counts.type3) == (1, 1, 1)


def test_type3_matches_cetric_remote_counts(random_graph):
    """CETRIC's global phase finds exactly the type-3 triangles."""
    p = 5
    counts = classify_triangles(random_graph, num_pes=p)
    dist = distribute(random_graph, num_pes=p)
    res = Machine(p).run(counting_program, dist, EngineConfig(contraction=True))
    remote = sum(v.remote_count for v in res.values)
    assert remote == counts.type3
    local = sum(v.local_count for v in res.values)
    assert local == counts.type1 + counts.type2


def test_locality_raises_local_fraction():
    local_g = gen.rgg2d(1200, expected_edges=10000, seed=4)
    from repro.graphs import relabel
    from repro.graphs.reorder import random_order

    shuffled = relabel(local_g, random_order(local_g, seed=1))
    a = classify_triangles(local_g, num_pes=8)
    b = classify_triangles(shuffled, num_pes=8)
    assert a.local_fraction > b.local_fraction


def test_classify_argument_validation(random_graph):
    with pytest.raises(ValueError):
        classify_triangles(random_graph)
    with pytest.raises(ValueError):
        classify_triangles(
            random_graph,
            num_pes=2,
            partition=partition_by_vertices(random_graph.num_vertices, 2),
        )


def test_empty_graph_types():
    from repro.graphs import empty_graph

    counts = classify_triangles(empty_graph(5), num_pes=2)
    assert counts == TriangleTypeCounts(0, 0, 0)
    assert counts.local_fraction == 1.0


# ------------------------------------------------------- approximate LCC
@pytest.fixture(scope="module")
def amq_graph():
    return gen.rmat(9, 12, seed=6)


# FPR differs per AMQ parameterization: Bloom with 16 bits/element is
# ~4e-4, SSBF with b cells/element is ~1/b — tolerances follow.
@pytest.mark.parametrize(
    "kind,budget,mean_tol,q90_tol",
    [("bloom", 16.0, 0.03, 0.05), ("ssbf", 64.0, 0.06, 0.12)],
)
def test_amq_lcc_close_to_exact(kind, budget, mean_tol, q90_tol, amq_graph):
    exact = lcc_sequential(amq_graph)
    dist = distribute(amq_graph, num_pes=6)
    res = Machine(6).run(amq_lcc_program, dist, amq_kind=kind, budget=budget)
    approx = np.concatenate([v.lcc for v in res.values])
    # Mean absolute error small; bulk of vertices almost exact.
    assert np.abs(approx - exact).mean() < mean_tol
    assert np.quantile(np.abs(approx - exact), 0.9) < q90_tol


def test_amq_lcc_error_shrinks_with_budget(amq_graph):
    exact = lcc_sequential(amq_graph)
    dist = distribute(amq_graph, num_pes=6)
    errs = []
    for budget in (8.0, 32.0, 128.0):
        res = Machine(6).run(amq_lcc_program, dist, amq_kind="ssbf", budget=budget)
        approx = np.concatenate([v.lcc for v in res.values])
        errs.append(float(np.abs(approx - exact).mean()))
    assert errs[0] > errs[1] > errs[2]


def test_amq_lcc_global_estimate_matches_truth(amq_graph):
    truth = edge_iterator(amq_graph).triangles
    dist = distribute(amq_graph, num_pes=4)
    res = Machine(4).run(amq_lcc_program, dist, budget=16.0)
    assert res.values[0].estimate_total == pytest.approx(truth, rel=0.03)


def test_amq_lcc_exact_when_no_type3():
    g = gen.disjoint_cliques(3, 6)
    exact = lcc_sequential(g)
    dist = distribute(g, num_pes=3)
    res = Machine(3).run(amq_lcc_program, dist)
    approx = np.concatenate([v.lcc for v in res.values])
    assert np.allclose(approx, exact)


def test_amq_lcc_correction_improves(amq_graph):
    exact = lcc_sequential(amq_graph)
    dist = distribute(amq_graph, num_pes=6)
    raw = Machine(6).run(
        amq_lcc_program, dist, budget=4.0, correct_bias=False
    )
    cor = Machine(6).run(amq_lcc_program, dist, budget=4.0, correct_bias=True)
    err_raw = np.abs(np.concatenate([v.lcc for v in raw.values]) - exact).mean()
    err_cor = np.abs(np.concatenate([v.lcc for v in cor.values]) - exact).mean()
    assert err_cor <= err_raw


def test_amq_lcc_beats_sampling_per_vertex(amq_graph):
    """The paper's point: per-vertex accuracy is where AMQ shines."""
    from repro.core.edge_iterator import edge_iterator_per_vertex
    from repro.core.lcc import lcc_from_delta
    from repro.graphs.builders import from_edges as _fe

    exact = lcc_sequential(amq_graph)
    # Sampling-based per-vertex LCC: count on the q-sparsified graph,
    # scale Δ by q^-3, divide by the *original* degrees.
    rng = np.random.default_rng(8)
    edges = amq_graph.undirected_edges()
    keep = rng.random(edges.shape[0]) < 0.5
    reduced = _fe(edges[keep], num_vertices=amq_graph.num_vertices)
    delta_red, _ = edge_iterator_per_vertex(reduced)
    sampled_lcc = lcc_from_delta(delta_red / 0.5**3, amq_graph.degrees)

    dist = distribute(amq_graph, num_pes=6)
    res = Machine(6).run(amq_lcc_program, dist, budget=8.0)
    amq_lcc = np.concatenate([v.lcc for v in res.values])

    err_amq = np.abs(amq_lcc - exact).mean()
    err_sample = np.abs(sampled_lcc - exact).mean()
    assert err_amq < err_sample
