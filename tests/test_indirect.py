"""Tests for grid-based indirect message delivery (Section IV-B)."""

import math

import numpy as np
import pytest

from repro.net import Grid, GridRouter, Machine, Record
from repro.net.indirect import ForwardRecord


def _rec(v, size=2):
    return Record(v, np.arange(size, dtype=np.int64))


# ---------------------------------------------------------------- Grid
def test_grid_columns_round_to_nearest_sqrt():
    assert Grid.of(16).cols == 4
    assert Grid.of(17).cols == 4
    assert Grid.of(12).cols == 3  # floor(sqrt(12)+0.5) = floor(3.96) = 3
    assert Grid.of(7).cols == 3
    assert Grid.of(2).cols == 1
    assert Grid.of(1).cols == 1


def test_grid_rows_cover_all_pes():
    for p in range(1, 40):
        g = Grid.of(p)
        assert g.rows * g.cols >= p
        assert (g.rows - 1) * g.cols < p


def test_position_rank_roundtrip():
    g = Grid.of(13)
    for rank in range(13):
        r, c = g.position(rank)
        assert g.rank_at(r, c) == rank
    with pytest.raises(ValueError):
        g.position(13)
    with pytest.raises(ValueError):
        g.rank_at(0, g.cols)


def test_proxy_same_row_or_column_is_direct():
    g = Grid.of(16)  # 4x4
    assert g.proxy(0, 3) == 3  # same row
    assert g.proxy(0, 12) == 12  # same column
    assert g.proxy(5, 5) == 5


def test_proxy_two_hop_geometry():
    g = Grid.of(16)  # 4x4
    # src (0,1)=1 -> dest (2,3)=11: proxy = (0,3)=3
    assert g.proxy(1, 11) == 3
    # proxy shares the row of src and the column of dest
    pr, pc = g.position(3)
    assert pr == g.position(1)[0]
    assert pc == g.position(11)[1]


def test_proxy_partial_last_row_transposition():
    # p=7 -> 3x3 grid with last row = {6} only.
    g = Grid.of(7)
    # src 6 = (2,0); dest 5 = (1,2). Natural proxy (2,2)=8 doesn't exist;
    # transposed: src column 0 -> proxy = (0,2) = 2.
    assert g.proxy(6, 5) == 2
    # Reverse direction works without the fix (5 -> 6 proxy (1,0)=3).
    assert g.proxy(5, 6) == 3


def test_proxy_never_returns_invalid_pe():
    for p in (2, 3, 5, 6, 7, 10, 11, 13, 15, 17, 23):
        g = Grid.of(p)
        for s in range(p):
            for d in range(p):
                hop = g.proxy(s, d)
                assert 0 <= hop < p


def test_max_peers_bounded_by_grid_dims():
    """Each PE's possible first hops lie in its row/virtual row — O(sqrt p)."""
    for p in (9, 16, 25, 36):
        g = Grid.of(p)
        for s in range(p):
            hops = {g.proxy(s, d) for d in range(p) if d != s}
            assert len(hops) <= g.rows + g.cols


# ---------------------------------------------------------------- Router
@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 17, 25])
def test_router_delivers_exactly_once(p):
    def prog(ctx):
        r = GridRouter(ctx, "x", threshold_words=64)
        for d in range(p):
            r.post(d, _rec(ctx.rank * 100 + d))
        recs = yield from r.finalize()
        return sorted(rec.vertex for rec in recs)

    res = Machine(p).run(prog)
    for rank, got in enumerate(res.values):
        assert got == sorted(s * 100 + rank for s in range(p))


def test_router_reduces_peer_count_on_hotspot():
    """All PEs message PE 0: direct => p-1 senders hit it; grid => sqrt(p)."""
    p = 16

    def direct(ctx):
        from repro.net import BufferedMessageQueue

        q = BufferedMessageQueue(ctx, "d", threshold_words=10_000)
        if ctx.rank != 0:
            q.post(0, _rec(ctx.rank))
        yield from q.finalize()
        return None

    def indirect(ctx):
        r = GridRouter(ctx, "i", threshold_words=10_000)
        if ctx.rank != 0:
            r.post(0, _rec(ctx.rank))
        yield from r.finalize()
        return None

    res_d = Machine(p).run(direct)
    res_i = Machine(p).run(indirect)
    log_p = int(math.log2(p))
    # Subtract barrier control traffic: one dissemination barrier for the
    # direct queue, two (row + column) for the grid router.
    data_direct = res_d.metrics.per_pe[0].messages_received - log_p
    data_indirect = res_i.metrics.per_pe[0].messages_received - 2 * log_p
    assert data_direct == p - 1
    # Grid: same-row senders post directly (3 on a 4x4 grid), other rows
    # funnel through one proxy each (3 proxies) => 6 instead of 15.
    assert data_indirect <= 2 * (int(math.sqrt(p)) - 1)


def test_router_at_most_doubles_volume():
    p = 9

    def prog(ctx):
        r = GridRouter(ctx, "x", threshold_words=10_000)
        for d in range(p):
            if d != ctx.rank:
                r.post(d, _rec(d, size=8))
        yield from r.finalize()
        return None

    res = Machine(p).run(prog)
    vol = res.metrics.total_volume
    rec_words = _rec(0, 8).words
    direct_vol = p * (p - 1) * rec_words
    # two hops max, plus the 1-word forward header and barrier traffic
    assert vol <= 2 * direct_vol + p * (p - 1) * 2 + 200


def test_forward_record_words():
    fr = ForwardRecord(final_dest=3, record=_rec(0, size=4))
    assert fr.words == _rec(0, size=4).words + 1


def test_router_records_posted_counter():
    def prog(ctx):
        r = GridRouter(ctx, "x", threshold_words=64)
        r.post((ctx.rank + 1) % ctx.num_pes, _rec(1))
        direct_plus_row = r.records_posted  # row-hop posts only
        yield from r.finalize()
        return direct_plus_row

    res = Machine(4).run(prog)
    assert all(isinstance(v, int) for v in res.values)
