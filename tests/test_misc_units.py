"""Miscellaneous unit tests: engine helpers, table formatting, phases."""

import numpy as np
import pytest

from repro.analysis.runner import RunResult
from repro.analysis.tables import _fmt, format_table
from repro.core.engine import EngineConfig, _surrogate_filter
from repro.net import Machine, MachineSpec


# ------------------------------------------------------ surrogate filter
def test_surrogate_filter_dedups_runs():
    src = np.array([0, 0, 0, 1, 1, 2])
    rank = np.array([1, 1, 2, 2, 2, 1])
    keep = _surrogate_filter(src, rank, enabled=True)
    assert keep.tolist() == [True, False, True, True, False, True]


def test_surrogate_filter_disabled_keeps_all():
    src = np.array([0, 0])
    rank = np.array([1, 1])
    assert _surrogate_filter(src, rank, enabled=False).tolist() == [True, True]


def test_surrogate_filter_empty():
    e = np.empty(0, dtype=np.int64)
    assert _surrogate_filter(e, e, enabled=True).size == 0


def test_surrogate_same_rank_different_vertex_kept():
    src = np.array([0, 1])
    rank = np.array([3, 3])
    assert _surrogate_filter(src, rank, enabled=True).tolist() == [True, True]


# ------------------------------------------------------ config semantics
def test_engine_config_defaults_match_paper():
    cfg = EngineConfig()
    assert cfg.aggregate and cfg.surrogate
    assert not cfg.contraction and not cfg.indirect
    assert cfg.degree_exchange == "dense"


def test_engine_config_frozen():
    with pytest.raises(Exception):
        EngineConfig().aggregate = False  # type: ignore[misc]


# ------------------------------------------------------ table formatting
def test_fmt_branches():
    assert _fmt(None) == "--"
    assert _fmt(0.0) == "0"
    assert _fmt(1e-5) == "1.000e-05"
    assert _fmt(2.5e7) == "2.500e+07"
    assert _fmt(3.14159) == "3.142"
    assert _fmt(42) == "42"
    assert _fmt("x") == "x"


def test_format_table_missing_keys_render_as_none():
    text = format_table([{"a": 1}], ["a", "b"])
    assert "--" in text


def test_run_result_as_dict_includes_phases():
    r = RunResult("ditric", "g", 2, 5, 0.5, phases={"local": 0.2})
    d = r.as_dict()
    assert d["phase_local"] == 0.2
    assert d["failed"] == ""


# ------------------------------------------------------ machine phases
def test_nested_phases_attribute_to_innermost():
    spec = MachineSpec(alpha=0, beta=0, flop_time=1.0)

    def prog(ctx):
        with ctx.phase("outer"):
            ctx.charge(5)
            with ctx.phase("inner"):
                ctx.charge(3)
            ctx.charge(2)
        return None
        yield  # pragma: no cover

    res = Machine(1, spec).run(prog)
    times = res.metrics.per_pe[0].phase_times
    # "outer" records its full span (incl. the nested block) because
    # attribution is by wall interval; "inner" records its own 3.
    assert times["inner"] == pytest.approx(3.0)
    assert times["outer"] == pytest.approx(10.0)


def test_repeated_phase_accumulates():
    spec = MachineSpec(alpha=0, beta=0, flop_time=1.0)

    def prog(ctx):
        for _ in range(3):
            with ctx.phase("work"):
                ctx.charge(2)
        return None
        yield  # pragma: no cover

    res = Machine(1, spec).run(prog)
    assert res.metrics.per_pe[0].phase_times["work"] == pytest.approx(6.0)


# ------------------------------------------------------ record semantics
def test_record_is_frozen():
    from repro.net import Record

    r = Record(1, np.arange(3))
    with pytest.raises(Exception):
        r.vertex = 2  # type: ignore[misc]


def test_unpack_records_mixed_payloads():
    from repro.net import Message, Record, unpack_records

    single = Record(1, np.arange(2))
    batch = [Record(2, np.arange(1)), Record(3, np.arange(0))]
    msgs = [
        Message(0, 1, "t", single, single.words, 0.0),
        Message(0, 1, "t", batch, sum(r.words for r in batch), 0.0),
    ]
    out = unpack_records(msgs)
    assert [r.vertex for r in out] == [1, 2, 3]


# ------------------------------------------------------ error branches
def test_grid_router_rejects_foreign_row_records():
    """A non-ForwardRecord on the row tag is a protocol violation."""
    from repro.net import GridRouter, Machine, Record
    import numpy as np

    def prog(ctx):
        router = GridRouter(ctx, "x", threshold_words=64)
        # Inject a malformed record directly onto the row queue (self
        # post -> handed back by the row finalize on this same PE).
        router._row_queue.post(ctx.rank, Record(0, np.empty(0, dtype=np.int64)))
        yield from router.finalize()
        return "unreachable"

    with pytest.raises(TypeError, match="ForwardRecord"):
        Machine(1).run(prog)


def test_process_machine_timeout():
    from repro.graphs import distribute, generators
    from repro.net.parallel import ProcessMachine

    def hang_program(ctx, dist):
        if ctx.rank == 0:
            yield from ctx.recv("never-sent")
        else:
            yield
        return 0

    dist = distribute(generators.ring(8), num_pes=2)
    with pytest.raises(RuntimeError, match="timed out"):
        ProcessMachine(2, timeout=2.0).run(hang_program, dist)


def test_bcast_from_nonzero_value_ignored_off_root():
    """Only PE 0's value matters for bcast."""
    from repro.net import Machine, bcast

    def prog(ctx):
        value = "root" if ctx.rank == 0 else "junk"
        return (yield from bcast(ctx, value))

    assert Machine(5).run(prog).values == ["root"] * 5
